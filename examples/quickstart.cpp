// Quickstart: build a minimal firewall-protected grid, boot the RMF stack
// and the Nexus Proxy, and run a job on a resource behind the firewall.
//
//   $ ./quickstart
//
// Walks through the same steps a site administrator would have followed in
// the paper: declare the topology, punch the single nxport hole, start the
// daemons, submit through the gatekeeper.
#include <cstdio>

#include "core/grid.hpp"

using namespace wacs;

int main() {
  // 1. Topology: one site behind a deny-based firewall, with a DMZ host
  //    for the outer proxy server and the gatekeeper.
  core::GridSystem grid;
  grid.add_site("lab", fw::Policy::typical(),
                sim::LinkParams{.name = "lab-lan",
                                .latency_s = 0.0004,
                                .bandwidth_bps = 6.5e6,
                                .duplex = false});
  grid.add_host({.name = "worker1", .site = "lab", .cpu_speed = 1.0, .cpus = 4});
  grid.add_host({.name = "worker2", .site = "lab", .cpu_speed = 0.8, .cpus = 2});
  grid.add_host({.name = "inner-box", .site = "lab", .cpus = 1});
  grid.add_host({.name = "edge-box", .site = "lab", .zone = sim::Zone::kDmz,
                 .cpus = 1});

  // 2. Services: Nexus Proxy pair (opens exactly one inbound port), the
  //    resource allocator, the gatekeeper, and a Q server per resource.
  grid.add_proxy_pair("edge-box", "inner-box",
                      proxy::RelayParams{.per_message_s = 0.012,
                                         .copy_rate_bps = 1.4e6});
  grid.add_allocator("inner-box");
  grid.add_gatekeeper("edge-box", "my-credential");
  grid.add_qserver("worker1");
  grid.add_qserver("worker2");

  std::printf("grid topology:\n%s\n", grid.net().describe().c_str());
  std::printf("firewall policy for site 'lab':\n%s\n",
              grid.net().site("lab").firewall().policy().to_string().c_str());

  // 3. An "executable": tasks are registered C++ functions.
  grid.registry().register_task("hello", [](rmf::JobContext& ctx) {
    ctx.charge_cpu(0.25);  // a quarter second of simulated work
    if (ctx.rank == 0) {
      ctx.result = to_bytes("hello from rank 0 of " +
                            std::to_string(ctx.nprocs) + " on " +
                            ctx.host->name());
    }
  });

  // 4. Submit through the gatekeeper; the allocator picks the resources.
  rmf::JobSpec spec;
  spec.name = "hello-grid";
  spec.task = "hello";
  spec.credential = "my-credential";
  spec.nprocs = 3;

  auto result = grid.run_job("worker1", spec);
  if (!result.ok()) {
    std::printf("submission failed: %s\n", result.error().to_string().c_str());
    return 1;
  }
  if (!result->ok) {
    std::printf("job failed: %s\n", result->error.c_str());
    return 1;
  }
  std::printf("job %llu finished in %.3f virtual seconds\n",
              static_cast<unsigned long long>(result->job_id),
              result->wall_seconds);
  std::printf("output: %s\n", to_string(result->output).c_str());
  std::printf("firewall verdicts: %llu allowed, %llu denied\n",
              static_cast<unsigned long long>(
                  grid.net().site("lab").firewall().allowed()),
              static_cast<unsigned long long>(
                  grid.net().site("lab").firewall().denied()));
  return 0;
}
