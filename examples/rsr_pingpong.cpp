// Nexus Remote Service Requests across the firewall — the programming model
// underneath Globus, on the simulated Figure 5 testbed.
//
//   $ ./rsr_pingpong [rounds]
//
// A "server" endpoint inside RWCP (advertised through the Nexus Proxy)
// registers a SQUARE handler; a client at ETL attaches a startpoint and
// measures request/reply round trips built from paired one-way RSRs.
#include <cstdio>
#include <cstdlib>

#include "core/testbeds.hpp"
#include "nexus/rsr.hpp"

using namespace wacs;

namespace {
constexpr int kSquare = 1;
constexpr int kReply = 2;
}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 8;
  auto tb = core::make_rwcp_etl_testbed();

  Contact server_contact;
  Contact client_contact;

  // Server endpoint behind the RWCP firewall.
  tb->engine().spawn("server", [&](sim::Process& self) {
    Env env;
    env.set(env_keys::kProxyOuterServer, tb->outer()->contact().to_string());
    env.set(env_keys::kProxyInnerServer, tb->inner()->contact().to_string());
    auto ctx = std::make_shared<nexus::CommContext>(
        tb->net().host("rwcp-sun"), env);
    auto ep = nexus::RsrEndpoint::create(ctx, self);
    if (!ep.ok()) return;
    server_contact = (*ep)->contact();
    std::printf("server endpoint (inside the firewall) advertised as %s\n",
                server_contact.to_string().c_str());
    (*ep)->register_handler(
        kSquare, [ctx, &client_contact](sim::Process& dispatcher,
                                        const Bytes& args) {
          BufReader r(args);
          const std::int64_t x = r.i64().value();
          auto back =
              nexus::RsrStartpoint::attach(*ctx, dispatcher, client_contact);
          if (!back.ok()) return;
          BufWriter w;
          w.i64(x * x);
          (void)back->send(kReply, w.bytes());
        });
    self.suspend();  // daemon: serves until the simulation ends
  });

  double total_ms = 0;
  tb->engine().spawn("client", [&](sim::Process& self) {
    self.sleep(0.1);  // let the server bind
    auto ctx = std::make_shared<nexus::CommContext>(
        tb->net().host("etl-sun"), Env{});
    auto ep = nexus::RsrEndpoint::create(ctx, self);
    if (!ep.ok()) return;
    client_contact = (*ep)->contact();

    std::int64_t reply = -1;
    bool got_reply = false;
    (*ep)->register_handler(kReply,
                            [&](sim::Process&, const Bytes& args) {
                              BufReader r(args);
                              reply = r.i64().value();
                              got_reply = true;
                            });

    auto sp = nexus::RsrStartpoint::attach(*ctx, self, server_contact);
    if (!sp.ok()) {
      std::printf("attach failed: %s\n", sp.error().to_string().c_str());
      return;
    }
    const sim::Time start = tb->engine().now();
    for (int i = 1; i <= rounds; ++i) {
      got_reply = false;
      BufWriter w;
      w.i64(i);
      if (!sp->send(kSquare, w.bytes()).ok()) return;
      while (!got_reply) self.sleep(0.001);
      std::printf("  square(%d) = %lld\n", i, static_cast<long long>(reply));
    }
    total_ms = sim::to_ms(tb->engine().now() - start);
  });

  tb->engine().run();
  std::printf("\n%d request/reply pairs across the WAN + Nexus Proxy in "
              "%.1f virtual ms (%.1f ms per round trip)\n",
              rounds, total_ms, total_ms / rounds);
  return 0;
}
