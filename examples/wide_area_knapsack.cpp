// The paper's flagship experiment as a runnable example: the parallel 0-1
// knapsack on the 20-processor wide-area cluster (Figure 5 testbed),
// submitted through the RMF gatekeeper, communicating through the Nexus
// Proxy across the deny-based firewall.
//
//   $ ./wide_area_knapsack [items] [interval] [stealunit]
//   $ ./wide_area_knapsack --file instance.txt [interval] [stealunit]
//
// Defaults: 24 items (2^25-1 nodes), interval 1000, stealunit 16. With
// --file, the instance is read from a text data file ("a master reads a
// data file"; see Instance::from_text for the format).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/stats.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"

using namespace wacs;

int main(int argc, char** argv) {
  knapsack::Instance inst;
  const char* interval = argc > 2 ? argv[2] : "1000";
  const char* stealunit = argc > 3 ? argv[3] : "16";

  if (argc > 2 && std::string(argv[1]) == "--file") {
    std::ifstream in(argv[2]);
    if (!in) {
      std::printf("cannot open %s\n", argv[2]);
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = knapsack::Instance::from_text(buffer.str());
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.error().to_string().c_str());
      return 2;
    }
    inst = std::move(*parsed);
    interval = argc > 3 ? argv[3] : "1000";
    stealunit = argc > 4 ? argv[4] : "16";
  } else {
    const int n = argc > 1 ? std::atoi(argv[1]) : 24;
    if (n < 8 || n > 34) {
      std::printf(
          "usage: %s [items 8..34 | --file data.txt] [interval] [stealunit]\n",
          argv[0]);
      return 2;
    }
    inst = knapsack::no_prune_instance(n, 2);
  }
  const int n = inst.size();

  auto tb = core::make_rwcp_etl_testbed();
  std::printf("Figure 5 testbed:\n%s\n", tb->net().describe().c_str());
  std::printf("instance: %d items, capacity %lld (no branches pruned -> "
              "%s nodes)\n\n",
              n, static_cast<long long>(inst.capacity),
              format_count(knapsack::full_tree_nodes(n)).c_str());

  rmf::JobSpec spec;
  spec.name = "wide-area-knapsack";
  spec.task = knapsack::kParallelTask;
  auto placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = placements;
  spec.args = {{knapsack::args::kInterval, interval},
               {knapsack::args::kStealUnit, stealunit},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();

  std::printf("submitting %d ranks through the gatekeeper...\n", spec.nprocs);
  auto result = tb->run_job("rwcp-sun", spec);
  if (!result.ok() || !result->ok) {
    std::printf("job failed: %s\n",
                result.ok() ? result->error.c_str()
                            : result.error().to_string().c_str());
    return 1;
  }

  auto stats = knapsack::RunStats::decode(result->output);
  if (!stats.ok()) {
    std::printf("corrupt stats\n");
    return 1;
  }

  std::printf("\nbest value      : %lld\n",
              static_cast<long long>(stats->best_value));
  std::printf("nodes traversed : %s (expected %s)\n",
              format_count(stats->total_nodes).c_str(),
              format_count(knapsack::full_tree_nodes(n)).c_str());
  std::printf("search time     : %.3f virtual seconds\n", stats->app_seconds);
  std::printf("job wall        : %.3f virtual seconds (incl. RMF startup)\n",
              result->wall_seconds);
  std::printf("master steals   : %s\n",
              format_count(stats->master_steals_handled).c_str());

  std::printf("\nper-rank breakdown:\n");
  TextTable table({"rank", "host", "nodes", "steal requests"});
  for (const auto& r : stats->ranks) {
    table.add_row({std::to_string(r.rank), r.host,
                   format_count(r.nodes_traversed),
                   format_count(r.steal_requests)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nproxy relays    : outer %s msgs / %s bytes, inner %s msgs\n",
              format_count(tb->outer()->stats().messages).c_str(),
              format_count(tb->outer()->stats().bytes).c_str(),
              format_count(tb->inner()->stats().messages).c_str());
  std::printf("rwcp firewall   : %llu allowed, %llu denied (default deny "
              "inbound held throughout)\n",
              static_cast<unsigned long long>(
                  tb->net().site("rwcp").firewall().allowed()),
              static_cast<unsigned long long>(
                  tb->net().site("rwcp").firewall().denied()));
  std::printf("\n%s", tb->net().traffic_report().c_str());
  return 0;
}
