// Browse the grid information service (MDS) of the Figure 5 testbed and use
// it the way metacomputing tools did: discover resources by filtered search,
// find the gatekeeper, and submit a job to the discovered resources.
//
//   $ ./grid_info_browser ["(filter)(terms)"]
//
// Default filter: "(cpus>=4)(site=rwcp)".
#include <cstdio>

#include "common/stats.hpp"
#include "core/testbeds.hpp"
#include "mds/server.hpp"

using namespace wacs;

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "(cpus>=4)(site=rwcp)";
  auto tb = core::make_rwcp_etl_testbed();

  tb->registry().register_task("hello", [](rmf::JobContext& ctx) {
    if (ctx.rank == 0) {
      ctx.result = to_bytes("ran on " + ctx.host->name());
    }
  });

  std::vector<mds::Entry> resources;
  std::string gatekeeper_contact;
  std::string job_output;

  tb->engine().spawn("browser", [&](sim::Process& self) {
    self.sleep(0.1);  // let the boot-time publications land
    mds::MdsClient client(tb->net().host("etl-sun"),
                          tb->mds_server()->contact());

    // 1. Discover compute resources.
    auto found = client.search(self, "o=grid", mds::Scope::kSubtree, filter);
    if (!found.ok()) {
      std::printf("search failed: %s\n", found.error().to_string().c_str());
      return;
    }
    resources = *found;

    // 2. Discover the gatekeeper service.
    auto gk = client.search(self, "o=grid/service=gatekeeper",
                            mds::Scope::kBase, "");
    if (!gk.ok() || gk->empty()) return;
    gatekeeper_contact = (*gk)[0].attributes.at("contact");

    // 3. Submit a job to the first discovered resource, through the
    //    discovered gatekeeper.
    if (resources.empty()) return;
    const std::string target = resources[0].attributes.at("qserver");
    auto target_contact = Contact::parse(target);
    if (!target_contact.ok()) return;
    auto gk_contact = Contact::parse(gatekeeper_contact);
    if (!gk_contact.ok()) return;

    rmf::JobSpec spec;
    spec.name = "discovered";
    spec.task = "hello";
    spec.credential = "wacs-grid";
    spec.nprocs = 1;
    spec.placements = {{target_contact->host, 1}};
    auto result = rmf::submit_and_wait(self, tb->net().host("etl-sun"),
                                       *gk_contact, spec);
    if (result.ok() && result->ok) job_output = to_string(result->output);
  });

  tb->engine().run();

  std::printf("MDS search: base=o=grid scope=subtree filter=%s\n\n",
              filter.c_str());
  TextTable table({"dn", "cpus", "speed", "qserver"});
  for (const auto& e : resources) {
    auto attr = [&](const char* k) {
      auto it = e.attributes.find(k);
      return it == e.attributes.end() ? std::string("-") : it->second;
    };
    table.add_row({e.dn, attr("cpus"), attr("speed"), attr("qserver")});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\ngatekeeper discovered at: %s\n", gatekeeper_contact.c_str());
  std::printf("job submitted to the first match: %s\n", job_output.c_str());
  return 0;
}
