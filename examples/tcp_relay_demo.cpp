// Real-socket Nexus Proxy demo: the paper's Table 1 client functions
// against live outer/inner daemons, all on localhost.
//
//   $ ./tcp_relay_demo
//
// Shows both mechanisms:
//   Fig 3 (active open):  NXProxyConnect() relays to a plain TCP server.
//   Fig 4 (passive open): NXProxyBind() registers a listener at the outer
//                         daemon; a plain TCP client dials the advertised
//                         public contact and the bytes flow
//                         client -> outer -> inner -> bound endpoint.
#include <cstdio>
#include <thread>

#include "nxproxy/client.hpp"
#include "nxproxy/daemon.hpp"

using namespace wacs;

int main() {
  // Daemons: outer "outside the firewall", inner on the nxport.
  nxproxy::OuterDaemon outer("127.0.0.1", 0, "127.0.0.1");
  nxproxy::InnerDaemon inner("127.0.0.1", 0);
  if (!outer.start().ok() || !inner.start().ok()) {
    std::printf("cannot start daemons\n");
    return 1;
  }
  std::printf("outer daemon : %s\n", outer.contact().to_string().c_str());
  std::printf("inner daemon : %s (the one open firewall port)\n\n",
              inner.contact().to_string().c_str());

  // --- Fig 3: active open ------------------------------------------------
  auto target = net::TcpListener::bind("127.0.0.1", 0);
  if (!target.ok()) return 1;
  std::thread server([&] {
    auto conn = target->accept();
    if (!conn.ok()) return;
    auto msg = conn->read_exact(26);
    if (!msg.ok()) return;
    std::printf("[target] received: %s\n", to_string(*msg).c_str());
    (void)conn->write_all(to_bytes("ack from the other side"));
  });

  std::printf("Fig 3: NXProxyConnect -> 127.0.0.1:%u through the outer "
              "daemon\n", static_cast<unsigned>(target->port()));
  auto sock = nxproxy::NXProxyConnect(outer.contact(),
                                      {"127.0.0.1", target->port()});
  if (!sock.ok()) {
    std::printf("connect failed: %s\n", sock.error().to_string().c_str());
    return 1;
  }
  (void)sock->write_all(to_bytes("hello through one relay :)"));
  auto ack = sock->read_exact(23);
  if (ack.ok()) std::printf("[client] received: %s\n\n", to_string(*ack).c_str());
  server.join();
  sock->close();

  // --- Fig 4: passive open -------------------------------------------------
  auto bound = nxproxy::NXProxyBind(outer.contact(), inner.contact());
  if (!bound.ok()) {
    std::printf("bind failed: %s\n", bound.error().to_string().c_str());
    return 1;
  }
  std::printf("Fig 4: NXProxyBind registered private port %u; peers must "
              "dial %s\n", static_cast<unsigned>(bound->listener.port()),
              bound->public_contact.to_string().c_str());

  std::thread remote([&] {
    auto conn = net::TcpSocket::dial(bound->public_contact);
    if (!conn.ok()) return;
    (void)conn->write_all(to_bytes("knock knock via two relays"));
    auto reply = conn->read_exact(7);
    if (reply.ok()) {
      std::printf("[remote] received: %s\n", to_string(*reply).c_str());
    }
  });

  auto accepted = nxproxy::NXProxyAccept(*bound);
  if (!accepted.ok()) {
    std::printf("accept failed: %s\n", accepted.error().to_string().c_str());
    return 1;
  }
  auto& [conn, peer] = *accepted;
  std::printf("[bound ] NXProxyAccept: true peer is %s (not the inner "
              "daemon)\n", peer.to_string().c_str());
  auto msg = conn.read_exact(26);
  if (msg.ok()) std::printf("[bound ] received: %s\n", to_string(*msg).c_str());
  (void)conn.write_all(to_bytes("come in"));
  remote.join();

  std::printf("\nrelay statistics:\n");
  std::printf("  outer: %llu connections, %llu bytes relayed\n",
              static_cast<unsigned long long>(outer.stats().connections.load()),
              static_cast<unsigned long long>(
                  outer.stats().bytes_relayed.load()));
  std::printf("  inner: %llu connections, %llu bytes relayed\n",
              static_cast<unsigned long long>(inner.stats().connections.load()),
              static_cast<unsigned long long>(
                  inner.stats().bytes_relayed.load()));
  return 0;
}
