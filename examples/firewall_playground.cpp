// Firewall playground: the paper's §1 configurations made concrete.
//
//   $ ./firewall_playground
//
// Builds the three configurations discussed in the paper — a fully open
// site, the Globus 1.1 TCP_MIN_PORT/TCP_MAX_PORT port-range workaround,
// and the Nexus Proxy's single-nxport deny-based setup — and shows which
// connection attempts each one admits.
#include <cstdio>

#include "firewall/policy.hpp"

using namespace wacs;
using namespace wacs::fw;

namespace {

ConnAttempt inbound(const std::string& src_host, const std::string& src_site,
                    const std::string& dst_host, std::uint16_t port) {
  ConnAttempt a;
  a.src_host = src_host;
  a.src_site = src_site;
  a.dst_host = dst_host;
  a.dst_site = "rwcp";
  a.dst_port = port;
  a.direction = Direction::kInbound;
  return a;
}

void evaluate(Firewall& fw, const ConnAttempt& attempt,
              const std::string& label) {
  const bool ok = fw.permit(attempt);
  std::printf("  %-58s %s\n", label.c_str(), ok ? "ALLOW" : "DENY");
}

}  // namespace

int main() {
  std::printf("Scenario 1: no firewall (I-WAY/GUSTO-style testbed)\n");
  {
    Firewall fw("open-site", Policy::open());
    std::printf("%s", fw.policy().to_string().c_str());
    evaluate(fw, inbound("anyone", "internet", "rwcp-sun", 31337),
             "random inbound connection");
  }

  std::printf("\nScenario 2: Globus 1.1 workaround — open TCP_MIN_PORT..TCP_MAX_PORT\n");
  std::printf("(the paper: \"this configuration is basically the same as the\n"
              " allow based firewall and loses the advantages\")\n");
  {
    Policy p = Policy::typical();
    p.open_inbound(PortRange{40000, 41000}, "TCP_MIN_PORT..TCP_MAX_PORT");
    Firewall fw("port-range", std::move(p));
    std::printf("%s", fw.policy().to_string().c_str());
    evaluate(fw, inbound("globus-peer", "etl", "rwcp-sun", 40500),
             "Nexus link from a grid peer, port 40500");
    evaluate(fw, inbound("attacker", "internet", "rwcp-sun", 40500),
             "ANYONE else on port 40500 (the security hole)");
    evaluate(fw, inbound("attacker", "internet", "rwcp-sun", 22),
             "inbound outside the range");
  }

  std::printf("\nScenario 3: Nexus Proxy — deny-based, single nxport hole\n");
  {
    Policy p = Policy::typical();
    p.open_inbound_from("rwcp-outer", PortRange::single(9900), "nxport");
    Firewall fw("nexus-proxy", std::move(p));
    std::printf("%s", fw.policy().to_string().c_str());
    evaluate(fw, inbound("rwcp-outer", "rwcp", "rwcp-inner", 9900),
             "outer server -> inner server on the nxport");
    evaluate(fw, inbound("attacker", "internet", "rwcp-inner", 9900),
             "anyone else on the nxport (source-pinned: denied)");
    evaluate(fw, inbound("globus-peer", "etl", "rwcp-sun", 40500),
             "direct grid traffic (must go through the proxy)");
    ConnAttempt out = inbound("rwcp-sun", "rwcp", "etl-sun", 2119);
    out.direction = Direction::kOutbound;
    evaluate(fw, out, "outbound submission to a remote gatekeeper");
    std::printf("  counters: %llu allowed, %llu denied\n",
                static_cast<unsigned long long>(fw.allowed()),
                static_cast<unsigned long long>(fw.denied()));
  }

  std::printf("\nConclusion (paper §5): the proxy keeps the deny-based\n"
              "configuration intact — one source-pinned port versus a\n"
              "thousand-port allow range.\n");
  return 0;
}
