file(REMOVE_RECURSE
  "CMakeFiles/nxproxy-inner.dir/nxproxy_inner_main.cpp.o"
  "CMakeFiles/nxproxy-inner.dir/nxproxy_inner_main.cpp.o.d"
  "nxproxy-inner"
  "nxproxy-inner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nxproxy-inner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
