# Empty dependencies file for nxproxy-inner.
# This may be replaced when dependencies are built.
