
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/nxproxy_inner_main.cpp" "tools/CMakeFiles/nxproxy-inner.dir/nxproxy_inner_main.cpp.o" "gcc" "tools/CMakeFiles/nxproxy-inner.dir/nxproxy_inner_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nxproxy/CMakeFiles/wacs_nxproxy.dir/DependInfo.cmake"
  "/root/repo/build/src/sockets/CMakeFiles/wacs_sockets.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/wacs_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/wacs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/wacs_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
