file(REMOVE_RECURSE
  "CMakeFiles/nxproxy-ping.dir/nxproxy_ping_main.cpp.o"
  "CMakeFiles/nxproxy-ping.dir/nxproxy_ping_main.cpp.o.d"
  "nxproxy-ping"
  "nxproxy-ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nxproxy-ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
