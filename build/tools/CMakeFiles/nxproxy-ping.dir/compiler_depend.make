# Empty compiler generated dependencies file for nxproxy-ping.
# This may be replaced when dependencies are built.
