# Empty dependencies file for nxproxy-outer.
# This may be replaced when dependencies are built.
