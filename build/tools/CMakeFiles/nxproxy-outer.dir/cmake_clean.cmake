file(REMOVE_RECURSE
  "CMakeFiles/nxproxy-outer.dir/nxproxy_outer_main.cpp.o"
  "CMakeFiles/nxproxy-outer.dir/nxproxy_outer_main.cpp.o.d"
  "nxproxy-outer"
  "nxproxy-outer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nxproxy-outer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
