file(REMOVE_RECURSE
  "CMakeFiles/rsr_pingpong.dir/rsr_pingpong.cpp.o"
  "CMakeFiles/rsr_pingpong.dir/rsr_pingpong.cpp.o.d"
  "rsr_pingpong"
  "rsr_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsr_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
