# Empty dependencies file for rsr_pingpong.
# This may be replaced when dependencies are built.
