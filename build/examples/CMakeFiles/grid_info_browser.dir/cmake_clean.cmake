file(REMOVE_RECURSE
  "CMakeFiles/grid_info_browser.dir/grid_info_browser.cpp.o"
  "CMakeFiles/grid_info_browser.dir/grid_info_browser.cpp.o.d"
  "grid_info_browser"
  "grid_info_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_info_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
