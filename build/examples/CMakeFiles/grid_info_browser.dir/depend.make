# Empty dependencies file for grid_info_browser.
# This may be replaced when dependencies are built.
