# Empty compiler generated dependencies file for wide_area_knapsack.
# This may be replaced when dependencies are built.
