file(REMOVE_RECURSE
  "CMakeFiles/wide_area_knapsack.dir/wide_area_knapsack.cpp.o"
  "CMakeFiles/wide_area_knapsack.dir/wide_area_knapsack.cpp.o.d"
  "wide_area_knapsack"
  "wide_area_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_area_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
