# Empty dependencies file for firewall_playground.
# This may be replaced when dependencies are built.
