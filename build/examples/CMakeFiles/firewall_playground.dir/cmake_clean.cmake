file(REMOVE_RECURSE
  "CMakeFiles/firewall_playground.dir/firewall_playground.cpp.o"
  "CMakeFiles/firewall_playground.dir/firewall_playground.cpp.o.d"
  "firewall_playground"
  "firewall_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
