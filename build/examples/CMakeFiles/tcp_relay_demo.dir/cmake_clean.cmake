file(REMOVE_RECURSE
  "CMakeFiles/tcp_relay_demo.dir/tcp_relay_demo.cpp.o"
  "CMakeFiles/tcp_relay_demo.dir/tcp_relay_demo.cpp.o.d"
  "tcp_relay_demo"
  "tcp_relay_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_relay_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
