# Empty dependencies file for tcp_relay_demo.
# This may be replaced when dependencies are built.
