# Empty compiler generated dependencies file for bench_table6_traversed_nodes.
# This may be replaced when dependencies are built.
