file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_three_site.dir/bench_ext_three_site.cpp.o"
  "CMakeFiles/bench_ext_three_site.dir/bench_ext_three_site.cpp.o.d"
  "bench_ext_three_site"
  "bench_ext_three_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_three_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
