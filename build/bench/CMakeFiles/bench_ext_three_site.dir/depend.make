# Empty dependencies file for bench_ext_three_site.
# This may be replaced when dependencies are built.
