# Empty compiler generated dependencies file for bench_fig34_connection_setup.
# This may be replaced when dependencies are built.
