file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_steals.dir/bench_table5_steals.cpp.o"
  "CMakeFiles/bench_table5_steals.dir/bench_table5_steals.cpp.o.d"
  "bench_table5_steals"
  "bench_table5_steals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_steals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
