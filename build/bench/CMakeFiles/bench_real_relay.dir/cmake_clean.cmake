file(REMOVE_RECURSE
  "CMakeFiles/bench_real_relay.dir/bench_real_relay.cpp.o"
  "CMakeFiles/bench_real_relay.dir/bench_real_relay.cpp.o.d"
  "bench_real_relay"
  "bench_real_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
