# Empty compiler generated dependencies file for bench_real_relay.
# This may be replaced when dependencies are built.
