file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_knapsack.dir/bench_table4_knapsack.cpp.o"
  "CMakeFiles/bench_table4_knapsack.dir/bench_table4_knapsack.cpp.o.d"
  "bench_table4_knapsack"
  "bench_table4_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
