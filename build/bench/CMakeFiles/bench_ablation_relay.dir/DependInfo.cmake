
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_relay.cpp" "bench/CMakeFiles/bench_ablation_relay.dir/bench_ablation_relay.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_relay.dir/bench_ablation_relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wacs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/knapsack/CMakeFiles/wacs_knapsack.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/wacs_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/rmf/CMakeFiles/wacs_rmf.dir/DependInfo.cmake"
  "/root/repo/build/src/nexus/CMakeFiles/wacs_nexus.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/wacs_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/wacs_security.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/wacs_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/wacs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/wacs_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
