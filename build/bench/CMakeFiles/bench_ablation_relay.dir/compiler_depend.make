# Empty compiler generated dependencies file for bench_ablation_relay.
# This may be replaced when dependencies are built.
