file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_relay.dir/bench_ablation_relay.cpp.o"
  "CMakeFiles/bench_ablation_relay.dir/bench_ablation_relay.cpp.o.d"
  "bench_ablation_relay"
  "bench_ablation_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
