file(REMOVE_RECURSE
  "CMakeFiles/wacs_core.dir/grid.cpp.o"
  "CMakeFiles/wacs_core.dir/grid.cpp.o.d"
  "CMakeFiles/wacs_core.dir/netperf.cpp.o"
  "CMakeFiles/wacs_core.dir/netperf.cpp.o.d"
  "CMakeFiles/wacs_core.dir/testbeds.cpp.o"
  "CMakeFiles/wacs_core.dir/testbeds.cpp.o.d"
  "libwacs_core.a"
  "libwacs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
