file(REMOVE_RECURSE
  "libwacs_core.a"
)
