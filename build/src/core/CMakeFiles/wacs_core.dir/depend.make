# Empty dependencies file for wacs_core.
# This may be replaced when dependencies are built.
