# Empty compiler generated dependencies file for wacs_mpi.
# This may be replaced when dependencies are built.
