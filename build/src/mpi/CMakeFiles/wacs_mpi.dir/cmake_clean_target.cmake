file(REMOVE_RECURSE
  "libwacs_mpi.a"
)
