file(REMOVE_RECURSE
  "CMakeFiles/wacs_mpi.dir/comm.cpp.o"
  "CMakeFiles/wacs_mpi.dir/comm.cpp.o.d"
  "libwacs_mpi.a"
  "libwacs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
