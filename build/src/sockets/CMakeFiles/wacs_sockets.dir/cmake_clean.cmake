file(REMOVE_RECURSE
  "CMakeFiles/wacs_sockets.dir/socket.cpp.o"
  "CMakeFiles/wacs_sockets.dir/socket.cpp.o.d"
  "libwacs_sockets.a"
  "libwacs_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
