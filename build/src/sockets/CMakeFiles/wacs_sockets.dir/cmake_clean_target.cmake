file(REMOVE_RECURSE
  "libwacs_sockets.a"
)
