# Empty dependencies file for wacs_sockets.
# This may be replaced when dependencies are built.
