file(REMOVE_RECURSE
  "libwacs_common.a"
)
