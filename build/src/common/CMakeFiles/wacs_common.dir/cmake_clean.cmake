file(REMOVE_RECURSE
  "CMakeFiles/wacs_common.dir/bytes.cpp.o"
  "CMakeFiles/wacs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/wacs_common.dir/config.cpp.o"
  "CMakeFiles/wacs_common.dir/config.cpp.o.d"
  "CMakeFiles/wacs_common.dir/contact.cpp.o"
  "CMakeFiles/wacs_common.dir/contact.cpp.o.d"
  "CMakeFiles/wacs_common.dir/error.cpp.o"
  "CMakeFiles/wacs_common.dir/error.cpp.o.d"
  "CMakeFiles/wacs_common.dir/log.cpp.o"
  "CMakeFiles/wacs_common.dir/log.cpp.o.d"
  "CMakeFiles/wacs_common.dir/stats.cpp.o"
  "CMakeFiles/wacs_common.dir/stats.cpp.o.d"
  "libwacs_common.a"
  "libwacs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
