# Empty dependencies file for wacs_common.
# This may be replaced when dependencies are built.
