file(REMOVE_RECURSE
  "libwacs_nxproxy.a"
)
