file(REMOVE_RECURSE
  "CMakeFiles/wacs_nxproxy.dir/client.cpp.o"
  "CMakeFiles/wacs_nxproxy.dir/client.cpp.o.d"
  "CMakeFiles/wacs_nxproxy.dir/daemon.cpp.o"
  "CMakeFiles/wacs_nxproxy.dir/daemon.cpp.o.d"
  "libwacs_nxproxy.a"
  "libwacs_nxproxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_nxproxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
