# Empty compiler generated dependencies file for wacs_nxproxy.
# This may be replaced when dependencies are built.
