file(REMOVE_RECURSE
  "CMakeFiles/wacs_security.dir/credential.cpp.o"
  "CMakeFiles/wacs_security.dir/credential.cpp.o.d"
  "CMakeFiles/wacs_security.dir/sha256.cpp.o"
  "CMakeFiles/wacs_security.dir/sha256.cpp.o.d"
  "libwacs_security.a"
  "libwacs_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
