file(REMOVE_RECURSE
  "libwacs_security.a"
)
