
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/credential.cpp" "src/security/CMakeFiles/wacs_security.dir/credential.cpp.o" "gcc" "src/security/CMakeFiles/wacs_security.dir/credential.cpp.o.d"
  "/root/repo/src/security/sha256.cpp" "src/security/CMakeFiles/wacs_security.dir/sha256.cpp.o" "gcc" "src/security/CMakeFiles/wacs_security.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
