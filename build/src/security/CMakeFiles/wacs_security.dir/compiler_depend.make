# Empty compiler generated dependencies file for wacs_security.
# This may be replaced when dependencies are built.
