
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/client.cpp" "src/proxy/CMakeFiles/wacs_proxy.dir/client.cpp.o" "gcc" "src/proxy/CMakeFiles/wacs_proxy.dir/client.cpp.o.d"
  "/root/repo/src/proxy/protocol.cpp" "src/proxy/CMakeFiles/wacs_proxy.dir/protocol.cpp.o" "gcc" "src/proxy/CMakeFiles/wacs_proxy.dir/protocol.cpp.o.d"
  "/root/repo/src/proxy/relay.cpp" "src/proxy/CMakeFiles/wacs_proxy.dir/relay.cpp.o" "gcc" "src/proxy/CMakeFiles/wacs_proxy.dir/relay.cpp.o.d"
  "/root/repo/src/proxy/server.cpp" "src/proxy/CMakeFiles/wacs_proxy.dir/server.cpp.o" "gcc" "src/proxy/CMakeFiles/wacs_proxy.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/wacs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/wacs_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
