# Empty dependencies file for wacs_proxy.
# This may be replaced when dependencies are built.
