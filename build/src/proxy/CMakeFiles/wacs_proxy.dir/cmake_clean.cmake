file(REMOVE_RECURSE
  "CMakeFiles/wacs_proxy.dir/client.cpp.o"
  "CMakeFiles/wacs_proxy.dir/client.cpp.o.d"
  "CMakeFiles/wacs_proxy.dir/protocol.cpp.o"
  "CMakeFiles/wacs_proxy.dir/protocol.cpp.o.d"
  "CMakeFiles/wacs_proxy.dir/relay.cpp.o"
  "CMakeFiles/wacs_proxy.dir/relay.cpp.o.d"
  "CMakeFiles/wacs_proxy.dir/server.cpp.o"
  "CMakeFiles/wacs_proxy.dir/server.cpp.o.d"
  "libwacs_proxy.a"
  "libwacs_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
