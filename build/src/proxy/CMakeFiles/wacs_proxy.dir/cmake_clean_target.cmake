file(REMOVE_RECURSE
  "libwacs_proxy.a"
)
