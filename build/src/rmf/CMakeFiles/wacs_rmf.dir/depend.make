# Empty dependencies file for wacs_rmf.
# This may be replaced when dependencies are built.
