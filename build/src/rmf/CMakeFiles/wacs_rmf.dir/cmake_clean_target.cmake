file(REMOVE_RECURSE
  "libwacs_rmf.a"
)
