file(REMOVE_RECURSE
  "CMakeFiles/wacs_rmf.dir/allocator.cpp.o"
  "CMakeFiles/wacs_rmf.dir/allocator.cpp.o.d"
  "CMakeFiles/wacs_rmf.dir/gatekeeper.cpp.o"
  "CMakeFiles/wacs_rmf.dir/gatekeeper.cpp.o.d"
  "CMakeFiles/wacs_rmf.dir/protocol.cpp.o"
  "CMakeFiles/wacs_rmf.dir/protocol.cpp.o.d"
  "CMakeFiles/wacs_rmf.dir/qserver.cpp.o"
  "CMakeFiles/wacs_rmf.dir/qserver.cpp.o.d"
  "libwacs_rmf.a"
  "libwacs_rmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_rmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
