# Empty compiler generated dependencies file for wacs_firewall.
# This may be replaced when dependencies are built.
