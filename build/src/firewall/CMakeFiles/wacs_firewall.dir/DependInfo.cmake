
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firewall/policy.cpp" "src/firewall/CMakeFiles/wacs_firewall.dir/policy.cpp.o" "gcc" "src/firewall/CMakeFiles/wacs_firewall.dir/policy.cpp.o.d"
  "/root/repo/src/firewall/rule.cpp" "src/firewall/CMakeFiles/wacs_firewall.dir/rule.cpp.o" "gcc" "src/firewall/CMakeFiles/wacs_firewall.dir/rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
