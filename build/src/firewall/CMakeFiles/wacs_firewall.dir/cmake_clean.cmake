file(REMOVE_RECURSE
  "CMakeFiles/wacs_firewall.dir/policy.cpp.o"
  "CMakeFiles/wacs_firewall.dir/policy.cpp.o.d"
  "CMakeFiles/wacs_firewall.dir/rule.cpp.o"
  "CMakeFiles/wacs_firewall.dir/rule.cpp.o.d"
  "libwacs_firewall.a"
  "libwacs_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
