file(REMOVE_RECURSE
  "libwacs_firewall.a"
)
