file(REMOVE_RECURSE
  "CMakeFiles/wacs_nexus.dir/comm.cpp.o"
  "CMakeFiles/wacs_nexus.dir/comm.cpp.o.d"
  "CMakeFiles/wacs_nexus.dir/rsr.cpp.o"
  "CMakeFiles/wacs_nexus.dir/rsr.cpp.o.d"
  "libwacs_nexus.a"
  "libwacs_nexus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_nexus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
