file(REMOVE_RECURSE
  "libwacs_nexus.a"
)
