# Empty compiler generated dependencies file for wacs_nexus.
# This may be replaced when dependencies are built.
