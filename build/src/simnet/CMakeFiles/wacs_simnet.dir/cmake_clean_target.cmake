file(REMOVE_RECURSE
  "libwacs_simnet.a"
)
