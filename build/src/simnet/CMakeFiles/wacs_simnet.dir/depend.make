# Empty dependencies file for wacs_simnet.
# This may be replaced when dependencies are built.
