file(REMOVE_RECURSE
  "CMakeFiles/wacs_simnet.dir/engine.cpp.o"
  "CMakeFiles/wacs_simnet.dir/engine.cpp.o.d"
  "CMakeFiles/wacs_simnet.dir/net.cpp.o"
  "CMakeFiles/wacs_simnet.dir/net.cpp.o.d"
  "CMakeFiles/wacs_simnet.dir/tcp.cpp.o"
  "CMakeFiles/wacs_simnet.dir/tcp.cpp.o.d"
  "libwacs_simnet.a"
  "libwacs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
