# Empty dependencies file for wacs_knapsack.
# This may be replaced when dependencies are built.
