file(REMOVE_RECURSE
  "libwacs_knapsack.a"
)
