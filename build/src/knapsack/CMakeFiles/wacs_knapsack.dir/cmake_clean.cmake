file(REMOVE_RECURSE
  "CMakeFiles/wacs_knapsack.dir/instance.cpp.o"
  "CMakeFiles/wacs_knapsack.dir/instance.cpp.o.d"
  "CMakeFiles/wacs_knapsack.dir/parallel.cpp.o"
  "CMakeFiles/wacs_knapsack.dir/parallel.cpp.o.d"
  "CMakeFiles/wacs_knapsack.dir/search.cpp.o"
  "CMakeFiles/wacs_knapsack.dir/search.cpp.o.d"
  "libwacs_knapsack.a"
  "libwacs_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
