file(REMOVE_RECURSE
  "CMakeFiles/wacs_mds.dir/directory.cpp.o"
  "CMakeFiles/wacs_mds.dir/directory.cpp.o.d"
  "CMakeFiles/wacs_mds.dir/server.cpp.o"
  "CMakeFiles/wacs_mds.dir/server.cpp.o.d"
  "libwacs_mds.a"
  "libwacs_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wacs_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
