file(REMOVE_RECURSE
  "libwacs_mds.a"
)
