# Empty dependencies file for wacs_mds.
# This may be replaced when dependencies are built.
