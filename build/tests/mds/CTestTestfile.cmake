# CMake generated Testfile for 
# Source directory: /root/repo/tests/mds
# Build directory: /root/repo/build/tests/mds
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mds/test_mds[1]_include.cmake")
