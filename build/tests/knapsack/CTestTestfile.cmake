# CMake generated Testfile for 
# Source directory: /root/repo/tests/knapsack
# Build directory: /root/repo/build/tests/knapsack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/knapsack/test_knapsack[1]_include.cmake")
