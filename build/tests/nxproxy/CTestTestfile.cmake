# CMake generated Testfile for 
# Source directory: /root/repo/tests/nxproxy
# Build directory: /root/repo/build/tests/nxproxy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nxproxy/test_nxproxy[1]_include.cmake")
