file(REMOVE_RECURSE
  "CMakeFiles/test_nxproxy.dir/nxproxy_test.cpp.o"
  "CMakeFiles/test_nxproxy.dir/nxproxy_test.cpp.o.d"
  "test_nxproxy"
  "test_nxproxy.pdb"
  "test_nxproxy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nxproxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
