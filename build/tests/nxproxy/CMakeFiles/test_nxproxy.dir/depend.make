# Empty dependencies file for test_nxproxy.
# This may be replaced when dependencies are built.
