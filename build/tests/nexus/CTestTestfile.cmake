# CMake generated Testfile for 
# Source directory: /root/repo/tests/nexus
# Build directory: /root/repo/build/tests/nexus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/nexus/test_nexus[1]_include.cmake")
