# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("simnet")
subdirs("firewall")
subdirs("security")
subdirs("mds")
subdirs("proxy")
subdirs("sockets")
subdirs("nxproxy")
subdirs("nexus")
subdirs("rmf")
subdirs("mpi")
subdirs("knapsack")
subdirs("core")
