# CMake generated Testfile for 
# Source directory: /root/repo/tests/security
# Build directory: /root/repo/build/tests/security
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/security/test_security[1]_include.cmake")
