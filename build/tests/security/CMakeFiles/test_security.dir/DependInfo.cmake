
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/security/credential_test.cpp" "tests/security/CMakeFiles/test_security.dir/credential_test.cpp.o" "gcc" "tests/security/CMakeFiles/test_security.dir/credential_test.cpp.o.d"
  "/root/repo/tests/security/sha256_test.cpp" "tests/security/CMakeFiles/test_security.dir/sha256_test.cpp.o" "gcc" "tests/security/CMakeFiles/test_security.dir/sha256_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/security/CMakeFiles/wacs_security.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
