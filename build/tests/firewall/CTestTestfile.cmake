# CMake generated Testfile for 
# Source directory: /root/repo/tests/firewall
# Build directory: /root/repo/build/tests/firewall
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/firewall/test_firewall[1]_include.cmake")
