file(REMOVE_RECURSE
  "CMakeFiles/test_firewall.dir/policy_test.cpp.o"
  "CMakeFiles/test_firewall.dir/policy_test.cpp.o.d"
  "CMakeFiles/test_firewall.dir/rule_test.cpp.o"
  "CMakeFiles/test_firewall.dir/rule_test.cpp.o.d"
  "test_firewall"
  "test_firewall.pdb"
  "test_firewall[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
