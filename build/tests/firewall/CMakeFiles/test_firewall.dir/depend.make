# Empty dependencies file for test_firewall.
# This may be replaced when dependencies are built.
