# CMake generated Testfile for 
# Source directory: /root/repo/tests/rmf
# Build directory: /root/repo/build/tests/rmf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rmf/test_rmf[1]_include.cmake")
