file(REMOVE_RECURSE
  "CMakeFiles/test_rmf.dir/allocator_test.cpp.o"
  "CMakeFiles/test_rmf.dir/allocator_test.cpp.o.d"
  "CMakeFiles/test_rmf.dir/jobflow_test.cpp.o"
  "CMakeFiles/test_rmf.dir/jobflow_test.cpp.o.d"
  "CMakeFiles/test_rmf.dir/protocol_test.cpp.o"
  "CMakeFiles/test_rmf.dir/protocol_test.cpp.o.d"
  "CMakeFiles/test_rmf.dir/queueing_test.cpp.o"
  "CMakeFiles/test_rmf.dir/queueing_test.cpp.o.d"
  "test_rmf"
  "test_rmf.pdb"
  "test_rmf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
