# CMake generated Testfile for 
# Source directory: /root/repo/tests/proxy
# Build directory: /root/repo/build/tests/proxy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/proxy/test_proxy[1]_include.cmake")
