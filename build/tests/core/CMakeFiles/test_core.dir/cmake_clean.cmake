file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/determinism_test.cpp.o"
  "CMakeFiles/test_core.dir/determinism_test.cpp.o.d"
  "CMakeFiles/test_core.dir/failure_test.cpp.o"
  "CMakeFiles/test_core.dir/failure_test.cpp.o.d"
  "CMakeFiles/test_core.dir/grid_test.cpp.o"
  "CMakeFiles/test_core.dir/grid_test.cpp.o.d"
  "CMakeFiles/test_core.dir/netperf_test.cpp.o"
  "CMakeFiles/test_core.dir/netperf_test.cpp.o.d"
  "CMakeFiles/test_core.dir/testbed_test.cpp.o"
  "CMakeFiles/test_core.dir/testbed_test.cpp.o.d"
  "CMakeFiles/test_core.dir/three_site_test.cpp.o"
  "CMakeFiles/test_core.dir/three_site_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
