# CMake generated Testfile for 
# Source directory: /root/repo/tests/sockets
# Build directory: /root/repo/build/tests/sockets
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sockets/test_sockets[1]_include.cmake")
