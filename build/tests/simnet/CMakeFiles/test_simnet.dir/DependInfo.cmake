
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simnet/channel_test.cpp" "tests/simnet/CMakeFiles/test_simnet.dir/channel_test.cpp.o" "gcc" "tests/simnet/CMakeFiles/test_simnet.dir/channel_test.cpp.o.d"
  "/root/repo/tests/simnet/engine_test.cpp" "tests/simnet/CMakeFiles/test_simnet.dir/engine_test.cpp.o" "gcc" "tests/simnet/CMakeFiles/test_simnet.dir/engine_test.cpp.o.d"
  "/root/repo/tests/simnet/net_test.cpp" "tests/simnet/CMakeFiles/test_simnet.dir/net_test.cpp.o" "gcc" "tests/simnet/CMakeFiles/test_simnet.dir/net_test.cpp.o.d"
  "/root/repo/tests/simnet/tcp_test.cpp" "tests/simnet/CMakeFiles/test_simnet.dir/tcp_test.cpp.o" "gcc" "tests/simnet/CMakeFiles/test_simnet.dir/tcp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/wacs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/wacs_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wacs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
