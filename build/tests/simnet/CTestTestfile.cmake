# CMake generated Testfile for 
# Source directory: /root/repo/tests/simnet
# Build directory: /root/repo/build/tests/simnet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simnet/test_simnet[1]_include.cmake")
