// Extension — the Figure 1 three-site wide-area cluster system.
//
// The paper's introduction draws a grid of ETL, Tokyo Institute of
// Technology, and RWCP (Figure 1), but the evaluation only spans two sites.
// This bench completes the picture: knapsack runs on the 28-processor
// three-site system, with TITech behind its *own* firewall and Nexus Proxy
// pair, so RWCP↔TITech rank links chain through two outer servers.
#include <cstdlib>
#include <map>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"

namespace wacs {
namespace {

knapsack::RunStats run(core::Testbed& tb,
                       std::vector<rmf::Placement> placements, int n) {
  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  rmf::JobSpec spec;
  spec.name = "threesite";
  spec.task = knapsack::kParallelTask;
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = std::move(placements);
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok() && result->ok, "three-site run failed");
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  WACS_CHECK(stats->total_nodes == knapsack::full_tree_nodes(n));
  return *stats;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(26);
  bench::print_header(
      "Extension: the Figure 1 three-site wide-area cluster system",
      "Tanaka et al., HPDC 2000, Figure 1 (evaluated here beyond the paper)");

  bench::maybe_enable_tracing();
  // Two-site (Figure 5) baseline on the same three-site grid.
  auto tb2 = core::make_three_site_testbed();
  auto two = run(tb2, core::placement_wide_area(tb2), n);
  auto tb3 = core::make_three_site_testbed();
  auto three = run(tb3, core::placement_three_site(tb3), n);

  const double seq_seconds =
      static_cast<double>(knapsack::full_tree_nodes(n)) *
      core::calib::kSecPerNode;

  TextTable table({"system", "procs", "exec time", "speedup vs seq",
                   "capacity"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", seq_seconds / two.app_seconds);
  table.add_row({"Wide-area, 2 sites (Fig 5)", "20",
                 format_duration_ms(two.app_seconds * 1e3), buf, "16.0"});
  std::snprintf(buf, sizeof buf, "%.2f", seq_seconds / three.app_seconds);
  table.add_row({"Wide-area, 3 sites (Fig 1)", "28",
                 format_duration_ms(three.app_seconds * 1e3), buf, "21.6"});
  std::printf("%s", table.to_string().c_str());

  // Per-site node shares on the three-site run.
  std::map<std::string, std::uint64_t> site_nodes;
  for (const auto& r : three.ranks) {
    std::string site = r.host.rfind("compas", 0) == 0 ? "rwcp"
                       : r.host.rfind("rwcp", 0) == 0 ? "rwcp"
                       : r.host.rfind("etl", 0) == 0  ? "etl"
                                                      : "titech";
    site_nodes[site] += r.nodes_traversed;
  }
  std::printf("\nthree-site node shares:\n");
  for (const auto& [site, nodes] : site_nodes) {
    std::printf("  %-8s %5.1f%%\n", site.c_str(),
                100.0 * static_cast<double>(nodes) /
                    static_cast<double>(three.total_nodes));
  }
  std::printf("\nproxy chains: rwcp outer relayed %s msgs, titech outer %s "
              "msgs, titech inner %s msgs\n",
              format_count(tb3->proxy_for("rwcp")->outer->stats().messages)
                  .c_str(),
              format_count(tb3->proxy_for("titech")->outer->stats().messages)
                  .c_str(),
              format_count(tb3->proxy_for("titech")->inner->stats().messages)
                  .c_str());

  bench::Report report("ext_three_site");
  report.set("instance_items", n);
  auto row_of = [&](const char* system, int procs,
                    const knapsack::RunStats& s) {
    json::Value r = json::Value::object();
    r.set("system", system);
    r.set("procs", procs);
    r.set("app_seconds", s.app_seconds);
    r.set("speedup_vs_seq", seq_seconds / s.app_seconds);
    return r;
  };
  report.add_row(row_of("wide-area-2site", 20, two));
  report.add_row(row_of("wide-area-3site", 28, three));
  json::Value shares = json::Value::object();
  for (const auto& [site, nodes] : site_nodes) {
    shares.set(site, static_cast<double>(nodes) /
                         static_cast<double>(three.total_nodes));
  }
  report.set("three_site_node_shares", std::move(shares));
  bench::finish_report(report, "ext_three_site");
  return 0;
}
