// Chaos soak of the REAL Nexus Proxy daemons under a seeded fault schedule.
//
// One process, loopback TCP, deterministic hostile peers from the
// sockets/fault shim: slowloris and half-open clients on the control port,
// garbage writers and mid-frame resetters, an injected EMFILE storm on
// accept, an admission-gate overload burst, a full bind-lease lifecycle,
// and a goodput phase whose byte integrity is hashed end to end. The run
// gates on the supervision invariants — every hostile connection evicted by
// its deadline, shed connections told Busy, expired leases reaped — and on
// zero leaked threads, fds, and sessions once the daemons stop.
//
// Counters are timing-dependent (eviction races are real), so this bench
// has NO committed baseline; the gates themselves are the contract.
#include <dirent.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "nxproxy/client.hpp"
#include "nxproxy/daemon.hpp"
#include "sockets/fault.hpp"

namespace wacs {
namespace {

constexpr int kHostileEach = 4;  // per hostile-client species
constexpr int kShedProbes = 6;   // one-shot connects against a full gate
constexpr int kEmfileBurst = 5;  // injected accept failures in a row
constexpr int kStreams = 4;      // goodput streams through the bind path
constexpr std::size_t kStreamBytes = 256 * 1024;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("WACS_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

struct ProcUsage {
  long threads = -1;
  long fds = -1;
};

/// Thread and open-fd counts of this process, from /proc. The fd count
/// excludes the opendir fd and the "."/".." entries, so values from
/// successive calls compare like for like.
ProcUsage proc_usage() {
  ProcUsage u;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::sscanf(line, "Threads: %ld", &u.threads) == 1) break;
    }
    std::fclose(f);
  }
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    long n = 0;
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
    u.fds = n >= 3 ? n - 3 : 0;
  }
  return u;
}

bool wait_until(const std::function<bool()>& cond, int timeout_ms = 10'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Loopback echo target for the relayed CONNECT phases.
class EchoServer {
 public:
  EchoServer() {
    auto l = net::TcpListener::bind("127.0.0.1", 0);
    WACS_CHECK(l.ok());
    listener_ = std::move(*l);
    thread_ = std::thread([this] {
      while (true) {
        auto conn = listener_.accept();
        if (!conn.ok()) return;
        auto sock = std::make_shared<net::TcpSocket>(std::move(*conn));
        workers_.emplace_back([sock] {
          while (true) {
            auto chunk = sock->read_some(1 << 16);
            if (!chunk.ok()) return;
            if (!sock->write_all(*chunk).ok()) return;
          }
        });
      }
    });
  }
  ~EchoServer() {
    listener_.shutdown();
    thread_.join();
    for (auto& w : workers_) w.join();
  }
  Contact contact() const { return Contact{"127.0.0.1", listener_.port()}; }

 private:
  net::TcpListener listener_;
  std::thread thread_;
  std::vector<std::thread> workers_;
};

int run() {
  using namespace nxproxy;
  const std::uint64_t seed = chaos_seed();
  bench::print_header(
      "nxproxy chaos soak: hostile WAN against the real relay daemons",
      "robustness hardening of the paper's engineering artifact "
      "(DESIGN.md §16)");
  bench::print_note("seed=" + std::to_string(seed) +
                    " (WACS_CHAOS_SEED overrides)");

  const ProcUsage baseline = proc_usage();

  DaemonOptions opts;
  opts.handshake_timeout_ms = 1000;
  opts.idle_timeout_ms = 0;  // goodput streams may pause; no idle eviction
  opts.max_connections = 16;
  opts.bind_lease_ms = 400;
  opts.drain_ms = 1000;
  std::optional<OuterDaemon> outer;
  outer.emplace("127.0.0.1", 0, "127.0.0.1", RelayAccessPolicy{}, opts);
  std::optional<InnerDaemon> inner;
  inner.emplace("127.0.0.1", 0, opts);
  WACS_CHECK(outer->start().ok());
  WACS_CHECK(inner->start().ok());
  std::optional<EchoServer> echo;
  echo.emplace();

  // ---- Phase A: hostile control-port clients, evicted on deadline -------
  // Two waves so the gate (16 slots) never sheds what this phase wants
  // classified: first the silent species (timeout), then the byte-mangling
  // species (malformed).
  std::printf("\n[A] hostile clients: %d slowloris, %d half-open, %d garbage, "
              "%d mid-frame resetters\n",
              kHostileEach, kHostileEach, kHostileEach, kHostileEach);
  {
    std::vector<net::TcpSocket> parked;
    for (int i = 0; i < kHostileEach; ++i) {
      // Slowloris: one header byte, then silence.
      auto s = net::TcpSocket::dial(outer->contact());
      WACS_CHECK(s.ok());
      WACS_CHECK(s->write_all(Bytes{0x01}).ok());
      parked.push_back(std::move(*s));
      // Half-open: connect, never write a byte.
      auto h = net::TcpSocket::dial(outer->contact());
      WACS_CHECK(h.ok());
      parked.push_back(std::move(*h));
    }
    WACS_CHECK_MSG(
        wait_until([&] {
          return outer->stats().hs_timeout.load() >=
                 static_cast<std::uint64_t>(2 * kHostileEach);
        }),
        "silent hostile clients were not evicted by the handshake deadline");
  }
  for (int i = 0; i < kHostileEach; ++i) {
    // Garbage: a framed payload with an invalid tag, delivered in
    // deterministic crumbs through the fault shim.
    auto g = net::TcpSocket::dial(outer->contact());
    WACS_CHECK(g.ok());
    net::fault::FaultSpec slice_spec;
    slice_spec.seed = seed;
    slice_spec.max_write_slice = 7;
    net::fault::FaultySocket garbage(std::move(*g), slice_spec, 100 + i);
    Bytes noise = pattern_bytes(64, seed + static_cast<std::uint64_t>(i));
    noise[0] = 0xFF;  // never a valid MsgType tag
    (void)garbage.write_frame(noise);
    garbage.shutdown();
    // Mid-frame reset: the length prefix arrives, then RST.
    auto r = net::TcpSocket::dial(outer->contact());
    WACS_CHECK(r.ok());
    net::fault::FaultSpec reset_spec;
    reset_spec.seed = seed;
    reset_spec.reset_after_bytes = 5;  // 4-byte prefix + 1 payload byte
    net::fault::FaultySocket resetter(std::move(*r), reset_spec, 200 + i);
    (void)resetter.write_frame(noise);
  }
  WACS_CHECK_MSG(
      wait_until([&] {
        return outer->stats().hs_malformed.load() >=
               static_cast<std::uint64_t>(2 * kHostileEach);
      }),
      "byte-mangling hostile clients were not classified as malformed");
  std::printf("    evicted: timeout=%llu malformed=%llu\n",
              static_cast<unsigned long long>(outer->stats().hs_timeout.load()),
              static_cast<unsigned long long>(
                  outer->stats().hs_malformed.load()));

  // ---- Phase B: EMFILE storm on accept ---------------------------------
  std::printf("[B] injected EMFILE storm on the control accept loop\n");
  {
    net::fault::ScopedAcceptFaults faults(outer->contact().port, EMFILE,
                                          kEmfileBurst);
    // The accept loop is already blocked inside accept(), so this first
    // connection is served un-injected; the burst hits the next accepts.
    auto first = NXProxyConnect(outer->contact(), echo->contact());
    WACS_CHECK_MSG(first.ok(), "connect during EMFILE storm failed: " +
                                   first.error().to_string());
    WACS_CHECK_MSG(
        wait_until([&] {
          return outer->stats().accept_retries.load() >=
                 static_cast<std::uint64_t>(kEmfileBurst);
        }),
        "accept loop did not retry the injected EMFILEs");
    WACS_CHECK(first->write_all(to_bytes("storm")).ok());
    auto back = first->read_exact(5);
    WACS_CHECK(back.ok() && to_string(*back) == "storm");
  }
  {
    auto sock = NXProxyConnect(outer->contact(), echo->contact());
    WACS_CHECK_MSG(sock.ok(), "accept loop dead after EMFILE storm");
    WACS_CHECK(sock->write_all(to_bytes("alive")).ok());
    auto back = sock->read_exact(5);
    WACS_CHECK(back.ok() && to_string(*back) == "alive");
  }
  wait_until([&] {
    return outer->stats().sessions_opened.load() ==
           outer->stats().sessions_closed.load();
  });

  // ---- Phase C: admission-gate overload burst --------------------------
  std::printf("[C] overload burst against max_connections=%d\n",
              opts.max_connections);
  {
    const std::uint64_t conns_before = outer->stats().connections.load();
    std::vector<net::TcpSocket> parked;
    for (int i = 0; i < opts.max_connections; ++i) {
      auto s = net::TcpSocket::dial(outer->contact());
      WACS_CHECK(s.ok());
      parked.push_back(std::move(*s));
    }
    // The accept loop bumps `connections` before the next accept, so once
    // the counter covers every parked dial the gate is provably full.
    WACS_CHECK_MSG(
        wait_until([&] {
          return outer->stats().connections.load() >=
                 conns_before +
                     static_cast<std::uint64_t>(opts.max_connections);
        }),
        "parked connections were not all accepted");
    ClientOptions one_shot;
    one_shot.retry.max_attempts = 1;
    int shed_seen = 0;
    for (int i = 0; i < kShedProbes; ++i) {
      auto probe = NXProxyConnect(outer->contact(), echo->contact(), one_shot);
      if (!probe.ok() && probe.error().code() == ErrorCode::kUnavailable) {
        ++shed_seen;
      }
    }
    WACS_CHECK_MSG(shed_seen >= kShedProbes / 2,
                   "overload burst was not shed with Busy");
    WACS_CHECK(outer->stats().shed_connections.load() >=
               static_cast<std::uint64_t>(shed_seen));
    std::printf("    shed %d/%d probes (counter=%llu)\n", shed_seen,
                kShedProbes,
                static_cast<unsigned long long>(
                    outer->stats().shed_connections.load()));
    parked.clear();  // free the gate; the parked handshakes die on EOF
    WACS_CHECK_MSG(wait_until([&] {
                     auto again = NXProxyConnect(outer->contact(),
                                                 echo->contact(), one_shot);
                     return again.ok();
                   }),
                   "gate did not recover after the overload burst drained");
  }
  wait_until([&] {
    return outer->stats().sessions_opened.load() ==
           outer->stats().sessions_closed.load();
  });

  // ---- Phase D: bind-lease lifecycle -----------------------------------
  std::printf("[D] bind lease: grant, renew, lapse, reap\n");
  {
    ClientOptions one_shot;
    one_shot.retry.max_attempts = 1;
    auto bound = NXProxyBind(outer->contact(), inner->contact());
    WACS_CHECK_MSG(bound.ok(), bound.error().to_string());
    WACS_CHECK(bound->lease_ms ==
               static_cast<std::uint32_t>(opts.bind_lease_ms));
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      auto renewed = NXProxyRenewBind(outer->contact(), bound->bind_id);
      WACS_CHECK_MSG(renewed.ok(),
                     "renewal failed: " + renewed.error().to_string());
      WACS_CHECK_MSG(outer->active_binds() == 1,
                     "binding reaped despite timely renewals");
    }
    // Stop renewing: the sweeper must reap it, listener and all.
    WACS_CHECK_MSG(wait_until([&] { return outer->active_binds() == 0; }),
                   "expired lease was not reaped");
    WACS_CHECK(outer->stats().leases_expired.load() >= 1);
    auto late = NXProxyRenewBind(outer->contact(), bound->bind_id, one_shot);
    WACS_CHECK_MSG(!late.ok(), "renewing a lapsed lease must fail");
    bound->listener.shutdown();
  }

  // ---- Phase E: goodput integrity through the bind path ----------------
  std::printf("[E] goodput: %d streams x %zu KiB through outer+inner, "
              "sliced writers\n",
              kStreams, kStreamBytes / 1024);
  {
    ClientOptions one_shot;
    one_shot.retry.max_attempts = 1;
    auto bound = NXProxyBind(outer->contact(), inner->contact());
    WACS_CHECK_MSG(bound.ok(), bound.error().to_string());
    // Keep the lease alive until every stream is established; established
    // splices survive the later reap by design.
    std::atomic<bool> stop_renewing{false};
    std::thread renewer([&] {
      while (!stop_renewing.load()) {
        (void)NXProxyRenewBind(outer->contact(), bound->bind_id, one_shot);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
    });
    std::vector<std::thread> echoers;
    std::thread acceptor([&] {
      for (int i = 0; i < kStreams; ++i) {
        auto acc = NXProxyAccept(*bound);
        if (!acc.ok()) return;
        auto sock = std::make_shared<net::TcpSocket>(std::move(acc->first));
        echoers.emplace_back([sock] {
          while (true) {
            auto chunk = sock->read_some(1 << 16);
            if (!chunk.ok()) return;
            if (!sock->write_all(*chunk).ok()) return;
          }
        });
      }
    });
    std::atomic<int> intact{0};
    std::vector<std::thread> remotes;
    for (int i = 0; i < kStreams; ++i) {
      remotes.emplace_back([&, i] {
        auto conn = net::TcpSocket::dial(bound->public_contact);
        if (!conn.ok()) return;
        net::fault::FaultSpec spec;
        spec.seed = seed;
        spec.max_write_slice = 1500;  // MTU-ish crumbs
        net::fault::FaultySocket faulty(std::move(*conn), spec,
                                        300 + static_cast<std::uint64_t>(i));
        const Bytes payload = pattern_bytes(
            kStreamBytes, seed + 1000 + static_cast<std::uint64_t>(i));
        std::thread writer([&] { (void)faulty.write_all(payload); });
        auto echoed = faulty.raw().read_exact(kStreamBytes);
        writer.join();
        if (echoed.ok() && fnv1a(*echoed) == fnv1a(payload)) ++intact;
        faulty.shutdown();
      });
    }
    for (auto& t : remotes) t.join();
    acceptor.join();
    stop_renewing.store(true);
    renewer.join();
    for (auto& t : echoers) t.join();
    bound->listener.shutdown();
    WACS_CHECK_MSG(intact.load() == kStreams,
                   "payload corrupted through the relay under sliced writes");
    std::printf("    %d/%d streams byte-identical\n", intact.load(), kStreams);
    WACS_CHECK_MSG(wait_until([&] { return outer->active_binds() == 0; }),
                   "goodput binding was not reaped after its lease lapsed");
  }

  // ---- Phase F: drain, stop, leak gates --------------------------------
  std::printf("[F] drain, stop, leak gates\n");
  WACS_CHECK(wait_until([&] {
    return outer->stats().sessions_opened.load() ==
               outer->stats().sessions_closed.load() &&
           inner->stats().sessions_opened.load() ==
               inner->stats().sessions_closed.load();
  }));
  outer->stop();
  inner->stop();

  struct StatsSnap {
    std::uint64_t connections, handshake_failures, hs_policy_denied,
        hs_malformed, hs_dial_failed, hs_timeout, sessions_opened,
        sessions_closed, shed_connections, accept_retries, idle_evictions,
        leases_granted, leases_renewed, leases_expired, bytes_relayed;
  };
  const auto snap = [](const DaemonStats& s) {
    return StatsSnap{s.connections.load(),
                     s.handshake_failures.load(),
                     s.hs_policy_denied.load(),
                     s.hs_malformed.load(),
                     s.hs_dial_failed.load(),
                     s.hs_timeout.load(),
                     s.sessions_opened.load(),
                     s.sessions_closed.load(),
                     s.shed_connections.load(),
                     s.accept_retries.load(),
                     s.idle_evictions.load(),
                     s.leases_granted.load(),
                     s.leases_renewed.load(),
                     s.leases_expired.load(),
                     s.bytes_relayed.load()};
  };
  const StatsSnap os = snap(outer->stats());
  const StatsSnap is = snap(inner->stats());
  const std::uint64_t leaked_binds = outer->active_binds();
  // Destroy the daemons and the echo server before the leak gates: stop()
  // parks the listener fds but their close happens in the destructors, and
  // the gates compare against the pre-daemon baseline.
  echo.reset();
  inner.reset();
  outer.reset();

  WACS_CHECK_MSG(os.handshake_failures == os.hs_policy_denied +
                                              os.hs_malformed +
                                              os.hs_dial_failed + os.hs_timeout,
                 "outer handshake-failure kinds do not sum to the total");
  WACS_CHECK_MSG(is.handshake_failures == is.hs_policy_denied +
                                              is.hs_malformed +
                                              is.hs_dial_failed + is.hs_timeout,
                 "inner handshake-failure kinds do not sum to the total");
  WACS_CHECK_MSG(os.sessions_opened == os.sessions_closed,
                 "outer leaked sessions");
  WACS_CHECK_MSG(is.sessions_opened == is.sessions_closed,
                 "inner leaked sessions");
  WACS_CHECK_MSG(leaked_binds == 0, "outer leaked bindings");
  WACS_CHECK_MSG(
      wait_until([&] { return proc_usage().threads <= baseline.threads; }),
      "leaked threads after stop");
  WACS_CHECK_MSG(wait_until([&] { return proc_usage().fds <= baseline.fds; }),
                 "leaked fds after stop");
  const ProcUsage final_usage = proc_usage();
  std::printf("    threads %ld -> %ld, fds %ld -> %ld (baseline -> final)\n",
              baseline.threads, final_usage.threads, baseline.fds,
              final_usage.fds);

  // ---- Report ----------------------------------------------------------
  bench::Report report("nxproxy_chaos");
  report.set("seed", seed);
  json::Value counters = json::Value::object();
  counters.set("outer_connections", os.connections);
  counters.set("outer_hs_timeout", os.hs_timeout);
  counters.set("outer_hs_malformed", os.hs_malformed);
  counters.set("outer_hs_dial_failed", os.hs_dial_failed);
  counters.set("outer_hs_policy_denied", os.hs_policy_denied);
  counters.set("outer_shed_connections", os.shed_connections);
  counters.set("outer_accept_retries", os.accept_retries);
  counters.set("outer_idle_evictions", os.idle_evictions);
  counters.set("outer_leases_granted", os.leases_granted);
  counters.set("outer_leases_renewed", os.leases_renewed);
  counters.set("outer_leases_expired", os.leases_expired);
  counters.set("outer_bytes_relayed", os.bytes_relayed);
  counters.set("inner_bytes_relayed", is.bytes_relayed);
  report.set("counters", std::move(counters));
  json::Value gates = json::Value::object();
  gates.set("sessions_balanced", true);
  gates.set("bindings_reaped", true);
  gates.set("threads_leaked",
            static_cast<std::int64_t>(final_usage.threads - baseline.threads));
  gates.set("fds_leaked",
            static_cast<std::int64_t>(final_usage.fds - baseline.fds));
  gates.set("streams_intact", kStreams);
  report.set("gates", std::move(gates));
  auto path = report.write();
  if (path.ok()) {
    std::printf("\nbench report: %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "bench report failed: %s\n",
                 path.error().to_string().c_str());
  }
  std::printf("\nCHAOS SOAK PASS\n");
  return 0;
}

}  // namespace
}  // namespace wacs

int main() { return wacs::run(); }
