// Table 6 — number of traversed nodes per host group (master column plus
// max/min/average over the slaves of each system), Local-area and Wide-area
// clusters.
//
// The paper reports billions of nodes (50-item instance); this bench
// reports raw node counts for the scaled instance plus each group's share,
// the scale-free quantity. Shape target: "we obtained good load balance and
// reasonable performance even in a Wide-area Cluster System" — node shares
// track each group's aggregate CPU capacity.
#include <cmath>
#include <cstdlib>
#include <map>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"

namespace wacs {
namespace {

knapsack::RunStats run_system(std::vector<rmf::Placement> placements, int n) {
  auto tb = core::make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  rmf::JobSpec spec;
  spec.name = "table6";
  spec.task = knapsack::kParallelTask;
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = std::move(placements);
  // Finer steal granularity than the auto default: the paper's regime is
  // "slaves frequently send a steal request to the master" (fine grain,
  // good balance, more communication).
  const double keep = std::exp2(n + 1) / (32.0 * spec.nprocs);
  char keepbuf[32];
  std::snprintf(keepbuf, sizeof keepbuf, "%.0f", keep);
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kKeepOps, keepbuf},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok() && result->ok, "table6 run failed");
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  return *stats;
}

std::string group_of(const std::string& host) {
  if (host.rfind("compas", 0) == 0) return "COMPaS";
  if (host == "etl-o2k") return "ETL-O2K";
  return "RWCP-Sun";
}

void print_rows(const char* system, const knapsack::RunStats& stats,
                TextTable& table) {
  std::uint64_t master_nodes = 0;
  std::map<std::string, RunningStats> groups;
  std::map<std::string, std::uint64_t> group_total;
  for (const auto& r : stats.ranks) {
    if (r.rank == 0) {
      master_nodes = r.nodes_traversed;
      continue;
    }
    groups[group_of(r.host)].add(static_cast<double>(r.nodes_traversed));
    group_total[group_of(r.host)] += r.nodes_traversed;
  }
  bool first = true;
  for (const auto& [group, s] : groups) {
    char maxbuf[32], minbuf[32], avgbuf[32], sharebuf[32];
    std::snprintf(maxbuf, sizeof maxbuf, "%.0f", s.max());
    std::snprintf(minbuf, sizeof minbuf, "%.0f", s.min());
    std::snprintf(avgbuf, sizeof avgbuf, "%.0f", s.mean());
    std::snprintf(sharebuf, sizeof sharebuf, "%.1f%%",
                  100.0 * static_cast<double>(group_total[group]) /
                      static_cast<double>(stats.total_nodes));
    table.add_row({first ? system : "", group,
                   first ? format_count(master_nodes) : "", maxbuf, minbuf,
                   avgbuf, sharebuf});
    first = false;
  }
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(26);
  bench::print_header("Table 6: number of traversed nodes",
                      "Tanaka et al., HPDC 2000, Table 6");
  std::printf("instance: %d items -> %s total nodes "
              "(paper: 50 items, billions of nodes)\n",
              n, format_count(knapsack::full_tree_nodes(n)).c_str());

  bench::maybe_enable_tracing();
  auto tb = core::make_rwcp_etl_testbed();
  auto local = run_system(core::placement_local_area(tb), n);
  auto wide = run_system(core::placement_wide_area(tb), n);

  TextTable table(
      {"system", "group", "master", "max", "min", "avg", "group share"});
  print_rows("Local-area Cluster", local, table);
  print_rows("Wide-area Cluster", wide, table);
  std::printf("%s", table.to_string().c_str());

  // Capacity-tracking shape check for the wide-area run: each group's node
  // share should track its share of aggregate CPU capacity.
  const double cap_rwcp = 3 * core::calib::kSpeedSun;  // 3 slaves (rank0 = master)
  const double cap_compas = 8 * core::calib::kSpeedCompas;
  const double cap_o2k = 8 * core::calib::kSpeedO2k;
  const double cap_total = cap_rwcp + cap_compas + cap_o2k;
  std::printf("\nshape checks (wide-area, slaves only):\n");
  std::printf("  capacity shares: RWCP-Sun %.0f%%  COMPaS %.0f%%  ETL-O2K %.0f%%\n",
              100 * cap_rwcp / cap_total, 100 * cap_compas / cap_total,
              100 * cap_o2k / cap_total);
  std::printf("  (compare against the group-share column above: good load\n"
              "   balance = shares track capacity, as the paper concludes)\n");

  bench::Report report("table6");
  report.set("instance_items", n);
  auto row_of = [](const char* system, const knapsack::RunStats& s) {
    json::Value r = json::Value::object();
    r.set("system", system);
    r.set("total_nodes", s.total_nodes);
    r.set("app_seconds", s.app_seconds);
    return r;
  };
  report.add_row(row_of("local-area", local));
  report.add_row(row_of("wide-area", wide));
  bench::finish_report(report, "table6");
  return 0;
}
