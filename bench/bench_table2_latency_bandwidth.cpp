// Table 2 — communication latency and bandwidth, direct vs. via the Nexus
// Proxy, on the LAN pair (RWCP-Sun <-> COMPaS) and the WAN pair
// (RWCP-Sun <-> ETL-Sun).
//
// Methodology (matching what a Nexus-level microbenchmark could do in 2000):
//  - latency   = average round-trip time of a 1-byte ping-pong, divided by
//                two. Nexus links are unidirectional, so the ping and the
//                pong travel different connections — through the proxy the
//                two directions traverse different relay chains, which is
//                why proxied LAN and WAN latencies are both ~25 ms.
//  - bandwidth = synchronous per-message transfer: send `size` bytes, wait
//                for a 1-byte ack, repeat; bytes / elapsed.
//
// Direct rows run with the firewall temporarily opened, exactly as the
// paper did ("we have temporarily changed the configuration of the
// firewall to enable direct communication").
#include "bench_util.hpp"
#include "core/netperf.hpp"
#include "core/testbeds.hpp"

namespace wacs {
namespace {

struct Measurement {
  double latency_ms = 0;
  double bw_4k = 0;  // bytes/sec
  double bw_1m = 0;
};

Measurement measure(bool proxied, const std::string& a, const std::string& b) {
  core::TestbedOptions options;
  options.rwcp_uses_proxy = proxied;
  options.open_rwcp_firewall = !proxied;
  auto tb = core::make_rwcp_etl_testbed(options);
  core::NetPerfOptions perf;
  perf.message_sizes = {4096, 1000000};
  auto r = core::measure_path(*tb, a, b, perf);
  return Measurement{r.latency_ms, r.bandwidth_bps[0], r.bandwidth_bps[1]};
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  bench::print_header(
      "Table 2: communication latency and bandwidth",
      "Tanaka et al., HPDC 2000, Table 2 (+ Figure 5 topology)");
  bench::maybe_enable_tracing();

  struct Row {
    const char* label;
    bool proxied;
    const char* a;
    const char* b;
    const char* paper_latency;
    const char* paper_bw4k;
    const char* paper_bw1m;
  };
  const Row rows[] = {
      {"RWCP-Sun <-> COMPaS  (direct)", false, "rwcp-sun", "compas01",
       "0.41 ms", "3.29 MB/s", "6.32 MB/s"},
      {"RWCP-Sun <-> COMPaS  (Nexus Proxy)", true, "rwcp-sun", "compas01",
       "25.0 ms", "70.5 KB/s", "(order of magnitude below direct)"},
      {"RWCP-Sun <-> ETL-Sun (direct)", false, "rwcp-sun", "etl-sun",
       "3.9 ms", "(n/a in scan)", "(link-bound)"},
      {"RWCP-Sun <-> ETL-Sun (Nexus Proxy)", true, "rwcp-sun", "etl-sun",
       "25.1 ms", "(n/a in scan)", "(close to direct)"},
  };

  TextTable table({"path", "latency", "bw @4KB", "bw @1MB", "paper latency",
                   "paper @4KB", "paper @1MB"});
  bench::Report report("table2");
  Measurement results[4];
  int i = 0;
  for (const Row& row : rows) {
    Measurement m = measure(row.proxied, row.a, row.b);
    results[i++] = m;
    table.add_row({row.label, format_duration_ms(m.latency_ms),
                   format_bandwidth(m.bw_4k), format_bandwidth(m.bw_1m),
                   row.paper_latency, row.paper_bw4k, row.paper_bw1m});
    json::Value r = json::Value::object();
    r.set("path", row.label);
    r.set("proxied", row.proxied);
    r.set("latency_ms", m.latency_ms);
    r.set("bw_4k_bps", m.bw_4k);
    r.set("bw_1m_bps", m.bw_1m);
    report.add_row(std::move(r));
  }
  std::printf("%s", table.to_string().c_str());
  report.set("proxied_direct_lan_latency_ratio",
             results[1].latency_ms / results[0].latency_ms);
  report.set("proxied_direct_wan_latency_ratio",
             results[3].latency_ms / results[2].latency_ms);
  bench::finish_report(report, "table2");

  // Shape checks the paper states in prose.
  const double lan_ratio = results[1].latency_ms / results[0].latency_ms;
  const double wan_ratio = results[3].latency_ms / results[2].latency_ms;
  const double wan_bw_ratio = results[3].bw_1m / results[2].bw_1m;
  std::printf("\nshape checks:\n");
  std::printf("  proxied/direct LAN latency : %5.1fx   (paper: ~60x)\n",
              lan_ratio);
  std::printf("  proxied/direct WAN latency : %5.1fx   (paper: ~6x, \"approximately six times larger\")\n",
              wan_ratio);
  std::printf("  proxied LAN 1MB bandwidth  : %5.1fx below direct (paper: order of magnitude)\n",
              results[0].bw_1m / results[1].bw_1m);
  std::printf("  proxied WAN 1MB bandwidth  : %4.0f%% of direct (paper: \"can be negligible\")\n",
              wan_bw_ratio * 100.0);
  return 0;
}
