// Multi-tenant scheduler at scale — 10,000 users submitting 100 jobs each
// against a 50-site wide-area testbed (DESIGN.md §17), with mid-run host
// crashes of three site runners and of the scheduler itself.
//
// The paper's RMF serves one job at a time; this bench loads the
// scheduling subsystem that makes it a multi-tenant service: MDS-backed
// matching over TTL'd site registrations, per-user fair-share with EASY
// backfill, batched dispatch over runner-dialed connections (leaf sites
// keep zero inbound holes), and admission control that sheds over-cap
// submissions with a retryable Busy verdict instead of wedging.
//
// Drivers model real submitters: a small pool of client processes on the
// hub's DMZ driver host, each walking its share of the user population and
// submitting one SchedSubmit batch per user, honouring Busy{retry_after_ms}
// with the suggested backoff and retrying on connections the fault
// injector resets. The global admission cap is sized at total_jobs/10 so
// the shed/retry path is exercised at every scale, not just the default.
//
// Reported: virtual makespan and dispatch throughput, queue-wait quantiles
// (gated: p99 must stay under 3x the worst-case admitted backlog), shed /
// requeue / backfill / replay counters, and the exactly-once evidence
// (dup completions absorbed, completed + failed == accepted). A reduced
// configuration then runs twice under the same seed and must reproduce
// its counter digest exactly — crashes, replays, and retries included.
//
// Scale knobs: WACS_SCHED_USERS, WACS_SCHED_JOBS (per user),
// WACS_SCHED_SITES (4 hosts x 8 CPUs each). CI's baseline runs the smoke
// scale (see bench/baselines/README.md).
#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "sched/scheduler.hpp"
#include "simnet/fault.hpp"
#include "simnet/time.hpp"

namespace wacs {
namespace {

constexpr std::uint64_t kSeed = 20001107;  // HPDC 2000 vintage
constexpr int kDrivers = 12;  ///< client processes sharing the user walk
constexpr int kHostsPerSite = 4;
constexpr int kCpusPerHost = 8;

int env_int(const char* name, int fallback, int lo, int hi) {
  if (const char* env = std::getenv(name)) {
    const int n = std::atoi(env);
    if (n >= lo && n <= hi) return n;
  }
  return fallback;
}

struct Scale {
  int users = 10000;
  int jobs = 100;  ///< per user
  int sites = 50;
  int total_jobs() const { return users * jobs; }
  int capacity_cpus() const { return sites * kHostsPerSite * kCpusPerHost; }
};

/// Deterministic per-job shape: mostly single-CPU, a quarter-ish of the
/// CPU demand in 2- and 8-wide jobs (the backfill fodder), runtime
/// estimates spread over [1s, 4s) — long against the 0.25s pass and 0.2s
/// completion-flush cadences, so quantization idle stays a small tax.
struct JobShape {
  int nprocs = 1;
  double est_s = 2.5;
};
JobShape job_shape(int u, int j) {
  JobShape s;
  if (j % 32 == 7) {
    s.nprocs = 8;
  } else if (j % 8 == 3) {
    s.nprocs = 2;
  }
  s.est_s = 1.0 + 3.0 * static_cast<double>((u * 131 + j * 17) % 100) / 100.0;
  return s;
}

double total_cpu_seconds(const Scale& sc) {
  double total = 0;
  for (int u = 0; u < sc.users; ++u) {
    for (int j = 0; j < sc.jobs; ++j) {
      const JobShape s = job_shape(u, j);
      total += s.nprocs * s.est_s;
    }
  }
  return total;
}

/// Everything the determinism gate compares (queue-wait quantiles live in
/// the process-global registry, which later runs keep appending to, so
/// they are read once after the headline run and stay out of the digest).
struct RunResult {
  double makespan_s = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t admission_shed = 0;
  std::uint64_t runner_shed = 0;
  std::uint64_t requeued = 0;
  std::uint64_t backfilled = 0;
  std::uint64_t dispatch_batches = 0;
  std::uint64_t dup_completions = 0;
  std::uint64_t batches_resent = 0;
  std::uint64_t journal_replays = 0;
  std::uint64_t mds_refreshes = 0;
  std::int64_t top_share_bp = 0;
  std::uint64_t busy_rounds = 0;   ///< driver-side Busy backoff sleeps
  std::uint64_t conn_retries = 0;  ///< driver reconnects after a reset
  double submit_window_s = 0;      ///< first submit -> last batch accepted

  bool digest_equals(const RunResult& o) const {
    return makespan_s == o.makespan_s && accepted == o.accepted &&
           completed == o.completed && failed == o.failed &&
           admission_shed == o.admission_shed &&
           runner_shed == o.runner_shed && requeued == o.requeued &&
           backfilled == o.backfilled &&
           dispatch_batches == o.dispatch_batches &&
           dup_completions == o.dup_completions &&
           batches_resent == o.batches_resent &&
           journal_replays == o.journal_replays &&
           top_share_bp == o.top_share_bp && busy_rounds == o.busy_rounds &&
           conn_retries == o.conn_retries &&
           submit_window_s == o.submit_window_s;
  }
};

RunResult run_scale(const Scale& sc, bool faults, double est_makespan_s) {
  core::SchedTestbedOptions opts;
  opts.sites = sc.sites;
  opts.hosts_per_site = kHostsPerSite;
  opts.cpus_per_host = kCpusPerHost;
  opts.fault_seed = kSeed;
  // total_jobs/10 keeps the global cap binding at every scale; the
  // snapshot cadence scales with the job count so compaction cost stays
  // proportional (each snapshot encodes the whole pending queue).
  opts.sched.max_pending_total = std::max<std::size_t>(
      2000, static_cast<std::size_t>(sc.total_jobs()) / 10);
  opts.sched.snapshot_every = std::max<std::size_t>(
      2048, static_cast<std::size_t>(sc.total_jobs()) / 5);
  // Jobs stranded by a runner-host crash are requeued by the deadline
  // sweep; the default 30s grace would dominate small-scale makespans.
  opts.sched.dispatch_grace_s = 10;

  core::SchedTestbed tb = core::make_sched_scale_testbed(opts);
  sim::Engine& engine = *tb.engine;
  sim::Network& net = *tb.net;

  if (faults) {
    // Three leaf runners go down back to back around 30% of the estimated
    // makespan (their running jobs are lost and must requeue); the
    // scheduler host itself dies at 55% and replays its journal. All
    // hosts return 2s later, the paper benches' restart latency.
    for (int s = 1; s <= 3; ++s) {
      const double t = est_makespan_s * (0.25 + 0.05 * s);
      tb.fault->plan_host_crash(core::SchedTestbed::runner_host(s),
                                sim::from_sec(t));
      tb.fault->plan_host_restart(core::SchedTestbed::runner_host(s),
                                  sim::from_sec(t + 2.0));
    }
    const double t_sched = est_makespan_s * 0.55;
    tb.fault->plan_host_crash("hub-sched", sim::from_sec(t_sched));
    tb.fault->plan_host_restart("hub-sched", sim::from_sec(t_sched + 2.0));
  }

  RunResult out;
  const Contact target = tb.scheduler->contact();
  for (int d = 0; d < kDrivers; ++d) {
    engine.spawn("driver" + std::to_string(d), [&, d](sim::Process& self) {
      // One persistent connection per driver (like the runners): every
      // server-side handler is an engine process, so per-round dials
      // would spawn tens of thousands of them at full scale. Re-dial
      // only when the fault injector resets the connection.
      sim::SocketPtr conn;
      for (int u = d; u < sc.users; u += kDrivers) {
        const std::string tenant = "user" + std::to_string(u);
        std::vector<rmf::SchedJob> batch;
        for (int j = 0; j < sc.jobs; ++j) {
          const JobShape s = job_shape(u, j);
          batch.push_back(rmf::SchedJob{static_cast<std::uint64_t>(j + 1),
                                        "task", s.nprocs, s.est_s});
        }
        while (!batch.empty()) {
          if (conn == nullptr) {
            auto dial = net.host(tb.driver_host).stack().connect(self, target);
            if (!dial.ok()) {  // scheduler host down: try again shortly
              ++out.conn_retries;
              self.sleep(1.0);
              continue;
            }
            conn = *dial;
          }
          if (!conn->send(rmf::SchedSubmit{tenant, batch}.encode()).ok()) {
            conn = nullptr;
            ++out.conn_retries;
            self.sleep(1.0);
            continue;
          }
          auto frame = conn->recv(self);
          if (!frame.ok()) {  // reset mid-reply (crash landed on us)
            conn = nullptr;
            ++out.conn_retries;
            self.sleep(1.0);
            continue;
          }
          auto reply = rmf::SchedSubmitReply::decode(*frame);
          WACS_CHECK_MSG(reply.ok(), "bad submit reply frame");
          WACS_CHECK_MSG(reply->verdicts.size() == batch.size(),
                         "verdict count mismatch");
          std::vector<rmf::SchedJob> busy;
          std::uint32_t backoff_ms = 0;
          for (std::size_t i = 0; i < reply->verdicts.size(); ++i) {
            const rmf::SchedVerdict& v = reply->verdicts[i];
            if (v.code == rmf::SchedVerdict::Code::kBusy) {
              busy.push_back(batch[i]);
              backoff_ms = std::max(backoff_ms, v.retry_after_ms);
            } else {
              WACS_CHECK_MSG(v.code == rmf::SchedVerdict::Code::kAccepted,
                             "unexpected error verdict: " + v.error);
            }
          }
          batch = std::move(busy);
          if (!batch.empty()) {
            ++out.busy_rounds;
            WACS_CHECK_MSG(backoff_ms > 0, "Busy verdict without a hint");
            self.sleep(backoff_ms / 1000.0);
          }
        }
        out.submit_window_s =
            std::max(out.submit_window_s, sim::to_sec(engine.now()));
      }
    });
  }

  engine.run();

  // Makespan = last job reaching a final state; engine.now() would also
  // count the idle tail of daemon TTL timers draining.
  out.makespan_s = sim::to_sec(tb.scheduler->last_done());
  const sched::Scheduler& s = *tb.scheduler;
  out.accepted = s.jobs_accepted();
  out.completed = s.jobs_completed();
  out.failed = s.jobs_failed();
  out.admission_shed = s.jobs_shed();
  out.requeued = s.jobs_requeued();
  out.backfilled = s.jobs_backfilled();
  out.dispatch_batches = s.dispatch_batches();
  out.dup_completions = s.dup_completions();
  out.journal_replays = s.journal_replays();
  out.mds_refreshes = s.mds_refreshes();
  out.top_share_bp = s.top_share_bp();
  for (const auto& r : tb.runners) {
    out.runner_shed += r->jobs_shed();
    out.batches_resent += r->batches_resent();
  }

  // Quiesce + conservation: every admitted job was completed or failed,
  // exactly once, and nothing is still queued or in flight.
  WACS_CHECK_MSG(s.pending_jobs() == 0 && s.inflight_jobs() == 0,
                 "run ended with work still queued");
  WACS_CHECK_MSG(out.completed + out.failed == out.accepted,
                 "admitted jobs leaked");
  WACS_CHECK_MSG(out.completed >= static_cast<std::uint64_t>(sc.total_jobs()),
                 "some submitted jobs never completed");
  return out;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  Scale sc;
  sc.users = env_int("WACS_SCHED_USERS", sc.users, 1, 1000000);
  sc.jobs = env_int("WACS_SCHED_JOBS", sc.jobs, 1, 10000);
  sc.sites = env_int("WACS_SCHED_SITES", sc.sites, 4, 500);

  bench::print_header(
      "Multi-tenant scheduler at scale: fair-share + backfill under faults",
      "multi-tenant extension of Tanaka et al., HPDC 2000 (DESIGN.md §17)");

  const double cpu_seconds = total_cpu_seconds(sc);
  const double est_makespan = cpu_seconds / sc.capacity_cpus();
  std::printf("%s users x %d jobs = %s jobs over %d sites (%s CPUs); "
              "%.0f CPU-seconds of demand, ~%.0fs ideal makespan; seed %llu\n"
              "(set WACS_SCHED_USERS / WACS_SCHED_JOBS / WACS_SCHED_SITES "
              "to change scale)\n",
              format_count(static_cast<std::uint64_t>(sc.users)).c_str(),
              sc.jobs,
              format_count(static_cast<std::uint64_t>(sc.total_jobs())).c_str(),
              sc.sites,
              format_count(static_cast<std::uint64_t>(sc.capacity_cpus()))
                  .c_str(),
              cpu_seconds, est_makespan,
              static_cast<unsigned long long>(kSeed));

  bench::maybe_enable_tracing();

  // Headline run: full scale, crashes active (WACS_SCHED_FAULTS=0 for a
  // fault-free comparison run when debugging).
  const bool faults = env_int("WACS_SCHED_FAULTS", 1, 0, 1) == 1;
  const RunResult main_run = run_scale(sc, faults, est_makespan);

  // Queue-wait quantiles, read before the determinism runs append to the
  // process-global histogram.
  const auto wait = telemetry::metrics()
                        .histogram("sched.queue_wait_ms")
                        .snapshot();
  const double p50_ms = wait.quantile(0.50);
  const double p99_ms = wait.quantile(0.99);
  // Fair-share makes the wait distribution bimodal by design: fresh
  // tenants jump the backlog (p50 stays near the pass cadence) while the
  // first-admitted tenants' tail jobs legitimately wait out most of the
  // submission window. The pathology gates are therefore relative to the
  // ideal makespan: starvation or a capacity leak would blow both.
  const double p99_bound_ms = 1.5 * est_makespan * 1000.0 + 30000.0;

  const double throughput = main_run.completed / main_run.makespan_s;
  std::printf("\nmakespan %.1fs virtual (%.2fx ideal), %s dispatches/s; "
              "p50/p99 queue wait %s / %s (bound %s)\n",
              main_run.makespan_s, main_run.makespan_s / est_makespan,
              format_count(static_cast<std::uint64_t>(throughput)).c_str(),
              format_duration_ms(p50_ms).c_str(),
              format_duration_ms(p99_ms).c_str(),
              format_duration_ms(p99_bound_ms).c_str());
  WACS_CHECK_MSG(p99_ms < p99_bound_ms, "p99 queue wait exceeded its bound");
  WACS_CHECK_MSG(main_run.makespan_s < 2.0 * est_makespan + 30.0,
                 "makespan blew past the capacity bound");

  // Determinism: a reduced configuration, same seed, same crash schedule,
  // twice — the counter digest (retries and replays included) must match.
  Scale det;
  det.users = std::min(sc.users, 400);
  det.jobs = std::min(sc.jobs, 20);
  det.sites = std::min(sc.sites, 10);
  const double det_est = total_cpu_seconds(det) / det.capacity_cpus();
  const RunResult det_a = run_scale(det, /*faults=*/true, det_est);
  const RunResult det_b = run_scale(det, /*faults=*/true, det_est);
  WACS_CHECK_MSG(det_a.digest_equals(det_b),
                 "same-seed replay diverged: the scheduler is not "
                 "deterministic under this fault schedule");
  std::printf("determinism: reduced run (%d users x %d jobs, faults on) "
              "replayed identically (makespan %.6fs, %llu requeues, "
              "%llu replays)\n",
              det.users, det.jobs, det_a.makespan_s,
              static_cast<unsigned long long>(det_a.requeued),
              static_cast<unsigned long long>(det_a.journal_replays));

  TextTable table({"run", "jobs", "makespan", "dispatch/s", "shed (adm/run)",
                   "busy rounds", "requeued", "backfilled", "replays",
                   "dup compl"});
  auto add = [&](const char* name, const Scale& s, const RunResult& r) {
    table.add_row(
        {name, format_count(static_cast<std::uint64_t>(s.total_jobs())),
         format_duration_ms(r.makespan_s * 1e3),
         format_count(static_cast<std::uint64_t>(r.completed / r.makespan_s)),
         std::to_string(r.admission_shed) + "/" +
             std::to_string(r.runner_shed),
         std::to_string(r.busy_rounds), std::to_string(r.requeued),
         std::to_string(r.backfilled), std::to_string(r.journal_replays),
         std::to_string(r.dup_completions)});
  };
  add("full scale + faults", sc, main_run);
  add("determinism pair", det, det_a);
  std::printf("%s", table.to_string().c_str());

  std::printf("\nshape checks:\n");
  std::printf("  completed + failed == accepted (%llu + %llu == %llu) — "
              "every admitted job accounted exactly once\n",
              static_cast<unsigned long long>(main_run.completed),
              static_cast<unsigned long long>(main_run.failed),
              static_cast<unsigned long long>(main_run.accepted));
  std::printf("  %llu Busy rounds and %llu admission sheds — over-cap "
              "submitters backed off instead of wedging the queue\n",
              static_cast<unsigned long long>(main_run.busy_rounds),
              static_cast<unsigned long long>(main_run.admission_shed));
  std::printf("  %llu journal replays, %llu requeues, %llu duplicate "
              "completions absorbed — crashes were survived losslessly\n",
              static_cast<unsigned long long>(main_run.journal_replays),
              static_cast<unsigned long long>(main_run.requeued),
              static_cast<unsigned long long>(main_run.dup_completions));

  bench::Report report("sched_scale");
  report.set("seed", kSeed);
  report.set("users", sc.users);
  report.set("jobs_per_user", sc.jobs);
  report.set("sites", sc.sites);
  report.set("capacity_cpus", sc.capacity_cpus());
  report.set("demand_cpu_seconds", cpu_seconds);
  report.set("ideal_makespan_s", est_makespan);
  report.set("makespan_s", main_run.makespan_s);
  report.set("dispatch_throughput_per_s", throughput);
  report.set("queue_wait_p50_ms", p50_ms);
  report.set("queue_wait_p99_ms", p99_ms);
  report.set("queue_wait_p99_bound_ms", p99_bound_ms);
  auto row_of = [](const char* name, const Scale& s, const RunResult& r) {
    json::Value row = json::Value::object();
    row.set("run", name);
    row.set("total_jobs", s.total_jobs());
    row.set("makespan_s", r.makespan_s);
    row.set("submit_window_s", r.submit_window_s);
    row.set("accepted", r.accepted);
    row.set("completed", r.completed);
    row.set("failed", r.failed);
    row.set("admission_shed", r.admission_shed);
    row.set("runner_shed", r.runner_shed);
    row.set("busy_rounds", r.busy_rounds);
    row.set("conn_retries", r.conn_retries);
    row.set("requeued", r.requeued);
    row.set("backfilled", r.backfilled);
    row.set("dispatch_batches", r.dispatch_batches);
    row.set("dup_completions", r.dup_completions);
    row.set("batches_resent", r.batches_resent);
    row.set("journal_replays", r.journal_replays);
    row.set("mds_refreshes", r.mds_refreshes);
    row.set("top_share_bp", r.top_share_bp);
    return row;
  };
  report.add_row(row_of("full scale + faults", sc, main_run));
  report.add_row(row_of("determinism pair", det, det_a));
  bench::finish_report(report, "sched_scale");
  return 0;
}
