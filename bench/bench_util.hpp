// Shared helpers for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper and prints
// it side by side with the paper's reported values (where the scraped text
// preserves them). Absolute numbers differ — the substrate is a calibrated
// simulator, not the 1999 RWCP/ETL testbed — but the shape (who wins, by
// what factor, where the crossovers fall) is the reproduction target.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/bench_report.hpp"
#include "common/stats.hpp"
#include "common/telemetry.hpp"
#include "prof/prof.hpp"
#include "simnet/net.hpp"

namespace wacs::bench {

/// Knapsack instance size: WACS_KNAPSACK_N when set and within [lo, hi],
/// `fallback` otherwise. Every knapsack bench honours the same knob so CI
/// can shrink them uniformly.
inline int knapsack_n(int fallback, int lo = 10, int hi = 34) {
  if (const char* env = std::getenv("WACS_KNAPSACK_N")) {
    const int n = std::atoi(env);
    if (n >= lo && n <= hi) return n;
  }
  return fallback;
}

/// RAII measurement window for an instrumented replay: resets the metrics
/// registry and clears + enables the tracer on entry, disables the tracer
/// on exit, so the captured metrics/trace cover exactly the window's scope.
class TraceWindow {
 public:
  TraceWindow() {
    telemetry::metrics().reset();
    telemetry::tracer().clear();
    telemetry::tracer().enable();
  }
  ~TraceWindow() { telemetry::tracer().disable(); }
  TraceWindow(const TraceWindow&) = delete;
  TraceWindow& operator=(const TraceWindow&) = delete;
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

/// Turns the tracer on when WACS_TRACE asks for it. Call before building
/// testbeds so connection setup is captured too. Returns whether tracing
/// is on.
inline bool maybe_enable_tracing() {
  if (!trace_requested()) return false;
  telemetry::tracer().enable();
  return true;
}

/// WACS_BENCH_OUT (default "."), with a trailing slash.
inline std::string artifact_dir() {
  const char* v = std::getenv("WACS_BENCH_OUT");
  std::string dir = (v != nullptr && *v != '\0') ? v : ".";
  if (dir.back() != '/') dir += '/';
  return dir;
}

/// Host-time profile artifacts for a bench run: <id>.prof.json (full dump,
/// wacs-prof input) and <id>.folded (flamegraph.pl input, scope frames plus
/// the engine's per-event-label lines) in WACS_BENCH_OUT. Prints the paths.
inline void write_prof_artifacts(const std::string& id,
                                 const prof::EngineProfile* engine_prof,
                                 json::Value extra = {}) {
  const std::string dir = artifact_dir();
  const std::string json_path = dir + id + ".prof.json";
  if (prof::write_file(json_path,
                       prof::dump_json(id, engine_prof, std::move(extra)))) {
    std::printf("prof dump: %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "prof dump failed: %s\n", json_path.c_str());
  }
  std::vector<prof::FoldedLine> lines = prof::collect_folded();
  if (engine_prof != nullptr) {
    auto engine_lines = engine_prof->folded();
    lines.insert(lines.end(), engine_lines.begin(), engine_lines.end());
  }
  const std::string folded_path = dir + id + ".folded";
  if (prof::write_file(folded_path, prof::folded_to_string(lines))) {
    std::printf("folded stacks: %s (flamegraph.pl input)\n",
                folded_path.c_str());
  } else {
    std::fprintf(stderr, "folded write failed: %s\n", folded_path.c_str());
  }
}

/// Per-link traffic counters as {link: {bytes, msgs}}, links with traffic
/// only (deterministic topology order).
inline json::Value link_traffic_json(const sim::Network& net) {
  json::Value out = json::Value::object();
  for (const sim::Link* link : net.all_links()) {
    if (link->messages_carried() == 0) continue;
    json::Value l = json::Value::object();
    l.set("bytes", link->bytes_carried());
    l.set("msgs", link->messages_carried());
    out.set(link->params().name, std::move(l));
  }
  return out;
}

/// Standard bench epilogue: attach the metrics snapshot, write
/// BENCH_<id>.json, and — when WACS_TRACE asked for it — dump the recorded
/// trace as <id>.trace.jsonl + <id>.chrome.json. Prints the artifact paths.
inline void finish_report(Report& report, const std::string& id) {
  report.attach_metrics_snapshot();
  auto path = report.write();
  if (path.ok()) {
    std::printf("\nbench report: %s\n", path->c_str());
  } else {
    std::fprintf(stderr, "bench report failed: %s\n",
                 path.error().to_string().c_str());
  }
  if (telemetry::tracer().event_count() > 0) {
    auto trace = write_trace_files(id);
    if (trace.ok()) {
      std::printf("trace: %s (+ .chrome.json for Perfetto)\n", trace->c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   trace.error().to_string().c_str());
    }
  }
}

}  // namespace wacs::bench
