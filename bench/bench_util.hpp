// Shared helpers for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper and prints
// it side by side with the paper's reported values (where the scraped text
// preserves them). Absolute numbers differ — the substrate is a calibrated
// simulator, not the 1999 RWCP/ETL testbed — but the shape (who wins, by
// what factor, where the crossovers fall) is the reproduction target.
#pragma once

#include <cstdio>
#include <string>

#include "common/stats.hpp"

namespace wacs::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

}  // namespace wacs::bench
