// Figures 3 & 4 — cost of the Nexus Proxy connection mechanisms.
//
// The paper's Figures 3 and 4 are protocol diagrams (active open through
// the outer server; passive open through outer + inner). This bench
// measures what those diagrams imply: the virtual-time cost of each
// establishment path on the Figure 5 testbed, against the direct baseline,
// plus the deny-based firewall's behaviour for a blocked direct attempt.
#include "bench_util.hpp"
#include "core/testbeds.hpp"

namespace wacs {
namespace {

/// Measures one establishment scenario; returns milliseconds of virtual
/// time from the initiator's call to an established, usable link.
double measure(const std::string& label,
               std::function<double(core::Testbed&)> scenario,
               bool open_firewall = false) {
  core::TestbedOptions options;
  options.open_rwcp_firewall = open_firewall;
  auto tb = core::make_rwcp_etl_testbed(options);
  (void)label;
  return scenario(tb);
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  bench::print_header(
      "Figures 3-4: connection establishment through the Nexus Proxy",
      "Tanaka et al., HPDC 2000, Figures 3 and 4 (mechanism diagrams)");
  bench::maybe_enable_tracing();

  TextTable table({"scenario", "setup time", "mechanism"});
  bench::Report report("fig34");
  auto record = [&report](const char* scenario, double ms) {
    json::Value r = json::Value::object();
    r.set("scenario", scenario);
    r.set("setup_ms", ms);
    report.add_row(std::move(r));
  };

  // Direct LAN baseline.
  double t = measure("direct-lan", [](core::Testbed& tb) {
    double ms = -1;
    tb->engine().spawn("m", [&](sim::Process& self) {
      auto l = tb->net().host("compas01").stack().listen(5000);
      const sim::Time start = tb->engine().now();
      auto c = tb->net().host("rwcp-sun").stack().connect(self,
                                                          {"compas01", 5000});
      WACS_CHECK(c.ok());
      ms = sim::to_ms(tb->engine().now() - start);
      (void)l;
    });
    tb->engine().run();
    return ms;
  });
  table.add_row({"direct connect, LAN", format_duration_ms(t),
                 "connect() / accept()"});
  record("direct-lan", t);

  // Fig 3: active open via the outer server (RWCP client -> ETL target).
  t = measure("fig3", [](core::Testbed& tb) {
    double ms = -1;
    tb->engine().spawn("m", [&](sim::Process& self) {
      auto l = tb->net().host("etl-sun").stack().listen(31000);
      proxy::ProxyClient client(tb->net().host("rwcp-sun"),
                                tb->outer()->contact(),
                                tb->inner()->contact());
      const sim::Time start = tb->engine().now();
      auto c = client.nx_connect(self, {"etl-sun", 31000});
      WACS_CHECK_MSG(c.ok(), c.error().to_string());
      ms = sim::to_ms(tb->engine().now() - start);
      (void)l;
    });
    tb->engine().run();
    return ms;
  });
  table.add_row({"Fig 3 active open via outer server", format_duration_ms(t),
                 "NXProxyConnect(): client->outer->target"});
  record("fig3-active-open", t);

  // Fig 4: passive open via outer + inner (bind, then remote connects and
  // the first byte arrives at the bound client).
  t = measure("fig4", [](core::Testbed& tb) {
    double ms = -1;
    Contact public_contact;
    tb->engine().spawn("bound", [&](sim::Process& self) {
      proxy::ProxyClient client(tb->net().host("rwcp-sun"),
                                tb->outer()->contact(),
                                tb->inner()->contact());
      auto bound = client.nx_bind(self);
      WACS_CHECK(bound.ok());
      public_contact = (*bound)->public_contact();
      auto conn = (*bound)->nx_accept(self);
      WACS_CHECK(conn.ok());
      auto msg = (*conn)->recv(self);
      WACS_CHECK(msg.ok());
      ms = sim::to_ms(tb->engine().now()) - 100.0;  // minus remote start
    });
    tb->engine().spawn("remote", [&](sim::Process& self) {
      self.sleep_until(sim::from_sec(0.1));  // bind must be registered
      auto c = tb->net().host("etl-sun").stack().connect(self, public_contact);
      WACS_CHECK(c.ok());
      WACS_CHECK((*c)->send(Bytes{1}).ok());
    });
    tb->engine().run();
    return ms;
  });
  table.add_row({"Fig 4 passive open via outer+inner", format_duration_ms(t),
                 "NXProxyBind()/Accept(): remote->outer->inner->client"});
  record("fig4-passive-open", t);

  // Deny-based firewall: a direct dial at the private endpoint fails.
  t = measure("denied", [](core::Testbed& tb) {
    double ms = -1;
    tb->engine().spawn("m", [&](sim::Process& self) {
      const sim::Time start = tb->engine().now();
      auto c = tb->net().host("etl-sun").stack().connect(self,
                                                         {"rwcp-sun", 12345});
      WACS_CHECK(!c.ok());
      ms = sim::to_ms(tb->engine().now() - start);
    });
    tb->engine().run();
    return ms;
  });
  table.add_row({"direct inbound to RWCP (firewall denies)",
                 format_duration_ms(t), "SYN dropped by deny-based filter"});
  record("denied-direct", t);

  // Direct WAN baseline with the firewall temporarily opened.
  t = measure("direct-wan", [](core::Testbed& tb) {
    double ms = -1;
    tb->engine().spawn("m", [&](sim::Process& self) {
      auto l = tb->net().host("rwcp-sun").stack().listen(5000);
      const sim::Time start = tb->engine().now();
      auto c = tb->net().host("etl-sun").stack().connect(self,
                                                         {"rwcp-sun", 5000});
      WACS_CHECK(c.ok());
      ms = sim::to_ms(tb->engine().now() - start);
      (void)l;
    });
    tb->engine().run();
    return ms;
  }, /*open_firewall=*/true);
  table.add_row({"direct connect, WAN (firewall opened)",
                 format_duration_ms(t), "the paper's temporary baseline"});
  record("direct-wan-fw-open", t);

  std::printf("%s", table.to_string().c_str());
  std::printf("\nshape checks:\n");
  std::printf("  Fig 4 > Fig 3 > direct: each relay process in the chain\n");
  std::printf("  adds per-connection daemon work plus extra hops.\n");

  // Instrumented replay of the Fig 3 chain: per-link bytes and the span
  // tree for the full client->outer->target establishment.
  {
    bench::TraceWindow window;
    auto tb = core::make_rwcp_etl_testbed();
    tb->net().enable_link_sampling(sim::from_sec(0.002));
    tb->engine().spawn("replay", [&](sim::Process& self) {
      auto l = tb->net().host("etl-sun").stack().listen(31000);
      proxy::ProxyClient client(tb->net().host("rwcp-sun"),
                                tb->outer()->contact(),
                                tb->inner()->contact());
      auto c = client.nx_connect(self, {"etl-sun", 31000});
      WACS_CHECK_MSG(c.ok(), c.error().to_string());
      (void)l;
    });
    tb->engine().run();
    report.set("links", bench::link_traffic_json(tb->net()));
    report.set("link_utilization", tb->net().utilization_json());
  }
  bench::finish_report(report, "fig34");
  return 0;
}
