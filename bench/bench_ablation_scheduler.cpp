// Ablation — self-scheduling parameters on the wide-area cluster.
//
// The paper: "We varied a stealunit, interval, and backunit and took the
// best combination." This bench reproduces that sweep and adds the transfer
// -end ablation: shipping nodes from the *top* of the stack (the paper's
// literal wording — deepest nodes, leaf crumbs) versus from the *bottom*
// (shallowest nodes, work-aware amounts; this reproduction's default).
// The top policy starves remote slaves; see DESIGN.md.
#include <cstdlib>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"

namespace wacs {
namespace {

struct Outcome {
  double seconds;
  std::uint64_t steals;
  std::uint64_t idle_ranks;  // ranks that traversed zero nodes
  double balance;            // min/max node share over all ranks
};

Outcome run(int n, const std::map<std::string, std::string>& args) {
  auto tb = core::make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  rmf::JobSpec spec;
  spec.name = "ablate";
  spec.task = knapsack::kParallelTask;
  auto placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = placements;
  spec.args = args;
  spec.args[knapsack::args::kSecPerNode] = "0.000001";
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok() && result->ok, "ablation run failed");
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  WACS_CHECK(stats->total_nodes == knapsack::full_tree_nodes(n));

  Outcome out{stats->app_seconds, stats->master_steals_handled, 0, 0};
  std::uint64_t mn = ~0ULL, mx = 0;
  for (const auto& r : stats->ranks) {
    mn = std::min(mn, r.nodes_traversed);
    mx = std::max(mx, r.nodes_traversed);
    if (r.nodes_traversed == 0) ++out.idle_ranks;
  }
  out.balance = mx == 0 ? 0 : static_cast<double>(mn) / static_cast<double>(mx);
  return out;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(24, 10, 30);
  bench::print_header(
      "Ablation: self-scheduling parameters (interval/stealunit/transfer end)",
      "Tanaka et al., HPDC 2000, §4.3-4.4 parameter tuning methodology");
  std::printf("wide-area cluster, %d items (%s nodes)\n", n,
              format_count(knapsack::full_tree_nodes(n)).c_str());

  bench::maybe_enable_tracing();
  TextTable table({"transfer end", "interval", "stealunit", "exec time",
                   "master steals", "idle ranks", "min/max balance"});
  bench::Report report("ablation_scheduler");
  report.set("instance_items", n);
  for (const char* end : {"bottom", "top"}) {
    for (const char* interval : {"500", "1000", "2000"}) {
      for (const char* steal : {"8", "16", "32"}) {
        Outcome o = run(n, {{knapsack::args::kTransferEnd, end},
                            {knapsack::args::kInterval, interval},
                            {knapsack::args::kStealUnit, steal},
                            {knapsack::args::kBackUnit, "64"}});
        char balbuf[32];
        std::snprintf(balbuf, sizeof balbuf, "%.3f", o.balance);
        table.add_row({end, interval, steal,
                       format_duration_ms(o.seconds * 1e3),
                       format_count(o.steals),
                       std::to_string(o.idle_ranks), balbuf});
        json::Value r = json::Value::object();
        r.set("transfer_end", end);
        r.set("interval", interval);
        r.set("stealunit", steal);
        r.set("seconds", o.seconds);
        r.set("master_steals", o.steals);
        r.set("idle_ranks", o.idle_ranks);
        r.set("balance", o.balance);
        report.add_row(std::move(r));
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  bench::finish_report(report, "ablation_scheduler");
  std::printf("\nreading: the bottom (work-aware) policy keeps every rank\n"
              "busy; the literal top-of-stack policy ships leaf crumbs and\n"
              "leaves most of the 20 ranks idle regardless of parameters.\n");
  return 0;
}
