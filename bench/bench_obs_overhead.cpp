// Observability overhead on the Table-4 wide-area cluster system.
//
// The acceptance bar for the live metrics plane (DESIGN.md §14): with the
// collector and every site agent running, the proxied 20-processor
// knapsack run may cost at most 2% more virtual makespan than the same run
// with export off — and export off must cost exactly nothing (no agents,
// no collector, no extra events; the committed baselines enforce that
// side via bench-diff).
//
// Artifacts: the collector's journal (obs_timeline.jsonl, replayable with
// wacs-top) and its final state snapshot (obs_snapshot.json).
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "obs/collector.hpp"

namespace wacs {
namespace {

double run_wide_area(core::Testbed& tb, const knapsack::Instance& inst) {
  rmf::JobSpec spec;
  spec.name = "obs_overhead";
  spec.task = knapsack::kParallelTask;
  spec.placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok(), "submission failed");
  WACS_CHECK_MSG(result->ok, "job failed: " + result->error);
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  return stats->app_seconds;
}

Status write_artifact(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error(ErrorCode::kInternal, "cannot open " + path);
  }
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (n != body.size()) {
    return Error(ErrorCode::kInternal, "short write to " + path);
  }
  return Status();
}

std::string artifact_dir() {
  const char* v = std::getenv("WACS_BENCH_OUT");
  std::string dir = (v != nullptr && *v != '\0') ? v : ".";
  if (dir.back() != '/') dir += '/';
  return dir;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(16);
  bench::print_header(
      "Observability overhead: Table-4 wide-area run, export off vs on",
      "acceptance gate for the live metrics plane (DESIGN.md §14)");
  std::printf("instance: %d items (set WACS_KNAPSACK_N to change)\n", n);

  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  core::TestbedOptions with_proxy;
  with_proxy.rwcp_uses_proxy = true;

  // Export OFF: the stock Table-4 proxied wide-area system.
  double off_seconds = 0;
  {
    auto tb = core::make_rwcp_etl_testbed(with_proxy);
    off_seconds = run_wide_area(tb, inst);
  }

  // Export ON: same system plus collector (submit host) and one agent per
  // site shipping deltas in-band through the proxied port.
  double on_seconds = 0;
  std::string journal;
  std::string rotated;
  std::string snapshot;
  std::uint64_t reports = 0;
  std::uint64_t decode_errors = 0;
  {
    auto tb = core::make_rwcp_etl_testbed(with_proxy);
    tb->enable_observability("rwcp-sun");
    on_seconds = run_wide_area(tb, inst);
    WACS_CHECK_MSG(tb->observability_enabled(),
                   "WACS_OBS=0 would make this bench measure nothing");
    obs::Collector* collector = tb->collector();
    journal = collector->journal();
    rotated = collector->rotated_journal();
    reports = collector->reports_received();
    decode_errors = collector->decode_errors();
    snapshot =
        collector->timeline().snapshot_json(tb->engine().now()).dump() + "\n";
  }

  const double overhead_pct =
      100.0 * (on_seconds - off_seconds) / off_seconds;
  std::printf("\nexport off: %.3fs   export on: %.3fs   overhead: %+.2f%%\n",
              off_seconds, on_seconds, overhead_pct);
  std::printf("collector: %llu reports, %llu decode errors, journal %zu B\n",
              static_cast<unsigned long long>(reports),
              static_cast<unsigned long long>(decode_errors),
              journal.size());
  WACS_CHECK_MSG(reports > 0, "collector heard nothing — agents dead?");
  WACS_CHECK_MSG(decode_errors == 0, "collector rejected reports");
  WACS_CHECK_MSG(overhead_pct < 2.0,
                 "observability overhead above the 2% acceptance bar");

  const std::string dir = artifact_dir();
  std::vector<std::pair<std::string, const std::string&>> artifacts = {
      {"obs_timeline.jsonl", journal}, {"obs_snapshot.json", snapshot}};
  // The rotated generation (when a WACS_OBS_JOURNAL_MAX_MB cap fired) lands
  // beside the live journal under the conventional `.1` suffix.
  if (!rotated.empty()) artifacts.push_back({"obs_timeline.jsonl.1", rotated});
  for (const auto& [name, body] : artifacts) {
    auto st = write_artifact(dir + name, body);
    if (st.ok()) {
      std::printf("artifact: %s%s\n", dir.c_str(), name.c_str());
    } else {
      std::fprintf(stderr, "artifact failed: %s\n",
                   st.error().to_string().c_str());
    }
  }

  bench::Report report("obs_overhead");
  report.set("instance_items", n);
  report.set("off_seconds", off_seconds);
  report.set("on_seconds", on_seconds);
  report.set("overhead_pct", overhead_pct);
  report.set("reports_received", reports);
  report.set("decode_errors", decode_errors);
  report.set("journal_bytes", journal.size());
  bench::finish_report(report, "obs_overhead");
  return 0;
}
