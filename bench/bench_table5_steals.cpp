// Table 5 — number of steal requests on the Local-area and Wide-area
// clusters: total handled by the master, plus max/min/average per host
// group (RWCP-Sun slaves, COMPaS, ETL-O2K).
//
// Paper shape targets: "slaves frequently send a steal request to the
// master" and "although the communication overhead increased, we obtained
// good load balance".
#include <cmath>
#include <cstdlib>
#include <map>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"

namespace wacs {
namespace {

knapsack::RunStats run_system(std::vector<rmf::Placement> placements, int n) {
  auto tb = core::make_rwcp_etl_testbed();
  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  rmf::JobSpec spec;
  spec.name = "table5";
  spec.task = knapsack::kParallelTask;
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = std::move(placements);
  // Finer steal granularity than the auto default: the paper's regime is
  // "slaves frequently send a steal request to the master" (fine grain,
  // good balance, more communication).
  const double keep = std::exp2(n + 1) / (32.0 * spec.nprocs);
  char keepbuf[32];
  std::snprintf(keepbuf, sizeof keepbuf, "%.0f", keep);
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kKeepOps, keepbuf},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok() && result->ok, "table5 run failed");
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  return *stats;
}

std::string group_of(const std::string& host) {
  if (host.rfind("compas", 0) == 0) return "COMPaS";
  if (host == "etl-o2k") return "ETL-O2K";
  return "RWCP-Sun";
}

void print_rows(const char* system, const knapsack::RunStats& stats,
                TextTable& table,
                std::uint64_t value(const knapsack::RankStats&)) {
  std::map<std::string, RunningStats> groups;
  for (const auto& r : stats.ranks) {
    if (r.rank == 0) continue;  // the master column is separate
    groups[group_of(r.host)].add(static_cast<double>(value(r)));
  }
  bool first = true;
  for (const auto& [group, s] : groups) {
    char maxbuf[32], minbuf[32], avgbuf[32];
    std::snprintf(maxbuf, sizeof maxbuf, "%.0f", s.max());
    std::snprintf(minbuf, sizeof minbuf, "%.0f", s.min());
    std::snprintf(avgbuf, sizeof avgbuf, "%.1f", s.mean());
    table.add_row({first ? system : "", group,
                   first ? format_count(stats.master_steals_handled) : "",
                   maxbuf, minbuf, avgbuf});
    first = false;
  }
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(26);
  bench::print_header("Table 5: number of steals",
                      "Tanaka et al., HPDC 2000, Table 5");
  std::printf("instance: %d items (%s nodes); paper used 50 items\n", n,
              format_count(knapsack::full_tree_nodes(n)).c_str());

  bench::maybe_enable_tracing();
  auto tb = core::make_rwcp_etl_testbed();
  auto local = run_system(core::placement_local_area(tb), n);
  auto wide = run_system(core::placement_wide_area(tb), n);

  TextTable table({"system", "group", "master total", "max", "min", "avg"});
  auto steal_count = [](const knapsack::RankStats& r) {
    return r.steal_requests;
  };
  print_rows("Local-area Cluster", local, table, steal_count);
  print_rows("Wide-area Cluster", wide, table, steal_count);
  std::printf("%s", table.to_string().c_str());

  std::printf("\nshape checks:\n");
  std::printf("  every slave issued steal requests (self-scheduling is live)\n");
  std::printf("  master handled %s (local) / %s (wide) steal requests\n",
              format_count(local.master_steals_handled).c_str(),
              format_count(wide.master_steals_handled).c_str());

  bench::Report report("table5");
  report.set("instance_items", n);
  auto row_of = [](const char* system, const knapsack::RunStats& s) {
    json::Value r = json::Value::object();
    r.set("system", system);
    r.set("master_steals_handled", s.master_steals_handled);
    r.set("app_seconds", s.app_seconds);
    return r;
  };
  report.add_row(row_of("local-area", local));
  report.add_row(row_of("wide-area", wide));
  bench::finish_report(report, "table5");
  return 0;
}
