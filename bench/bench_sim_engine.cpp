// Google-benchmark: discrete-event substrate performance.
//
// The simulator's usefulness depends on how many events and process
// switches it retires per wall-clock second; these microbenchmarks keep
// that honest (a 20-rank knapsack run executes millions of events).
#include <benchmark/benchmark.h>

#include <string_view>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "simnet/channel.hpp"
#include "simnet/tcp.hpp"

// Sanitizer detection for the --prof overhead gate: GCC defines
// __SANITIZE_*__, clang answers __has_feature.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define WACS_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define WACS_BENCH_SANITIZED 1
#endif
#endif

namespace wacs::sim {
namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.at(i, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_ProcessSwitch(benchmark::State& state) {
  // Two processes ping-ponging through a channel: every message costs two
  // full engine<->process context switches.
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    const int rounds = static_cast<int>(state.range(0));
    auto ping = std::make_shared<Channel<int>>(engine);
    auto pong = std::make_shared<Channel<int>>(engine);
    engine.spawn("a", [ping, pong, rounds](Process& self) {
      for (int i = 0; i < rounds; ++i) {
        ping->send(i);
        (void)pong->recv(self);
      }
    });
    engine.spawn("b", [ping, pong, rounds](Process& self) {
      for (int i = 0; i < rounds; ++i) {
        (void)ping->recv(self);
        pong->send(i);
      }
    });
    state.ResumeTiming();
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessSwitch)->Arg(1000)->Arg(10000);

void BM_SimTcpMessages(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    Network net(engine);
    net.add_site("s", fw::Policy::open(),
                 LinkParams{.name = "", .latency_s = msec(0.4),
                            .bandwidth_bps = mbyte_per_sec(10)});
    net.add_host({.name = "a", .site = "s"});
    net.add_host({.name = "b", .site = "s"});
    const int count = static_cast<int>(state.range(0));
    engine.spawn("rx", [&net, count](Process& self) {
      auto l = net.host("b").stack().listen(5000);
      auto s = (*l)->accept(self);
      for (int i = 0; i < count; ++i) (void)(*s)->recv(self);
    });
    engine.spawn("tx", [&net, count](Process& self) {
      auto s = net.host("a").stack().connect(self, Contact{"b", 5000});
      Bytes msg = pattern_bytes(256);
      for (int i = 0; i < count; ++i) (void)(*s)->send(msg);
    });
    state.ResumeTiming();
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimTcpMessages)->Arg(1000)->Arg(10000);

}  // namespace

#if WACS_PROF

namespace {

// ------------------------------------------------------------- --prof mode
//
// Host-time profile of the dispatch loop on wide-area testbeds, plus the
// lookahead report that decides whether a conservative parallel engine
// (per-site event queues) could pay off: cross-site event fraction and the
// minimum cross-site latency (the lookahead bound).
//
// Ranks are modeled as pure event chains, not Processes — each event
// delivers one message and schedules the follow-up at its arrival time —
// so 10k ranks cost 10k in-flight events, not 10k OS threads.

/// Fully-meshed `nsites` testbed with `nhosts` hosts placed block-wise
/// (host h on site h*nsites/nhosts), so ring neighbors stay intra-site
/// except at block boundaries.
std::vector<Host*> build_mesh(Network& net, int nsites, int nhosts) {
  for (int s = 0; s < nsites; ++s) {
    const std::string name = "s" + std::to_string(s);
    net.add_site(name, fw::Policy::open(),
                 LinkParams{.name = name + "-lan", .latency_s = usec(100),
                            .bandwidth_bps = mbyte_per_sec(100)});
  }
  for (int a = 0; a < nsites; ++a) {
    for (int b = a + 1; b < nsites; ++b) {
      net.connect_sites("s" + std::to_string(a), "s" + std::to_string(b),
                        LinkParams{.name = "wan-" + std::to_string(a) + "-" +
                                           std::to_string(b),
                                   .latency_s = msec(5),
                                   .bandwidth_bps = mbyte_per_sec(10)});
    }
  }
  std::vector<Host*> hosts(nhosts);
  for (int h = 0; h < nhosts; ++h) {
    hosts[h] = &net.add_host(
        {.name = "r" + std::to_string(h),
         .site = "s" + std::to_string(static_cast<int>(
                     static_cast<long long>(h) * nsites / nhosts))});
  }
  return hosts;
}

/// Builds the topology and runs the exchange; profiling state accumulates
/// in engine.profile() while prof::enabled(). Returns host seconds elapsed.
double run_prof_case(Engine& engine, Network& net, int nsites, int ranks,
                     std::uint64_t total_events) {
  std::vector<Host*> hosts = build_mesh(net, nsites, ranks);

  // Each rank alternates ring sends (mostly intra-site) with an
  // every-16th-round exchange with its antipode (cross-site), echoing the
  // knapsack work-steal pattern: frequent neighbor traffic, occasional
  // wide-area steals.
  const auto rounds = static_cast<int>(total_events / ranks);
  struct RankState {
    int sent = 0;
  };
  auto states = std::make_shared<std::vector<RankState>>(ranks);
  std::function<void(int)> step = [&, states](int r) {
    PROF_SCOPE("rank.step");
    RankState& st = (*states)[r];
    const bool steal = st.sent % 16 == 15;
    Host* dst = steal ? hosts[(r + ranks / 2) % ranks]
                      : hosts[(r + 1) % ranks];
    const Time arrival = net.deliver(*hosts[r], *dst, steal ? 4096 : 256);
    if (++st.sent < rounds) {
      net.engine().at(arrival, "rank.exchange", [&step, r] { step(r); });
    }
  };
  for (int r = 0; r < ranks; ++r) {
    engine.at(0, "rank.exchange", [&step, r] { step(r); });
  }
  const std::int64_t t0 = prof::now_ns();
  engine.run();
  return static_cast<double>(prof::now_ns() - t0) / 1e9;
}

/// The overhead-gate workload: `pairs` cross-site TCP ping-pong process
/// pairs, `rounds` round trips each. This is the engine's representative
/// hot path — every MPI message in the paper benches goes through process
/// switches, the wait queues, and Network::deliver — so the gate measures
/// what profiling costs real runs, not a bare no-op event chain (where a
/// single steady_clock read already exceeds 5% of a ~200ns dispatch).
double run_gate_case(Engine& engine, Network& net, int pairs, int rounds) {
  std::vector<Host*> hosts = build_mesh(net, 2, pairs * 2);
  const Bytes msg = pattern_bytes(256);
  for (int i = 0; i < pairs; ++i) {
    Host* client = hosts[i];              // site s0 (block placement)
    Host* server = hosts[pairs + i];      // site s1
    engine.spawn("rx@" + server->name(), [server, rounds](Process& self) {
      auto l = server->stack().listen(5000);
      auto s = (*l)->accept(self);
      for (int r = 0; r < rounds; ++r) {
        auto got = (*s)->recv(self);
        (void)(*s)->send(*got);
      }
    });
    engine.spawn("tx@" + client->name(),
                 [client, server, &msg, rounds](Process& self) {
      auto s = client->stack().connect(self, Contact{server->name(), 5000});
      for (int r = 0; r < rounds; ++r) {
        (void)(*s)->send(msg);
        (void)(*s)->recv(self);
      }
    });
  }
  const std::int64_t t0 = prof::now_ns();
  engine.run();
  return static_cast<double>(prof::now_ns() - t0) / 1e9;
}

}  // namespace

int run_prof_mode() {
  wacs::bench::print_header(
      "Engine host-time profile + lookahead report (--prof)",
      "dispatch-loop cost attribution and the cross-site lookahead bound "
      "for a per-site-sharded parallel engine (DESIGN.md §15)");
  // ~400k events per case keeps every cell comparable across rank counts.
  constexpr std::uint64_t kEventsPerCase = 400000;
  prof::enable();
  for (const int nsites : {2, 3}) {
    for (const int ranks : {100, 1000, 10000}) {
      Engine engine;
      Network net(engine);
      const double secs =
          run_prof_case(engine, net, nsites, ranks, kEventsPerCase);
      std::printf("\n== %d sites, %d ranks: %llu events in %.3fs host "
                  "(%.0f ev/s) ==\n",
                  nsites, ranks,
                  static_cast<unsigned long long>(engine.events_executed()),
                  secs, static_cast<double>(engine.events_executed()) / secs);
      std::printf("%s", engine.profile().render().c_str());
      if (ranks == 10000) {
        wacs::bench::write_prof_artifacts(
            "sim_engine_prof_" + std::to_string(nsites) + "site",
            &engine.profile());
        prof::reset();  // scope frames restart per artifact set
      }
    }
  }

  // Overhead gate: enabled profiling must cost < 5% host wall-clock on the
  // representative workload (cross-site TCP ping-pong through processes —
  // see run_gate_case). Each trial runs off then on back-to-back and the
  // gate takes the best *paired* ratio: ambient load (a CI neighbor, a
  // background build) slows both halves of a pair roughly equally, where
  // independent min-of-off vs min-of-on can pit a lucky quiet off-run
  // against an unlucky loaded on-run.
  constexpr int kGatePairs = 16;
  constexpr int kGateRounds = 1000;
  double best_ratio = 0;
  double best_off = 0;
  double best_on = 0;
  for (int trial = 0; trial < 7; ++trial) {
    double off_secs = 0;
    double on_secs = 0;
    prof::disable();
    {
      Engine engine;
      Network net(engine);
      off_secs = run_gate_case(engine, net, kGatePairs, kGateRounds);
    }
    prof::enable();
    {
      Engine engine;
      Network net(engine);
      on_secs = run_gate_case(engine, net, kGatePairs, kGateRounds);
    }
    const double ratio = on_secs / off_secs;
    if (best_ratio == 0 || ratio < best_ratio) {
      best_ratio = ratio;
      best_off = off_secs;
      best_on = on_secs;
    }
  }
  prof::disable();
  const double overhead_pct = 100.0 * (best_ratio - 1.0);
  std::printf("\nprofiling overhead (%d cross-site TCP pairs x %d round "
              "trips, best paired trial of 7): off %.3fs  on %.3fs  %+.2f%%\n",
              kGatePairs, kGateRounds, best_off, best_on, overhead_pct);
  // The <5% bar only means something for the build users actually profile
  // with: optimized and unsanitized. Under ASan/UBSan or -O0 the shadow
  // checks multiply the profiler's relative cost, so the number prints but
  // does not gate.
#if defined(WACS_BENCH_SANITIZED) || !defined(NDEBUG)
  std::printf("(unoptimized or sanitized build: overhead gate advisory)\n");
#else
  WACS_CHECK_MSG(overhead_pct < 5.0,
                 "profiling enabled exceeds the 5% overhead gate");
#endif
  return 0;
}

#endif  // WACS_PROF

}  // namespace wacs::sim

// Hand-rolled main instead of BENCHMARK_MAIN so this binary shares the
// bench-harness banner with the virtual-time benches.
int main(int argc, char** argv) {
#if WACS_PROF
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--prof") {
      return wacs::sim::run_prof_mode();
    }
  }
#endif
  wacs::bench::print_header(
      "Simulation engine microbenchmarks (wall clock)",
      "substrate cost, not a paper figure — event dispatch, process "
      "switches, simulated TCP messaging");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
