// Google-benchmark: discrete-event substrate performance.
//
// The simulator's usefulness depends on how many events and process
// switches it retires per wall-clock second; these microbenchmarks keep
// that honest (a 20-rank knapsack run executes millions of events).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "simnet/channel.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sim {
namespace {

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.at(i, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_ProcessSwitch(benchmark::State& state) {
  // Two processes ping-ponging through a channel: every message costs two
  // full engine<->process context switches.
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    const int rounds = static_cast<int>(state.range(0));
    auto ping = std::make_shared<Channel<int>>(engine);
    auto pong = std::make_shared<Channel<int>>(engine);
    engine.spawn("a", [ping, pong, rounds](Process& self) {
      for (int i = 0; i < rounds; ++i) {
        ping->send(i);
        (void)pong->recv(self);
      }
    });
    engine.spawn("b", [ping, pong, rounds](Process& self) {
      for (int i = 0; i < rounds; ++i) {
        (void)ping->recv(self);
        pong->send(i);
      }
    });
    state.ResumeTiming();
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessSwitch)->Arg(1000)->Arg(10000);

void BM_SimTcpMessages(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    Network net(engine);
    net.add_site("s", fw::Policy::open(),
                 LinkParams{.name = "", .latency_s = msec(0.4),
                            .bandwidth_bps = mbyte_per_sec(10)});
    net.add_host({.name = "a", .site = "s"});
    net.add_host({.name = "b", .site = "s"});
    const int count = static_cast<int>(state.range(0));
    engine.spawn("rx", [&net, count](Process& self) {
      auto l = net.host("b").stack().listen(5000);
      auto s = (*l)->accept(self);
      for (int i = 0; i < count; ++i) (void)(*s)->recv(self);
    });
    engine.spawn("tx", [&net, count](Process& self) {
      auto s = net.host("a").stack().connect(self, Contact{"b", 5000});
      Bytes msg = pattern_bytes(256);
      for (int i = 0; i < count; ++i) (void)(*s)->send(msg);
    });
    state.ResumeTiming();
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimTcpMessages)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace wacs::sim

// Hand-rolled main instead of BENCHMARK_MAIN so this binary shares the
// bench-harness banner with the virtual-time benches.
int main(int argc, char** argv) {
  wacs::bench::print_header(
      "Simulation engine microbenchmarks (wall clock)",
      "substrate cost, not a paper figure — event dispatch, process "
      "switches, simulated TCP messaging");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
