// Ablation — which relay-cost knob drives which observable?
//
// The simulated Nexus Proxy has two calibrated parameters (DESIGN.md §5):
// a fixed per-message daemon cost and a user-space copy rate. This bench
// sweeps both and reports proxied LAN latency and 1 MB bandwidth,
// demonstrating that latency is governed by the per-message cost and large-
// message bandwidth by the copy rate — the basis for the Table 2
// calibration.
#include "bench_util.hpp"
#include "core/netperf.hpp"
#include "core/testbeds.hpp"

namespace wacs {
namespace {

struct Sample {
  double latency_ms;
  double bw_1m;
};

Sample measure(proxy::RelayParams relay) {
  core::TestbedOptions options;
  options.relay = relay;
  auto tb = core::make_rwcp_etl_testbed(options);
  core::NetPerfOptions perf;
  perf.ping_count = 16;
  perf.rounds_per_size = 4;
  perf.message_sizes = {1000000};
  auto r = core::measure_path(*tb, "rwcp-sun", "compas01", perf);
  return Sample{r.latency_ms, r.bandwidth_bps[0]};
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  bench::print_header(
      "Ablation: relay cost model vs Table 2 observables",
      "calibration basis for Tanaka et al., HPDC 2000, Table 2");

  bench::maybe_enable_tracing();
  TextTable table({"per-message cost", "copy rate", "proxied LAN latency",
                   "proxied LAN bw @1MB"});
  bench::Report report("ablation_relay");
  for (double per_msg : {0.003, 0.012, 0.048}) {
    for (double copy_rate : {0.35e6, 1.4e6, 5.6e6}) {
      Sample s = measure(proxy::RelayParams{per_msg, copy_rate});
      char msbuf[32], crbuf[32];
      std::snprintf(msbuf, sizeof msbuf, "%.0f ms", per_msg * 1e3);
      std::snprintf(crbuf, sizeof crbuf, "%.2f MB/s", copy_rate / 1e6);
      table.add_row({msbuf, crbuf, format_duration_ms(s.latency_ms),
                     format_bandwidth(s.bw_1m)});
      json::Value r = json::Value::object();
      r.set("per_msg_cost_s", per_msg);
      r.set("copy_rate_bps", copy_rate);
      r.set("latency_ms", s.latency_ms);
      r.set("bw_1m_bps", s.bw_1m);
      report.add_row(std::move(r));
    }
  }
  std::printf("%s", table.to_string().c_str());

  // Instrumented replay of the calibrated point (12 ms, 1.4 MB/s): the
  // metrics snapshot and trace cover exactly this run, so regressions in
  // the relay's message accounting show up next to the sweep rows.
  {
    bench::TraceWindow window;
    Sample s = measure(proxy::RelayParams{0.012, 1.4e6});
    json::Value replay = json::Value::object();
    replay.set("per_msg_cost_s", 0.012);
    replay.set("copy_rate_bps", 1.4e6);
    replay.set("latency_ms", s.latency_ms);
    replay.set("bw_1m_bps", s.bw_1m);
    report.set("traced_replay", std::move(replay));
  }
  bench::finish_report(report, "ablation_relay");
  std::printf("\nreading: latency scales with the per-message cost (copy rate\n"
              "is irrelevant at 1 byte); 1 MB bandwidth scales with the copy\n"
              "rate (per-message cost is amortized). The calibrated values\n"
              "(12 ms, 1.4 MB/s) hit the paper's 25 ms / sub-MB/s anchors.\n");
  return 0;
}
