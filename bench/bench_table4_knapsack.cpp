// Tables 3 & 4 — the 0-1 knapsack benchmark on the four cluster systems.
//
// Table 3 defines the systems; Table 4 reports execution time and speedup
// (relative to the sequential run on RWCP-Sun), with the wide-area cluster
// measured both with and without the Nexus Proxy ("we modified the
// configuration of the firewall temporarily").
//
// Like the paper ("we varied a stealunit, interval, and backunit and took
// the best combination"), each system runs a small scheduler-parameter grid
// and reports its best time.
//
// Scaling note: the paper used 50 items (≈2^51 nodes, billions traversed,
// runs of thousands of seconds). The simulator runs the same code on a
// 2^(n+1)-1 tree with n configurable (default 26 → ≈134M nodes); speedups
// and the proxy-overhead percentage are scale-free shape targets.
#include <cstdlib>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"

namespace wacs {
namespace {

struct SystemRun {
  std::string name;
  int nprocs = 0;
  double seconds = 0;
  std::string best_params;
  std::string best_interval;
  std::string best_stealunit;
  knapsack::RunStats stats;
};

knapsack::RunStats run_once(core::Testbed& tb, const knapsack::Instance& inst,
                            std::vector<rmf::Placement> placements,
                            const std::string& interval,
                            const std::string& stealunit) {
  rmf::JobSpec spec;
  spec.name = "table4";
  spec.task = placements.size() == 1 && placements[0].count == 1
                  ? knapsack::kSequentialTask
                  : knapsack::kParallelTask;
  spec.nprocs = 0;
  for (const auto& p : placements) spec.nprocs += p.count;
  spec.placements = std::move(placements);
  spec.args = {{knapsack::args::kInterval, interval},
               {knapsack::args::kStealUnit, stealunit},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok(), "submission failed");
  WACS_CHECK_MSG(result->ok, "job failed: " + result->error);
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  return *stats;
}

SystemRun best_of_grid(const std::string& name, const core::TestbedOptions& options,
                       const knapsack::Instance& inst,
                       std::vector<rmf::Placement> placements) {
  SystemRun best;
  best.name = name;
  for (const auto& p : placements) best.nprocs += p.count;
  for (const char* interval : {"700", "1000", "1300"}) {
    for (const char* stealunit : {"8", "16"}) {
      auto tb = core::make_rwcp_etl_testbed(options);
      auto stats = run_once(tb, inst, placements, interval, stealunit);
      WACS_CHECK(stats.total_nodes ==
                 knapsack::full_tree_nodes(inst.size()));
      if (best.seconds == 0 || stats.app_seconds < best.seconds) {
        best.seconds = stats.app_seconds;
        best.best_params = std::string("interval=") + interval +
                           " stealunit=" + stealunit;
        best.best_interval = interval;
        best.best_stealunit = stealunit;
        best.stats = stats;
      }
    }
  }
  return best;
}

}  // namespace
}  // namespace wacs

int main(int argc, char** argv) {
  using namespace wacs;
  // --prof: host-time-profile the instrumented wide-area replay and write
  // table4.prof.json + table4.folded (flame-graph input). Virtual-time
  // results and BENCH_table4.json are byte-identical either way — the
  // profiler never touches the simulation clock.
  bool prof_requested = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--prof") prof_requested = true;
  }
  const int n = bench::knapsack_n(26);
  bench::print_header("Tables 3-4: 0-1 knapsack on the four cluster systems",
                      "Tanaka et al., HPDC 2000, Tables 3 and 4");
  std::printf("instance: %d items, no branches pruned -> %s nodes "
              "(paper: 50 items; set WACS_KNAPSACK_N to change)\n",
              n, format_count(knapsack::full_tree_nodes(n)).c_str());

  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);

  // Table 3 echo.
  {
    auto tb = core::make_rwcp_etl_testbed();
    std::printf("\nTable 3 testbed (Figure 5 topology):\n%s\n",
                tb->net().describe().c_str());
  }

  // Sequential baseline on RWCP-Sun ("we ran the sequential version of the
  // 0-1 knapsack problem on RWCP-Sun").
  core::TestbedOptions default_opt;
  auto tb0 = core::make_rwcp_etl_testbed(default_opt);
  auto seq = run_once(tb0, inst, {{"rwcp-sun", 1}}, "1000", "16");
  const double seq_seconds = seq.app_seconds;

  core::TestbedOptions no_proxy;       // COMPaS used mpich ch_p4; O2K used
  no_proxy.rwcp_uses_proxy = false;    // vendor MPI — no proxy involved.
  core::TestbedOptions with_proxy;     // Local/wide-area used MPICH-G with
  with_proxy.rwcp_uses_proxy = true;   // the Nexus Proxy.
  core::TestbedOptions fw_open;        // "not use proxy": direct + firewall
  fw_open.rwcp_uses_proxy = false;     // temporarily opened.
  fw_open.open_rwcp_firewall = true;

  auto tb_for = [&](const core::TestbedOptions& o) {
    return core::make_rwcp_etl_testbed(o);
  };
  std::vector<SystemRun> runs;
  {
    auto tb = tb_for(no_proxy);
    runs.push_back(best_of_grid("COMPaS (8p, ch_p4-like direct)", no_proxy,
                                inst, core::placement_compas(tb)));
    runs.push_back(best_of_grid("ETL-O2K (8p, vendor-MPI-like direct)",
                                no_proxy, inst, core::placement_etl_o2k()));
    runs.push_back(best_of_grid("Local-area Cluster (12p, Nexus Proxy)",
                                with_proxy, inst,
                                core::placement_local_area(tb)));
    runs.push_back(best_of_grid("Wide-area Cluster (20p, Nexus Proxy)",
                                with_proxy, inst,
                                core::placement_wide_area(tb)));
    runs.push_back(best_of_grid("Wide-area Cluster (20p, no proxy, fw open)",
                                fw_open, inst, core::placement_wide_area(tb)));
  }

  TextTable table({"system", "procs", "exec time", "speedup", "best params"});
  table.add_row({"RWCP-Sun (sequential baseline)", "1",
                 format_duration_ms(seq_seconds * 1e3), "1.00", "-"});
  for (const SystemRun& run : runs) {
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2f", seq_seconds / run.seconds);
    table.add_row({run.name, std::to_string(run.nprocs),
                   format_duration_ms(run.seconds * 1e3), speedup,
                   run.best_params});
  }
  std::printf("%s", table.to_string().c_str());

  const double proxy_s = runs[3].seconds;
  const double direct_s = runs[4].seconds;
  std::printf("\nshape checks:\n");
  std::printf("  Nexus Proxy overhead on the wide-area cluster: %+.1f%% "
              "(paper: ~3.5%%, \"can be negligible\")\n",
              100.0 * (proxy_s - direct_s) / direct_s);
  std::printf("  wide-area (20p) vs local-area (12p): %.2fx faster "
              "(paper: adding ETL-O2K helps)\n",
              runs[2].seconds / runs[3].seconds);

  // Instrumented replay of the wide-area proxied system at its best
  // parameters. The metrics window and the trace cover exactly this one
  // run, so BENCH_table4.json carries nodes/sec, the steal-latency
  // histogram, and per-link byte counters for a single well-defined
  // configuration, and the chrome trace shows every proxy relay hop.
  {
    bench::TraceWindow window;
    if (prof_requested) prof::enable();
    auto tb = core::make_rwcp_etl_testbed(with_proxy);
    tb->net().enable_link_sampling(sim::from_sec(0.002));
    auto stats = run_once(tb, inst, core::placement_wide_area(tb),
                          runs[3].best_interval, runs[3].best_stealunit);
    if (prof_requested) {
      prof::disable();
      std::printf("\nhost-time profile of the traced wide-area run:\n%s",
                  tb->engine().profile().render().c_str());
      bench::write_prof_artifacts("table4", &tb->engine().profile());
    }

    std::printf("\nlink utilization over the traced run:\n%s",
                tb->net().utilization_ascii().c_str());

    bench::Report report("table4");
    report.set("instance_items", n);
    report.set("traced_system", runs[3].name);
    report.set("traced_params", runs[3].best_params);
    report.set("total_nodes", stats.total_nodes);
    report.set("app_seconds", stats.app_seconds);
    report.set("nodes_per_sec", static_cast<double>(stats.total_nodes) /
                                    stats.app_seconds);
    report.set("master_steals_handled", stats.master_steals_handled);
    report.set("seq_seconds", seq_seconds);
    report.set("proxy_overhead_pct", 100.0 * (proxy_s - direct_s) / direct_s);
    for (const SystemRun& run : runs) {
      json::Value r = json::Value::object();
      r.set("system", run.name);
      r.set("procs", run.nprocs);
      r.set("seconds", run.seconds);
      r.set("speedup", seq_seconds / run.seconds);
      r.set("params", run.best_params);
      report.add_row(std::move(r));
    }
    report.set("links", bench::link_traffic_json(tb->net()));
    report.set("link_utilization", tb->net().utilization_json());
    bench::finish_report(report, "table4");
  }
  return 0;
}
