// Google-benchmark: the REAL Nexus Proxy daemons on loopback TCP.
//
// Measures wall-clock throughput and round-trip latency of direct loopback
// links versus links relayed through the outer daemon (Fig 3 path) and
// through outer + inner (Fig 4 path). This is the engineering artifact of
// the paper running for real — the modern counterpart of Table 2, with the
// relay penalty coming from genuine copies and context switches rather than
// calibrated constants.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.hpp"
#include "nxproxy/client.hpp"
#include "nxproxy/daemon.hpp"

namespace wacs {
namespace {

/// Echo server on an ephemeral loopback port.
class EchoServer {
 public:
  EchoServer() {
    auto l = net::TcpListener::bind("127.0.0.1", 0);
    WACS_CHECK(l.ok());
    listener_ = std::move(*l);
    thread_ = std::thread([this] {
      while (true) {
        auto conn = listener_.accept();
        if (!conn.ok()) return;
        auto sock = std::make_shared<net::TcpSocket>(std::move(*conn));
        workers_.emplace_back([sock] {
          while (true) {
            auto chunk = sock->read_some(1 << 16);
            if (!chunk.ok()) return;
            if (!sock->write_all(*chunk).ok()) return;
          }
        });
      }
    });
  }
  ~EchoServer() {
    listener_.shutdown();
    thread_.join();
    for (auto& w : workers_) w.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  net::TcpListener listener_;
  std::thread thread_;
  std::vector<std::thread> workers_;
};

void pump_echo(net::TcpSocket& sock, std::size_t size,
               benchmark::State& state) {
  Bytes payload = pattern_bytes(size, 1);
  for (auto _ : state) {
    WACS_CHECK(sock.write_all(payload).ok());
    auto back = sock.read_exact(size);
    WACS_CHECK(back.ok());
    benchmark::DoNotOptimize(back->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size) * 2);
}

void BM_DirectLoopback(benchmark::State& state) {
  EchoServer server;
  auto sock = net::TcpSocket::dial({"127.0.0.1", server.port()});
  WACS_CHECK(sock.ok());
  pump_echo(*sock, static_cast<std::size_t>(state.range(0)), state);
  sock->shutdown();
}
BENCHMARK(BM_DirectLoopback)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_ViaOuterRelay(benchmark::State& state) {
  // Fig 3 path: client -> outer daemon -> echo server (one relay).
  EchoServer server;
  nxproxy::OuterDaemon outer("127.0.0.1", 0, "127.0.0.1");
  WACS_CHECK(outer.start().ok());
  auto sock =
      nxproxy::NXProxyConnect(outer.contact(), {"127.0.0.1", server.port()});
  WACS_CHECK(sock.ok());
  pump_echo(*sock, static_cast<std::size_t>(state.range(0)), state);
  sock->shutdown();
}
BENCHMARK(BM_ViaOuterRelay)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_ViaOuterAndInnerRelay(benchmark::State& state) {
  // Fig 4 path: remote -> outer -> inner -> bound client (two relays).
  nxproxy::OuterDaemon outer("127.0.0.1", 0, "127.0.0.1");
  nxproxy::InnerDaemon inner("127.0.0.1", 0);
  WACS_CHECK(outer.start().ok());
  WACS_CHECK(inner.start().ok());
  auto bound = nxproxy::NXProxyBind(outer.contact(), inner.contact());
  WACS_CHECK(bound.ok());

  // Echo loop behind the bound endpoint.
  std::thread echo([&bound] {
    auto accepted = nxproxy::NXProxyAccept(*bound);
    if (!accepted.ok()) return;
    auto& sock = accepted->first;
    while (true) {
      auto chunk = sock.read_some(1 << 16);
      if (!chunk.ok()) return;
      if (!sock.write_all(*chunk).ok()) return;
    }
  });

  auto sock = net::TcpSocket::dial(bound->public_contact);
  WACS_CHECK(sock.ok());
  pump_echo(*sock, static_cast<std::size_t>(state.range(0)), state);
  sock->shutdown();
  bound->listener.shutdown();
  echo.join();
}
BENCHMARK(BM_ViaOuterAndInnerRelay)->Arg(64)->Arg(4096)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace wacs

// Hand-rolled main instead of BENCHMARK_MAIN so this binary shares the
// bench-harness banner with the virtual-time benches.
int main(int argc, char** argv) {
  wacs::bench::print_header(
      "Real Nexus Proxy relay on loopback TCP (wall clock)",
      "Tanaka et al., HPDC 2000, Table 2 — genuine daemons, not the "
      "calibrated simulator");
  wacs::bench::print_note(
      "wall-clock numbers vary by machine; only the direct/relayed shape "
      "is comparable across runs");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
