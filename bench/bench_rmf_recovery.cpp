// Crash-recovery benchmark — the Table 4 wide-area configuration with the
// recovery-enabled RMF control plane (DESIGN.md §13) under mid-run crashes
// of each control daemon's host.
//
// bench_fault_knapsack measures data-plane faults (WAN flap, proxy death);
// this bench measures CONTROL-plane faults, which the legacy stack cannot
// survive at all: the gatekeeper host (job manager state), the allocator
// host (grant ledger; it shares rwcp-inner with the inner relay), and one
// Q server host. Each crash lands mid-search and the host restarts 2s
// later; the journaled state is replayed, live parts are re-submitted with
// their original sequence numbers (the Q servers' dedup absorbs the
// duplicates), and the job must still reach the optimum with no part run
// twice.
//
// Reported per scenario: makespan and overhead vs the fault-free
// recovery-enabled baseline, the crash -> first-resubmit gap (how long the
// control plane took to reconstruct itself, including the 2s host
// downtime), and the exactly-once evidence (dedup counters, parts lost on
// the restarted Q server, slaves reclaimed by the master).
//
// The fault-free recovery-enabled run is itself compared against the
// recovery-DISABLED baseline: the journal costs zero virtual time (it is
// durable state, not wire traffic), so the only admissible overhead is the
// handful of extra wire bytes carried by the recovery protocol fields.
//
// Every run is deterministic: the gatekeeper-crash scenario is replayed
// under the same seed and must reproduce bit-for-bit.
#include <cstdlib>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "rmf/gatekeeper.hpp"
#include "simnet/fault.hpp"

namespace wacs {
namespace {

constexpr std::uint64_t kSeed = 20000613;  // HPDC 2000 vintage

rmf::JobSpec wide_area_spec(const knapsack::Instance& inst) {
  rmf::JobSpec spec;
  spec.name = "recovery-bench";
  spec.task = knapsack::kParallelTask;
  // UNPINNED on purpose: allocator-granted placements put a real grant
  // ledger in the allocator journal, so its crash scenario exercises
  // replay (a pinned job bypasses the allocator entirely). 32 CPUs
  // fastest-first reaches rwcp-sun, etl-sun, etl-o2k, compas01, compas02 —
  // the same wide-area spread as Table 4.
  spec.nprocs = 32;
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  // A wedged recovery surfaces as a clean deadline failure (and a bench
  // abort) instead of a silent hang.
  spec.deadline_seconds = 600;
  return spec;
}

struct RunResult {
  double wall_seconds = 0;  ///< submit -> completion
  double app_seconds = 0;   ///< the search itself (master's clock)
  knapsack::RunStats stats;
  std::uint64_t jobs_recovered = 0;
  std::uint64_t journal_replays = 0;  // gk + allocator + Q servers
  std::uint64_t submits_deduped = 0;
  std::uint64_t dones_deduped = 0;
  std::uint64_t parts_lost_on_restart = 0;
  double crash_to_resubmit_s = 0;  ///< gk crash -> first journaled resubmit
};

core::Testbed make_grid(bool recovery) {
  auto tb = core::make_rwcp_etl_testbed();
  tb->faults(kSeed);
  if (recovery) tb->enable_recovery();
  return tb;
}

RunResult run_job(core::Testbed& tb, const knapsack::Instance& inst,
                  const std::string& crashed_host = "") {
  auto result = tb->run_job("rwcp-sun", wide_area_spec(inst));
  WACS_CHECK_MSG(result.ok(), "submission failed: " + result.error().message());
  WACS_CHECK_MSG(result->ok, "job failed: " + result->error);
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  RunResult out;
  out.wall_seconds = result->wall_seconds;
  out.app_seconds = stats->app_seconds;
  out.stats = *stats;
  out.jobs_recovered = tb->gatekeeper()->jobs_recovered();
  out.dones_deduped = tb->gatekeeper()->dones_deduped();
  out.journal_replays =
      tb->gatekeeper()->journal_replays() + tb->allocator()->journal_replays();
  for (const auto& q : tb->qservers()) {
    out.journal_replays += q->journal_replays();
    out.submits_deduped += q->submits_deduped();
    out.parts_lost_on_restart += q->parts_lost_on_restart();
  }
  if (!crashed_host.empty() &&
      tb->gatekeeper()->first_resubmit_after_replay() != 0) {
    out.crash_to_resubmit_s =
        sim::to_sec(tb->gatekeeper()->first_resubmit_after_replay() -
                    tb->fault_injector()->last_crash_time(crashed_host));
  }
  return out;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(20, 10, 30);
  bench::print_header(
      "Crash recovery: journaled RMF control plane under mid-run host loss",
      "robustness extension of Tanaka et al., HPDC 2000, Table 4 setup");
  std::printf("instance: %d items -> %s nodes; 32 allocator-granted CPUs, "
              "Nexus Proxy; seed %llu (set WACS_KNAPSACK_N to change size)\n",
              n, format_count(knapsack::full_tree_nodes(n)).c_str(),
              static_cast<unsigned long long>(kSeed));

  bench::maybe_enable_tracing();
  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  const std::int64_t optimum = inst.total_profit();

  // Legacy fault-free run: what the recovery machinery itself costs.
  auto tb_legacy = make_grid(/*recovery=*/false);
  const RunResult legacy = run_job(tb_legacy, inst);
  WACS_CHECK(legacy.stats.best_value == optimum);

  // Recovery-enabled fault-free baseline; its timing calibrates where
  // "mid-search" is for the crash schedules below.
  auto tb0 = make_grid(/*recovery=*/true);
  const RunResult base = run_job(tb0, inst);
  WACS_CHECK(base.stats.best_value == optimum);
  WACS_CHECK_MSG(base.journal_replays == 0 && base.submits_deduped == 0,
                 "fault-free run exercised recovery paths");
  const double app_start = base.wall_seconds - base.app_seconds;
  const double mid = app_start + 0.5 * base.app_seconds;
  std::printf("recovery-enabled fault-free run: %.3fs (legacy %.3fs, "
              "%+.2f%% wire-format cost); crashes land at t=%.3fs, "
              "restarts 2s later\n",
              base.wall_seconds, legacy.wall_seconds,
              100.0 * (base.wall_seconds - legacy.wall_seconds) /
                  legacy.wall_seconds,
              mid);

  struct Row {
    const char* name;
    const char* host;
    RunResult r;
  };
  std::vector<Row> rows = {{"gatekeeper crash", "rwcp-gate", {}},
                           {"allocator crash", "rwcp-inner", {}},
                           {"Q server crash", "compas02", {}}};
  for (Row& row : rows) {
    auto tb = make_grid(/*recovery=*/true);
    tb->faults().plan_host_crash(row.host, sim::from_sec(mid));
    tb->faults().plan_host_restart(row.host, sim::from_sec(mid + 2.0));
    row.r = run_job(tb, inst, row.host);
    WACS_CHECK_MSG(row.r.stats.best_value == optimum,
                   "crashed run lost the optimum");
    WACS_CHECK_MSG(row.r.journal_replays >= 1,
                   "crashed run never replayed a journal");
  }

  // Determinism: the same seed must reproduce the gatekeeper-crash run
  // bit-for-bit — journal replay and dedup included.
  {
    auto tb = make_grid(/*recovery=*/true);
    tb->faults().plan_host_crash("rwcp-gate", sim::from_sec(mid));
    tb->faults().plan_host_restart("rwcp-gate", sim::from_sec(mid + 2.0));
    const RunResult replay = run_job(tb, inst, "rwcp-gate");
    const RunResult& first = rows[0].r;
    WACS_CHECK_MSG(replay.wall_seconds == first.wall_seconds &&
                       replay.app_seconds == first.app_seconds &&
                       replay.stats.total_nodes == first.stats.total_nodes &&
                       replay.submits_deduped == first.submits_deduped &&
                       replay.dones_deduped == first.dones_deduped &&
                       replay.jobs_recovered == first.jobs_recovered,
                   "recovery replay diverged: the crash-recovery path is "
                   "not deterministic under this seed");
    std::printf("determinism: gatekeeper-crash scenario replayed "
                "identically (makespan %.6fs, %llu dedups)\n\n",
                replay.wall_seconds,
                static_cast<unsigned long long>(replay.submits_deduped +
                                                replay.dones_deduped));
  }

  TextTable table({"scenario", "makespan", "overhead", "crash->resubmit",
                   "jobs recovered", "dedups (sub/done)", "parts lost",
                   "slaves lost"});
  auto add = [&](const char* name, const RunResult& r) {
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.1f%%",
                  100.0 * (r.wall_seconds - base.wall_seconds) /
                      base.wall_seconds);
    char gap[32];
    std::snprintf(gap, sizeof gap, "%.3fs", r.crash_to_resubmit_s);
    table.add_row({name, format_duration_ms(r.wall_seconds * 1e3),
                   r.wall_seconds == base.wall_seconds ? "-" : overhead,
                   r.crash_to_resubmit_s == 0 ? "-" : gap,
                   std::to_string(r.jobs_recovered),
                   std::to_string(r.submits_deduped) + "/" +
                       std::to_string(r.dones_deduped),
                   std::to_string(r.parts_lost_on_restart),
                   std::to_string(r.stats.slaves_lost)});
  };
  add("no-fault baseline", base);
  for (const Row& row : rows) add(row.name, row.r);
  std::printf("%s", table.to_string().c_str());

  std::printf("\nshape checks:\n");
  std::printf("  every crashed run still found the optimum (%lld) and "
              "replayed >=1 journal — recovery is lossless\n",
              static_cast<long long>(optimum));
  std::printf("  duplicate submissions were absorbed by sequence-number "
              "dedup — no part ran twice\n");

  bench::Report report("rmf_recovery");
  report.set("instance_items", n);
  report.set("seed", kSeed);
  report.set("legacy_wall_seconds", legacy.wall_seconds);
  report.set("recovery_wire_overhead_pct",
             100.0 * (base.wall_seconds - legacy.wall_seconds) /
                 legacy.wall_seconds);
  auto row_of = [&](const char* name, const RunResult& r) {
    json::Value row = json::Value::object();
    row.set("scenario", name);
    row.set("wall_seconds", r.wall_seconds);
    row.set("app_seconds", r.app_seconds);
    row.set("overhead_pct", 100.0 * (r.wall_seconds - base.wall_seconds) /
                                base.wall_seconds);
    row.set("crash_to_resubmit_s", r.crash_to_resubmit_s);
    row.set("jobs_recovered", r.jobs_recovered);
    row.set("journal_replays", r.journal_replays);
    row.set("submits_deduped", r.submits_deduped);
    row.set("dones_deduped", r.dones_deduped);
    row.set("parts_lost_on_restart", r.parts_lost_on_restart);
    row.set("slaves_lost", r.stats.slaves_lost);
    return row;
  };
  report.add_row(row_of("no-fault baseline", base));
  for (const Row& row : rows) report.add_row(row_of(row.name, row.r));
  bench::finish_report(report, "rmf_recovery");
  return 0;
}
