// Fault-injection benchmark — the Table 4 wide-area configuration under
// mid-run wide-area faults.
//
// The paper measures the firewall-compliant wide-area cluster on a healthy
// IMnet. This bench asks the robustness question the paper leaves open: what
// does a WAN flap or a Nexus Proxy outer-daemon death cost, and does the
// stack degrade gracefully instead of hanging? Three faulted runs of the
// 20-processor wide-area knapsack are compared against the fault-free
// baseline:
//
//   wan-flap:     the IMnet goes down mid-search and comes back. Every
//                 proxied RWCP<->ETL connection resets; the master reclaims
//                 the work shipped to the vanished ETL slaves and finishes
//                 on the RWCP processors.
//   outer-crash:  the DMZ host running the outer proxy server crashes
//                 mid-search and restarts; the outer daemon re-binds its
//                 control port and every registered public port.
//   combined:     both, plus the restart hook proving bind registrations
//                 survive.
//
// After the combined run, a second job on the *same* grid verifies the
// restarted outer server still relays: its makespan must match the
// fault-free baseline exactly (determinism) — full recovery.
//
// Every run is deterministic: same seed -> same makespan, same recovery
// counters (checked by running the combined scenario twice).
#include <cstdlib>

#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "knapsack/parallel.hpp"
#include "knapsack/search.hpp"
#include "simnet/fault.hpp"

namespace wacs {
namespace {

constexpr std::uint64_t kSeed = 20000801;  // HPDC 2000 vintage

rmf::JobSpec wide_area_spec(const knapsack::Instance& inst,
                            const core::Testbed& tb) {
  rmf::JobSpec spec;
  spec.name = "fault-bench";
  spec.task = knapsack::kParallelTask;
  spec.placements = core::placement_wide_area(tb);
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;
  spec.args = {{knapsack::args::kInterval, "1000"},
               {knapsack::args::kStealUnit, "16"},
               {knapsack::args::kBackUnit, "64"},
               {knapsack::args::kSecPerNode, "0.000001"}};
  spec.input_files[knapsack::kInstanceFile] = inst.encode();
  return spec;
}

struct RunResult {
  double wall_seconds = 0;   ///< submit -> completion
  double app_seconds = 0;    ///< the search itself (master's clock)
  knapsack::RunStats stats;
  std::uint64_t ranks_lost = 0;      // gatekeeper view
  std::uint64_t parts_requeued = 0;
  sim::FaultCounters faults;
};

RunResult run_job(core::Testbed& tb, const knapsack::Instance& inst) {
  auto result = tb->run_job("rwcp-sun", wide_area_spec(inst, tb));
  WACS_CHECK_MSG(result.ok(), "submission failed: " + result.error().message());
  WACS_CHECK_MSG(result->ok, "job failed: " + result->error);
  auto stats = knapsack::RunStats::decode(result->output);
  WACS_CHECK(stats.ok());
  RunResult out;
  out.wall_seconds = result->wall_seconds;
  out.app_seconds = stats->app_seconds;
  out.stats = *stats;
  out.ranks_lost = tb->gatekeeper()->ranks_lost();
  out.parts_requeued = tb->gatekeeper()->parts_requeued();
  if (auto* fault = tb->fault_injector(); fault != nullptr) {
    out.faults = fault->counters();
  }
  return out;
}

enum Scenario { kWanFlap = 1, kOuterCrash = 2 };

/// Lays the fault plan inside the search window [app_start, app_end] of the
/// fault-free pilot — the runs are deterministic, so the window transfers.
void plan_faults(core::GridSystem& grid, int scenario, double app_start,
                 double app_len) {
  sim::FaultInjector& faults = grid.faults(kSeed);
  if (scenario & kWanFlap) {
    faults.plan_link_flap("imnet", sim::from_sec(app_start + 0.25 * app_len),
                          sim::from_sec(app_start + 0.40 * app_len));
  }
  if (scenario & kOuterCrash) {
    faults.plan_host_crash("rwcp-outer",
                           sim::from_sec(app_start + 0.55 * app_len));
    faults.plan_host_restart("rwcp-outer",
                             sim::from_sec(app_start + 0.65 * app_len));
  }
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  const int n = bench::knapsack_n(20, 10, 30);
  bench::print_header(
      "Fault injection: wide-area knapsack under WAN flap + proxy restart",
      "robustness extension of Tanaka et al., HPDC 2000, Table 4 setup");
  std::printf("instance: %d items -> %s nodes; 20 procs, Nexus Proxy; "
              "seed %llu (set WACS_KNAPSACK_N to change size)\n",
              n, format_count(knapsack::full_tree_nodes(n)).c_str(),
              static_cast<unsigned long long>(kSeed));

  bench::maybe_enable_tracing();
  knapsack::Instance inst = knapsack::no_prune_instance(n, 2);
  const std::int64_t optimum = inst.total_profit();

  // Fault-free baseline; its timing calibrates where "mid-search" is.
  auto tb0 = core::make_rwcp_etl_testbed();
  const RunResult base = run_job(tb0, inst);
  WACS_CHECK(base.stats.best_value == optimum);
  const double app_start = base.wall_seconds - base.app_seconds;
  const double app_len = base.app_seconds;

  struct Row {
    const char* name;
    int scenario;
    RunResult r;
  };
  std::vector<Row> rows = {{"wan-flap", kWanFlap, {}},
                           {"outer-crash+restart", kOuterCrash, {}},
                           {"combined", kWanFlap | kOuterCrash, {}}};
  for (Row& row : rows) {
    auto tb = core::make_rwcp_etl_testbed();
    plan_faults(*tb, row.scenario, app_start, app_len);
    row.r = run_job(tb, inst);
    WACS_CHECK_MSG(row.r.stats.best_value == optimum,
                   "faulted run lost the optimum");
    if (row.scenario == (kWanFlap | kOuterCrash)) {
      // Recovery proof: a second job through the restarted outer server on
      // the same grid must behave exactly like the fault-free baseline.
      const RunResult again = run_job(tb, inst);
      WACS_CHECK(again.stats.best_value == optimum);
      WACS_CHECK_MSG(again.stats.slaves_lost == 0,
                     "post-restart run saw losses");
      std::printf("post-restart job on the combined-fault grid: %.3fs "
                  "(baseline %.3fs) — outer server fully recovered\n",
                  again.app_seconds, base.app_seconds);
    }
  }

  // Determinism: the same seed must reproduce the combined run bit-for-bit.
  {
    auto tb = core::make_rwcp_etl_testbed();
    plan_faults(*tb, kWanFlap | kOuterCrash, app_start, app_len);
    const RunResult replay = run_job(tb, inst);
    const RunResult& first = rows[2].r;
    WACS_CHECK_MSG(replay.wall_seconds == first.wall_seconds &&
                       replay.app_seconds == first.app_seconds &&
                       replay.stats.total_nodes == first.stats.total_nodes &&
                       replay.stats.slaves_lost == first.stats.slaves_lost &&
                       replay.stats.grants_reclaimed ==
                           first.stats.grants_reclaimed &&
                       replay.faults.connections_reset ==
                           first.faults.connections_reset,
                   "fault replay diverged: the simulation is not "
                   "deterministic under this seed");
    std::printf("determinism: combined scenario replayed identically "
                "(makespan %.6fs, %llu resets)\n\n",
                replay.app_seconds,
                static_cast<unsigned long long>(
                    replay.faults.connections_reset));
  }

  TextTable table({"scenario", "makespan", "overhead", "slaves lost",
                   "grants reclaimed", "conns reset", "ranks lost (gk)"});
  auto add = [&](const char* name, const RunResult& r) {
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.1f%%",
                  100.0 * (r.app_seconds - base.app_seconds) /
                      base.app_seconds);
    table.add_row({name, format_duration_ms(r.app_seconds * 1e3),
                   r.app_seconds == base.app_seconds ? "-" : overhead,
                   std::to_string(r.stats.slaves_lost),
                   std::to_string(r.stats.grants_reclaimed),
                   std::to_string(r.faults.connections_reset),
                   std::to_string(r.ranks_lost)});
  };
  add("no-fault baseline", base);
  for (const Row& row : rows) add(row.name, row.r);
  std::printf("%s", table.to_string().c_str());

  std::printf("\nshape checks:\n");
  std::printf("  every faulted run still found the optimum (%lld) — work "
              "reclamation is lossless\n", static_cast<long long>(optimum));
  std::printf("  no run hung: every blocked operation surfaced a typed "
              "error under fault\n");

  bench::Report report("fault_knapsack");
  report.set("instance_items", n);
  report.set("seed", kSeed);
  auto row_of = [&](const char* name, const RunResult& r) {
    json::Value row = json::Value::object();
    row.set("scenario", name);
    row.set("app_seconds", r.app_seconds);
    row.set("overhead_pct", 100.0 * (r.app_seconds - base.app_seconds) /
                                base.app_seconds);
    row.set("slaves_lost", r.stats.slaves_lost);
    row.set("grants_reclaimed", r.stats.grants_reclaimed);
    row.set("connections_reset", r.faults.connections_reset);
    return row;
  };
  report.add_row(row_of("no-fault baseline", base));
  for (const Row& row : rows) report.add_row(row_of(row.name, row.r));
  bench::finish_report(report, "fault_knapsack");
  return 0;
}
