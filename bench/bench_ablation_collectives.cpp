// Ablation — linear vs. WAN-aware (MagPIe-style) collectives.
//
// The paper cites MagPIe [Kielmann et al., PPoPP 99] as the collective-
// communication counterpart of its wide-area work. This bench measures what
// site-aware collectives buy on the reproduced testbeds: per-operation
// latency and bytes crossing the 1.5 Mbps IMnet, for broadcast and
// allreduce, on the Figure 5 (two-site) and Figure 1 (three-site) systems.
#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "mpi/comm.hpp"

namespace wacs {
namespace {

struct Sample {
  double seconds_per_op = 0;
  std::uint64_t wan_bytes = 0;
};

constexpr int kOps = 16;

Sample measure(bool three_site, bool hierarchical, std::size_t payload,
               bool do_bcast) {
  auto tb = three_site ? core::make_three_site_testbed()
                       : core::make_rwcp_etl_testbed();
  double seconds = 0;
  tb->registry().register_task("coll", [&](rmf::JobContext& ctx) {
    auto comm = mpi::Comm::init(ctx);
    comm->barrier();
    const sim::Time start = ctx.host->network().engine().now();
    Bytes data = pattern_bytes(payload, 1);
    for (int i = 0; i < kOps; ++i) {
      if (do_bcast) {
        Bytes in = comm->rank() == 0 ? data : Bytes{};
        Bytes out = hierarchical ? comm->bcast_wan_aware(0, std::move(in))
                                 : comm->bcast(0, std::move(in));
        WACS_CHECK(out.size() == payload);
      } else {
        const std::int64_t sum =
            hierarchical ? comm->allreduce_sum_wan_aware(1)
                         : comm->allreduce_sum(1);
        WACS_CHECK(sum == comm->size());
      }
    }
    // A bcast root finishes as soon as its sends are queued, so the cost
    // lives at the receivers: take the max elapsed time over all ranks
    // (via the linear allreduce, a constant overhead on both variants).
    const std::int64_t my_elapsed =
        ctx.host->network().engine().now() - start;
    const std::int64_t slowest = comm->allreduce_max(my_elapsed);
    if (comm->rank() == 0) {
      seconds = sim::to_sec(slowest) / kOps;
    }
    comm->finalize();
  });

  rmf::JobSpec spec;
  spec.name = "coll";
  spec.task = "coll";
  spec.placements = {{"rwcp-sun", 2}, {"compas01", 2}, {"etl-o2k", 4}};
  if (three_site) spec.placements.push_back({"titech-smp", 4});
  spec.nprocs = 0;
  for (const auto& p : spec.placements) spec.nprocs += p.count;

  auto wan_bytes_now = [&] {
    auto path = tb->net().route(tb->net().host("rwcp-sun"),
                                tb->net().host("etl-o2k"));
    std::uint64_t total = (*path)[1]->bytes_carried();
    if (three_site) {
      auto path2 = tb->net().route(tb->net().host("rwcp-sun"),
                                   tb->net().host("titech-smp"));
      total += (*path2)[1]->bytes_carried();
      auto path3 = tb->net().route(tb->net().host("etl-o2k"),
                                   tb->net().host("titech-smp"));
      total += (*path3)[1]->bytes_carried();
    }
    return total;
  };

  const std::uint64_t before = wan_bytes_now();
  auto result = tb->run_job("rwcp-sun", spec);
  WACS_CHECK_MSG(result.ok() && result->ok, "collective bench job failed");
  Sample out;
  out.seconds_per_op = seconds;
  out.wan_bytes = wan_bytes_now() - before;
  return out;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  bench::print_header(
      "Ablation: linear vs WAN-aware collectives (MagPIe-style)",
      "related-work axis of Tanaka et al. (their reference [7])");

  bench::maybe_enable_tracing();
  TextTable table({"testbed", "collective", "payload", "algorithm",
                   "time/op", "WAN bytes (whole job)"});
  bench::Report report("ablation_collectives");
  struct Config {
    bool three_site;
    bool bcast;
    std::size_t payload;
    const char* label;
  };
  const Config configs[] = {
      {false, true, 100000, "bcast 100KB"},
      {false, false, 8, "allreduce i64"},
      {true, true, 100000, "bcast 100KB"},
      {true, false, 8, "allreduce i64"},
  };
  for (const Config& c : configs) {
    Sample linear = measure(c.three_site, false, c.payload, c.bcast);
    Sample hier = measure(c.three_site, true, c.payload, c.bcast);
    const char* site_label = c.three_site ? "three-site (Fig 1)"
                                          : "two-site (Fig 5)";
    table.add_row({site_label, c.label,
                   c.payload >= 1000 ? "100 KB" : "8 B", "linear",
                   format_duration_ms(linear.seconds_per_op * 1e3),
                   format_count(linear.wan_bytes)});
    table.add_row({"", "", "", "WAN-aware",
                   format_duration_ms(hier.seconds_per_op * 1e3),
                   format_count(hier.wan_bytes)});
    for (const auto& [algo, s] :
         {std::pair<const char*, const Sample&>{"linear", linear},
          std::pair<const char*, const Sample&>{"wan-aware", hier}}) {
      json::Value r = json::Value::object();
      r.set("testbed", site_label);
      r.set("collective", c.label);
      r.set("algorithm", algo);
      r.set("seconds_per_op", s.seconds_per_op);
      r.set("wan_bytes", s.wan_bytes);
      report.add_row(std::move(r));
    }
  }
  std::printf("%s", table.to_string().c_str());

  // Instrumented replay of the headline case (two-site WAN-aware bcast):
  // the trace and metrics snapshot cover only this run, so the span tree
  // shows where the site-coordinator stages spend their time.
  {
    bench::TraceWindow window;
    Sample replay = measure(false, true, 100000, true);
    json::Value v = json::Value::object();
    v.set("testbed", "two-site (Fig 5)");
    v.set("collective", "bcast 100KB");
    v.set("algorithm", "wan-aware");
    v.set("seconds_per_op", replay.seconds_per_op);
    v.set("wan_bytes", replay.wan_bytes);
    report.set("traced_replay", std::move(v));
  }
  bench::finish_report(report, "ablation_collectives");
  std::printf(
      "\nreading: WAN-aware collectives cut IMnet traffic ~4x (one crossing\n"
      "per remote site instead of one per remote rank). For tiny payloads\n"
      "the latency can INCREASE: with the paper's process-global proxy\n"
      "environment even intra-site hops relay through the outer server, so\n"
      "the extra member->coordinator stage costs a full ~25 ms proxied hop.\n"
      "MagPIe's assumption (cheap local network) does not hold behind a\n"
      "Nexus Proxy. The win is bandwidth, which is what the 1.5 Mbps IMnet\n"
      "actually runs out of.\n");
  return 0;
}
