// GASS staging — striped file transfers across the firewall-compliant WAN.
//
// Sweeps file size × stripe count × path (LAN, direct WAN, proxied WAN)
// and reports per-transfer throughput, then measures what the
// content-addressed site cache buys: a cold stage pulls the object across
// the IMnet once, a warm stage is a LAN cache hit. The headline shape is
// the GridFTP effect on the proxied path: one windowed stream is capped by
// the relay-inflated RTT well below the 1.5 Mbps WAN, and parallel stripes
// recover the difference; on the LAN and the direct WAN a single stream
// already saturates, so striping is flat there.
#include "bench_util.hpp"
#include "core/testbeds.hpp"
#include "gass/client.hpp"
#include "gass/server.hpp"

namespace wacs {
namespace {

enum class Path { kLan, kWanDirect, kWanProxied };

const char* path_name(Path p) {
  switch (p) {
    case Path::kLan: return "lan";
    case Path::kWanDirect: return "wan-direct";
    case Path::kWanProxied: return "wan-proxied";
  }
  return "?";
}

/// One measured transfer on a fresh testbed: seed the object, fetch it once
/// over the requested path with `stripes` streams, return the fetch stats.
gass::TransferStats measure(Path path, std::size_t size, int stripes) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes data = pattern_bytes(size, size ^ 0x5a);

  // Where the object lives and who fetches it:
  //   lan         compas01    <- rwcp site server (same-site dial)
  //   wan-direct  rwcp-sun    <- etl site server (etl-sun is directly
  //                              reachable through ETL's standing allows)
  //   wan-proxied etl-sun     <- rwcp site server's public contact (the
  //                              passive-open relay chain at RWCP)
  const char* origin_site = path == Path::kWanDirect ? "etl" : "rwcp";
  const char* put_host = path == Path::kWanDirect ? "etl-sun" : "rwcp-sun";
  const char* fetch_host = path == Path::kLan        ? "compas01"
                           : path == Path::kWanDirect ? "rwcp-sun"
                                                      : "etl-sun";

  gass::GassServer* server = tb->gass_server_for(origin_site);
  Result<gass::GassUrl> url(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("seed", [&](sim::Process& self) {
    gass::GassClient client(tb->net().host(put_host), Env{});
    url = client.put(self, server->contact(), data);
  });
  tb->engine().run();
  WACS_CHECK_MSG(url.ok(), url.error().to_string());
  if (path != Path::kWanProxied) url->server = server->contact();

  gass::TransferStats stats;
  Result<Bytes> fetched(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("fetch", [&](sim::Process& self) {
    gass::GassClient client(tb->net().host(fetch_host), Env{});
    gass::TransferOptions opts;
    opts.stripes = stripes;
    fetched = client.fetch(self, *url, opts, &stats);
  });
  tb->engine().run();
  WACS_CHECK_MSG(fetched.ok(), fetched.error().to_string());
  WACS_CHECK_MSG(*fetched == data, "staged bytes corrupted");
  return stats;
}

struct CacheSample {
  double cold_s = 0;  ///< first stage at the remote site (WAN pull-through)
  double warm_s = 0;  ///< second stage, same site (LAN cache hit)
  std::uint64_t wan_bytes = 0;  ///< IMnet bytes across both stages
  std::uint64_t pull_throughs = 0;
};

std::uint64_t wan_bytes_now(core::GridSystem& g) {
  std::uint64_t total = 0;
  for (const sim::Link* link : g.net().all_links()) {
    if (link->params().name == "imnet") total += link->bytes_carried();
  }
  return total;
}

CacheSample measure_cache(std::size_t size) {
  auto tb = core::make_rwcp_etl_testbed();
  const Bytes data = pattern_bytes(size, 77);

  Result<gass::GassUrl> origin(Error(ErrorCode::kInternal, "unset"));
  tb->engine().spawn("seed", [&](sim::Process& self) {
    gass::GassClient client(tb->net().host("rwcp-sun"), Env{});
    origin =
        client.put(self, tb->gass_server_for("rwcp")->contact(), data);
  });
  tb->engine().run();
  WACS_CHECK(origin.ok());

  Env etl_env;
  etl_env.set(env_keys::kGassServer,
              tb->gass_server_for("etl")->contact().to_string());
  CacheSample out;
  const std::uint64_t wan_before = wan_bytes_now(*tb.grid);
  tb->engine().spawn("stage", [&](sim::Process& self) {
    gass::TransferStats cold, warm;
    gass::GassClient first(tb->net().host("etl-o2k"), etl_env);
    WACS_CHECK(first.stage(self, *origin, {}, &cold).ok());
    gass::GassClient second(tb->net().host("etl-sun"), etl_env);
    WACS_CHECK(second.stage(self, *origin, {}, &warm).ok());
    out.cold_s = cold.seconds;
    out.warm_s = warm.seconds;
  });
  tb->engine().run();
  out.wan_bytes = wan_bytes_now(*tb.grid) - wan_before;
  out.pull_throughs = tb->gass_server_for("etl")->pull_throughs();
  return out;
}

}  // namespace
}  // namespace wacs

int main() {
  using namespace wacs;
  bench::print_header(
      "GASS staging: striped transfers and the inner-site cache",
      "staging substrate of Tanaka et al., HPDC 2000 (GASS + the GridFTP "
      "parallel-streams idea)");
  bench::maybe_enable_tracing();

  bench::Report report("gass_staging");
  TextTable table({"path", "size", "stripes", "time", "throughput"});
  const std::size_t sizes[] = {64 * 1024, 256 * 1024};
  const int stripe_counts[] = {1, 2, 4, 8};
  double proxied_thr[2][4] = {};  // [size][stripe] for the shape checks

  for (Path path : {Path::kLan, Path::kWanDirect, Path::kWanProxied}) {
    int si = 0;
    for (std::size_t size : sizes) {
      int ki = 0;
      for (int stripes : stripe_counts) {
        const gass::TransferStats stats = measure(path, size, stripes);
        const double thr = static_cast<double>(size) / stats.seconds;
        if (path == Path::kWanProxied) proxied_thr[si][ki] = thr;
        table.add_row({path_name(path), format_count(size),
                       std::to_string(stripes),
                       format_duration_ms(stats.seconds * 1e3),
                       format_bandwidth(thr)});
        json::Value r = json::Value::object();
        r.set("path", path_name(path));
        r.set("size_bytes", static_cast<std::int64_t>(size));
        r.set("stripes", stripes);
        r.set("seconds", stats.seconds);
        r.set("throughput_bps", thr);
        report.add_row(std::move(r));
        ++ki;
      }
      ++si;
    }
  }
  std::printf("%s", table.to_string().c_str());

  // --- cache: cold pull-through vs warm LAN hit --------------------------
  const CacheSample cache = measure_cache(256 * 1024);
  std::printf("\nsite cache (256 KB object staged twice at ETL):\n");
  std::printf("  cold stage (WAN pull-through): %s\n",
              format_duration_ms(cache.cold_s * 1e3).c_str());
  std::printf("  warm stage (LAN cache hit)   : %s  (%.1fx faster)\n",
              format_duration_ms(cache.warm_s * 1e3).c_str(),
              cache.cold_s / cache.warm_s);
  std::printf("  IMnet bytes for both stages  : %s (object: %s)\n",
              format_count(cache.wan_bytes).c_str(),
              format_count(256 * 1024).c_str());
  report.set("cache_cold_seconds", cache.cold_s);
  report.set("cache_warm_seconds", cache.warm_s);
  report.set("cache_wan_bytes", cache.wan_bytes);
  report.set("cache_pull_throughs", cache.pull_throughs);
  WACS_CHECK_MSG(cache.pull_throughs == 1,
                 "cache must cross the WAN exactly once");
  WACS_CHECK_MSG(cache.wan_bytes < 2 * 256 * 1024,
                 "warm stage must not re-cross the WAN");

  // --- instrumented replay: the headline configuration -------------------
  {
    bench::TraceWindow window;
    const gass::TransferStats replay =
        measure(Path::kWanProxied, 256 * 1024, 4);
    report.set("traced_replay",
               [&] {
                 json::Value v = json::Value::object();
                 v.set("path", "wan-proxied");
                 v.set("size_bytes", 256 * 1024);
                 v.set("stripes", 4);
                 v.set("seconds", replay.seconds);
                 return v;
               }());
  }

  // Shape checks (acceptance: striping strictly beats one stream on the
  // proxied path for multi-chunk files, deterministically).
  std::printf("\nshape checks:\n");
  for (int si = 0; si < 2; ++si) {
    const double gain = proxied_thr[si][2] / proxied_thr[si][0];
    std::printf("  proxied %s: 4-stripe / 1-stripe throughput = %.2fx\n",
                format_count(sizes[si]).c_str(), gain);
    WACS_CHECK_MSG(proxied_thr[si][2] > proxied_thr[si][0],
                   "striping must strictly beat one stream on the proxied "
                   "path");
  }
  report.set("striping_gain_64k", proxied_thr[0][2] / proxied_thr[0][0]);
  report.set("striping_gain_256k", proxied_thr[1][2] / proxied_thr[1][0]);
  std::printf(
      "  one stream is window-capped at ~window*chunk/RTT with the relay\n"
      "  inflating RTT; stripes multiply the in-flight window until the\n"
      "  1.5 Mbps IMnet itself is the bottleneck. LAN and direct-WAN rows\n"
      "  saturate at one stripe, so striping specifically repairs the\n"
      "  firewall-relay penalty.\n");

  bench::finish_report(report, "gass_staging");
  return 0;
}
