// MiniMPI: a small MPI subset over the nexus communication layer — the
// reproduction's stand-in for MPICH-G.
//
// Point-to-point messages carry (source, tag, payload) with MPI matching
// semantics (ANY_SOURCE / ANY_TAG wildcards, per-pair FIFO ordering).
// Channels are unidirectional and created lazily on first send, exactly like
// Nexus startpoint→endpoint links: an A→B message and its B→A reply travel
// two different connections, which is why the paper's proxied latencies
// behave the way they do (see bench_table2).
//
// Collectives are linear (root-centric) — adequate at the paper's 20
// processes and easy to reason about.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/telemetry.hpp"
#include "rmf/job.hpp"
#include "simnet/waitq.hpp"

namespace wacs::mpi {

/// MPI_COMM_WORLD for one rank of a running job.
class Comm {
 public:
  static constexpr int kAnySource = -1;
  static constexpr int kAnyTag = -1;
  /// Application tags must stay below this; higher tags are reserved for
  /// collectives (ANY_TAG never matches a reserved tag).
  static constexpr int kMaxAppTag = 1000000;

  struct RecvInfo {
    int source = -1;
    int tag = -1;
  };

  /// Builds the communicator from an RMF-bootstrapped JobContext (endpoint
  /// and contact table already present) and starts the receive demux.
  static std::shared_ptr<Comm> init(rmf::JobContext& ctx);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(contacts_.size()); }

  /// Blocking-send semantics of a buffered MPI_Send: the payload is handed
  /// to the transport and the call returns. Aborts on unreachable peers —
  /// the classic MPI contract. Fault-tolerant callers use try_send().
  void send(int dst, int tag, Bytes data);

  /// send() that reports unreachable peers instead of aborting. On failure
  /// the destination is recorded as lost (see take_lost_rank); a peer
  /// already known lost fails immediately without touching the network.
  Status try_send(int dst, int tag, Bytes data);

  /// Blocking receive with wildcard matching.
  Bytes recv(int src, int tag, RecvInfo* info = nullptr);

  /// Non-blocking probe: true if a matching message is queued.
  bool iprobe(int src, int tag, RecvInfo* info = nullptr);

  /// Blocks until a matching message is queued (MPI_Probe).
  void probe(int src, int tag, RecvInfo* info = nullptr);

  // -- fault awareness ----------------------------------------------------
  // A rank is "lost" when its link tears down abnormally (connection reset
  // by a host crash or link fault) or a try_send to it fails. Losses are
  // queued until a caller claims them via take_lost_rank.

  /// Blocks until a matching message is queued (returns true) or an
  /// unclaimed rank loss is pending (returns false). The fault-tolerant
  /// variant of probe(): never hangs on a dead peer.
  bool probe_or_lost(int src, int tag, RecvInfo* info = nullptr);

  /// Claims one not-yet-reported lost rank, oldest first.
  std::optional<int> take_lost_rank();

  /// True if `rank` was ever detected dead.
  bool is_lost(int rank) const { return lost_.count(rank) != 0; }
  int lost_count() const { return static_cast<int>(lost_.size()); }

  // -- typed convenience -------------------------------------------------
  void send_i64(int dst, int tag, std::int64_t v);
  std::int64_t recv_i64(int src, int tag, RecvInfo* info = nullptr);

  // -- collectives (linear) ----------------------------------------------
  void barrier();
  /// Root's payload is distributed to everyone (returned on all ranks).
  Bytes bcast(int root, Bytes data);
  /// Root receives everyone's payload ordered by rank; non-roots get {}.
  std::vector<Bytes> gather(int root, Bytes mine);
  /// Root's `parts` (one per rank) are distributed; each rank returns its
  /// slice. Non-root callers pass {}.
  Bytes scatter(int root, std::vector<Bytes> parts);
  /// Every rank contributes one payload per destination; returns the
  /// payloads addressed to this rank, ordered by source.
  /// Loss-tolerant barrier for job startup. barrier() parks a participant
  /// forever when a peer dies mid-barrier (a release frame destroyed
  /// in-flight by a relay-host crash leaves the waiter in a hard recv that
  /// ignores loss reports). This variant stops waiting for ranks detected
  /// dead and returns false to the affected participants: rank 0 when any
  /// peer was missing, a non-zero rank when rank 0 itself is gone (such a
  /// rank can contribute nothing and should exit cleanly). Loss reports are
  /// only peeked at, never consumed — take_lost_rank() still sees them.
  bool barrier_or_lost();
  std::vector<Bytes> alltoall(std::vector<Bytes> parts);
  std::int64_t reduce_sum(int root, std::int64_t v);
  std::int64_t reduce_max(int root, std::int64_t v);
  std::int64_t allreduce_sum(std::int64_t v);
  std::int64_t allreduce_max(std::int64_t v);

  // -- WAN-aware collectives (MagPIe-style, the paper's reference [7]) ----
  // Rank→site grouping comes from the RMF bootstrap. Each site elects a
  // coordinator; exactly one message crosses the WAN per remote site per
  // collective, instead of one per remote rank. Results are identical to
  // the linear versions; bench_ablation_collectives counts the WAN
  // crossings saved. Falls back to the linear algorithms when site
  // information is unavailable.
  Bytes bcast_wan_aware(int root, Bytes data);
  std::int64_t reduce_sum_wan_aware(int root, std::int64_t v);
  std::int64_t allreduce_sum_wan_aware(std::int64_t v);
  void barrier_wan_aware();

  /// True when the communicator knows each rank's site.
  bool site_aware() const { return sites_.size() == contacts_.size(); }
  const std::vector<std::string>& rank_sites() const { return sites_; }

  /// Tears down outgoing links and the endpoint (MPI_Finalize).
  void finalize();

  // -- statistics ---------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Telemetry metadata of the last message returned by recv(): the
  /// sender's trace context (causal parent for the work the message
  /// triggers) and its original send time. Zero-valued before any recv.
  const telemetry::MsgMeta& last_rx_meta() const { return last_rx_meta_; }

 private:
  Comm(rmf::JobContext& ctx);

  struct InMsg {
    int src;
    int tag;
    Bytes data;
    telemetry::MsgMeta meta;
  };

  bool matches(const InMsg& m, int src, int tag) const {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag ? m.tag < kMaxAppTag : m.tag == tag);
  }
  /// Index of the first queued match, or npos.
  std::size_t find_match(int src, int tag) const;
  void ensure_link(int dst);
  /// (Re)connects out_[dst] if needed; Error instead of abort on failure.
  Status ensure_link_soft(int dst);
  void record_lost(int rank);
  void start_receiver(const std::shared_ptr<Comm>& self_ptr);
  /// Watches the reverse direction of a dialed link for a reset. Dialed
  /// links are send-only by protocol, so without this a rank that dialed a
  /// peer which never dialed back has NO path that notices the peer's
  /// death: the rx readers only watch accepted links, and a passive
  /// probe_or_lost() never touches the socket. The monitor parks in recv()
  /// on the dialed socket; a reset there is the peer's crash.
  void spawn_link_monitor(int dst, const sim::SocketPtr& link);

  /// Coordinator of `site` for a collective rooted at `root`: the root for
  /// its own site, else the site's lowest rank. Every rank computes the
  /// same schedule from the shared site table.
  int coordinator_of(const std::string& site, int root) const;

  sim::Process* self_;
  std::shared_ptr<nexus::CommContext> ctx_;
  nexus::EndpointPtr endpoint_;
  int rank_;
  std::vector<Contact> contacts_;
  std::vector<std::string> sites_;
  std::vector<sim::SocketPtr> out_;
  std::deque<InMsg> inbox_;
  std::set<int> lost_;                ///< every rank ever detected dead
  std::deque<int> lost_unreported_;   ///< subset not yet claimed by a caller
  std::unique_ptr<sim::WaitQueue> inbox_waiters_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  /// Per-destination traffic, flushed into the metrics registry at
  /// finalize() (no string formatting on the send path).
  std::vector<std::uint64_t> pair_msgs_;
  std::vector<std::uint64_t> pair_bytes_;
  telemetry::MsgMeta last_rx_meta_;
  /// Self-reference for daemons spawned outside init() (link monitors);
  /// weak so parked monitors never extend the communicator's lifetime.
  std::weak_ptr<Comm> weak_self_;
  bool finalized_ = false;
};

using CommPtr = std::shared_ptr<Comm>;

}  // namespace wacs::mpi
