#include "mpi/comm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "simnet/fault.hpp"

namespace wacs::mpi {
namespace {
const log::Logger kLog("mpi");

// Wire frames on an MPI link.
constexpr std::uint8_t kFrameHello = 1;
constexpr std::uint8_t kFrameMsg = 2;

// Reserved collective tags (>= Comm::kMaxAppTag).
constexpr int kBarrierGather = Comm::kMaxAppTag + 1;
constexpr int kBarrierRelease = Comm::kMaxAppTag + 2;
constexpr int kBcastTag = Comm::kMaxAppTag + 3;
constexpr int kGatherTag = Comm::kMaxAppTag + 4;
constexpr int kReduceTag = Comm::kMaxAppTag + 5;
constexpr int kHierUp = Comm::kMaxAppTag + 6;    // member -> coordinator
constexpr int kHierWan = Comm::kMaxAppTag + 7;   // coordinator <-> root
constexpr int kHierDown = Comm::kMaxAppTag + 8;  // coordinator -> member
constexpr int kScatterTag = Comm::kMaxAppTag + 9;
constexpr int kAlltoallTag = Comm::kMaxAppTag + 10;

Bytes encode_msg(int tag, const Bytes& data) {
  BufWriter w;
  w.u8(kFrameMsg);
  w.i32(tag);
  w.blob(data);
  return std::move(w).take();
}

Bytes encode_hello(int rank) {
  BufWriter w;
  w.u8(kFrameHello);
  w.i32(rank);
  return std::move(w).take();
}

Bytes encode_i64(std::int64_t v) {
  BufWriter w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t decode_i64(const Bytes& b) {
  BufReader r(b);
  auto v = r.i64();
  WACS_CHECK_MSG(v.ok(), "malformed i64 payload");
  return *v;
}

}  // namespace

Comm::Comm(rmf::JobContext& ctx)
    : self_(ctx.self),
      ctx_(ctx.comm),
      endpoint_(ctx.endpoint),
      rank_(ctx.rank),
      contacts_(ctx.contacts),
      sites_(ctx.rank_sites),
      out_(ctx.contacts.size()),
      pair_msgs_(ctx.contacts.size(), 0),
      pair_bytes_(ctx.contacts.size(), 0) {
  WACS_CHECK_MSG(ctx.self != nullptr && ctx.comm != nullptr &&
                     ctx.endpoint != nullptr && !ctx.contacts.empty(),
                 "JobContext not bootstrapped");
  WACS_CHECK(ctx.rank >= 0 &&
             ctx.rank < static_cast<int>(ctx.contacts.size()));
  inbox_waiters_ = std::make_unique<sim::WaitQueue>(
      ctx.host->network().engine());
}

CommPtr Comm::init(rmf::JobContext& ctx) {
  auto comm = CommPtr(new Comm(ctx));
  comm->weak_self_ = comm;
  comm->start_receiver(comm);
  return comm;
}

void Comm::start_receiver(const CommPtr& self_ptr) {
  // Demux daemon: accepts incoming links and spawns one reader per link.
  // Shared state is safe because only one simulated process runs at a time.
  // The daemons capture the shared_ptr so a reader woken after the task
  // finished never touches a destroyed Comm.
  sim::Engine& engine = ctx_->host().network().engine();
  sim::Host* host = &ctx_->host();
  auto endpoint = endpoint_;
  CommPtr comm = self_ptr;
  // The daemons live on the rank's host: a simulated crash there must stop
  // them from accepting or demuxing on behalf of a dead rank.
  auto pin_to_host = [host](sim::Process* daemon) {
    if (auto* fault = host->network().fault(); fault != nullptr) {
      fault->register_host_process(host->name(), daemon);
    }
  };
  pin_to_host(engine.spawn("mpi.rx.r" + std::to_string(rank_),
               [endpoint, comm, &engine, pin_to_host](sim::Process& self) {
    while (true) {
      auto conn = endpoint->accept(self);
      if (!conn.ok()) return;  // endpoint closed: job is over
      auto sock = *conn;
      pin_to_host(engine.spawn("mpi.rd.r" + std::to_string(comm->rank_),
                   [sock, comm](sim::Process& reader) {
        auto hello_frame = sock->recv(reader);
        if (!hello_frame.ok()) return;
        BufReader hr(*hello_frame);
        auto tag = hr.u8();
        auto src = hr.i32();
        if (!tag.ok() || *tag != kFrameHello || !src.ok()) {
          kLog.warn("rank %d: bad hello on incoming link", comm->rank_);
          return;
        }
        while (true) {
          auto frame = sock->recv(reader);
          if (!frame.ok()) {
            // Orderly close = peer finalized; a reset means the peer's host
            // crashed or a link fault tore the connection down.
            if (frame.error().code() == ErrorCode::kConnectionReset) {
              comm->record_lost(*src);
            }
            return;
          }
          BufReader r(*frame);
          auto ft = r.u8();
          auto mtag = r.i32();
          auto data = r.blob();
          if (!ft.ok() || *ft != kFrameMsg || !mtag.ok() || !data.ok()) {
            kLog.warn("rank %d: malformed message from %d", comm->rank_,
                      *src);
            return;
          }
          // Re-stamp for the second leg (link inbox -> matching recv): the
          // tcp flow ended at this dequeue, so start a fresh arrow that
          // recv() will terminate. The original send time is kept — the
          // end-to-end latency callers measure includes demux queueing.
          telemetry::MsgMeta meta = sock->last_rx_meta();
          meta.flow = telemetry::tracer().flow_start("mpi", meta.ctx);
          comm->inbox_.push_back(
              InMsg{*src, *mtag, std::move(*data), meta});
          comm->inbox_waiters_->notify_all();
        }
      }));
    }
  }));
}

void Comm::ensure_link(int dst) {
  auto s = ensure_link_soft(dst);
  WACS_CHECK_MSG(s.ok(), "rank " + std::to_string(rank_) +
                             " cannot reach rank " + std::to_string(dst) +
                             ": " + s.to_string());
}

Status Comm::ensure_link_soft(int dst) {
  WACS_CHECK(dst >= 0 && dst < size() && dst != rank_);
  auto& link = out_[static_cast<std::size_t>(dst)];
  if (link != nullptr && !link->closed()) return {};
  auto conn = ctx_->connect(*self_, contacts_[static_cast<std::size_t>(dst)]);
  if (!conn.ok()) return conn.error();
  link = *conn;
  if (auto s = link->send(encode_hello(rank_)); !s.ok()) return s;
  spawn_link_monitor(dst, link);
  return {};
}

void Comm::spawn_link_monitor(int dst, const sim::SocketPtr& link) {
  if (weak_self_.expired()) return;  // bootstrap hello, before init() returns
  sim::Engine& engine = ctx_->host().network().engine();
  sim::Host* host = &ctx_->host();
  auto weak = weak_self_;
  auto* mon = engine.spawn(
      "mpi.mon.r" + std::to_string(rank_) + ".to.r" + std::to_string(dst),
      [weak, link, dst](sim::Process& self) {
        auto frame = link->recv(self);
        if (frame.ok()) return;  // protocol violation; readers will complain
        // Orderly close = the peer finalized (or our own finalize()).
        if (frame.error().code() != ErrorCode::kConnectionReset) return;
        auto comm = weak.lock();
        if (comm == nullptr) return;
        // A send-path retry may already have re-dialed and replaced the
        // link; only the CURRENT link's reset means the peer is gone.
        if (comm->out_[static_cast<std::size_t>(dst)] == link) {
          comm->record_lost(dst);
        }
      });
  // Pinned to the rank's host: a crash here must kill the monitor too.
  if (auto* fault = host->network().fault(); fault != nullptr) {
    fault->register_host_process(host->name(), mon);
  }
}

void Comm::record_lost(int rank) {
  if (rank < 0 || rank >= size() || rank == rank_) return;
  if (!lost_.insert(rank).second) return;
  lost_unreported_.push_back(rank);
  kLog.warn("rank %d: rank %d lost (connection reset)", rank_, rank);
  // Wake blocked probers/receivers so they can notice the loss.
  inbox_waiters_->notify_all();
}

void Comm::send(int dst, int tag, Bytes data) {
  WACS_CHECK_MSG(!finalized_, "send after finalize");
  WACS_CHECK_MSG(dst != rank_, "self-send is not supported");
  ensure_link(dst);
  ++messages_sent_;
  bytes_sent_ += data.size();
  pair_msgs_[static_cast<std::size_t>(dst)] += 1;
  pair_bytes_[static_cast<std::size_t>(dst)] += data.size();
  WACS_CHECK(out_[static_cast<std::size_t>(dst)]
                 ->send(encode_msg(tag, data))
                 .ok());
}

Status Comm::try_send(int dst, int tag, Bytes data) {
  WACS_CHECK_MSG(!finalized_, "send after finalize");
  WACS_CHECK_MSG(dst != rank_, "self-send is not supported");
  if (is_lost(dst)) {
    return Status(ErrorCode::kConnectionReset,
                  "rank " + std::to_string(dst) + " is lost");
  }
  if (auto s = ensure_link_soft(dst); !s.ok()) {
    record_lost(dst);
    return s;
  }
  auto s = out_[static_cast<std::size_t>(dst)]->send(encode_msg(tag, data));
  if (!s.ok()) {
    record_lost(dst);
    return s;
  }
  ++messages_sent_;
  bytes_sent_ += data.size();
  pair_msgs_[static_cast<std::size_t>(dst)] += 1;
  pair_bytes_[static_cast<std::size_t>(dst)] += data.size();
  return s;
}

std::size_t Comm::find_match(int src, int tag) const {
  for (std::size_t i = 0; i < inbox_.size(); ++i) {
    if (matches(inbox_[i], src, tag)) return i;
  }
  return static_cast<std::size_t>(-1);
}

Bytes Comm::recv(int src, int tag, RecvInfo* info) {
  while (true) {
    std::size_t idx = find_match(src, tag);
    if (idx != static_cast<std::size_t>(-1)) {
      InMsg msg = std::move(inbox_[idx]);
      inbox_.erase(inbox_.begin() + static_cast<std::ptrdiff_t>(idx));
      if (info != nullptr) *info = RecvInfo{msg.src, msg.tag};
      last_rx_meta_ = msg.meta;
      if (msg.meta.flow != 0) {
        telemetry::tracer().flow_end(msg.meta.flow, msg.meta.ctx);
      }
      return std::move(msg.data);
    }
    inbox_waiters_->wait(*self_);
  }
}

bool Comm::iprobe(int src, int tag, RecvInfo* info) {
  std::size_t idx = find_match(src, tag);
  if (idx == static_cast<std::size_t>(-1)) return false;
  if (info != nullptr) *info = RecvInfo{inbox_[idx].src, inbox_[idx].tag};
  return true;
}

void Comm::probe(int src, int tag, RecvInfo* info) {
  while (!iprobe(src, tag, info)) inbox_waiters_->wait(*self_);
}

bool Comm::probe_or_lost(int src, int tag, RecvInfo* info) {
  while (true) {
    if (iprobe(src, tag, info)) return true;
    if (!lost_unreported_.empty()) return false;
    inbox_waiters_->wait(*self_);
  }
}

std::optional<int> Comm::take_lost_rank() {
  if (lost_unreported_.empty()) return std::nullopt;
  const int rank = lost_unreported_.front();
  lost_unreported_.pop_front();
  return rank;
}

void Comm::send_i64(int dst, int tag, std::int64_t v) {
  send(dst, tag, encode_i64(v));
}

std::int64_t Comm::recv_i64(int src, int tag, RecvInfo* info) {
  return decode_i64(recv(src, tag, info));
}

void Comm::barrier() {
  if (size() == 1) return;
  if (rank_ == 0) {
    for (int i = 1; i < size(); ++i) (void)recv(kAnySource, kBarrierGather);
    for (int i = 1; i < size(); ++i) send(i, kBarrierRelease, {});
  } else {
    send(0, kBarrierGather, {});
    (void)recv(0, kBarrierRelease);
  }
}

bool Comm::barrier_or_lost() {
  if (size() == 1) return true;
  bool clean = true;
  if (rank_ == 0) {
    std::vector<bool> done(static_cast<std::size_t>(size()), false);
    int remaining = size() - 1;
    while (remaining > 0) {
      RecvInfo info;
      if (iprobe(kAnySource, kBarrierGather, &info)) {
        (void)recv(info.source, kBarrierGather);
        const auto i = static_cast<std::size_t>(info.source);
        if (!done[i]) {
          done[i] = true;
          --remaining;
        }
        continue;
      }
      // Peek at the loss set (do not take_lost_rank(): the caller's own
      // loss bookkeeping still needs the reports) and stop waiting for
      // ranks that will never gather.
      bool progressed = false;
      for (int l : lost_) {
        const auto i = static_cast<std::size_t>(l);
        if (!done[i]) {
          done[i] = true;
          --remaining;
          clean = false;
          progressed = true;
        }
      }
      if (remaining > 0 && !progressed) inbox_waiters_->wait(*self_);
    }
    for (int i = 1; i < size(); ++i) {
      if (lost_.count(i) == 0) (void)try_send(i, kBarrierRelease, {});
    }
  } else {
    if (!try_send(0, kBarrierGather, {}).ok()) return false;
    while (true) {
      if (iprobe(0, kBarrierRelease)) {
        (void)recv(0, kBarrierRelease);
        break;
      }
      if (lost_.count(0) != 0) return false;
      inbox_waiters_->wait(*self_);
    }
  }
  return clean;
}

Bytes Comm::bcast(int root, Bytes data) {
  if (size() == 1) return data;
  if (rank_ == root) {
    for (int i = 0; i < size(); ++i) {
      if (i != root) send(i, kBcastTag, data);
    }
    return data;
  }
  return recv(root, kBcastTag);
}

std::vector<Bytes> Comm::gather(int root, Bytes mine) {
  if (rank_ != root) {
    send(root, kGatherTag, std::move(mine));
    return {};
  }
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = std::move(mine);
  for (int i = 0; i < size() - 1; ++i) {
    RecvInfo info;
    Bytes data = recv(kAnySource, kGatherTag, &info);
    out[static_cast<std::size_t>(info.source)] = std::move(data);
  }
  return out;
}

Bytes Comm::scatter(int root, std::vector<Bytes> parts) {
  if (rank_ == root) {
    WACS_CHECK_MSG(static_cast<int>(parts.size()) == size(),
                   "scatter needs one part per rank");
    for (int i = 0; i < size(); ++i) {
      if (i != root) send(i, kScatterTag, std::move(parts[static_cast<std::size_t>(i)]));
    }
    return std::move(parts[static_cast<std::size_t>(root)]);
  }
  return recv(root, kScatterTag);
}

std::vector<Bytes> Comm::alltoall(std::vector<Bytes> parts) {
  WACS_CHECK_MSG(static_cast<int>(parts.size()) == size(),
                 "alltoall needs one part per rank");
  std::vector<Bytes> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(rank_)] =
      std::move(parts[static_cast<std::size_t>(rank_)]);
  for (int i = 0; i < size(); ++i) {
    if (i != rank_) send(i, kAlltoallTag, std::move(parts[static_cast<std::size_t>(i)]));
  }
  for (int i = 0; i < size() - 1; ++i) {
    RecvInfo info;
    Bytes data = recv(kAnySource, kAlltoallTag, &info);
    out[static_cast<std::size_t>(info.source)] = std::move(data);
  }
  return out;
}

std::int64_t Comm::reduce_sum(int root, std::int64_t v) {
  if (rank_ != root) {
    send(root, kReduceTag, encode_i64(v));
    return 0;
  }
  std::int64_t acc = v;
  for (int i = 0; i < size() - 1; ++i) {
    acc += decode_i64(recv(kAnySource, kReduceTag));
  }
  return acc;
}

std::int64_t Comm::reduce_max(int root, std::int64_t v) {
  if (rank_ != root) {
    send(root, kReduceTag, encode_i64(v));
    return 0;
  }
  std::int64_t acc = v;
  for (int i = 0; i < size() - 1; ++i) {
    acc = std::max(acc, decode_i64(recv(kAnySource, kReduceTag)));
  }
  return acc;
}

std::int64_t Comm::allreduce_sum(std::int64_t v) {
  const std::int64_t total = reduce_sum(0, v);
  return decode_i64(bcast(0, encode_i64(total)));
}

std::int64_t Comm::allreduce_max(std::int64_t v) {
  const std::int64_t total = reduce_max(0, v);
  return decode_i64(bcast(0, encode_i64(total)));
}

int Comm::coordinator_of(const std::string& site, int root) const {
  if (sites_[static_cast<std::size_t>(root)] == site) return root;
  for (int r = 0; r < size(); ++r) {
    if (sites_[static_cast<std::size_t>(r)] == site) return r;
  }
  WACS_CHECK_MSG(false, "no rank in site " + site);
  return -1;
}

Bytes Comm::bcast_wan_aware(int root, Bytes data) {
  if (!site_aware() || size() == 1) return bcast(root, std::move(data));
  const std::string& my_site = sites_[static_cast<std::size_t>(rank_)];
  const int my_coord = coordinator_of(my_site, root);

  if (rank_ == root) {
    // One WAN message per remote site, then fan out locally.
    std::vector<bool> site_sent;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const std::string& site = sites_[static_cast<std::size_t>(r)];
      if (site == my_site) {
        send(r, kHierDown, data);  // local member
      } else if (r == coordinator_of(site, root)) {
        send(r, kHierWan, data);  // remote coordinator
      }
    }
    return data;
  }
  if (rank_ == my_coord) {
    Bytes got = recv(root, kHierWan);
    for (int r = 0; r < size(); ++r) {
      if (r != rank_ && sites_[static_cast<std::size_t>(r)] == my_site) {
        send(r, kHierDown, got);
      }
    }
    return got;
  }
  return recv(my_coord == root ? root : my_coord, kHierDown);
}

std::int64_t Comm::reduce_sum_wan_aware(int root, std::int64_t v) {
  if (!site_aware() || size() == 1) return reduce_sum(root, v);
  const std::string& my_site = sites_[static_cast<std::size_t>(rank_)];
  const int my_coord = coordinator_of(my_site, root);

  if (rank_ != my_coord) {
    send(my_coord, kHierUp, encode_i64(v));
    return 0;
  }
  // Coordinator (possibly the root): fold the local members first.
  std::int64_t acc = v;
  int local_members = 0;
  for (int r = 0; r < size(); ++r) {
    if (r != rank_ && sites_[static_cast<std::size_t>(r)] == my_site) {
      ++local_members;
    }
  }
  for (int i = 0; i < local_members; ++i) {
    acc += decode_i64(recv(kAnySource, kHierUp));
  }
  if (rank_ != root) {
    send(root, kHierWan, encode_i64(acc));
    return 0;
  }
  // Root: one WAN message per remote site.
  std::vector<std::string> remote_sites;
  for (int r = 0; r < size(); ++r) {
    const std::string& site = sites_[static_cast<std::size_t>(r)];
    if (site != my_site && r == coordinator_of(site, root)) {
      remote_sites.push_back(site);
    }
  }
  for (std::size_t i = 0; i < remote_sites.size(); ++i) {
    acc += decode_i64(recv(kAnySource, kHierWan));
  }
  return acc;
}

std::int64_t Comm::allreduce_sum_wan_aware(std::int64_t v) {
  const std::int64_t total = reduce_sum_wan_aware(0, v);
  return decode_i64(bcast_wan_aware(0, encode_i64(total)));
}

void Comm::barrier_wan_aware() {
  if (size() == 1) return;
  (void)allreduce_sum_wan_aware(0);
}

void Comm::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Flush per-pair traffic into the registry now, once, rather than paying
  // a name lookup per send.
  for (int dst = 0; dst < size(); ++dst) {
    const auto d = static_cast<std::size_t>(dst);
    if (pair_msgs_[d] == 0) continue;
    const std::string pair =
        "mpi.r" + std::to_string(rank_) + ".to.r" + std::to_string(dst);
    telemetry::metrics().counter(pair + ".msgs").add(pair_msgs_[d]);
    telemetry::metrics().counter(pair + ".bytes").add(pair_bytes_[d]);
  }
  static telemetry::Counter& msgs = telemetry::metrics().counter("mpi.msgs");
  static telemetry::Counter& bytes = telemetry::metrics().counter("mpi.bytes");
  msgs.add(messages_sent_);
  bytes.add(bytes_sent_);
  for (auto& link : out_) {
    if (link != nullptr) link->close();
  }
  // The endpoint itself is closed by the Q server wrapper after the task
  // returns; leaving it open here lets late senders drain without error.
}

}  // namespace wacs::mpi
