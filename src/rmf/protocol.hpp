// RMF wire protocol: gatekeeper submissions, allocator queries, Q system
// job dispatch, and the rank bootstrap messages (Fig 2 arrows).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/contact.hpp"
#include "rmf/job.hpp"

namespace wacs::rmf {

enum class MsgType : std::uint8_t {
  kSubmitRequest = 1,
  kSubmitReply = 2,
  kJobDone = 3,
  kAllocRequest = 4,
  kAllocReply = 5,
  kQSubmit = 6,
  kQSubmitReply = 7,
  kRankHello = 8,
  kContactTable = 9,
  kRankDone = 10,
  kRelease = 11,
  kHeartbeat = 12,
  kQCancel = 13,
  kJobQuery = 14,
  kRankDoneAck = 15,
  // Multi-tenant scheduler frames (DESIGN.md §17). Batched on purpose: at
  // 10k tenants × 100 jobs a frame per job would dominate the control
  // plane, so submissions, dispatches, and completions all travel as
  // batches over persistent connections.
  kSchedHello = 16,
  kSchedSubmit = 17,
  kSchedSubmitReply = 18,
  kSchedDispatch = 19,
  kSchedDispatchReply = 20,
  kSchedComplete = 21,
  kSchedCompleteAck = 22,
};

Result<MsgType> peek_type(const Bytes& frame);

/// (1) job request submitted to the RMF gatekeeper.
struct SubmitRequest {
  JobSpec spec;
  Bytes encode() const;
  static Result<SubmitRequest> decode(const Bytes& frame);
};

struct SubmitReply {
  bool ok = false;
  std::uint64_t job_id = 0;
  std::string error;
  Bytes encode() const;
  static Result<SubmitReply> decode(const Bytes& frame);
};

/// Final answer on the submission connection.
struct JobDone {
  bool ok = false;
  std::string error;
  Bytes output;
  Bytes encode() const;
  static Result<JobDone> decode(const Bytes& frame);
};

/// (3) the Q client inquires of the resource allocator. `exclude` lists
/// hosts the job manager believes dead (failed submissions, vanished
/// ranks) so a replacement allocation never lands on them again.
///
/// `tenant` and `preferred` are an optional trailing pair (same wire-compat
/// pattern as proxy::BindReply::lease_ms): when both are empty the frame is
/// byte-identical to the pre-scheduler format, so legacy peers and recorded
/// baselines are unchanged. The scheduler sets them when it proxies a grant
/// — `preferred` pins the MDS-matched hosts, `tenant` attributes the
/// allocation for fair-share accounting.
struct AllocRequest {
  int nprocs = 0;
  std::vector<std::string> exclude;
  std::string tenant;
  std::vector<Placement> preferred;
  Bytes encode() const;
  static Result<AllocRequest> decode(const Bytes& frame);
};

/// (4) the allocator selects resources and reports their names. `grant_id`
/// names the allocation so the eventual Release is idempotent (retried or
/// replayed releases dedup on the id instead of double-crediting capacity).
struct AllocReply {
  bool ok = false;
  std::uint64_t grant_id = 0;
  std::vector<Placement> placements;
  std::string error;
  Bytes encode() const;
  static Result<AllocReply> decode(const Bytes& frame);
};

/// (5) the Q client submits a job request to a Q server. `part_seq` is the
/// job-scoped monotonic part number: every part of a job gets a unique seq,
/// requeue replacements get fresh seqs, and a crash-recovered job manager
/// re-submits with the *same* seq — the Q server's dedup table keys on
/// (job_id, part_seq) so a replayed or retried submission never runs twice.
struct QSubmit {
  std::uint64_t job_id = 0;
  std::uint64_t part_seq = 0;
  std::string task;
  int base_rank = 0;  ///< first rank hosted by this Q server
  int count = 0;      ///< ranks hosted here
  int nprocs = 0;     ///< total job size
  Contact job_manager;
  std::map<std::string, std::string> args;
  std::map<std::string, Bytes> input_files;        ///< inline GASS payload
  std::map<std::string, std::string> input_urls;   ///< gass:// references
  Bytes encode() const;
  static Result<QSubmit> decode(const Bytes& frame);
};

struct QSubmitReply {
  bool ok = false;
  std::string error;
  Bytes encode() const;
  static Result<QSubmitReply> decode(const Bytes& frame);
};

/// Rank bootstrap: rank → job manager, carrying the rank's endpoint and
/// its site (used by WAN-aware collectives, cf. MagPIe [Kielmann 99]).
struct RankHello {
  std::uint64_t job_id = 0;
  int rank = 0;
  Contact contact;
  std::string site;
  /// True when this is a *re*-hello to a recovered job manager from a rank
  /// that already holds the contact table (the world is fixed; the rank only
  /// needs its completion channel back, not a second table).
  bool has_table = false;
  Bytes encode() const;
  static Result<RankHello> decode(const Bytes& frame);
};

/// Job manager → every rank: the full endpoint + site tables (MPICH-G
/// startup).
struct ContactTable {
  std::vector<Contact> contacts;
  std::vector<std::string> sites;  ///< site of each rank, same order
  Bytes encode() const;
  static Result<ContactTable> decode(const Bytes& frame);
};

/// Rank completion, with the rank's output bytes.
struct RankDone {
  int rank = 0;
  Bytes output;
  Bytes encode() const;
  static Result<RankDone> decode(const Bytes& frame);
};

/// Job manager → allocator: hand back an allocator-made allocation once the
/// job completes (or fails), so capacity becomes reusable. When `grant_ids`
/// is non-empty the allocator releases by id (idempotent); the placement
/// list is the legacy path kept for pinned-placement bookkeeping.
struct Release {
  std::vector<Placement> placements;
  std::vector<std::uint64_t> grant_ids;
  Bytes encode() const;
  static Result<Release> decode(const Bytes& frame);
};

/// Q server → allocator: "my host is alive and holding CPUs". The allocator
/// expires the lease of any allocated host that falls silent and sheds its
/// load (see ResourceAllocator::enable_leases).
struct Heartbeat {
  std::string host;
  Bytes encode() const;
  static Result<Heartbeat> decode(const Bytes& frame);
};

/// Job manager → Q server: withdraw a part that was requeued elsewhere
/// (rendezvous timeout). Queued parts are dropped; running never-
/// bootstrapped parts are killed. Best-effort — a dead Q server simply
/// never runs the part's ranks to completion.
struct QCancel {
  std::uint64_t job_id = 0;
  std::uint64_t part_seq = 0;
  Bytes encode() const;
  static Result<QCancel> decode(const Bytes& frame);
};

/// Submitter → gatekeeper: "what became of job N?" — the reconnect path
/// after the submission connection died (gatekeeper crash). Answered with
/// the journaled JobDone once the job finishes.
struct JobQuery {
  std::uint64_t job_id = 0;
  Bytes encode() const;
  static Result<JobQuery> decode(const Bytes& frame);
};

/// Job manager → rank (recovery mode): the RankDone was journaled. Ranks
/// retry unacknowledged completions across a job-manager restart, and the
/// journal-then-ack order makes the retry exactly-once.
struct RankDoneAck {
  int rank = 0;
  Bytes encode() const;
  static Result<RankDoneAck> decode(const Bytes& frame);
};

// ---- multi-tenant scheduler (src/sched/, DESIGN.md §17) -------------------

/// Site runner → scheduler, first frame on a (re)connection: names the site
/// this persistent connection executes for. Everything the scheduler sends
/// down the connection afterwards is a SchedDispatch for that site.
struct SchedHello {
  std::string site;
  Contact runner;  ///< runner daemon endpoint (diagnostics)
  Bytes encode() const;
  static Result<SchedHello> decode(const Bytes& frame);
};

/// One job inside a batched submission.
struct SchedJob {
  std::uint64_t client_seq = 0;  ///< submitter-scoped id, echoed in verdicts
  std::string task;
  int nprocs = 1;
  double est_runtime_s = 1.0;  ///< runtime estimate (backfill reservations)
  friend bool operator==(const SchedJob&, const SchedJob&) = default;
};

/// Submitter → scheduler: one tenant's batch of jobs.
struct SchedSubmit {
  std::string tenant;
  std::vector<SchedJob> jobs;
  Bytes encode() const;
  static Result<SchedSubmit> decode(const Bytes& frame);
};

/// Per-job admission verdict. kBusy is the retryable shed (the nxproxy
/// Busy{retry_after_ms} idiom): the queue cap is hit, come back later.
struct SchedVerdict {
  enum class Code : std::uint8_t {
    kAccepted = 1,
    kBusy = 2,
    kError = 3,
  };
  std::uint64_t client_seq = 0;
  Code code = Code::kError;
  std::uint64_t sched_id = 0;        ///< assigned when accepted
  std::uint32_t retry_after_ms = 0;  ///< kBusy: suggested backoff
  std::string error;                 ///< kError: what was invalid
  friend bool operator==(const SchedVerdict&, const SchedVerdict&) = default;
};

struct SchedSubmitReply {
  std::vector<SchedVerdict> verdicts;  ///< same order as the submitted jobs
  Bytes encode() const;
  static Result<SchedSubmitReply> decode(const Bytes& frame);
};

/// Scheduler → site runner: a batch of jobs to start now.
struct SchedDispatch {
  struct Item {
    std::uint64_t sched_id = 0;
    std::string tenant;
    std::string task;
    int nprocs = 1;
    double est_runtime_s = 1.0;
    friend bool operator==(const Item&, const Item&) = default;
  };
  std::vector<Item> items;
  Bytes encode() const;
  static Result<SchedDispatch> decode(const Bytes& frame);
};

/// Site runner → scheduler: jobs of the last dispatch the runner refused
/// (saturation shed). Absence from `rejected` means accepted. The scheduler
/// requeues the listed jobs and backs the site off for `retry_after_ms`.
struct SchedDispatchReply {
  std::uint32_t retry_after_ms = 0;
  std::vector<std::uint64_t> rejected;  ///< sched_ids
  Bytes encode() const;
  static Result<SchedDispatchReply> decode(const Bytes& frame);
};

/// Site runner → scheduler: a batch of finished jobs. Runners resend
/// unacknowledged batches across reconnects; the scheduler journals before
/// acking and treats unknown sched_ids as duplicates, so completion
/// accounting is exactly-once.
struct SchedComplete {
  std::uint64_t batch_seq = 0;  ///< runner-scoped, for ack matching
  struct Item {
    std::uint64_t sched_id = 0;
    bool ok = false;
    double cpu_seconds = 0;  ///< fair-share charge (nprocs × runtime)
    friend bool operator==(const Item&, const Item&) = default;
  };
  std::vector<Item> items;
  Bytes encode() const;
  static Result<SchedComplete> decode(const Bytes& frame);
};

struct SchedCompleteAck {
  std::uint64_t batch_seq = 0;
  Bytes encode() const;
  static Result<SchedCompleteAck> decode(const Bytes& frame);
};

}  // namespace wacs::rmf
