#include "rmf/gatekeeper.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/fault.hpp"
#include "simnet/time.hpp"

namespace wacs::rmf {
namespace {
const log::Logger kLog("rmf.gatekeeper");

// Journal record tags (see the file comment in gatekeeper.hpp).
constexpr std::uint8_t kRecJob = 1;
constexpr std::uint8_t kRecGrant = 2;
constexpr std::uint8_t kRecPart = 3;
constexpr std::uint8_t kRecPartCancel = 4;
constexpr std::uint8_t kRecTable = 5;
constexpr std::uint8_t kRecRankDone = 6;
constexpr std::uint8_t kRecJobDone = 7;

/// Shared between a job manager and its deadline watchdog event.
struct WatchdogState {
  sim::ListenerPtr rendezvous;
  std::vector<sim::SocketPtr> rank_conns;
  bool fired = false;
  bool done = false;
};

}  // namespace

/// Everything the gatekeeper remembers about one accepted job. Live job
/// managers mutate it as they go; replay_journal() rebuilds it from the
/// journal, which is why every mutation with an externally visible effect
/// has a matching journal record.
struct Gatekeeper::JobRec {
  struct PartInfo {
    std::uint64_t seq = 0;
    std::string host;
    int base_rank = 0;
    int count = 0;
    int attempts = 0;
    bool cancelled = false;
  };

  std::uint64_t job_id = 0;
  JobSpec spec;
  telemetry::TraceContext submit_ctx;
  /// Open connection awaiting the JobDone: the submission connection, or a
  /// later JobQuery reconnect. Null when the submitter is (currently) gone.
  sim::SocketPtr waiter;
  bool done = false;
  JobDone result;
  sim::Process* jm = nullptr;
  std::vector<std::uint64_t> grant_ids;
  std::vector<Placement> granted;
  std::vector<PartInfo> parts;  ///< journaled submissions (replay fills this)
  std::uint64_t next_part_seq = 1;
  bool table_sent = false;
  ContactTable table;
  std::vector<bool> rank_done;
  Bytes rank0_output;
  bool have_rank0 = false;
};

Gatekeeper::Gatekeeper(sim::Host& host, Options options, Contact allocator,
                       const JobRegistry* registry)
    : host_(&host),
      options_(std::move(options)),
      allocator_(std::move(allocator)),
      registry_(registry),
      journal_(host, "gatekeeper") {
  WACS_CHECK(registry_ != nullptr);
}

void Gatekeeper::start() {
  WACS_CHECK_MSG(!started_, "gatekeeper already started");
  started_ = true;
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "gatekeeper cannot bind its port");
  listener_ = *listener;
  spawn_serve();
}

void Gatekeeper::restart() {
  if (listener_ != nullptr) listener_->close();
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "gatekeeper cannot re-bind its port");
  listener_ = *listener;
  spawn_serve();
  replay_journal();
  ensure_lease_sweeper();
}

void Gatekeeper::spawn_serve() {
  serve_proc_ = host_->network().engine().spawn(
      "gatekeeper@" + host_->name(),
      [this](sim::Process& self) { serve(self); });
  register_proc(serve_proc_);
}

void Gatekeeper::register_proc(sim::Process* proc) {
  if (auto* f = host_->network().fault()) {
    f->register_host_process(host_->name(), proc);
  }
}

sim::Process* Gatekeeper::job_manager_process(std::uint64_t job_id) const {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second->jm;
}

void Gatekeeper::serve(sim::Process& self) {
  // Capture the listener: restart() swaps in a fresh one for the *new*
  // serve process; this incarnation keeps draining (and dies with) its own.
  sim::ListenerPtr listener = listener_;
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    auto frame = sock->recv(self);
    if (!frame.ok()) continue;
    const auto type = peek_type(*frame);
    if (type.ok() && *type == MsgType::kJobQuery) {
      auto query = JobQuery::decode(*frame);
      if (!query.ok()) {
        sock->close();
        continue;
      }
      auto it = jobs_.find(query->job_id);
      if (it == jobs_.end()) {
        (void)sock->send(JobDone{false, "unknown job", {}}.encode());
        sock->close();
        continue;
      }
      const std::shared_ptr<JobRec>& rec = it->second;
      if (rec->done) {
        (void)sock->send(rec->result.encode());
        sock->close();
      } else {
        // Park the query until the job finishes; a newer reconnect
        // supersedes an older one.
        if (rec->waiter != nullptr) rec->waiter->close();
        rec->waiter = sock;
      }
      continue;
    }
    auto req = SubmitRequest::decode(*frame);
    if (!req.ok()) {
      (void)sock->send(SubmitReply{false, 0, req.error().to_string()}.encode());
      sock->close();
      continue;
    }
    // Authentication — the Globus gatekeeper's role. Shared-secret mode
    // compares a token; GSI mode verifies an HMAC credential chain
    // (expiry, delegation depth, subject nesting).
    bool authorized = false;
    if (options_.ca_secret.has_value()) {
      auto chain =
          security::CredentialChain::decode_hex(req->spec.credential);
      if (chain.ok()) {
        security::CertAuthority ca(*options_.ca_secret);
        if (ca.verify(*chain, host_->network().engine().now()).ok()) {
          authorized = true;
          last_subject_ = chain->leaf().subject;
        }
      }
    } else {
      authorized = req->spec.credential == options_.credential;
    }
    if (!authorized) {
      ++auth_failures_;
      telemetry::metrics().counter("rmf.auth.failures").add();
      (void)sock->send(
          SubmitReply{false, 0, "authentication failed"}.encode());
      sock->close();
      continue;
    }
    // Early validation keeps obvious errors synchronous.
    if (!registry_->find(req->spec.task).ok()) {
      (void)sock->send(
          SubmitReply{false, 0, "unknown task " + req->spec.task}.encode());
      sock->close();
      continue;
    }
    if (req->spec.nprocs <= 0) {
      (void)sock->send(SubmitReply{false, 0, "nprocs must be > 0"}.encode());
      sock->close();
      continue;
    }

    const std::uint64_t job_id = next_job_id_++;
    ++jobs_accepted_;
    static telemetry::Counter& accepted =
        telemetry::metrics().counter("rmf.jobs.accepted");
    accepted.add();
    auto rec = std::make_shared<JobRec>();
    rec->job_id = job_id;
    rec->spec = std::move(req->spec);
    // The submit request's context makes the job manager's spans children
    // of the submitter's trace.
    rec->submit_ctx = sock->last_rx_meta().ctx;
    rec->waiter = sock;
    rec->rank_done.assign(static_cast<std::size_t>(rec->spec.nprocs), false);
    // Durable before the reply leaves: once the submitter holds a job id, a
    // restarted gatekeeper must be able to answer a JobQuery for it.
    journal_job(*rec);
    jobs_[job_id] = rec;
    (void)sock->send(SubmitReply{true, job_id, ""}.encode());
    // Step 2: the gatekeeper invokes a job manager for this job.
    rec->jm = host_->network().engine().spawn(
        "jobmanager#" + std::to_string(job_id) + "@" + host_->name(),
        [this, rec](sim::Process& jm) { job_manager(jm, rec, false); });
    register_proc(rec->jm);
    ensure_lease_sweeper();
  }
}

void Gatekeeper::job_manager(sim::Process& self, std::shared_ptr<JobRec> rec,
                             bool resumed) {
  const std::uint64_t job_id = rec->job_id;
  const JobSpec& spec = rec->spec;
  telemetry::Span job_span("rmf", "rmf.job", rec->submit_ctx);
  if (job_span.active()) {
    job_span.arg("job_id", job_id);
    job_span.arg("task", spec.task);
    job_span.arg("nprocs", spec.nprocs);
    if (resumed) job_span.arg("recovered", true);
  }
  static telemetry::Gauge& active_jobs =
      telemetry::metrics().gauge("rmf.jobs.active");
  active_jobs.add(1);
  struct ActiveGuard {
    telemetry::Gauge& g;
    ~ActiveGuard() { g.add(-1); }
  } active_guard{active_jobs};
  // Allocator-made allocations are handed back on every exit path; pinned
  // placements bypass the allocator and are the submitter's responsibility
  // (no co-allocator existed in the paper's system either).
  bool from_allocator = resumed && !rec->grant_ids.empty();
  std::vector<Placement> placements =
      resumed ? rec->granted : spec.placements;
  auto release_allocation = [&] {
    if (!from_allocator) return;
    from_allocator = false;
    // Releases dedup on the grant id, so retrying across an allocator
    // restart is safe; legacy mode keeps the single best-effort attempt.
    const int attempts = options_.recovery ? 5 : 1;
    for (int i = 0; i < attempts; ++i) {
      auto conn = host_->stack().connect(self, allocator_);
      if (conn.ok()) {
        Release rel;
        rel.grant_ids = rec->grant_ids;
        (void)(*conn)->send(rel.encode());
        (*conn)->close();
        return;
      }
      if (i + 1 < attempts) self.sleep(0.5 * (i + 1));
    }
  };
  auto finish = [&](JobDone done) {
    journal_job_done(job_id, done);
    rec->done = true;
    rec->result = done;
    if (rec->waiter != nullptr) {
      (void)rec->waiter->send(done.encode());
      rec->waiter->close();
      rec->waiter = nullptr;
    }
  };
  auto fail = [&](const std::string& why) {
    kLog.warn("job %llu failed: %s", static_cast<unsigned long long>(job_id),
              why.c_str());
    release_allocation();
    finish(JobDone{false, why, {}});
  };

  // Step 3-4: the Q client inquires of the resource allocator (only when
  // the submission did not pin placements). Resumed job managers skip this:
  // their grants are journaled and the Q-server dedup table keeps the old
  // placements valid.
  if (!resumed && placements.empty()) {
    telemetry::Span span("rmf", "rmf.allocate");
    const sim::Time alloc_t0 = host_->network().engine().now();
    auto alloc_conn = host_->stack().connect(self, allocator_);
    if (!alloc_conn.ok()) {
      return fail("allocator unreachable: " + alloc_conn.error().to_string());
    }
    if (!(*alloc_conn)->send(AllocRequest{spec.nprocs, {}, {}, {}}.encode()).ok()) {
      return fail("allocator send failed");
    }
    auto reply_frame = (*alloc_conn)->recv(self);
    if (!reply_frame.ok()) return fail("allocator reply lost");
    auto reply = AllocReply::decode(*reply_frame);
    if (!reply.ok()) return fail("allocator reply malformed");
    if (!reply->ok) return fail("allocation failed: " + reply->error);
    placements = std::move(reply->placements);
    from_allocator = true;
    rec->grant_ids.push_back(reply->grant_id);
    rec->granted = placements;
    journal_grant(job_id, reply->grant_id, placements);
    static telemetry::Histogram& alloc_ms =
        telemetry::metrics().histogram("rmf.alloc_ms");
    alloc_ms.observe(
        sim::to_ms(host_->network().engine().now() - alloc_t0));
  }

  if (!resumed) {
    int total = 0;
    for (const Placement& p : placements) total += p.count;
    if (total != spec.nprocs) {
      return fail("placements cover " + std::to_string(total) + " of " +
                  std::to_string(spec.nprocs) + " processes");
    }
  }

  // Rendezvous listener for rank bootstrap; ranks dial out to it, so it
  // works from behind the deny-based firewall.
  auto rendezvous = host_->stack().listen(0);
  if (!rendezvous.ok()) return fail("cannot create rendezvous listener");
  const Contact jm_contact{host_->name(), (*rendezvous)->port()};

  // Deadline watchdog: when the job overruns, close the rendezvous listener
  // and every rank connection so the blocked recv/accept calls below fail
  // and the job reports a timeout instead of hanging forever.
  auto watchdog_state = std::make_shared<WatchdogState>();
  watchdog_state->rendezvous = *rendezvous;
  if (spec.deadline_seconds > 0) {
    host_->network().engine().after(
        spec.deadline_seconds, [watchdog_state] {
          if (watchdog_state->done) return;
          watchdog_state->fired = true;
          watchdog_state->rendezvous->close();
          for (auto& conn : watchdog_state->rank_conns) {
            if (conn != nullptr) conn->close();
          }
        });
  }
  auto finish_watchdog = [&] { watchdog_state->done = true; };
  auto timeout_error = [&](const std::string& fallback) {
    return watchdog_state->fired
               ? "deadline of " + std::to_string(spec.deadline_seconds) +
                     "s exceeded"
               : fallback;
  };

  // Step 5: the Q client submits job parts to the Q servers. GASS input
  // files ride along (charged as real bytes on the network). A part whose
  // Q server cannot be reached is requeued: the allocator picks replacement
  // capacity that excludes every host seen to fail so far. Each part
  // carries its journaled job-scoped seq; a resumed job manager re-submits
  // with the same seqs and the Q servers' dedup absorbs the duplicates.
  struct Part {
    Placement placement;
    int base_rank = 0;
    std::uint64_t seq = 0;
    int attempts = 0;
  };
  std::vector<Part> submitted;
  std::deque<Part> to_submit;
  if (!resumed) {
    int base_rank = 0;
    for (const Placement& p : placements) {
      const std::uint64_t seq = rec->next_part_seq++;
      journal_part(job_id, seq, p.host, base_rank, p.count, 0);
      to_submit.push_back(Part{p, base_rank, seq, 0});
      base_rank += p.count;
    }
  } else {
    for (const JobRec::PartInfo& pi : rec->parts) {
      if (pi.cancelled) continue;
      to_submit.push_back(Part{Placement{pi.host, pi.count}, pi.base_rank,
                               pi.seq, pi.attempts});
    }
  }

  auto submit_part = [&](const Part& part) -> Status {
    telemetry::Span span("rmf", "rmf.submit_part");
    if (span.active()) span.arg("host", part.placement.host);
    auto q_conn = host_->stack().connect(
        self, Contact{part.placement.host, options_.qserver_port});
    if (!q_conn.ok()) {
      return Error(q_conn.error().code(),
                   "Q server on " + part.placement.host +
                       " unreachable: " + q_conn.error().message());
    }
    QSubmit qsub;
    qsub.job_id = job_id;
    qsub.part_seq = part.seq;
    qsub.task = spec.task;
    qsub.base_rank = part.base_rank;
    qsub.count = part.placement.count;
    qsub.nprocs = spec.nprocs;
    qsub.job_manager = jm_contact;
    qsub.args = spec.args;
    qsub.input_files = spec.input_files;
    qsub.input_urls = spec.input_urls;
    if (!(*q_conn)->send(qsub.encode()).ok()) {
      return Error(ErrorCode::kUnavailable,
                   "Q submit to " + part.placement.host + " failed");
    }
    auto reply_frame = (*q_conn)->recv(self);
    if (!reply_frame.ok()) {
      return Error(reply_frame.error().code(),
                   "Q server on " + part.placement.host + " died");
    }
    auto reply = QSubmitReply::decode(*reply_frame);
    if (!reply.ok() || !reply->ok) {
      return Error(ErrorCode::kUnavailable,
                   "Q server on " + part.placement.host + " rejected job: " +
                       (reply.ok() ? reply->error : reply.error().to_string()));
    }
    if (resumed && first_resubmit_after_replay_ == 0) {
      first_resubmit_after_replay_ = host_->network().engine().now();
    }
    return {};
  };

  std::vector<std::string> failed_hosts;
  // Replaces a dead part's placement with fresh capacity avoiding every
  // failed host (the replacement may split across several hosts). Each part
  // carries its own requeue budget; replacements inherit the original's
  // spent attempts. `cancel_old` withdraws the dead part from its Q server
  // (recovery mode, rendezvous-timeout path) so a merely-slow part cannot
  // double-run once its replacement exists.
  auto requeue_part = [&](const Part& dead,
                          bool cancel_old) -> Result<std::vector<Part>> {
    if (!from_allocator) {
      return Error(ErrorCode::kUnavailable,
                   "pinned placement on " + dead.placement.host + " failed");
    }
    if (dead.attempts >= options_.max_requeues) {
      return Error(ErrorCode::kResourceExhausted, "requeue budget exhausted");
    }
    failed_hosts.push_back(dead.placement.host);
    if (cancel_old && options_.recovery) {
      // Best-effort, off the job manager's critical path: the presumed-dead
      // host may stall the connect for the full SYN timeout.
      const Contact target{dead.placement.host, options_.qserver_port};
      auto* canceller = host_->network().engine().spawn(
          "job" + std::to_string(job_id) + ".cancel@" + host_->name(),
          [this, target, job_id, seq = dead.seq](sim::Process& p) {
            auto conn = host_->stack().connect(p, target);
            if (!conn.ok()) return;
            (void)(*conn)->send(QCancel{job_id, seq}.encode());
            (*conn)->close();
          });
      register_proc(canceller);
    }
    auto conn = host_->stack().connect(self, allocator_);
    if (!conn.ok()) {
      return Error(conn.error().code(), "allocator unreachable");
    }
    AllocRequest req;
    req.nprocs = dead.placement.count;
    req.exclude = failed_hosts;
    if (!(*conn)->send(req.encode()).ok()) {
      return Error(ErrorCode::kUnavailable, "allocator send failed");
    }
    auto reply_frame = (*conn)->recv(self);
    if (!reply_frame.ok()) {
      return Error(ErrorCode::kUnavailable, "allocator reply lost");
    }
    auto reply = AllocReply::decode(*reply_frame);
    if (!reply.ok()) {
      return Error(ErrorCode::kProtocolError, "allocator reply malformed");
    }
    if (!reply->ok) {
      return Error(ErrorCode::kResourceExhausted,
                   "replacement allocation failed: " + reply->error);
    }
    kLog.warn("job %llu: requeueing %d ranks away from dead host %s",
              static_cast<unsigned long long>(job_id), dead.placement.count,
              dead.placement.host.c_str());
    ++parts_requeued_;
    telemetry::metrics().counter("rmf.parts.requeued").add();
    rec->grant_ids.push_back(reply->grant_id);
    journal_grant(job_id, reply->grant_id, reply->placements);
    std::vector<Part> fresh;
    int base = dead.base_rank;
    for (Placement& np : reply->placements) {
      const int count = np.count;
      const std::uint64_t seq = rec->next_part_seq++;
      journal_part(job_id, seq, np.host, base, count, dead.attempts + 1);
      placements.push_back(np);
      rec->granted.push_back(np);
      fresh.push_back(Part{std::move(np), base, seq, dead.attempts + 1});
      base += count;
    }
    journal_part_cancel(job_id, dead.seq);
    return fresh;
  };

  while (!to_submit.empty()) {
    Part part = std::move(to_submit.front());
    to_submit.pop_front();
    auto s = submit_part(part);
    if (s.ok()) {
      submitted.push_back(std::move(part));
      continue;
    }
    kLog.warn("job %llu: %s", static_cast<unsigned long long>(job_id),
              s.error().to_string().c_str());
    auto repl = requeue_part(part, false);
    if (!repl.ok()) {
      return fail(s.error().message() + "; " + repl.error().message());
    }
    for (Part& np : *repl) to_submit.push_back(std::move(np));
  }

  Bytes output;
  if (!rec->table_sent) {
    // Rank rendezvous: collect every rank's endpoint contact, then
    // broadcast the table (MPICH-G startup). With a rendezvous bound
    // configured, silence means a part's host died before its ranks could
    // dial in; the silent parts are requeued and their stale connections
    // dropped.
    std::vector<sim::SocketPtr> rank_conns(
        static_cast<std::size_t>(spec.nprocs));
    std::vector<bool> have_hello(static_cast<std::size_t>(spec.nprocs),
                                 false);
    // Ranks that re-helloed with the table already in hand (recovery): the
    // world is fixed, so the broadcast below skips them.
    std::vector<bool> needs_table(static_cast<std::size_t>(spec.nprocs),
                                  true);
    ContactTable table;
    table.contacts.resize(static_cast<std::size_t>(spec.nprocs));
    table.sites.resize(static_cast<std::size_t>(spec.nprocs));
    int collected = 0;
    // optional<> rather than a scope: the table broadcast below belongs to
    // the rendezvous span but the collected state outlives it.
    std::optional<telemetry::Span> rendezvous_span;
    rendezvous_span.emplace("rmf", "rmf.rendezvous");
    while (collected < spec.nprocs) {
      const bool bounded = options_.rendezvous_timeout_s > 0;
      const sim::Time deadline =
          host_->network().engine().now() +
          sim::from_sec(options_.rendezvous_timeout_s);
      auto conn = bounded ? (*rendezvous)->accept_deadline(self, deadline)
                          : (*rendezvous)->accept(self);
      if (!conn.ok()) {
        if (bounded && conn.error().code() == ErrorCode::kTimeout &&
            !watchdog_state->fired) {
          // Requeue every part with a silent rank; drop hellos already
          // taken from those parts (their host is presumed dead, the
          // replacement ranks will re-report).
          bool requeued_any = false;
          for (std::size_t pi = 0; pi < submitted.size(); ++pi) {
            const Part& part = submitted[pi];
            bool silent = false;
            for (int r = part.base_rank;
                 r < part.base_rank + part.placement.count; ++r) {
              if (!have_hello[static_cast<std::size_t>(r)]) silent = true;
            }
            if (!silent) continue;
            auto repl = requeue_part(part, true);
            if (!repl.ok()) {
              return fail("rank rendezvous timed out; " +
                          repl.error().message());
            }
            for (int r = part.base_rank;
                 r < part.base_rank + part.placement.count; ++r) {
              const auto ri = static_cast<std::size_t>(r);
              if (have_hello[ri]) {
                have_hello[ri] = false;
                if (rank_conns[ri] != nullptr) rank_conns[ri]->close();
                rank_conns[ri] = nullptr;
                --collected;
              }
            }
            std::vector<Part> fresh = std::move(*repl);
            submitted[pi] = fresh.front();
            for (std::size_t fi = 1; fi < fresh.size(); ++fi) {
              submitted.push_back(fresh[fi]);
            }
            for (const Part& np : fresh) {
              if (auto s = submit_part(np); !s.ok()) {
                return fail("requeue resubmit failed: " +
                            s.error().message());
              }
            }
            requeued_any = true;
          }
          if (!requeued_any) return fail("rank rendezvous timed out");
          continue;
        }
        return fail(timeout_error("rank rendezvous interrupted"));
      }
      watchdog_state->rank_conns.push_back(*conn);
      auto frame = bounded ? (*conn)->recv_deadline(self, deadline)
                           : (*conn)->recv(self);
      if (!frame.ok()) {
        if (bounded && !watchdog_state->fired) continue;  // dead dialer
        return fail(timeout_error("rank hello lost"));
      }
      auto hello = RankHello::decode(*frame);
      if (!hello.ok() || hello->job_id != job_id || hello->rank < 0 ||
          hello->rank >= spec.nprocs) {
        return fail("bad rank hello");
      }
      const auto ri = static_cast<std::size_t>(hello->rank);
      if (have_hello[ri]) {  // duplicate after a spurious requeue: keep first
        ++hellos_deduped_;
        telemetry::metrics().counter("rmf.recovery.hello_dedup").add();
        (*conn)->close();
        continue;
      }
      have_hello[ri] = true;
      if (hello->has_table) needs_table[ri] = false;
      table.contacts[ri] = hello->contact;
      table.sites[ri] = hello->site;
      rank_conns[ri] = *conn;
      ++collected;
    }
    // Durable before the broadcast: once any rank holds the table the MPI
    // world is fixed, and a restarted gatekeeper must know never to build a
    // second one for this job.
    journal_table(job_id, table);
    rec->table = table;
    rec->table_sent = true;
    for (int r = 0; r < spec.nprocs; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (!needs_table[ri]) continue;
      if (!rank_conns[ri]->send(table.encode()).ok()) {
        return fail("table broadcast failed");
      }
    }
    rendezvous_span.reset();
    telemetry::Span run_span("rmf", "rmf.run");

    // Completion: wait for every rank's RankDone; keep rank 0's output. A
    // rank that vanishes after startup cannot be replaced (the MPI world is
    // fixed at the table broadcast), so the job degrades: it completes as
    // long as rank 0 — which carries the application result — survives.
    int lost_after_start = 0;
    for (int i = 0; i < spec.nprocs; ++i) {
      auto frame = rank_conns[static_cast<std::size_t>(i)]->recv(self);
      if (!frame.ok()) {
        if (watchdog_state->fired || i == 0) {
          return fail(
              timeout_error("rank " + std::to_string(i) + " vanished"));
        }
        ++lost_after_start;
        kLog.warn("job %llu: rank %d vanished after startup (%s)",
                  static_cast<unsigned long long>(job_id), i,
                  frame.error().to_string().c_str());
        continue;
      }
      auto done = RankDone::decode(*frame);
      if (!done.ok()) return fail("bad rank done");
      // Journal before the ack: the rank stops retrying only once its
      // completion is durable.
      journal_rank_done(job_id, done->rank,
                        done->rank == 0 ? done->output : Bytes{});
      if (done->rank >= 0 && done->rank < spec.nprocs) {
        rec->rank_done[static_cast<std::size_t>(done->rank)] = true;
      }
      if (done->rank == 0) {
        rec->have_rank0 = true;
        rec->rank0_output = done->output;
        output = std::move(done->output);
      }
      if (options_.recovery) {
        (void)rank_conns[static_cast<std::size_t>(i)]->send(
            RankDoneAck{done->rank}.encode());
      }
    }
    if (lost_after_start > 0) {
      ranks_lost_ += static_cast<std::uint64_t>(lost_after_start);
      telemetry::metrics().counter("rmf.ranks.lost").add(
          static_cast<std::uint64_t>(lost_after_start));
      kLog.warn("job %llu completed degraded: %d ranks lost",
                static_cast<unsigned long long>(job_id), lost_after_start);
    }
  } else {
    // Resumed after the table broadcast: the MPI world survived the crash.
    // Ranks reconnect to the new rendezvous on their own (their bootstrap
    // or done-delivery retry loops re-read the job-manager contact that the
    // re-submissions above refreshed); collect the RankDones the journal
    // does not already hold. Connections arrive in any order and a rank
    // mid-bootstrap still needs the (re-sent) table before it can run, so
    // each connection gets its own collector process.
    telemetry::Span recollect_span("rmf", "rmf.recovery.recollect");
    auto pending = std::make_shared<int>(0);
    for (int r = 0; r < spec.nprocs; ++r) {
      if (!rec->rank_done[static_cast<std::size_t>(r)]) ++*pending;
    }
    if (recollect_span.active()) recollect_span.arg("pending", *pending);
    sim::ListenerPtr rendezvous_listener = *rendezvous;
    while (*pending > 0) {
      auto conn = rendezvous_listener->accept(self);
      if (!conn.ok()) {
        if (*pending == 0) break;
        return fail(
            timeout_error("rank rendezvous interrupted across recovery"));
      }
      watchdog_state->rank_conns.push_back(*conn);
      auto sock = *conn;
      auto* handler = host_->network().engine().spawn(
          "job" + std::to_string(job_id) + ".collect@" + host_->name(),
          [this, rec, sock, pending, rendezvous_listener](sim::Process& h) {
            auto frame = sock->recv(h);
            if (!frame.ok()) return;
            auto hello = RankHello::decode(*frame);
            if (!hello.ok() || hello->job_id != rec->job_id ||
                hello->rank < 0 || hello->rank >= rec->spec.nprocs) {
              sock->close();
              return;
            }
            if (!hello->has_table) {
              // Mid-bootstrap rank: re-send the journaled table.
              if (!sock->send(rec->table.encode()).ok()) {
                sock->close();
                return;
              }
            }
            auto done_frame = sock->recv(h);
            if (!done_frame.ok()) {
              sock->close();
              return;
            }
            auto done = RankDone::decode(*done_frame);
            if (!done.ok() || done->rank != hello->rank) {
              sock->close();
              return;
            }
            const auto ri = static_cast<std::size_t>(done->rank);
            if (rec->rank_done[ri]) {
              ++dones_deduped_;
              telemetry::metrics().counter("rmf.recovery.rankdone_dedup")
                  .add();
            } else {
              journal_rank_done(rec->job_id, done->rank,
                                done->rank == 0 ? done->output : Bytes{});
              rec->rank_done[ri] = true;
              if (done->rank == 0) {
                rec->rank0_output = std::move(done->output);
                rec->have_rank0 = true;
              }
              --*pending;
            }
            (void)sock->send(RankDoneAck{done->rank}.encode());
            sock->close();
            if (*pending == 0) rendezvous_listener->close();
          });
      register_proc(handler);
    }
    if (!rec->have_rank0) return fail("rank 0 lost across recovery");
    output = rec->rank0_output;
  }

  finish_watchdog();
  kLog.info("job %llu complete", static_cast<unsigned long long>(job_id));
  release_allocation();
  finish(JobDone{true, "", std::move(output)});
}

// ----------------------------------------------------------- lease sweeper

void Gatekeeper::ensure_lease_sweeper() {
  if (!options_.recovery || sweeper_active_) return;
  bool any_unfinished = false;
  for (const auto& [id, rec] : jobs_) {
    if (!rec->done) {
      any_unfinished = true;
      break;
    }
  }
  if (!any_unfinished) return;
  sweeper_active_ = true;
  auto* proc = host_->network().engine().spawn(
      "gatekeeper.sweep@" + host_->name(), [this](sim::Process& self) {
        struct Flag {
          bool* b;
          ~Flag() { *b = false; }
        } flag{&sweeper_active_};
        // Alive only while unfinished jobs exist — the sweeper must not
        // keep the event queue busy after the work drains.
        while (true) {
          bool any_active = false;
          for (auto& [id, rec] : jobs_) {
            if (rec->done || rec->jm == nullptr) continue;
            if (rec->jm->killed() || rec->jm->finished()) {
              reclaim(self, rec);
              continue;
            }
            any_active = true;
          }
          if (!any_active) return;
          self.sleep(options_.lease_check_interval_s);
        }
      });
  register_proc(proc);
}

void Gatekeeper::reclaim(sim::Process& self,
                         const std::shared_ptr<JobRec>& rec) {
  kLog.warn("job %llu: job manager died without finishing; reclaiming",
            static_cast<unsigned long long>(rec->job_id));
  ++jobs_reclaimed_;
  telemetry::metrics().counter("rmf.recovery.jobs_reclaimed").add();
  if (!rec->grant_ids.empty()) {
    auto conn = host_->stack().connect(self, allocator_);
    if (conn.ok()) {
      Release rel;
      rel.grant_ids = rec->grant_ids;
      (void)(*conn)->send(rel.encode());
      (*conn)->close();
    }
  }
  JobDone done{false, "job manager lost", {}};
  journal_job_done(rec->job_id, done);
  rec->done = true;
  rec->result = done;
  if (rec->waiter != nullptr) {
    (void)rec->waiter->send(done.encode());
    rec->waiter->close();
    rec->waiter = nullptr;
  }
  rec->jm = nullptr;
}

// ---------------------------------------------------------------- journal

void Gatekeeper::journal_job(const JobRec& rec) {
  BufWriter w;
  w.u8(kRecJob);
  w.u64(rec.job_id);
  w.blob(SubmitRequest{rec.spec}.encode());
  journal_.append(std::move(w).take());
}

void Gatekeeper::journal_grant(std::uint64_t job_id, std::uint64_t grant_id,
                               const std::vector<Placement>& placements) {
  BufWriter w;
  w.u8(kRecGrant);
  w.u64(job_id);
  w.u64(grant_id);
  w.u32(static_cast<std::uint32_t>(placements.size()));
  for (const Placement& p : placements) {
    w.str(p.host);
    w.i32(p.count);
  }
  journal_.append(std::move(w).take());
}

void Gatekeeper::journal_part(std::uint64_t job_id, std::uint64_t seq,
                              const std::string& host, int base_rank,
                              int count, int attempts) {
  BufWriter w;
  w.u8(kRecPart);
  w.u64(job_id);
  w.u64(seq);
  w.str(host);
  w.i32(base_rank);
  w.i32(count);
  w.i32(attempts);
  journal_.append(std::move(w).take());
}

void Gatekeeper::journal_part_cancel(std::uint64_t job_id,
                                     std::uint64_t seq) {
  BufWriter w;
  w.u8(kRecPartCancel);
  w.u64(job_id);
  w.u64(seq);
  journal_.append(std::move(w).take());
}

void Gatekeeper::journal_table(std::uint64_t job_id,
                               const ContactTable& table) {
  BufWriter w;
  w.u8(kRecTable);
  w.u64(job_id);
  w.blob(table.encode());
  journal_.append(std::move(w).take());
}

void Gatekeeper::journal_rank_done(std::uint64_t job_id, int rank,
                                   const Bytes& output) {
  BufWriter w;
  w.u8(kRecRankDone);
  w.u64(job_id);
  w.i32(rank);
  w.blob(output);
  journal_.append(std::move(w).take());
}

void Gatekeeper::journal_job_done(std::uint64_t job_id, const JobDone& done) {
  BufWriter w;
  w.u8(kRecJobDone);
  w.u64(job_id);
  w.blob(done.encode());
  journal_.append(std::move(w).take());
}

void Gatekeeper::replay_journal() {
  telemetry::Span span("rmf", "rmf.recovery.replay");
  span.arg("daemon", "gatekeeper@" + host_->name());
  ++journal_replays_;
  telemetry::metrics().counter("rmf.recovery.replays").add();
  last_replay_time_ = host_->network().engine().now();
  first_resubmit_after_replay_ = 0;

  jobs_.clear();
  std::vector<std::shared_ptr<JobRec>> order;
  std::uint64_t max_job_id = 0;
  auto find = [this](std::uint64_t id) -> std::shared_ptr<JobRec> {
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
  };
  for (const Bytes& raw : journal_.records()) {
    BufReader r(raw);
    auto tag = r.u8();
    if (!tag.ok()) break;
    if (*tag == kRecJob) {
      auto id = r.u64();
      auto body = r.blob();
      if (!id.ok() || !body.ok()) break;
      auto req = SubmitRequest::decode(*body);
      if (!req.ok()) break;
      auto rec = std::make_shared<JobRec>();
      rec->job_id = *id;
      rec->spec = std::move(req->spec);
      rec->rank_done.assign(static_cast<std::size_t>(rec->spec.nprocs),
                            false);
      max_job_id = std::max(max_job_id, *id);
      jobs_[*id] = rec;
      order.push_back(rec);
    } else if (*tag == kRecGrant) {
      auto id = r.u64();
      auto grant_id = r.u64();
      auto n = r.u32();
      if (!id.ok() || !grant_id.ok() || !n.ok()) break;
      auto rec = find(*id);
      if (rec == nullptr) continue;
      rec->grant_ids.push_back(*grant_id);
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto host = r.str();
        auto count = r.i32();
        if (!host.ok() || !count.ok()) break;
        rec->granted.push_back(Placement{std::move(*host), *count});
      }
    } else if (*tag == kRecPart) {
      auto id = r.u64();
      auto seq = r.u64();
      auto host = r.str();
      auto base = r.i32();
      auto count = r.i32();
      auto attempts = r.i32();
      if (!id.ok() || !seq.ok() || !host.ok() || !base.ok() || !count.ok() ||
          !attempts.ok()) {
        break;
      }
      auto rec = find(*id);
      if (rec == nullptr) continue;
      rec->parts.push_back(JobRec::PartInfo{*seq, std::move(*host), *base,
                                            *count, *attempts, false});
      rec->next_part_seq = std::max(rec->next_part_seq, *seq + 1);
    } else if (*tag == kRecPartCancel) {
      auto id = r.u64();
      auto seq = r.u64();
      if (!id.ok() || !seq.ok()) break;
      auto rec = find(*id);
      if (rec == nullptr) continue;
      for (JobRec::PartInfo& pi : rec->parts) {
        if (pi.seq == *seq) pi.cancelled = true;
      }
    } else if (*tag == kRecTable) {
      auto id = r.u64();
      auto body = r.blob();
      if (!id.ok() || !body.ok()) break;
      auto rec = find(*id);
      if (rec == nullptr) continue;
      auto table = ContactTable::decode(*body);
      if (!table.ok()) break;
      rec->table = std::move(*table);
      rec->table_sent = true;
    } else if (*tag == kRecRankDone) {
      auto id = r.u64();
      auto rank = r.i32();
      auto output = r.blob();
      if (!id.ok() || !rank.ok() || !output.ok()) break;
      auto rec = find(*id);
      if (rec == nullptr) continue;
      if (*rank >= 0 && *rank < rec->spec.nprocs) {
        rec->rank_done[static_cast<std::size_t>(*rank)] = true;
      }
      if (*rank == 0) {
        rec->rank0_output = std::move(*output);
        rec->have_rank0 = true;
      }
    } else if (*tag == kRecJobDone) {
      auto id = r.u64();
      auto body = r.blob();
      if (!id.ok() || !body.ok()) break;
      auto rec = find(*id);
      if (rec == nullptr) continue;
      auto done = JobDone::decode(*body);
      if (!done.ok()) break;
      rec->done = true;
      rec->result = std::move(*done);
    }
  }
  next_job_id_ = std::max(next_job_id_, max_job_id + 1);

  std::size_t recovered = 0;
  for (const std::shared_ptr<JobRec>& rec : order) {
    if (rec->done) continue;
    ++jobs_recovered_;
    ++recovered;
    telemetry::metrics().counter("rmf.recovery.jobs_recovered").add();
    // A job that never journaled a part re-runs from scratch (a grant
    // journaled allocator-side but not here self-heals through lease
    // expiry); anything further along resumes from the journaled state.
    const bool resume = !rec->parts.empty();
    rec->jm = host_->network().engine().spawn(
        "jobmanager#" + std::to_string(rec->job_id) + "@" + host_->name(),
        [this, rec, resume](sim::Process& jm) {
          job_manager(jm, rec, resume);
        });
    register_proc(rec->jm);
  }
  kLog.info("gatekeeper replayed %zu jobs (%zu respawned)", order.size(),
            recovered);
}

// ------------------------------------------------------------- client side

Result<JobResult> submit_and_wait(sim::Process& self, sim::Host& from,
                                  const Contact& gatekeeper,
                                  const JobSpec& spec,
                                  const SubmitOptions& options) {
  sim::Engine& engine = from.network().engine();
  const sim::Time started = engine.now();

  // Root of the job's causal chain: everything from the submit request to
  // the gatekeeper, job manager, Q servers, and ranks parents back here.
  telemetry::Span span("rmf", "rmf.submit_and_wait");
  if (span.active()) {
    span.arg("task", spec.task);
    span.arg("nprocs", spec.nprocs);
  }

  auto conn = from.stack().connect(self, gatekeeper);
  if (!conn.ok()) {
    return Error(conn.error().code(),
                 "gatekeeper unreachable: " + conn.error().message());
  }
  if (auto s = (*conn)->send(SubmitRequest{spec}.encode()); !s.ok()) {
    return s.error();
  }
  auto reply_frame = (*conn)->recv(self);
  if (!reply_frame.ok()) return reply_frame.error();
  auto reply = SubmitReply::decode(*reply_frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) {
    return Error(ErrorCode::kPermissionDenied, reply->error);
  }

  auto finish = [&](JobDone done) {
    JobResult result;
    result.ok = done.ok;
    result.error = done.error;
    result.job_id = reply->job_id;
    result.output = std::move(done.output);
    result.wall_seconds = sim::to_sec(engine.now() - started);
    return result;
  };

  auto done_frame = (*conn)->recv(self);
  if (done_frame.ok()) {
    auto done = JobDone::decode(*done_frame);
    if (!done.ok()) return done.error();
    return finish(std::move(*done));
  }
  // The result connection died under us — a gatekeeper crash, most likely.
  // The job id is durable gatekeeper-side, so re-ask with a JobQuery; each
  // query may park until the (recovered) job finishes.
  for (int i = 0; i < options.query_attempts; ++i) {
    self.sleep(options.query_backoff_s * (i + 1));
    auto qconn = from.stack().connect(self, gatekeeper);
    if (!qconn.ok()) continue;
    if (!(*qconn)->send(JobQuery{reply->job_id}.encode()).ok()) continue;
    auto qframe = (*qconn)->recv(self);
    if (!qframe.ok()) continue;
    auto done = JobDone::decode(*qframe);
    if (!done.ok()) continue;
    return finish(std::move(*done));
  }
  return done_frame.error();
}

}  // namespace wacs::rmf
