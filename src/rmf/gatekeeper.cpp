#include "rmf/gatekeeper.hpp"

#include <deque>
#include <map>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/time.hpp"

namespace wacs::rmf {
namespace {
const log::Logger kLog("rmf.gatekeeper");

/// Shared between a job manager and its deadline watchdog event.
struct WatchdogState {
  sim::ListenerPtr rendezvous;
  std::vector<sim::SocketPtr> rank_conns;
  bool fired = false;
  bool done = false;
};

}  // namespace

Gatekeeper::Gatekeeper(sim::Host& host, Options options, Contact allocator,
                       const JobRegistry* registry)
    : host_(&host),
      options_(std::move(options)),
      allocator_(std::move(allocator)),
      registry_(registry) {
  WACS_CHECK(registry_ != nullptr);
}

void Gatekeeper::start() {
  WACS_CHECK_MSG(!started_, "gatekeeper already started");
  started_ = true;
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "gatekeeper cannot bind its port");
  listener_ = *listener;
  host_->network().engine().spawn(
      "gatekeeper@" + host_->name(),
      [this](sim::Process& self) { serve(self); });
}

void Gatekeeper::serve(sim::Process& self) {
  while (true) {
    auto conn = listener_->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    auto frame = sock->recv(self);
    if (!frame.ok()) continue;
    auto req = SubmitRequest::decode(*frame);
    if (!req.ok()) {
      (void)sock->send(SubmitReply{false, 0, req.error().to_string()}.encode());
      sock->close();
      continue;
    }
    // Authentication — the Globus gatekeeper's role. Shared-secret mode
    // compares a token; GSI mode verifies an HMAC credential chain
    // (expiry, delegation depth, subject nesting).
    bool authorized = false;
    if (options_.ca_secret.has_value()) {
      auto chain =
          security::CredentialChain::decode_hex(req->spec.credential);
      if (chain.ok()) {
        security::CertAuthority ca(*options_.ca_secret);
        if (ca.verify(*chain, host_->network().engine().now()).ok()) {
          authorized = true;
          last_subject_ = chain->leaf().subject;
        }
      }
    } else {
      authorized = req->spec.credential == options_.credential;
    }
    if (!authorized) {
      ++auth_failures_;
      telemetry::metrics().counter("rmf.auth.failures").add();
      (void)sock->send(
          SubmitReply{false, 0, "authentication failed"}.encode());
      sock->close();
      continue;
    }
    // Early validation keeps obvious errors synchronous.
    if (!registry_->find(req->spec.task).ok()) {
      (void)sock->send(
          SubmitReply{false, 0, "unknown task " + req->spec.task}.encode());
      sock->close();
      continue;
    }
    if (req->spec.nprocs <= 0) {
      (void)sock->send(SubmitReply{false, 0, "nprocs must be > 0"}.encode());
      sock->close();
      continue;
    }

    const std::uint64_t job_id = next_job_id_++;
    ++jobs_accepted_;
    static telemetry::Counter& accepted =
        telemetry::metrics().counter("rmf.jobs.accepted");
    accepted.add();
    // The submit request's context makes the job manager's spans children
    // of the submitter's trace.
    const telemetry::TraceContext submit_ctx = sock->last_rx_meta().ctx;
    (void)sock->send(SubmitReply{true, job_id, ""}.encode());
    // Step 2: the gatekeeper invokes a job manager for this job.
    JobSpec spec = std::move(req->spec);
    host_->network().engine().spawn(
        "jobmanager#" + std::to_string(job_id) + "@" + host_->name(),
        [this, sock, spec = std::move(spec), job_id,
         submit_ctx](sim::Process& jm) {
          job_manager(jm, sock, spec, job_id, submit_ctx);
        });
  }
}

void Gatekeeper::job_manager(sim::Process& self, sim::SocketPtr submitter,
                             JobSpec spec, std::uint64_t job_id,
                             telemetry::TraceContext submit_ctx) {
  telemetry::Span job_span("rmf", "rmf.job", submit_ctx);
  if (job_span.active()) {
    job_span.arg("job_id", job_id);
    job_span.arg("task", spec.task);
    job_span.arg("nprocs", spec.nprocs);
  }
  static telemetry::Gauge& active_jobs =
      telemetry::metrics().gauge("rmf.jobs.active");
  active_jobs.add(1);
  struct ActiveGuard {
    telemetry::Gauge& g;
    ~ActiveGuard() { g.add(-1); }
  } active_guard{active_jobs};
  // Allocator-made allocations are handed back on every exit path; pinned
  // placements bypass the allocator and are the submitter's responsibility
  // (no co-allocator existed in the paper's system either).
  bool from_allocator = false;
  std::vector<Placement> placements = spec.placements;
  auto release_allocation = [&] {
    if (!from_allocator) return;
    from_allocator = false;
    auto conn = host_->stack().connect(self, allocator_);
    if (conn.ok()) {
      (void)(*conn)->send(Release{placements}.encode());
      (*conn)->close();
    }
  };
  auto fail = [&](const std::string& why) {
    kLog.warn("job %llu failed: %s", static_cast<unsigned long long>(job_id),
              why.c_str());
    release_allocation();
    (void)submitter->send(JobDone{false, why, {}}.encode());
    submitter->close();
  };

  // Step 3-4: the Q client inquires of the resource allocator (only when
  // the submission did not pin placements).
  if (placements.empty()) {
    telemetry::Span span("rmf", "rmf.allocate");
    const sim::Time alloc_t0 = host_->network().engine().now();
    auto alloc_conn = host_->stack().connect(self, allocator_);
    if (!alloc_conn.ok()) {
      return fail("allocator unreachable: " + alloc_conn.error().to_string());
    }
    if (!(*alloc_conn)->send(AllocRequest{spec.nprocs, {}}.encode()).ok()) {
      return fail("allocator send failed");
    }
    auto reply_frame = (*alloc_conn)->recv(self);
    if (!reply_frame.ok()) return fail("allocator reply lost");
    auto reply = AllocReply::decode(*reply_frame);
    if (!reply.ok()) return fail("allocator reply malformed");
    if (!reply->ok) return fail("allocation failed: " + reply->error);
    placements = std::move(reply->placements);
    from_allocator = true;
    static telemetry::Histogram& alloc_ms =
        telemetry::metrics().histogram("rmf.alloc_ms");
    alloc_ms.observe(
        sim::to_ms(host_->network().engine().now() - alloc_t0));
  }

  int total = 0;
  for (const Placement& p : placements) total += p.count;
  if (total != spec.nprocs) {
    return fail("placements cover " + std::to_string(total) + " of " +
                std::to_string(spec.nprocs) + " processes");
  }

  // Rendezvous listener for rank bootstrap; ranks dial out to it, so it
  // works from behind the deny-based firewall.
  auto rendezvous = host_->stack().listen(0);
  if (!rendezvous.ok()) return fail("cannot create rendezvous listener");
  const Contact jm_contact{host_->name(), (*rendezvous)->port()};

  // Deadline watchdog: when the job overruns, close the rendezvous listener
  // and every rank connection so the blocked recv/accept calls below fail
  // and the job reports a timeout instead of hanging forever.
  auto watchdog_state = std::make_shared<WatchdogState>();
  watchdog_state->rendezvous = *rendezvous;
  if (spec.deadline_seconds > 0) {
    host_->network().engine().after(
        spec.deadline_seconds, [watchdog_state] {
          if (watchdog_state->done) return;
          watchdog_state->fired = true;
          watchdog_state->rendezvous->close();
          for (auto& conn : watchdog_state->rank_conns) {
            if (conn != nullptr) conn->close();
          }
        });
  }
  auto finish_watchdog = [&] { watchdog_state->done = true; };
  auto timeout_error = [&](const std::string& fallback) {
    return watchdog_state->fired
               ? "deadline of " + std::to_string(spec.deadline_seconds) +
                     "s exceeded"
               : fallback;
  };

  // Step 5: the Q client submits job parts to the Q servers. GASS input
  // files ride along (charged as real bytes on the network). A part whose
  // Q server cannot be reached is requeued: the allocator picks replacement
  // capacity that excludes every host seen to fail so far.
  struct Part {
    Placement placement;
    int base_rank = 0;
  };
  std::vector<Part> submitted;
  std::deque<Part> to_submit;
  {
    int base_rank = 0;
    for (const Placement& p : placements) {
      to_submit.push_back(Part{p, base_rank});
      base_rank += p.count;
    }
  }

  auto submit_part = [&](const Part& part) -> Status {
    telemetry::Span span("rmf", "rmf.submit_part");
    if (span.active()) span.arg("host", part.placement.host);
    auto q_conn = host_->stack().connect(
        self, Contact{part.placement.host, options_.qserver_port});
    if (!q_conn.ok()) {
      return Error(q_conn.error().code(),
                   "Q server on " + part.placement.host +
                       " unreachable: " + q_conn.error().message());
    }
    QSubmit qsub;
    qsub.job_id = job_id;
    qsub.task = spec.task;
    qsub.base_rank = part.base_rank;
    qsub.count = part.placement.count;
    qsub.nprocs = spec.nprocs;
    qsub.job_manager = jm_contact;
    qsub.args = spec.args;
    qsub.input_files = spec.input_files;
    qsub.input_urls = spec.input_urls;
    if (!(*q_conn)->send(qsub.encode()).ok()) {
      return Error(ErrorCode::kUnavailable,
                   "Q submit to " + part.placement.host + " failed");
    }
    auto reply_frame = (*q_conn)->recv(self);
    if (!reply_frame.ok()) {
      return Error(reply_frame.error().code(),
                   "Q server on " + part.placement.host + " died");
    }
    auto reply = QSubmitReply::decode(*reply_frame);
    if (!reply.ok() || !reply->ok) {
      return Error(ErrorCode::kUnavailable,
                   "Q server on " + part.placement.host + " rejected job: " +
                       (reply.ok() ? reply->error : reply.error().to_string()));
    }
    return {};
  };

  std::vector<std::string> failed_hosts;
  int requeues_left = options_.max_requeues;
  // Replaces a dead part's placement with fresh capacity avoiding every
  // failed host (the replacement may split across several hosts). The dead
  // placement stays in `placements` so the final release returns it too —
  // the allocator's bookkeeping does not track liveness.
  auto requeue_part = [&](const Part& dead) -> Result<std::vector<Part>> {
    if (!from_allocator) {
      return Error(ErrorCode::kUnavailable,
                   "pinned placement on " + dead.placement.host + " failed");
    }
    if (requeues_left == 0) {
      return Error(ErrorCode::kResourceExhausted, "requeue budget exhausted");
    }
    --requeues_left;
    failed_hosts.push_back(dead.placement.host);
    auto conn = host_->stack().connect(self, allocator_);
    if (!conn.ok()) {
      return Error(conn.error().code(), "allocator unreachable");
    }
    AllocRequest req;
    req.nprocs = dead.placement.count;
    req.exclude = failed_hosts;
    if (!(*conn)->send(req.encode()).ok()) {
      return Error(ErrorCode::kUnavailable, "allocator send failed");
    }
    auto reply_frame = (*conn)->recv(self);
    if (!reply_frame.ok()) {
      return Error(ErrorCode::kUnavailable, "allocator reply lost");
    }
    auto reply = AllocReply::decode(*reply_frame);
    if (!reply.ok()) {
      return Error(ErrorCode::kProtocolError, "allocator reply malformed");
    }
    if (!reply->ok) {
      return Error(ErrorCode::kResourceExhausted,
                   "replacement allocation failed: " + reply->error);
    }
    kLog.warn("job %llu: requeueing %d ranks away from dead host %s",
              static_cast<unsigned long long>(job_id), dead.placement.count,
              dead.placement.host.c_str());
    ++parts_requeued_;
    telemetry::metrics().counter("rmf.parts.requeued").add();
    std::vector<Part> fresh;
    int base = dead.base_rank;
    for (Placement& np : reply->placements) {
      const int count = np.count;
      placements.push_back(np);
      fresh.push_back(Part{std::move(np), base});
      base += count;
    }
    return fresh;
  };

  while (!to_submit.empty()) {
    Part part = std::move(to_submit.front());
    to_submit.pop_front();
    auto s = submit_part(part);
    if (s.ok()) {
      submitted.push_back(std::move(part));
      continue;
    }
    kLog.warn("job %llu: %s", static_cast<unsigned long long>(job_id),
              s.error().to_string().c_str());
    auto repl = requeue_part(part);
    if (!repl.ok()) {
      return fail(s.error().message() + "; " + repl.error().message());
    }
    for (Part& np : *repl) to_submit.push_back(std::move(np));
  }

  // Rank rendezvous: collect every rank's endpoint contact, then broadcast
  // the table (MPICH-G startup). With a rendezvous bound configured,
  // silence means a part's host died before its ranks could dial in; the
  // silent parts are requeued and their stale connections dropped.
  std::vector<sim::SocketPtr> rank_conns(
      static_cast<std::size_t>(spec.nprocs));
  std::vector<bool> have_hello(static_cast<std::size_t>(spec.nprocs), false);
  ContactTable table;
  table.contacts.resize(static_cast<std::size_t>(spec.nprocs));
  table.sites.resize(static_cast<std::size_t>(spec.nprocs));
  int collected = 0;
  // optional<> rather than a scope: the table broadcast below belongs to
  // the rendezvous span but the collected state outlives it.
  std::optional<telemetry::Span> rendezvous_span;
  rendezvous_span.emplace("rmf", "rmf.rendezvous");
  while (collected < spec.nprocs) {
    const bool bounded = options_.rendezvous_timeout_s > 0;
    const sim::Time deadline =
        host_->network().engine().now() +
        sim::from_sec(options_.rendezvous_timeout_s);
    auto conn = bounded ? (*rendezvous)->accept_deadline(self, deadline)
                        : (*rendezvous)->accept(self);
    if (!conn.ok()) {
      if (bounded && conn.error().code() == ErrorCode::kTimeout &&
          !watchdog_state->fired) {
        // Requeue every part with a silent rank; drop hellos already taken
        // from those parts (their host is presumed dead, the replacement
        // ranks will re-report).
        bool requeued_any = false;
        for (std::size_t pi = 0; pi < submitted.size(); ++pi) {
          const Part& part = submitted[pi];
          bool silent = false;
          for (int r = part.base_rank;
               r < part.base_rank + part.placement.count; ++r) {
            if (!have_hello[static_cast<std::size_t>(r)]) silent = true;
          }
          if (!silent) continue;
          auto repl = requeue_part(part);
          if (!repl.ok()) {
            return fail("rank rendezvous timed out; " +
                        repl.error().message());
          }
          for (int r = part.base_rank;
               r < part.base_rank + part.placement.count; ++r) {
            const auto ri = static_cast<std::size_t>(r);
            if (have_hello[ri]) {
              have_hello[ri] = false;
              if (rank_conns[ri] != nullptr) rank_conns[ri]->close();
              rank_conns[ri] = nullptr;
              --collected;
            }
          }
          std::vector<Part> fresh = std::move(*repl);
          submitted[pi] = fresh.front();
          for (std::size_t fi = 1; fi < fresh.size(); ++fi) {
            submitted.push_back(fresh[fi]);
          }
          for (const Part& np : fresh) {
            if (auto s = submit_part(np); !s.ok()) {
              return fail("requeue resubmit failed: " + s.error().message());
            }
          }
          requeued_any = true;
        }
        if (!requeued_any) return fail("rank rendezvous timed out");
        continue;
      }
      return fail(timeout_error("rank rendezvous interrupted"));
    }
    watchdog_state->rank_conns.push_back(*conn);
    auto frame = bounded ? (*conn)->recv_deadline(self, deadline)
                         : (*conn)->recv(self);
    if (!frame.ok()) {
      if (bounded && !watchdog_state->fired) continue;  // dead dialer
      return fail(timeout_error("rank hello lost"));
    }
    auto hello = RankHello::decode(*frame);
    if (!hello.ok() || hello->job_id != job_id || hello->rank < 0 ||
        hello->rank >= spec.nprocs) {
      return fail("bad rank hello");
    }
    const auto ri = static_cast<std::size_t>(hello->rank);
    if (have_hello[ri]) {  // duplicate after a spurious requeue: keep first
      (*conn)->close();
      continue;
    }
    have_hello[ri] = true;
    table.contacts[ri] = hello->contact;
    table.sites[ri] = hello->site;
    rank_conns[ri] = *conn;
    ++collected;
  }
  for (auto& conn : rank_conns) {
    if (!conn->send(table.encode()).ok()) return fail("table broadcast failed");
  }
  rendezvous_span.reset();
  telemetry::Span run_span("rmf", "rmf.run");

  // Completion: wait for every rank's RankDone; keep rank 0's output. A
  // rank that vanishes after startup cannot be replaced (the MPI world is
  // fixed at the table broadcast), so the job degrades: it completes as
  // long as rank 0 — which carries the application result — survives.
  Bytes output;
  int lost_after_start = 0;
  for (int i = 0; i < spec.nprocs; ++i) {
    auto frame = rank_conns[static_cast<std::size_t>(i)]->recv(self);
    if (!frame.ok()) {
      if (watchdog_state->fired || i == 0) {
        return fail(timeout_error("rank " + std::to_string(i) + " vanished"));
      }
      ++lost_after_start;
      kLog.warn("job %llu: rank %d vanished after startup (%s)",
                static_cast<unsigned long long>(job_id), i,
                frame.error().to_string().c_str());
      continue;
    }
    auto done = RankDone::decode(*frame);
    if (!done.ok()) return fail("bad rank done");
    if (done->rank == 0) output = std::move(done->output);
  }
  if (lost_after_start > 0) {
    ranks_lost_ += static_cast<std::uint64_t>(lost_after_start);
    telemetry::metrics().counter("rmf.ranks.lost").add(
        static_cast<std::uint64_t>(lost_after_start));
    kLog.warn("job %llu completed degraded: %d ranks lost",
              static_cast<unsigned long long>(job_id), lost_after_start);
  }

  finish_watchdog();
  kLog.info("job %llu complete", static_cast<unsigned long long>(job_id));
  release_allocation();
  (void)submitter->send(JobDone{true, "", std::move(output)}.encode());
  submitter->close();
}

Result<JobResult> submit_and_wait(sim::Process& self, sim::Host& from,
                                  const Contact& gatekeeper,
                                  const JobSpec& spec) {
  sim::Engine& engine = from.network().engine();
  const sim::Time started = engine.now();

  // Root of the job's causal chain: everything from the submit request to
  // the gatekeeper, job manager, Q servers, and ranks parents back here.
  telemetry::Span span("rmf", "rmf.submit_and_wait");
  if (span.active()) {
    span.arg("task", spec.task);
    span.arg("nprocs", spec.nprocs);
  }

  auto conn = from.stack().connect(self, gatekeeper);
  if (!conn.ok()) {
    return Error(conn.error().code(),
                 "gatekeeper unreachable: " + conn.error().message());
  }
  if (auto s = (*conn)->send(SubmitRequest{spec}.encode()); !s.ok()) {
    return s.error();
  }
  auto reply_frame = (*conn)->recv(self);
  if (!reply_frame.ok()) return reply_frame.error();
  auto reply = SubmitReply::decode(*reply_frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) {
    return Error(ErrorCode::kPermissionDenied, reply->error);
  }

  auto done_frame = (*conn)->recv(self);
  if (!done_frame.ok()) return done_frame.error();
  auto done = JobDone::decode(*done_frame);
  if (!done.ok()) return done.error();

  JobResult result;
  result.ok = done->ok;
  result.error = done->error;
  result.job_id = reply->job_id;
  result.output = std::move(done->output);
  result.wall_seconds = sim::to_sec(engine.now() - started);
  return result;
}

}  // namespace wacs::rmf
