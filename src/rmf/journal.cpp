#include "rmf/journal.hpp"

#include "common/telemetry.hpp"

namespace wacs::rmf {

Journal::Journal(sim::Host& host, std::string name)
    : disk_(&host.disk()),
      name_(std::move(name)),
      key_("journal/" + name_) {}

void Journal::append(const Bytes& record) {
  BufWriter frame;
  frame.blob(record);
  disk_->append(key_, frame.bytes());
  ++appended_;
  telemetry::metrics().counter("rmf.journal.records").add();
  telemetry::metrics()
      .counter("rmf.journal.bytes")
      .add(static_cast<std::int64_t>(record.size()));
}

std::vector<Bytes> Journal::records() const {
  std::vector<Bytes> out;
  const Bytes* raw = disk_->get(key_);
  if (raw == nullptr) return out;
  BufReader r(*raw);
  while (!r.at_end()) {
    auto rec = r.blob();
    if (!rec.ok()) break;  // torn tail
    out.push_back(std::move(*rec));
  }
  return out;
}

void Journal::truncate() { disk_->erase(key_); }

}  // namespace wacs::rmf
