#include "rmf/qserver.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "gass/client.hpp"
#include "simnet/fault.hpp"

namespace wacs::rmf {
namespace {
const log::Logger kLog("rmf.qserver");

// Journal record tags.
constexpr std::uint8_t kRecAccept = 1;     ///< + QSubmit blob
constexpr std::uint8_t kRecJm = 2;         ///< + key + job-manager contact
constexpr std::uint8_t kRecBootstrap = 3;  ///< + key
constexpr std::uint8_t kRecDone = 4;       ///< + key
constexpr std::uint8_t kRecCancel = 5;     ///< + key
}  // namespace

QServer::QServer(sim::Host& host, std::uint16_t port, Env site_env,
                 const JobRegistry* registry)
    : host_(&host),
      port_(port),
      site_env_(std::move(site_env)),
      registry_(registry),
      journal_(host, "qserver") {
  WACS_CHECK(registry_ != nullptr);
}

void QServer::register_proc(sim::Process* proc) {
  if (auto* fault = host_->network().fault(); fault != nullptr) {
    fault->register_host_process(host_->name(), proc);
  }
}

void QServer::spawn_serve() {
  serve_proc_ = host_->network().engine().spawn(
      "qserver@" + host_->name(), [this](sim::Process& self) { serve(self); });
  register_proc(serve_proc_);
}

void QServer::start() {
  WACS_CHECK_MSG(!started_, "Q server already started");
  started_ = true;
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "Q server cannot bind its port");
  listener_ = *listener;
  spawn_serve();
}

void QServer::restart() {
  if (listener_) listener_->close();
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "Q server cannot re-bind its port");
  listener_ = *listener;
  spawn_serve();
  heartbeat_active_ = false;  // the heartbeat process died with the host
  replay_journal();
  ensure_heartbeat();
}

void QServer::serve(sim::Process& self) {
  // Capture: restart() swaps in a fresh listener for the new serve process.
  sim::ListenerPtr listener = listener_;
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    auto* handler = host_->network().engine().spawn(
        "qserver@" + host_->name() + ".req",
        [this, sock](sim::Process& h) { handle(h, sock); });
    register_proc(handler);
  }
}

void QServer::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  if (auto type = peek_type(*frame);
      type.ok() && *type == MsgType::kQCancel) {
    auto cancel = QCancel::decode(*frame);
    if (cancel.ok()) handle_cancel(*cancel);
    conn->close();
    return;
  }
  auto req = QSubmit::decode(*frame);
  if (!req.ok()) {
    (void)conn->send(QSubmitReply{false, req.error().to_string()}.encode());
    conn->close();
    return;
  }
  if (!registry_->find(req->task).ok()) {
    (void)conn->send(
        QSubmitReply{false, "unknown task " + req->task}.encode());
    conn->close();
    return;
  }
  if (req->count <= 0 || req->count > host_->cpus()) {
    (void)conn->send(
        QSubmitReply{false,
                     "cannot host " + std::to_string(req->count) +
                         " processes on " + std::to_string(host_->cpus()) +
                         " cpus"}
            .encode());
    conn->close();
    return;
  }

  // Exactly-once: a part we have already seen (journal replay on the job
  // manager's side, or a retried submit) is absorbed — record the sender as
  // the part's current job manager so in-flight ranks reconnect to it, but
  // never run the part again.
  const PartKey key{req->job_id, req->part_seq};
  if (auto it = parts_.find(key); it != parts_.end()) {
    ++submits_deduped_;
    telemetry::metrics().counter("rmf.recovery.qsubmit_dedup").add();
    if (!(it->second.job.job_manager == req->job_manager)) {
      it->second.job.job_manager = req->job_manager;
      journal_jm(key, req->job_manager);
    }
    (void)conn->send(QSubmitReply{true, ""}.encode());
    conn->close();
    return;
  }

  // Accept: journaled before the reply leaves, so anything the job manager
  // can observe is recoverable.
  journal_accept(*req);
  PartRec rec;
  rec.job = *req;
  parts_.emplace(key, std::move(rec));
  admit(key);
  (void)conn->send(QSubmitReply{true, ""}.encode());
  conn->close();
}

void QServer::handle_cancel(const QCancel& cancel) {
  const PartKey key{cancel.job_id, cancel.part_seq};
  auto it = parts_.find(key);
  if (it == parts_.end()) return;  // never accepted here (lost submit)
  PartRec& rec = it->second;
  switch (rec.state) {
    case PartState::kQueued: {
      std::erase(queue_, key);
      rec.state = PartState::kCancelled;
      journal_simple(kRecCancel, key);
      ++parts_cancelled_;
      telemetry::metrics().counter("rmf.recovery.parts_cancelled").add();
      break;
    }
    case PartState::kRunning: {
      // Never bootstrapped: safe to withdraw. Mark first so the rank CPU
      // guards (which observe the kill) still pump the queue.
      rec.state = PartState::kCancelled;
      journal_simple(kRecCancel, key);
      ++parts_cancelled_;
      telemetry::metrics().counter("rmf.recovery.parts_cancelled").add();
      const bool ranks_spawned = rec.live_ranks > 0;
      for (sim::Process* p : rec.procs) p->kill();
      if (!ranks_spawned) {
        // Only the staging process held the slot; no guards will fire.
        busy_cpus_ -= rec.job.count;
        pump_queue();
      }
      break;
    }
    case PartState::kBootstrapped:
    case PartState::kDone:
    case PartState::kCancelled:
    case PartState::kLost:
      // Past the point of withdrawal (the part joined the MPI world or is
      // already settled); the job manager's dedup handles the rest.
      break;
  }
}

void QServer::admit(const PartKey& key) {
  const PartRec& rec = parts_.at(key);
  if (busy_cpus_ + rec.job.count <= host_->cpus() && queue_.empty()) {
    dispatch(key);
  } else {
    ++jobs_queued_total_;
    queue_.push_back(key);
    kLog.debug("%s queued job %llu part (depth %zu)", host_->name().c_str(),
               static_cast<unsigned long long>(key.first), queue_.size());
  }
}

void QServer::dispatch(const PartKey& key) {
  PartRec& rec = parts_.at(key);
  ++jobs_started_;
  busy_cpus_ += rec.job.count;
  rec.state = PartState::kRunning;
  if (awaiting_first_dispatch_) {
    awaiting_first_dispatch_ = false;
    first_dispatch_after_replay_ = host_->network().engine().now();
  }
  ensure_heartbeat();
  if (rec.job.input_urls.empty()) {
    // Inline fallback: payloads arrived inside the QSubmit itself.
    spawn_ranks(key, std::make_shared<const std::map<std::string, Bytes>>(
                         rec.job.input_files));
    return;
  }
  // GASS staging happens once per part, before any rank starts — the LAN
  // fan-out point. A staging failure releases the reserved CPUs and leaves
  // the part silent; the job manager's rendezvous timeout requeues it.
  sim::Process* proc = host_->network().engine().spawn(
      "job" + std::to_string(key.first) + ".stage@" + host_->name(),
      [this, key](sim::Process& self) {
        const QSubmit job = parts_.at(key).job;
        auto files = stage_inputs(self, job);
        if (!files.ok()) {
          kLog.error("%s: staging for job %llu failed: %s",
                     host_->name().c_str(),
                     static_cast<unsigned long long>(job.job_id),
                     files.error().to_string().c_str());
          parts_.at(key).state = PartState::kQueued;  // accepted, not run
          busy_cpus_ -= job.count;
          pump_queue();
          return;
        }
        spawn_ranks(key,
                    std::make_shared<const std::map<std::string, Bytes>>(
                        std::move(*files)));
      });
  rec.procs.push_back(proc);
  register_proc(proc);
}

Result<std::map<std::string, Bytes>> QServer::stage_inputs(
    sim::Process& self, const QSubmit& job) {
  telemetry::Span span("gass", "gass.stage_part");
  if (span.active()) {
    span.arg("job_id", job.job_id);
    span.arg("host", host_->name());
  }
  gass::GassClient client(*host_, site_env_);
  std::map<std::string, Bytes> files = job.input_files;
  for (const auto& [name, url] : job.input_urls) {
    auto parsed = gass::GassUrl::parse(url);
    if (!parsed.ok()) return parsed.error();
    auto data = client.stage(self, *parsed);
    if (!data.ok()) {
      return Error(data.error().code(), "staging " + name + " from " + url +
                                            ": " + data.error().message());
    }
    files[name] = std::move(*data);
  }
  return files;
}

void QServer::spawn_ranks(
    const PartKey& key,
    std::shared_ptr<const std::map<std::string, Bytes>> files) {
  PartRec& rec = parts_.at(key);
  rec.live_ranks = rec.job.count;
  const int base_rank = rec.job.base_rank;
  for (int i = 0; i < rec.job.count; ++i) {
    const int rank = base_rank + i;
    ++ranks_spawned_;
    sim::Process* proc = host_->network().engine().spawn(
        "job" + std::to_string(key.first) + ".rank" + std::to_string(rank) +
            "@" + host_->name(),
        [this, key, rank, files](sim::Process& rank_proc) {
          // RAII so the CPU is freed even when a fault kills the rank
          // mid-task (the kill unwinds through run_rank).
          struct CpuGuard {
            QServer* q;
            PartKey key;
            sim::Process* p;
            ~CpuGuard() { q->note_rank_exit(key, p->killed()); }
          } guard{this, key, &rank_proc};
          run_rank(rank_proc, key, rank, *files);
        });
    // Rank processes belong to this host: a simulated host crash must take
    // them down with it.
    rec.procs.push_back(proc);
    register_proc(proc);
  }
}

void QServer::note_bootstrapped(const PartKey& key) {
  PartRec& rec = parts_.at(key);
  if (rec.state == PartState::kRunning) rec.state = PartState::kBootstrapped;
  if (!rec.bootstrap_journaled) {
    rec.bootstrap_journaled = true;
    journal_simple(kRecBootstrap, key);
  }
}

void QServer::note_rank_exit(const PartKey& key, bool killed) {
  --busy_cpus_;
  auto it = parts_.find(key);
  if (it != parts_.end()) {
    PartRec& rec = it->second;
    if (rec.live_ranks > 0) --rec.live_ranks;
    if (!killed && rec.live_ranks == 0 &&
        rec.state == PartState::kBootstrapped) {
      rec.state = PartState::kDone;
      journal_simple(kRecDone, key);
    }
    // A kill that is part of a host crash must not pump: the queue belongs
    // to a dead host and is rebuilt (or abandoned) by restart(). A kill
    // from a cancel happens on a live host — pump normally.
    if (killed && rec.state != PartState::kCancelled) return;
  } else if (killed) {
    return;
  }
  pump_queue();
}

void QServer::pump_queue() {
  while (!queue_.empty()) {
    const PartKey key = queue_.front();
    auto it = parts_.find(key);
    if (it == parts_.end() || it->second.state != PartState::kQueued) {
      queue_.pop_front();  // cancelled while waiting
      continue;
    }
    if (busy_cpus_ + it->second.job.count > host_->cpus()) return;
    queue_.pop_front();
    dispatch(key);
  }
}

// ------------------------------------------------------------- heartbeats

void QServer::ensure_heartbeat() {
  if (!recovery_.enabled || recovery_.allocator.host.empty() ||
      recovery_.heartbeat_interval_s <= 0 || heartbeat_active_) {
    return;
  }
  heartbeat_active_ = true;
  // Beats only while the host holds CPUs or has work queued, then exits —
  // an always-on periodic process would keep the event queue alive forever.
  auto* proc = host_->network().engine().spawn(
      "qserver.hb@" + host_->name(), [this](sim::Process& self) {
        struct Flag {
          bool* active;
          ~Flag() { *active = false; }
        } flag{&heartbeat_active_};
        while (busy_cpus_ > 0 || !queue_.empty()) {
          auto conn = host_->stack().connect(self, recovery_.allocator);
          if (conn.ok()) {
            (void)(*conn)->send(Heartbeat{host_->name()}.encode());
            (*conn)->close();
          }
          self.sleep(recovery_.heartbeat_interval_s);
        }
      });
  register_proc(proc);
}

// ---------------------------------------------------------------- journal

void QServer::journal_accept(const QSubmit& job) {
  BufWriter w;
  w.u8(kRecAccept);
  w.blob(job.encode());
  journal_.append(std::move(w).take());
}

void QServer::journal_jm(const PartKey& key, const Contact& jm) {
  BufWriter w;
  w.u8(kRecJm);
  w.u64(key.first);
  w.u64(key.second);
  w.str(jm.host);
  w.u16(jm.port);
  journal_.append(std::move(w).take());
}

void QServer::journal_simple(std::uint8_t tag, const PartKey& key) {
  BufWriter w;
  w.u8(tag);
  w.u64(key.first);
  w.u64(key.second);
  journal_.append(std::move(w).take());
}

void QServer::replay_journal() {
  telemetry::Span span("rmf", "rmf.recovery.replay");
  span.arg("daemon", "qserver@" + host_->name());
  ++journal_replays_;
  telemetry::metrics().counter("rmf.recovery.replays").add();
  last_replay_time_ = host_->network().engine().now();
  awaiting_first_dispatch_ = true;

  busy_cpus_ = 0;
  queue_.clear();
  parts_.clear();
  std::vector<PartKey> accept_order;
  for (const Bytes& record : journal_.records()) {
    BufReader r(record);
    auto tag = r.u8();
    if (!tag.ok()) break;
    if (*tag == kRecAccept) {
      auto blob = r.blob();
      if (!blob.ok()) break;
      auto job = QSubmit::decode(*blob);
      if (!job.ok()) break;
      const PartKey key{job->job_id, job->part_seq};
      PartRec rec;
      rec.job = std::move(*job);
      parts_.emplace(key, std::move(rec));
      accept_order.push_back(key);
    } else {
      auto job_id = r.u64();
      auto seq = r.u64();
      if (!job_id.ok() || !seq.ok()) break;
      auto it = parts_.find(PartKey{*job_id, *seq});
      if (it == parts_.end()) continue;
      if (*tag == kRecJm) {
        auto jm_host = r.str();
        auto jm_port = r.u16();
        if (!jm_host.ok() || !jm_port.ok()) break;
        it->second.job.job_manager = Contact{std::move(*jm_host), *jm_port};
      } else if (*tag == kRecBootstrap) {
        it->second.state = PartState::kBootstrapped;
        it->second.bootstrap_journaled = true;
      } else if (*tag == kRecDone) {
        it->second.state = PartState::kDone;
      } else if (*tag == kRecCancel) {
        it->second.state = PartState::kCancelled;
      }
    }
  }
  // Settle each part, in original accept order. Never-bootstrapped parts
  // re-run; bootstrapped-but-unfinished parts are lost for good (the MPI
  // world they joined is fixed — re-spawning a member would double-run its
  // share of the work).
  int redispatched = 0;
  int lost = 0;
  for (const PartKey& key : accept_order) {
    PartRec& rec = parts_.at(key);
    switch (rec.state) {
      case PartState::kQueued:
        ++parts_redispatched_;
        ++redispatched;
        telemetry::metrics().counter("rmf.recovery.parts_redispatched").add();
        admit(key);
        break;
      case PartState::kBootstrapped:
        rec.state = PartState::kLost;
        ++parts_lost_;
        ++lost;
        telemetry::metrics().counter("rmf.recovery.parts_lost").add();
        break;
      default:
        break;
    }
  }
  kLog.info("%s replayed journal: %zu parts, %d redispatched, %d lost",
            host_->name().c_str(), accept_order.size(), redispatched, lost);
}

// ------------------------------------------------------------------ ranks

sim::SocketPtr QServer::bootstrap_recovery(sim::Process& self,
                                           const PartKey& key, int rank,
                                           JobContext& ctx,
                                           ContactTable& table,
                                           bool& have_table) {
  int attempts = 0;
  double delay = recovery_.reconnect_base_s;
  while (true) {
    const PartRec& rec = parts_.at(key);
    if (rec.state == PartState::kCancelled) return nullptr;
    const Contact target = rec.job.job_manager;
    auto conn = host_->stack().connect(self, target);
    if (conn.ok()) {
      RankHello hello;
      hello.job_id = key.first;
      hello.rank = rank;
      hello.contact = ctx.endpoint->contact();
      hello.site = host_->site();
      hello.has_table = have_table;
      if ((*conn)->send(hello.encode()).ok()) {
        if (have_table) return *conn;
        auto frame = (*conn)->recv(self);
        if (frame.ok()) {
          auto t = ContactTable::decode(*frame);
          if (!t.ok()) {
            kLog.error("rank %d: bad contact table", rank);
            return nullptr;
          }
          table = std::move(*t);
          have_table = true;
          note_bootstrapped(key);
          return *conn;
        }
        // An orderly close is a verdict, not a fault: the job manager
        // deduplicated this rank (another incarnation owns its slot in the
        // world) or failed the job. Resets and timeouts keep retrying.
        if (frame.error().code() == ErrorCode::kConnectionClosed) {
          (*conn)->close();
          return nullptr;
        }
      }
      (*conn)->close();
    }
    if (++attempts >= recovery_.reconnect_attempts) {
      kLog.error("rank %d: gave up reaching job manager after %d attempts",
                 rank, attempts);
      return nullptr;
    }
    telemetry::Span retry_span("rmf", "rmf.recovery.reconnect");
    if (retry_span.active()) retry_span.arg("rank", rank);
    self.sleep(delay);
    delay = std::min(delay * 1.6, recovery_.reconnect_cap_s);
  }
}

void QServer::run_rank(sim::Process& self, const PartKey& key, int rank,
                       const std::map<std::string, Bytes>& files) {
  const QSubmit job = parts_.at(key).job;  // task identity snapshot
  JobContext ctx;
  ctx.self = &self;
  ctx.host = host_;
  ctx.env = site_env_;
  ctx.job_id = job.job_id;
  ctx.rank = rank;
  ctx.nprocs = job.nprocs;
  ctx.args = job.args;
  ctx.input_files = files;
  ctx.comm = std::make_shared<nexus::CommContext>(*host_, site_env_);

  // Bootstrap (MPICH-G startup): create this rank's endpoint, report it to
  // the job manager, and wait for the full contact table.
  auto endpoint = ctx.comm->listen(self);
  if (!endpoint.ok()) {
    kLog.error("rank %d: cannot create endpoint: %s", rank,
               endpoint.error().to_string().c_str());
    return;
  }
  ctx.endpoint = *endpoint;

  sim::SocketPtr jm;
  ContactTable table;
  bool have_table = false;
  if (!recovery_.enabled) {
    auto conn = host_->stack().connect(self, job.job_manager);
    if (!conn.ok()) {
      kLog.error("rank %d: cannot reach job manager: %s", rank,
                 conn.error().to_string().c_str());
      return;
    }
    jm = *conn;
    RankHello hello;
    hello.job_id = job.job_id;
    hello.rank = rank;
    hello.contact = ctx.endpoint->contact();
    hello.site = host_->site();
    if (!jm->send(hello.encode()).ok()) return;
    auto table_frame = jm->recv(self);
    if (!table_frame.ok()) return;
    auto decoded = ContactTable::decode(*table_frame);
    if (!decoded.ok()) {
      kLog.error("rank %d: bad contact table", rank);
      return;
    }
    table = std::move(*decoded);
    note_bootstrapped(key);
  } else {
    jm = bootstrap_recovery(self, key, rank, ctx, table, have_table);
    if (jm == nullptr) return;
  }
  ctx.contacts = std::move(table.contacts);
  ctx.rank_sites = std::move(table.sites);

  auto task = registry_->find(job.task);
  WACS_CHECK(task.ok());  // validated at submit time
  (*task)(ctx);

  RankDone done{rank, std::move(ctx.result)};
  if (!recovery_.enabled) {
    (void)jm->send(done.encode());
    jm->close();
    ctx.endpoint->close();
    return;
  }
  // Recovery mode: the RankDone must be *acknowledged* (the job manager
  // journals it first). An unacknowledged completion is retried against the
  // part's current job manager — which a recovered gatekeeper updates via
  // its dedup re-submit — with a re-hello carrying has_table so the
  // completion channel re-registers without a second table.
  int attempts = 0;
  double delay = recovery_.reconnect_base_s;
  while (true) {
    if (jm != nullptr && jm->send(done.encode()).ok()) {
      auto ack = jm->recv(self);
      if (ack.ok()) break;  // journaled and acknowledged
      // Orderly close without an ack: the job manager settled this job
      // (failed it, or deduplicated this rank) — retrying cannot change
      // the verdict. Only resets and timeouts mean "try again".
      if (ack.error().code() == ErrorCode::kConnectionClosed) {
        jm->close();
        jm = nullptr;
        break;
      }
    }
    if (jm != nullptr) jm->close();
    jm = nullptr;
    if (++attempts >= recovery_.reconnect_attempts) {
      kLog.error("rank %d: completion never acknowledged", rank);
      break;
    }
    {
      telemetry::Span retry_span("rmf", "rmf.recovery.reconnect");
      if (retry_span.active()) retry_span.arg("rank", rank);
      self.sleep(delay);
      delay = std::min(delay * 1.6, recovery_.reconnect_cap_s);
    }
    const Contact target = parts_.at(key).job.job_manager;
    auto conn = host_->stack().connect(self, target);
    if (!conn.ok()) continue;
    RankHello hello;
    hello.job_id = job.job_id;
    hello.rank = rank;
    hello.contact = ctx.endpoint->contact();
    hello.site = host_->site();
    hello.has_table = true;
    if (!(*conn)->send(hello.encode()).ok()) continue;
    jm = *conn;
  }
  if (jm != nullptr) jm->close();
  ctx.endpoint->close();
}

}  // namespace wacs::rmf
