#include "rmf/qserver.hpp"

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "gass/client.hpp"
#include "simnet/fault.hpp"

namespace wacs::rmf {
namespace {
const log::Logger kLog("rmf.qserver");
}

QServer::QServer(sim::Host& host, std::uint16_t port, Env site_env,
                 const JobRegistry* registry)
    : host_(&host),
      port_(port),
      site_env_(std::move(site_env)),
      registry_(registry) {
  WACS_CHECK(registry_ != nullptr);
}

void QServer::start() {
  WACS_CHECK_MSG(!started_, "Q server already started");
  started_ = true;
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "Q server cannot bind its port");
  listener_ = *listener;
  host_->network().engine().spawn(
      "qserver@" + host_->name(), [this](sim::Process& self) { serve(self); });
}

void QServer::serve(sim::Process& self) {
  while (true) {
    auto conn = listener_->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    host_->network().engine().spawn(
        "qserver@" + host_->name() + ".req",
        [this, sock](sim::Process& handler) { handle(handler, sock); });
  }
}

void QServer::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  auto req = QSubmit::decode(*frame);
  if (!req.ok()) {
    (void)conn->send(QSubmitReply{false, req.error().to_string()}.encode());
    conn->close();
    return;
  }
  if (!registry_->find(req->task).ok()) {
    (void)conn->send(
        QSubmitReply{false, "unknown task " + req->task}.encode());
    conn->close();
    return;
  }
  if (req->count <= 0 || req->count > host_->cpus()) {
    (void)conn->send(
        QSubmitReply{false,
                     "cannot host " + std::to_string(req->count) +
                         " processes on " + std::to_string(host_->cpus()) +
                         " cpus"}
            .encode());
    conn->close();
    return;
  }

  // Accept into the queue (LSF-like): run now when CPUs are free,
  // otherwise wait behind earlier parts.
  if (busy_cpus_ + req->count <= host_->cpus() && queue_.empty()) {
    dispatch(*req);
  } else {
    ++jobs_queued_total_;
    queue_.push_back(*req);
    kLog.debug("%s queued job %llu part (depth %zu)", host_->name().c_str(),
               static_cast<unsigned long long>(req->job_id), queue_.size());
  }
  (void)conn->send(QSubmitReply{true, ""}.encode());
  conn->close();
}

void QServer::dispatch(const QSubmit& job) {
  ++jobs_started_;
  busy_cpus_ += job.count;
  if (job.input_urls.empty()) {
    // Inline fallback: payloads arrived inside the QSubmit itself.
    spawn_ranks(job, std::make_shared<const std::map<std::string, Bytes>>(
                         job.input_files));
    return;
  }
  // GASS staging happens once per part, before any rank starts — the LAN
  // fan-out point. A staging failure releases the reserved CPUs and leaves
  // the part silent; the job manager's rendezvous timeout requeues it.
  sim::Process* proc = host_->network().engine().spawn(
      "job" + std::to_string(job.job_id) + ".stage@" + host_->name(),
      [this, job](sim::Process& self) {
        auto files = stage_inputs(self, job);
        if (!files.ok()) {
          kLog.error("%s: staging for job %llu failed: %s",
                     host_->name().c_str(),
                     static_cast<unsigned long long>(job.job_id),
                     files.error().to_string().c_str());
          busy_cpus_ -= job.count;
          pump_queue();
          return;
        }
        spawn_ranks(job,
                    std::make_shared<const std::map<std::string, Bytes>>(
                        std::move(*files)));
      });
  if (auto* fault = host_->network().fault(); fault != nullptr) {
    fault->register_host_process(host_->name(), proc);
  }
}

Result<std::map<std::string, Bytes>> QServer::stage_inputs(
    sim::Process& self, const QSubmit& job) {
  telemetry::Span span("gass", "gass.stage_part");
  if (span.active()) {
    span.arg("job_id", job.job_id);
    span.arg("host", host_->name());
  }
  gass::GassClient client(*host_, site_env_);
  std::map<std::string, Bytes> files = job.input_files;
  for (const auto& [name, url] : job.input_urls) {
    auto parsed = gass::GassUrl::parse(url);
    if (!parsed.ok()) return parsed.error();
    auto data = client.stage(self, *parsed);
    if (!data.ok()) {
      return Error(data.error().code(), "staging " + name + " from " + url +
                                            ": " + data.error().message());
    }
    files[name] = std::move(*data);
  }
  return files;
}

void QServer::spawn_ranks(
    const QSubmit& job,
    std::shared_ptr<const std::map<std::string, Bytes>> files) {
  for (int i = 0; i < job.count; ++i) {
    const int rank = job.base_rank + i;
    ++ranks_spawned_;
    sim::Process* proc = host_->network().engine().spawn(
        "job" + std::to_string(job.job_id) + ".rank" + std::to_string(rank) +
            "@" + host_->name(),
        [this, job, rank, files](sim::Process& rank_proc) {
          // RAII so the CPU is freed even when a fault kills the rank
          // mid-task (the kill unwinds through run_rank).
          struct CpuGuard {
            QServer* q;
            ~CpuGuard() {
              --q->busy_cpus_;
              q->pump_queue();
            }
          } guard{this};
          run_rank(rank_proc, job, rank, *files);
        });
    // Rank processes belong to this host: a simulated host crash must take
    // them down with it.
    if (auto* fault = host_->network().fault(); fault != nullptr) {
      fault->register_host_process(host_->name(), proc);
    }
  }
}

void QServer::pump_queue() {
  while (!queue_.empty() &&
         busy_cpus_ + queue_.front().count <= host_->cpus()) {
    QSubmit next = std::move(queue_.front());
    queue_.pop_front();
    dispatch(next);
  }
}

void QServer::run_rank(sim::Process& self, const QSubmit& job, int rank,
                       const std::map<std::string, Bytes>& files) {
  JobContext ctx;
  ctx.self = &self;
  ctx.host = host_;
  ctx.env = site_env_;
  ctx.job_id = job.job_id;
  ctx.rank = rank;
  ctx.nprocs = job.nprocs;
  ctx.args = job.args;
  ctx.input_files = files;
  ctx.comm = std::make_shared<nexus::CommContext>(*host_, site_env_);

  // Bootstrap (MPICH-G startup): create this rank's endpoint, report it to
  // the job manager, and wait for the full contact table.
  auto endpoint = ctx.comm->listen(self);
  if (!endpoint.ok()) {
    kLog.error("rank %d: cannot create endpoint: %s", rank,
               endpoint.error().to_string().c_str());
    return;
  }
  ctx.endpoint = *endpoint;

  auto jm = host_->stack().connect(self, job.job_manager);
  if (!jm.ok()) {
    kLog.error("rank %d: cannot reach job manager: %s", rank,
               jm.error().to_string().c_str());
    return;
  }
  if (!(*jm)->send(RankHello{job.job_id, rank, ctx.endpoint->contact(),
                             host_->site()}
                        .encode())
           .ok()) {
    return;
  }
  auto table_frame = (*jm)->recv(self);
  if (!table_frame.ok()) return;
  auto table = ContactTable::decode(*table_frame);
  if (!table.ok()) {
    kLog.error("rank %d: bad contact table", rank);
    return;
  }
  ctx.contacts = std::move(table->contacts);
  ctx.rank_sites = std::move(table->sites);

  auto task = registry_->find(job.task);
  WACS_CHECK(task.ok());  // validated at submit time
  (*task)(ctx);

  (void)(*jm)->send(RankDone{rank, std::move(ctx.result)}.encode());
  (*jm)->close();
  ctx.endpoint->close();
}

}  // namespace wacs::rmf
