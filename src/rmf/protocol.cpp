#include "rmf/protocol.hpp"

#include <algorithm>

namespace wacs::rmf {
namespace {

Error bad_frame(const char* what) {
  return Error(ErrorCode::kProtocolError, std::string("rmf frame: ") + what);
}

Result<MsgType> expect_type(BufReader& r, MsgType want) {
  auto tag = r.u8();
  if (!tag) return tag.error();
  if (*tag != static_cast<std::uint8_t>(want)) {
    return bad_frame("wrong type tag");
  }
  return want;
}

void put_tag(BufWriter& w, MsgType t) { w.u8(static_cast<std::uint8_t>(t)); }

void put_contact(BufWriter& w, const Contact& c) {
  w.str(c.host);
  w.u16(c.port);
}

Result<Contact> get_contact(BufReader& r) {
  auto host = r.str();
  if (!host) return host.error();
  auto port = r.u16();
  if (!port) return port.error();
  return Contact{std::move(*host), *port};
}

void put_string_map(BufWriter& w, const std::map<std::string, std::string>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w.str(k);
    w.str(v);
  }
}

Result<std::map<std::string, std::string>> get_string_map(BufReader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  std::map<std::string, std::string> m;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto k = r.str();
    if (!k) return k.error();
    auto v = r.str();
    if (!v) return v.error();
    m.emplace(std::move(*k), std::move(*v));
  }
  return m;
}

void put_file_map(BufWriter& w, const std::map<std::string, Bytes>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w.str(k);
    w.blob(v);
  }
}

Result<std::map<std::string, Bytes>> get_file_map(BufReader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  std::map<std::string, Bytes> m;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto k = r.str();
    if (!k) return k.error();
    auto v = r.blob();
    if (!v) return v.error();
    m.emplace(std::move(*k), std::move(*v));
  }
  return m;
}

void put_placements(BufWriter& w, const std::vector<Placement>& ps) {
  w.u32(static_cast<std::uint32_t>(ps.size()));
  for (const auto& p : ps) {
    w.str(p.host);
    w.i32(p.count);
  }
}

Result<std::vector<Placement>> get_placements(BufReader& r) {
  auto n = r.u32();
  if (!n) return n.error();
  std::vector<Placement> ps;
  ps.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto host = r.str();
    if (!host) return host.error();
    auto count = r.i32();
    if (!count) return count.error();
    ps.push_back(Placement{std::move(*host), *count});
  }
  return ps;
}

}  // namespace

Result<MsgType> peek_type(const Bytes& frame) {
  if (frame.empty()) return bad_frame("empty frame");
  const std::uint8_t tag = frame[0];
  if (tag < 1 || tag > 22) return bad_frame("unknown type tag");
  return static_cast<MsgType>(tag);
}

Bytes SubmitRequest::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSubmitRequest);
  w.str(spec.name);
  w.str(spec.task);
  w.str(spec.credential);
  w.i32(spec.nprocs);
  put_placements(w, spec.placements);
  put_string_map(w, spec.args);
  put_file_map(w, spec.input_files);
  put_string_map(w, spec.input_urls);
  w.f64(spec.deadline_seconds);
  return std::move(w).take();
}

Result<SubmitRequest> SubmitRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSubmitRequest); !t) return t.error();
  SubmitRequest out;
  auto name = r.str();
  if (!name) return name.error();
  out.spec.name = std::move(*name);
  auto task = r.str();
  if (!task) return task.error();
  out.spec.task = std::move(*task);
  auto cred = r.str();
  if (!cred) return cred.error();
  out.spec.credential = std::move(*cred);
  auto nprocs = r.i32();
  if (!nprocs) return nprocs.error();
  out.spec.nprocs = *nprocs;
  auto placements = get_placements(r);
  if (!placements) return placements.error();
  out.spec.placements = std::move(*placements);
  auto args = get_string_map(r);
  if (!args) return args.error();
  out.spec.args = std::move(*args);
  auto files = get_file_map(r);
  if (!files) return files.error();
  out.spec.input_files = std::move(*files);
  auto urls = get_string_map(r);
  if (!urls) return urls.error();
  out.spec.input_urls = std::move(*urls);
  auto deadline = r.f64();
  if (!deadline) return deadline.error();
  out.spec.deadline_seconds = *deadline;
  return out;
}

Bytes SubmitReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSubmitReply);
  w.boolean(ok);
  w.u64(job_id);
  w.str(error);
  return std::move(w).take();
}

Result<SubmitReply> SubmitReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSubmitReply); !t) return t.error();
  SubmitReply out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto id = r.u64();
  if (!id) return id.error();
  out.job_id = *id;
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  return out;
}

Bytes JobDone::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kJobDone);
  w.boolean(ok);
  w.str(error);
  w.blob(output);
  return std::move(w).take();
}

Result<JobDone> JobDone::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kJobDone); !t) return t.error();
  JobDone out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  auto output = r.blob();
  if (!output) return output.error();
  out.output = std::move(*output);
  return out;
}

Bytes AllocRequest::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kAllocRequest);
  w.i32(nprocs);
  w.u32(static_cast<std::uint32_t>(exclude.size()));
  for (const std::string& host : exclude) w.str(host);
  // Optional scheduler tail: omitted entirely when unused, so the frame
  // stays byte-identical to the pre-scheduler format (legacy decoders and
  // recorded baselines never see the new fields).
  if (!tenant.empty() || !preferred.empty()) {
    w.str(tenant);
    put_placements(w, preferred);
  }
  return std::move(w).take();
}

Result<AllocRequest> AllocRequest::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kAllocRequest); !t) return t.error();
  AllocRequest out;
  auto n = r.i32();
  if (!n) return n.error();
  out.nprocs = *n;
  auto count = r.u32();
  if (!count) return count.error();
  out.exclude.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto host = r.str();
    if (!host) return host.error();
    out.exclude.push_back(std::move(*host));
  }
  if (r.at_end()) return out;  // legacy frame: no scheduler tail
  auto tenant = r.str();
  if (!tenant) return tenant.error();
  out.tenant = std::move(*tenant);
  auto preferred = get_placements(r);
  if (!preferred) return preferred.error();
  out.preferred = std::move(*preferred);
  return out;
}

Bytes AllocReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kAllocReply);
  w.boolean(ok);
  w.u64(grant_id);
  put_placements(w, placements);
  w.str(error);
  return std::move(w).take();
}

Result<AllocReply> AllocReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kAllocReply); !t) return t.error();
  AllocReply out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto grant = r.u64();
  if (!grant) return grant.error();
  out.grant_id = *grant;
  auto ps = get_placements(r);
  if (!ps) return ps.error();
  out.placements = std::move(*ps);
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  return out;
}

Bytes QSubmit::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kQSubmit);
  w.u64(job_id);
  w.u64(part_seq);
  w.str(task);
  w.i32(base_rank);
  w.i32(count);
  w.i32(nprocs);
  put_contact(w, job_manager);
  put_string_map(w, args);
  put_file_map(w, input_files);
  put_string_map(w, input_urls);
  return std::move(w).take();
}

Result<QSubmit> QSubmit::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kQSubmit); !t) return t.error();
  QSubmit out;
  auto id = r.u64();
  if (!id) return id.error();
  out.job_id = *id;
  auto seq = r.u64();
  if (!seq) return seq.error();
  out.part_seq = *seq;
  auto task = r.str();
  if (!task) return task.error();
  out.task = std::move(*task);
  auto base = r.i32();
  if (!base) return base.error();
  out.base_rank = *base;
  auto count = r.i32();
  if (!count) return count.error();
  out.count = *count;
  auto nprocs = r.i32();
  if (!nprocs) return nprocs.error();
  out.nprocs = *nprocs;
  auto jm = get_contact(r);
  if (!jm) return jm.error();
  out.job_manager = std::move(*jm);
  auto args = get_string_map(r);
  if (!args) return args.error();
  out.args = std::move(*args);
  auto files = get_file_map(r);
  if (!files) return files.error();
  out.input_files = std::move(*files);
  auto urls = get_string_map(r);
  if (!urls) return urls.error();
  out.input_urls = std::move(*urls);
  return out;
}

Bytes QSubmitReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kQSubmitReply);
  w.boolean(ok);
  w.str(error);
  return std::move(w).take();
}

Result<QSubmitReply> QSubmitReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kQSubmitReply); !t) return t.error();
  QSubmitReply out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  return out;
}

Bytes RankHello::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kRankHello);
  w.u64(job_id);
  w.i32(rank);
  put_contact(w, contact);
  w.str(site);
  w.boolean(has_table);
  return std::move(w).take();
}

Result<RankHello> RankHello::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kRankHello); !t) return t.error();
  RankHello out;
  auto id = r.u64();
  if (!id) return id.error();
  out.job_id = *id;
  auto rank = r.i32();
  if (!rank) return rank.error();
  out.rank = *rank;
  auto contact = get_contact(r);
  if (!contact) return contact.error();
  out.contact = std::move(*contact);
  auto site = r.str();
  if (!site) return site.error();
  out.site = std::move(*site);
  auto has = r.boolean();
  if (!has) return has.error();
  out.has_table = *has;
  return out;
}

Bytes ContactTable::encode() const {
  WACS_CHECK(sites.size() == contacts.size());
  BufWriter w;
  put_tag(w, MsgType::kContactTable);
  w.u32(static_cast<std::uint32_t>(contacts.size()));
  for (const auto& c : contacts) put_contact(w, c);
  for (const auto& s : sites) w.str(s);
  return std::move(w).take();
}

Result<ContactTable> ContactTable::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kContactTable); !t) return t.error();
  auto n = r.u32();
  if (!n) return n.error();
  ContactTable out;
  out.contacts.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto c = get_contact(r);
    if (!c) return c.error();
    out.contacts.push_back(std::move(*c));
  }
  out.sites.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto s = r.str();
    if (!s) return s.error();
    out.sites.push_back(std::move(*s));
  }
  return out;
}

Bytes RankDone::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kRankDone);
  w.i32(rank);
  w.blob(output);
  return std::move(w).take();
}

Result<RankDone> RankDone::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kRankDone); !t) return t.error();
  RankDone out;
  auto rank = r.i32();
  if (!rank) return rank.error();
  out.rank = *rank;
  auto output = r.blob();
  if (!output) return output.error();
  out.output = std::move(*output);
  return out;
}

Bytes Release::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kRelease);
  put_placements(w, placements);
  w.u32(static_cast<std::uint32_t>(grant_ids.size()));
  for (std::uint64_t id : grant_ids) w.u64(id);
  return std::move(w).take();
}

Result<Release> Release::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kRelease); !t) return t.error();
  Release out;
  auto ps = get_placements(r);
  if (!ps) return ps.error();
  out.placements = std::move(*ps);
  auto n = r.u32();
  if (!n) return n.error();
  out.grant_ids.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    out.grant_ids.push_back(*id);
  }
  return out;
}

Bytes Heartbeat::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kHeartbeat);
  w.str(host);
  return std::move(w).take();
}

Result<Heartbeat> Heartbeat::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kHeartbeat); !t) return t.error();
  auto host = r.str();
  if (!host) return host.error();
  return Heartbeat{std::move(*host)};
}

Bytes QCancel::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kQCancel);
  w.u64(job_id);
  w.u64(part_seq);
  return std::move(w).take();
}

Result<QCancel> QCancel::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kQCancel); !t) return t.error();
  QCancel out;
  auto id = r.u64();
  if (!id) return id.error();
  out.job_id = *id;
  auto seq = r.u64();
  if (!seq) return seq.error();
  out.part_seq = *seq;
  return out;
}

Bytes JobQuery::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kJobQuery);
  w.u64(job_id);
  return std::move(w).take();
}

Result<JobQuery> JobQuery::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kJobQuery); !t) return t.error();
  auto id = r.u64();
  if (!id) return id.error();
  return JobQuery{*id};
}

Bytes RankDoneAck::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kRankDoneAck);
  w.i32(rank);
  return std::move(w).take();
}

Result<RankDoneAck> RankDoneAck::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kRankDoneAck); !t) return t.error();
  auto rank = r.i32();
  if (!rank) return rank.error();
  return RankDoneAck{*rank};
}

// ---- multi-tenant scheduler frames ---------------------------------------

Bytes SchedHello::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedHello);
  w.str(site);
  put_contact(w, runner);
  return std::move(w).take();
}

Result<SchedHello> SchedHello::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedHello); !t) return t.error();
  SchedHello out;
  auto site = r.str();
  if (!site) return site.error();
  out.site = std::move(*site);
  auto runner = get_contact(r);
  if (!runner) return runner.error();
  out.runner = std::move(*runner);
  return out;
}

Bytes SchedSubmit::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedSubmit);
  w.str(tenant);
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const SchedJob& j : jobs) {
    w.u64(j.client_seq);
    w.str(j.task);
    w.i32(j.nprocs);
    w.f64(j.est_runtime_s);
  }
  return std::move(w).take();
}

Result<SchedSubmit> SchedSubmit::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedSubmit); !t) return t.error();
  SchedSubmit out;
  auto tenant = r.str();
  if (!tenant) return tenant.error();
  out.tenant = std::move(*tenant);
  auto n = r.u32();
  if (!n) return n.error();
  // Bound reserve by remaining bytes: a hostile count must not allocate.
  out.jobs.reserve(std::min<std::size_t>(*n, r.remaining() / 8));
  for (std::uint32_t i = 0; i < *n; ++i) {
    SchedJob j;
    auto seq = r.u64();
    if (!seq) return seq.error();
    j.client_seq = *seq;
    auto task = r.str();
    if (!task) return task.error();
    j.task = std::move(*task);
    auto nprocs = r.i32();
    if (!nprocs) return nprocs.error();
    j.nprocs = *nprocs;
    auto est = r.f64();
    if (!est) return est.error();
    j.est_runtime_s = *est;
    out.jobs.push_back(std::move(j));
  }
  return out;
}

Bytes SchedSubmitReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedSubmitReply);
  w.u32(static_cast<std::uint32_t>(verdicts.size()));
  for (const SchedVerdict& v : verdicts) {
    w.u64(v.client_seq);
    w.u8(static_cast<std::uint8_t>(v.code));
    w.u64(v.sched_id);
    w.u32(v.retry_after_ms);
    w.str(v.error);
  }
  return std::move(w).take();
}

Result<SchedSubmitReply> SchedSubmitReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedSubmitReply); !t) {
    return t.error();
  }
  auto n = r.u32();
  if (!n) return n.error();
  SchedSubmitReply out;
  out.verdicts.reserve(std::min<std::size_t>(*n, r.remaining() / 8));
  for (std::uint32_t i = 0; i < *n; ++i) {
    SchedVerdict v;
    auto seq = r.u64();
    if (!seq) return seq.error();
    v.client_seq = *seq;
    auto code = r.u8();
    if (!code) return code.error();
    if (*code < 1 || *code > 3) return bad_frame("bad verdict code");
    v.code = static_cast<SchedVerdict::Code>(*code);
    auto id = r.u64();
    if (!id) return id.error();
    v.sched_id = *id;
    auto retry = r.u32();
    if (!retry) return retry.error();
    v.retry_after_ms = *retry;
    auto error = r.str();
    if (!error) return error.error();
    v.error = std::move(*error);
    out.verdicts.push_back(std::move(v));
  }
  return out;
}

Bytes SchedDispatch::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedDispatch);
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const Item& it : items) {
    w.u64(it.sched_id);
    w.str(it.tenant);
    w.str(it.task);
    w.i32(it.nprocs);
    w.f64(it.est_runtime_s);
  }
  return std::move(w).take();
}

Result<SchedDispatch> SchedDispatch::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedDispatch); !t) return t.error();
  auto n = r.u32();
  if (!n) return n.error();
  SchedDispatch out;
  out.items.reserve(std::min<std::size_t>(*n, r.remaining() / 8));
  for (std::uint32_t i = 0; i < *n; ++i) {
    Item it;
    auto id = r.u64();
    if (!id) return id.error();
    it.sched_id = *id;
    auto tenant = r.str();
    if (!tenant) return tenant.error();
    it.tenant = std::move(*tenant);
    auto task = r.str();
    if (!task) return task.error();
    it.task = std::move(*task);
    auto nprocs = r.i32();
    if (!nprocs) return nprocs.error();
    it.nprocs = *nprocs;
    auto est = r.f64();
    if (!est) return est.error();
    it.est_runtime_s = *est;
    out.items.push_back(std::move(it));
  }
  return out;
}

Bytes SchedDispatchReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedDispatchReply);
  w.u32(retry_after_ms);
  w.u32(static_cast<std::uint32_t>(rejected.size()));
  for (std::uint64_t id : rejected) w.u64(id);
  return std::move(w).take();
}

Result<SchedDispatchReply> SchedDispatchReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedDispatchReply); !t) {
    return t.error();
  }
  SchedDispatchReply out;
  auto retry = r.u32();
  if (!retry) return retry.error();
  out.retry_after_ms = *retry;
  auto n = r.u32();
  if (!n) return n.error();
  out.rejected.reserve(std::min<std::size_t>(*n, r.remaining() / 8));
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    out.rejected.push_back(*id);
  }
  return out;
}

Bytes SchedComplete::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedComplete);
  w.u64(batch_seq);
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const Item& it : items) {
    w.u64(it.sched_id);
    w.boolean(it.ok);
    w.f64(it.cpu_seconds);
  }
  return std::move(w).take();
}

Result<SchedComplete> SchedComplete::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedComplete); !t) return t.error();
  SchedComplete out;
  auto seq = r.u64();
  if (!seq) return seq.error();
  out.batch_seq = *seq;
  auto n = r.u32();
  if (!n) return n.error();
  out.items.reserve(std::min<std::size_t>(*n, r.remaining() / 8));
  for (std::uint32_t i = 0; i < *n; ++i) {
    Item it;
    auto id = r.u64();
    if (!id) return id.error();
    it.sched_id = *id;
    auto ok = r.boolean();
    if (!ok) return ok.error();
    it.ok = *ok;
    auto cpu = r.f64();
    if (!cpu) return cpu.error();
    it.cpu_seconds = *cpu;
    out.items.push_back(it);
  }
  return out;
}

Bytes SchedCompleteAck::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kSchedCompleteAck);
  w.u64(batch_seq);
  return std::move(w).take();
}

Result<SchedCompleteAck> SchedCompleteAck::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kSchedCompleteAck); !t) {
    return t.error();
  }
  auto seq = r.u64();
  if (!seq) return seq.error();
  return SchedCompleteAck{*seq};
}

}  // namespace wacs::rmf
