// Submit-side GASS staging: move a JobSpec's inline payloads to the
// submitter's site GASS server and replace them with gass:// URLs.
//
// After this, the submit RPC carries only references; each Q server resolves
// them through its own site cache, so one wide-area job stages each distinct
// input across the WAN once per remote site instead of once per part.
#pragma once

#include "common/config.hpp"
#include "gass/client.hpp"
#include "rmf/job.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

/// Puts every `spec.input_files` entry on `origin_server` (normally the
/// submit host's site GASS server), fills `spec.input_urls` with the
/// advertised URLs, and clears the inline payloads. Returns the number of
/// files staged. `env` supplies the submitter's proxy route.
Result<int> stage_job_inputs(sim::Process& self, sim::Host& from,
                             const Env& env, const Contact& origin_server,
                             JobSpec& spec);

}  // namespace wacs::rmf
