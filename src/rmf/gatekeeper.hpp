// The RMF gatekeeper and job manager (Fig 2, steps 0-2 and the §2 flow).
//
// The gatekeeper runs *outside* the firewall (DMZ host), authenticates
// submissions, and forks a job manager per job. The job manager embeds the
// Q client: it consults the resource allocator, submits job parts to the Q
// servers (those two control flows are why the paper says "the firewall must
// be configured to allow communications between the Q client and the
// resource allocator, and the Q client and the Q server"), then serves as
// the rank rendezvous and completion collector.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rmf/job.hpp"
#include "rmf/protocol.hpp"
#include "security/credential.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

class Gatekeeper {
 public:
  struct Options {
    std::uint16_t port = 2119;
    /// Shared-secret mode: the accepted submission token.
    std::string credential = "wacs-grid";
    /// GSI mode: when set, submissions must carry a hex-encoded credential
    /// chain verifiable against this CA secret (expiry and delegation rules
    /// included); the shared-secret token is ignored.
    std::optional<std::string> ca_secret;
    std::uint16_t qserver_port = 7100;  ///< where Q servers listen
    /// Rank-rendezvous bound: how long the job manager waits for the next
    /// RankHello before treating the silent ranks' hosts as dead and
    /// requeueing their job parts through the allocator. 0 disables the
    /// bound (a host that crashes *after* connecting is still detected
    /// through the connection reset). Must exceed the worst Q-server
    /// queueing delay when enabled, or slow parts get double-submitted.
    double rendezvous_timeout_s = 0;
    /// Placement replacements a job manager attempts before giving up.
    int max_requeues = 2;
  };

  Gatekeeper(sim::Host& host, Options options, Contact allocator,
             const JobRegistry* registry);

  void start();

  Contact contact() const { return Contact{host_->name(), options_.port}; }
  std::uint64_t jobs_accepted() const { return jobs_accepted_; }
  std::uint64_t auth_failures() const { return auth_failures_; }
  /// Ranks that vanished after startup on jobs that still completed.
  std::uint64_t ranks_lost() const { return ranks_lost_; }
  /// Job parts moved to a replacement host after their first host failed.
  std::uint64_t parts_requeued() const { return parts_requeued_; }
  /// GSI mode: subject of the most recently authenticated submission.
  const std::string& last_subject() const { return last_subject_; }

 private:
  void serve(sim::Process& self);
  /// The job manager body: one process per accepted job. `submit_ctx` is
  /// the submission message's trace context, so the whole job lifecycle
  /// parents to the submitter's span.
  void job_manager(sim::Process& self, sim::SocketPtr submitter, JobSpec spec,
                   std::uint64_t job_id, telemetry::TraceContext submit_ctx);

  sim::Host* host_;
  Options options_;
  Contact allocator_;
  const JobRegistry* registry_;
  sim::ListenerPtr listener_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t jobs_accepted_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t ranks_lost_ = 0;
  std::uint64_t parts_requeued_ = 0;
  std::string last_subject_;
  bool started_ = false;
};

/// Client-side: submit a job to a gatekeeper and wait for its result.
/// Used by examples, benches, and the integration tests; runs inside a
/// simulated process on `from`.
Result<JobResult> submit_and_wait(sim::Process& self, sim::Host& from,
                                  const Contact& gatekeeper,
                                  const JobSpec& spec);

}  // namespace wacs::rmf
