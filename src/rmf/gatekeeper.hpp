// The RMF gatekeeper and job manager (Fig 2, steps 0-2 and the §2 flow).
//
// The gatekeeper runs *outside* the firewall (DMZ host), authenticates
// submissions, and forks a job manager per job. The job manager embeds the
// Q client: it consults the resource allocator, submits job parts to the Q
// servers (those two control flows are why the paper says "the firewall must
// be configured to allow communications between the Q client and the
// resource allocator, and the Q client and the Q server"), then serves as
// the rank rendezvous and completion collector.
//
// Crash recovery: every externally visible step of a job — acceptance,
// allocator grants, part submissions (with their job-scoped part_seq),
// requeue cancellations, the broadcast contact table, each RankDone, and
// the final verdict — is journaled to the host's durable store before its
// effect leaves this host. restart() replays the journal: finished jobs
// keep their stored result (served to JobQuery retries), unfinished jobs
// get a *recovery* job manager that re-submits their live parts with the
// same part_seq (the Q servers' dedup absorbs the duplicates and redirects
// in-flight ranks to the new rendezvous) and resumes collection where the
// journal left off. In recovery mode each RankDone is acknowledged after
// journaling, so a rank retries delivery until its completion is durable —
// exactly-once end to end.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "rmf/job.hpp"
#include "rmf/journal.hpp"
#include "rmf/protocol.hpp"
#include "security/credential.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

class Gatekeeper {
 public:
  struct Options {
    std::uint16_t port = 2119;
    /// Shared-secret mode: the accepted submission token.
    std::string credential = "wacs-grid";
    /// GSI mode: when set, submissions must carry a hex-encoded credential
    /// chain verifiable against this CA secret (expiry and delegation rules
    /// included); the shared-secret token is ignored.
    std::optional<std::string> ca_secret;
    std::uint16_t qserver_port = 7100;  ///< where Q servers listen
    /// Rank-rendezvous bound: how long the job manager waits for the next
    /// RankHello before treating the silent ranks' hosts as dead and
    /// requeueing their job parts through the allocator. 0 disables the
    /// bound (a host that crashes *after* connecting is still detected
    /// through the connection reset). A slow part that outlives the bound
    /// is cancelled (QCancel) and its part_seq retired, so the historical
    /// double-submit hazard of a too-short bound is gone: at most one seq
    /// per rank range ever receives the contact table.
    double rendezvous_timeout_s = 0;
    /// Replacement attempts per job *part* before the job gives up. Each
    /// part carries its own budget; replacements inherit the original
    /// part's spent attempts.
    int max_requeues = 2;
    /// Recovery mode: acknowledge RankDones after journaling them, answer
    /// JobQuery reconnects, and run the job-manager lease sweeper that
    /// reclaims grants of job managers that died without finishing.
    bool recovery = false;
    double lease_check_interval_s = 1.0;  ///< JM liveness sweep period
  };

  Gatekeeper(sim::Host& host, Options options, Contact allocator,
             const JobRegistry* registry);

  void start();

  /// Restart-hook body: re-listens, respawns the serve loop, replays the
  /// journal, and spawns a recovery job manager per unfinished job.
  void restart();

  /// Post-construction tuning (GridSystem::enable_recovery, tests).
  Options& mutable_options() { return options_; }

  /// Repoint allocation traffic (GridSystem::add_scheduler interposes the
  /// multi-tenant scheduler between job managers and the allocator).
  void set_allocator(Contact c) { allocator_ = std::move(c); }

  Contact contact() const { return Contact{host_->name(), options_.port}; }
  std::uint64_t jobs_accepted() const { return jobs_accepted_; }
  std::uint64_t auth_failures() const { return auth_failures_; }
  /// Ranks that vanished after startup on jobs that still completed.
  std::uint64_t ranks_lost() const { return ranks_lost_; }
  /// Job parts moved to a replacement host after their first host failed.
  std::uint64_t parts_requeued() const { return parts_requeued_; }
  /// GSI mode: subject of the most recently authenticated submission.
  const std::string& last_subject() const { return last_subject_; }

  // Recovery observability (tests, bench_rmf_recovery).
  std::uint64_t jobs_recovered() const { return jobs_recovered_; }
  std::uint64_t jobs_reclaimed() const { return jobs_reclaimed_; }
  std::uint64_t dones_deduped() const { return dones_deduped_; }
  std::uint64_t hellos_deduped() const { return hellos_deduped_; }
  std::uint64_t journal_replays() const { return journal_replays_; }
  sim::Time last_replay_time() const { return last_replay_time_; }
  /// First successful part re-submission after the latest replay (0 = none);
  /// the recovery bench reports it minus the crash time as the restart gap.
  sim::Time first_resubmit_after_replay() const {
    return first_resubmit_after_replay_;
  }
  sim::Process* serve_process() const { return serve_proc_; }
  /// Live job-manager process of `job_id`, or nullptr (tests kill it to
  /// exercise the orphaned-JM reclaim path).
  sim::Process* job_manager_process(std::uint64_t job_id) const;

 private:
  struct JobRec;

  void spawn_serve();
  void serve(sim::Process& self);
  /// The job manager body: one process per accepted job. `resumed` job
  /// managers skip allocation (grants are journaled) and pick collection up
  /// from the journaled state instead of starting a fresh rendezvous.
  void job_manager(sim::Process& self, std::shared_ptr<JobRec> rec,
                   bool resumed);
  /// Recovery mode: one sweeper process, alive only while unfinished jobs
  /// exist, that reclaims jobs whose job-manager process died.
  void ensure_lease_sweeper();
  void reclaim(sim::Process& self, const std::shared_ptr<JobRec>& rec);
  void register_proc(sim::Process* proc);

  // Journal record encode/replay.
  void journal_job(const JobRec& rec);
  void journal_grant(std::uint64_t job_id, std::uint64_t grant_id,
                     const std::vector<Placement>& placements);
  void journal_part(std::uint64_t job_id, std::uint64_t seq,
                    const std::string& host, int base_rank, int count,
                    int attempts);
  void journal_part_cancel(std::uint64_t job_id, std::uint64_t seq);
  void journal_table(std::uint64_t job_id, const ContactTable& table);
  void journal_rank_done(std::uint64_t job_id, int rank, const Bytes& output);
  void journal_job_done(std::uint64_t job_id, const JobDone& done);
  void replay_journal();

  sim::Host* host_;
  Options options_;
  Contact allocator_;
  const JobRegistry* registry_;
  sim::ListenerPtr listener_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t jobs_accepted_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t ranks_lost_ = 0;
  std::uint64_t parts_requeued_ = 0;
  std::string last_subject_;
  bool started_ = false;
  sim::Process* serve_proc_ = nullptr;
  Journal journal_;
  std::map<std::uint64_t, std::shared_ptr<JobRec>> jobs_;
  bool sweeper_active_ = false;

  std::uint64_t jobs_recovered_ = 0;
  std::uint64_t jobs_reclaimed_ = 0;
  std::uint64_t dones_deduped_ = 0;
  std::uint64_t hellos_deduped_ = 0;
  std::uint64_t journal_replays_ = 0;
  sim::Time last_replay_time_ = 0;
  sim::Time first_resubmit_after_replay_ = 0;
};

/// Client-side knobs for surviving a gatekeeper restart mid-wait.
struct SubmitOptions {
  /// After losing the result connection, re-ask the gatekeeper this many
  /// times with a JobQuery (each query may park until the job finishes).
  /// 0 = legacy behavior: the connection loss is the submission's error.
  int query_attempts = 0;
  double query_backoff_s = 0.5;  ///< base of the deterministic backoff
};

/// Client-side: submit a job to a gatekeeper and wait for its result.
/// Used by examples, benches, and the integration tests; runs inside a
/// simulated process on `from`.
Result<JobResult> submit_and_wait(sim::Process& self, sim::Host& from,
                                  const Contact& gatekeeper,
                                  const JobSpec& spec,
                                  const SubmitOptions& options = {});

}  // namespace wacs::rmf
