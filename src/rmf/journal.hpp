// Write-ahead journal for the RMF control-plane daemons.
//
// Each daemon (gatekeeper, allocator, Q server) keeps one named append-only
// log on its host's DurableStore. Records are opaque byte strings framed as
// [u32 length][payload]; the daemon defines its own tagged record types and
// replays the log from its restart hook to rebuild in-memory state after a
// crash. Appends happen *before* the externally visible effect (reply sent,
// part dispatched), which is what makes replay exact: anything a peer could
// have observed is in the log.
//
// The decoder is defensive about a torn tail — a record whose length prefix
// or body is truncated ends the replay rather than aborting it — so a crash
// "mid-write" (possible only if a future change makes writes non-atomic)
// degrades to losing the last record, exactly like a real WAL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "simnet/net.hpp"

namespace wacs::rmf {

class Journal {
 public:
  /// Opens (or creates) the journal named `name` on `host`'s disk. Names are
  /// per-host unique by convention ("gatekeeper", "alloc", "qserver").
  Journal(sim::Host& host, std::string name);

  /// Appends one record. Durable immediately; zero virtual time.
  void append(const Bytes& record);

  /// Every intact record, oldest first. A torn tail truncates the result.
  std::vector<Bytes> records() const;

  /// Drops all records (e.g. after a checkpoint compaction in tests).
  void truncate();

  const std::string& name() const { return name_; }

  /// Records appended through this handle (not reset by replay).
  std::uint64_t appended() const { return appended_; }

 private:
  sim::DurableStore* disk_;
  std::string name_;
  std::string key_;
  std::uint64_t appended_ = 0;
};

}  // namespace wacs::rmf
