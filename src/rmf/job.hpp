// Job model for RMF (Resource Manager beyond the Firewall).
//
// A job is a named task (registered C++ function — the simulator's analogue
// of an executable) plus placement, arguments, and GASS-staged input files.
// Each spawned rank receives a JobContext carrying its bootstrap state: the
// communication endpoint it advertises, the contact table of all ranks
// (collected by the job manager, like MPICH-G startup), and its host.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "nexus/comm.hpp"

namespace wacs::rmf {

/// `count` processes on `host`.
struct Placement {
  std::string host;
  int count = 0;

  friend bool operator==(const Placement&, const Placement&) = default;
};

/// A job submission.
struct JobSpec {
  std::string name;        ///< human-readable job name
  std::string task;        ///< key into the JobRegistry
  std::string credential;  ///< gatekeeper authentication token
  int nprocs = 0;
  /// Explicit placements; empty = ask the resource allocator.
  std::vector<Placement> placements;
  std::map<std::string, std::string> args;
  /// GASS: input files staged to every rank before start ("the Q system
  /// also transfers the files to remote resources"). Inline payloads ride
  /// inside the submit RPC itself — the fallback path.
  std::map<std::string, Bytes> input_files;
  /// GASS by reference: name → `gass://` URL. Q servers resolve these
  /// through their site's cache server before ranks start, so a wide-area
  /// job pulls each object across the WAN once per site. Keys here and in
  /// input_files must be disjoint; URL entries win on collision.
  std::map<std::string, std::string> input_urls;
  /// Client-side only (not serialized): when set, the submit helpers stage
  /// input_files to the submitter's site GASS server first and send URLs
  /// instead of payloads.
  bool stage_via_gass = false;
  /// Virtual-time deadline for the whole job; 0 = none. When exceeded the
  /// job manager abandons the job and reports failure (ranks unwind when
  /// their job-manager connection drops).
  double deadline_seconds = 0;
};

/// What the submitter gets back.
struct JobResult {
  bool ok = false;
  std::string error;
  std::uint64_t job_id = 0;
  Bytes output;  ///< rank 0's ctx.result
  double wall_seconds = 0;  ///< virtual time from submit to completion
};

/// Runtime state handed to each rank's task function.
struct JobContext {
  sim::Process* self = nullptr;
  sim::Host* host = nullptr;
  Env env;  ///< the resource's site environment (proxy config lives here)
  std::uint64_t job_id = 0;
  int rank = 0;
  int nprocs = 0;
  std::map<std::string, std::string> args;
  std::map<std::string, Bytes> input_files;

  /// Communication bootstrap (filled by the Q server's rank wrapper).
  std::shared_ptr<nexus::CommContext> comm;
  nexus::EndpointPtr endpoint;          ///< this rank's advertised endpoint
  std::vector<Contact> contacts;        ///< endpoint contacts of all ranks
  std::vector<std::string> rank_sites;  ///< site of each rank (WAN-aware
                                        ///< collectives group by this)

  /// The rank's output; rank 0's bytes become JobResult::output.
  Bytes result;

  /// Charges `seconds_at_unit_speed` of CPU work, scaled by the host's
  /// relative speed — the heterogeneity model for the wide-area cluster.
  void charge_cpu(double seconds_at_unit_speed) {
    self->sleep(seconds_at_unit_speed / host->cpu_speed());
  }

  std::string arg_or(const std::string& key, const std::string& fallback) const {
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  }
};

using TaskFn = std::function<void(JobContext&)>;

/// Task name → function. The simulator's "filesystem of executables".
class JobRegistry {
 public:
  void register_task(const std::string& name, TaskFn fn) {
    WACS_CHECK_MSG(tasks_.emplace(name, std::move(fn)).second,
                   "duplicate task " + name);
  }

  Result<TaskFn> find(const std::string& name) const {
    auto it = tasks_.find(name);
    if (it == tasks_.end()) {
      return Error(ErrorCode::kNotFound, "no task registered as " + name);
    }
    return it->second;
  }

 private:
  std::map<std::string, TaskFn> tasks_;
};

}  // namespace wacs::rmf
