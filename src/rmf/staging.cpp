#include "rmf/staging.hpp"

#include "common/telemetry.hpp"

namespace wacs::rmf {

Result<int> stage_job_inputs(sim::Process& self, sim::Host& from,
                             const Env& env, const Contact& origin_server,
                             JobSpec& spec) {
  telemetry::Span span("gass", "gass.stage_submit");
  if (span.active()) span.arg("files", static_cast<double>(
                                  spec.input_files.size()));
  gass::GassClient client(from, env);
  int staged = 0;
  for (auto& [name, data] : spec.input_files) {
    auto url = client.put(self, origin_server, std::move(data));
    if (!url.ok()) {
      return Error(url.error().code(),
                   "staging " + name + ": " + url.error().message());
    }
    spec.input_urls[name] = url->to_string();
    ++staged;
  }
  spec.input_files.clear();
  return staged;
}

}  // namespace wacs::rmf
