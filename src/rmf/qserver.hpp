// The Q server: a job queuing system on every computing resource inside
// the firewall (Fig 2, steps 5-6). "The basic mechanism of RMF is a job
// queuing system and its behavior is similar to LSF": a submitted job part
// runs immediately when enough CPUs are free and otherwise waits in a FIFO
// queue until ranks of earlier jobs complete. Received GASS input files are
// handed to each spawned rank; the rank wrapper performs the MPICH-G style
// bootstrap against the job manager before invoking the task.
//
// Caveat (true of the original system too): there is no gang scheduler.
// Concurrent multi-resource jobs with overlapping *pinned* placements can
// wait on each other; allocator-managed placements are safe because the
// allocator only hands out free capacity and the job manager releases it.
#pragma once

#include <cstdint>
#include <deque>

#include "rmf/job.hpp"
#include "rmf/protocol.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

class QServer {
 public:
  /// `site_env` is applied to every rank spawned here — this is where the
  /// NEXUS_PROXY_* variables come from on firewalled resources.
  QServer(sim::Host& host, std::uint16_t port, Env site_env,
          const JobRegistry* registry);

  void start();

  Contact contact() const { return Contact{host_->name(), port_}; }
  std::uint64_t jobs_started() const { return jobs_started_; }
  std::uint64_t jobs_queued_total() const { return jobs_queued_total_; }
  std::uint64_t ranks_spawned() const { return ranks_spawned_; }
  int busy_cpus() const { return busy_cpus_; }
  std::size_t queue_depth() const { return queue_.size(); }
  const Env& site_env() const { return site_env_; }

 private:
  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);
  /// Starts a (dispatchable) job part: resolves gass:// input URLs through
  /// the site cache server, then spawns the rank processes. CPUs are
  /// reserved for the whole of staging, exactly like a real queue slot.
  void dispatch(const QSubmit& job);
  /// Dispatches queued parts that now fit (called as ranks finish).
  void pump_queue();
  /// Fetches every input_urls entry and merges it over the inline files.
  Result<std::map<std::string, Bytes>> stage_inputs(sim::Process& self,
                                                    const QSubmit& job);
  void spawn_ranks(const QSubmit& job,
                   std::shared_ptr<const std::map<std::string, Bytes>> files);
  void run_rank(sim::Process& self, const QSubmit& job, int rank,
                const std::map<std::string, Bytes>& files);

  sim::Host* host_;
  std::uint16_t port_;
  Env site_env_;
  const JobRegistry* registry_;
  sim::ListenerPtr listener_;
  std::deque<QSubmit> queue_;
  int busy_cpus_ = 0;
  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_queued_total_ = 0;
  std::uint64_t ranks_spawned_ = 0;
  bool started_ = false;
};

}  // namespace wacs::rmf
