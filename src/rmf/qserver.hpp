// The Q server: a job queuing system on every computing resource inside
// the firewall (Fig 2, steps 5-6). "The basic mechanism of RMF is a job
// queuing system and its behavior is similar to LSF": a submitted job part
// runs immediately when enough CPUs are free and otherwise waits in a FIFO
// queue until ranks of earlier jobs complete. Received GASS input files are
// handed to each spawned rank; the rank wrapper performs the MPICH-G style
// bootstrap against the job manager before invoking the task.
//
// Crash recovery: every accepted part is journaled (keyed by the job-scoped
// part_seq) before the QSubmitReply leaves, and the part's life-cycle
// transitions (job-manager contact updates, first-table-received, done,
// cancelled) are journaled as they happen. restart() replays the log:
// parts that never bootstrapped are re-dispatched through the normal queue;
// parts whose ranks had already joined the MPI world are declared lost (the
// world is fixed at table broadcast — re-spawning them would double-run
// work), which the job manager observes as vanished ranks. Duplicate
// QSubmits (a recovered job manager re-sending with the same part_seq) are
// absorbed by the dedup table: the stored job-manager contact is updated and
// nothing re-runs.
//
// Caveat (true of the original system too): there is no gang scheduler.
// Concurrent multi-resource jobs with overlapping *pinned* placements can
// wait on each other; allocator-managed placements are safe because the
// allocator only hands out free capacity and the job manager releases it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "rmf/job.hpp"
#include "rmf/journal.hpp"
#include "rmf/protocol.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

class QServer {
 public:
  /// Recovery knobs, off by default. GridSystem::enable_recovery turns them
  /// on grid-wide; nothing here changes message flow while disabled.
  struct RecoveryOptions {
    bool enabled = false;
    /// Allocator to heartbeat while this host holds CPUs (empty host =
    /// no heartbeats).
    Contact allocator;
    double heartbeat_interval_s = 0.5;
    /// Rank → job-manager reconnect backoff (exponential, deterministic).
    int reconnect_attempts = 12;
    double reconnect_base_s = 0.25;
    double reconnect_cap_s = 4.0;
  };

  /// `site_env` is applied to every rank spawned here — this is where the
  /// NEXUS_PROXY_* variables come from on firewalled resources.
  QServer(sim::Host& host, std::uint16_t port, Env site_env,
          const JobRegistry* registry);

  void start();

  /// Restart-hook body: re-listens, respawns the serve loop, and replays
  /// the part journal (see file comment for the replay rules).
  void restart();

  void set_recovery(RecoveryOptions opts) { recovery_ = std::move(opts); }

  Contact contact() const { return Contact{host_->name(), port_}; }
  std::uint64_t jobs_started() const { return jobs_started_; }
  std::uint64_t jobs_queued_total() const { return jobs_queued_total_; }
  std::uint64_t ranks_spawned() const { return ranks_spawned_; }
  int busy_cpus() const { return busy_cpus_; }
  std::size_t queue_depth() const { return queue_.size(); }
  const Env& site_env() const { return site_env_; }
  sim::Process* serve_process() const { return serve_proc_; }

  // Recovery observability (tests, bench_rmf_recovery).
  std::uint64_t submits_deduped() const { return submits_deduped_; }
  std::uint64_t parts_redispatched() const { return parts_redispatched_; }
  std::uint64_t parts_lost_on_restart() const { return parts_lost_; }
  std::uint64_t parts_cancelled() const { return parts_cancelled_; }
  std::uint64_t journal_replays() const { return journal_replays_; }
  sim::Time last_replay_time() const { return last_replay_time_; }
  /// First dispatch after the latest replay (0 = none yet); the recovery
  /// bench reports first_dispatch - crash_time as the redispatch gap.
  sim::Time first_dispatch_after_replay() const {
    return first_dispatch_after_replay_;
  }

 private:
  using PartKey = std::pair<std::uint64_t, std::uint64_t>;  // job, seq

  enum class PartState {
    kQueued,        ///< accepted; waiting for CPUs (or being staged/run
                    ///< pre-bootstrap — safe to re-run after a crash)
    kRunning,       ///< CPUs held, ranks (or staging) in flight
    kBootstrapped,  ///< >= 1 rank received the contact table: the part
                    ///< joined the MPI world and must never re-run
    kDone,          ///< all ranks exited normally
    kCancelled,     ///< withdrawn by the job manager (requeue elsewhere)
    kLost,          ///< bootstrapped part wiped by a crash; never re-run
  };

  struct PartRec {
    QSubmit job;  ///< latest payload; job_manager tracks the live JM
    PartState state = PartState::kQueued;
    std::vector<sim::Process*> procs;  ///< staging + rank processes
    int live_ranks = 0;
    bool bootstrap_journaled = false;
  };

  void spawn_serve();
  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);
  void handle_cancel(const QCancel& cancel);
  /// Admission: dispatch now when CPUs are free and nothing queues ahead,
  /// else enqueue FIFO.
  void admit(const PartKey& key);
  /// Starts a (dispatchable) job part: resolves gass:// input URLs through
  /// the site cache server, then spawns the rank processes. CPUs are
  /// reserved for the whole of staging, exactly like a real queue slot.
  void dispatch(const PartKey& key);
  /// Dispatches queued parts that now fit (called as ranks finish).
  void pump_queue();
  /// Fetches every input_urls entry and merges it over the inline files.
  Result<std::map<std::string, Bytes>> stage_inputs(sim::Process& self,
                                                    const QSubmit& job);
  void spawn_ranks(const PartKey& key,
                   std::shared_ptr<const std::map<std::string, Bytes>> files);
  void run_rank(sim::Process& self, const PartKey& key, int rank,
                const std::map<std::string, Bytes>& files);
  /// Recovery-mode bootstrap: (re)connect to the part's *current* job
  /// manager with backoff, hello, and fetch the table unless already held.
  sim::SocketPtr bootstrap_recovery(sim::Process& self, const PartKey& key,
                                    int rank, JobContext& ctx,
                                    ContactTable& table, bool& have_table);
  /// Marks the part as having joined the MPI world (first table receipt);
  /// journaled once.
  void note_bootstrapped(const PartKey& key);
  /// Rank/staging teardown accounting; journals PartDone when the last rank
  /// of a bootstrapped part exits normally.
  void note_rank_exit(const PartKey& key, bool killed);
  void ensure_heartbeat();
  void register_proc(sim::Process* proc);

  // Journal record encode/replay.
  void journal_accept(const QSubmit& job);
  void journal_jm(const PartKey& key, const Contact& jm);
  void journal_simple(std::uint8_t tag, const PartKey& key);
  void replay_journal();

  sim::Host* host_;
  std::uint16_t port_;
  Env site_env_;
  const JobRegistry* registry_;
  sim::ListenerPtr listener_;
  std::deque<PartKey> queue_;
  std::map<PartKey, PartRec> parts_;
  int busy_cpus_ = 0;
  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_queued_total_ = 0;
  std::uint64_t ranks_spawned_ = 0;
  bool started_ = false;
  sim::Process* serve_proc_ = nullptr;
  Journal journal_;
  RecoveryOptions recovery_;
  bool heartbeat_active_ = false;

  std::uint64_t submits_deduped_ = 0;
  std::uint64_t parts_redispatched_ = 0;
  std::uint64_t parts_lost_ = 0;
  std::uint64_t parts_cancelled_ = 0;
  std::uint64_t journal_replays_ = 0;
  sim::Time last_replay_time_ = 0;
  sim::Time first_dispatch_after_replay_ = 0;
  bool awaiting_first_dispatch_ = false;
};

}  // namespace wacs::rmf
