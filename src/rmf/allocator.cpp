#include "rmf/allocator.hpp"

#include <algorithm>
#include <numeric>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/fault.hpp"

namespace wacs::rmf {
namespace {
const log::Logger kLog("rmf.alloc");

// Journal record tags.
constexpr std::uint8_t kRecGrant = 1;
constexpr std::uint8_t kRecRelease = 2;
}  // namespace

ResourceAllocator::ResourceAllocator(sim::Host& host, std::uint16_t port,
                                     AllocPolicy policy)
    : host_(&host), port_(port), policy_(policy), journal_(host, "alloc") {}

void ResourceAllocator::register_resource(ResourceInfo info) {
  WACS_CHECK(info.cpus > 0);
  resources_.push_back(std::move(info));
}

void ResourceAllocator::spawn_serve() {
  serve_proc_ = host_->network().engine().spawn(
      "rmf.alloc@" + host_->name(),
      [this](sim::Process& self) { serve(self); });
  if (auto* f = host_->network().fault()) {
    f->register_host_process(host_->name(), serve_proc_);
  }
}

void ResourceAllocator::start() {
  WACS_CHECK_MSG(!started_, "allocator already started");
  started_ = true;
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "allocator cannot bind its port");
  listener_ = *listener;
  spawn_serve();
}

std::vector<Placement> ResourceAllocator::select(
    int nprocs, const std::vector<std::string>& exclude) {
  auto excluded = [&exclude](const ResourceInfo& r) {
    return std::find(exclude.begin(), exclude.end(), r.host) != exclude.end();
  };
  const int free_total = std::accumulate(
      resources_.begin(), resources_.end(), 0,
      [&](int acc, const ResourceInfo& r) {
        return excluded(r) ? acc : acc + r.cpus - r.allocated;
      });
  if (nprocs <= 0 || free_total < nprocs) return {};

  // Build the visit order per policy over resource indices.
  std::vector<std::size_t> order(resources_.size());
  std::iota(order.begin(), order.end(), 0u);
  switch (policy_) {
    case AllocPolicy::kFastestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [this](std::size_t a, std::size_t b) {
                         return resources_[a].speed > resources_[b].speed;
                       });
      break;
    case AllocPolicy::kLeastLoaded:
      std::stable_sort(order.begin(), order.end(),
                       [this](std::size_t a, std::size_t b) {
                         return resources_[a].cpus - resources_[a].allocated >
                                resources_[b].cpus - resources_[b].allocated;
                       });
      break;
    case AllocPolicy::kRoundRobin:
      std::rotate(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(
                                      rr_cursor_ % order.size()),
                  order.end());
      ++rr_cursor_;
      break;
  }

  std::vector<Placement> out;
  int remaining = nprocs;
  for (std::size_t idx : order) {
    if (remaining == 0) break;
    ResourceInfo& r = resources_[idx];
    if (excluded(r)) continue;
    const int take = std::min(remaining, r.cpus - r.allocated);
    if (take <= 0) continue;
    r.allocated += take;
    out.push_back(Placement{r.host, take});
    remaining -= take;
  }
  WACS_CHECK(remaining == 0);
  return out;
}

std::vector<Placement> ResourceAllocator::take_preferred(
    int nprocs, const std::vector<std::string>& exclude,
    const std::vector<Placement>& preferred) {
  if (preferred.empty()) return {};
  // All-or-nothing: the pinned set must cover nprocs and every pinned host
  // must have the free capacity, or the caller falls back to policy
  // selection. Partial honoring would silently change the placement the
  // scheduler matched against its index.
  int covered = 0;
  for (const Placement& p : preferred) {
    if (p.count <= 0) return {};
    if (std::find(exclude.begin(), exclude.end(), p.host) != exclude.end()) {
      return {};
    }
    const auto it =
        std::find_if(resources_.begin(), resources_.end(),
                     [&p](const ResourceInfo& r) { return r.host == p.host; });
    if (it == resources_.end() || it->cpus - it->allocated < p.count) {
      return {};
    }
    covered += p.count;
  }
  if (covered != nprocs) return {};
  std::vector<Placement> out;
  for (const Placement& p : preferred) {
    for (ResourceInfo& r : resources_) {
      if (r.host == p.host) {
        r.allocated += p.count;
        break;
      }
    }
    out.push_back(p);
  }
  return out;
}

void ResourceAllocator::release(const std::vector<Placement>& placements) {
  for (const Placement& p : placements) {
    for (ResourceInfo& r : resources_) {
      if (r.host == p.host) {
        r.allocated = std::max(0, r.allocated - p.count);
        break;
      }
    }
  }
}

// ----------------------------------------------------------------- grants

ResourceAllocator::Grant ResourceAllocator::grant(
    int nprocs, const std::vector<std::string>& exclude,
    const std::vector<Placement>& preferred) {
  sweep_leases();
  std::vector<std::string> effective = exclude;
  for (const std::string& host : expired_) effective.push_back(host);
  Grant g;
  g.placements = take_preferred(nprocs, effective, preferred);
  if (g.placements.empty()) g.placements = select(nprocs, effective);
  if (g.placements.empty()) return g;
  g.id = next_grant_id_++;
  live_grants_[g.id] = g.placements;
  // Granted hosts get a fresh lease window: they owe their first heartbeat
  // one duration from now, not from some earlier idle period.
  if (lease_duration_s_ > 0) {
    const sim::Time now = host_->network().engine().now();
    for (const Placement& p : g.placements) last_heartbeat_[p.host] = now;
  }
  journal_grant(g);
  return g;
}

bool ResourceAllocator::release_grant(std::uint64_t id) {
  auto it = live_grants_.find(id);
  if (it == live_grants_.end()) {
    ++releases_deduped_;
    telemetry::metrics().counter("rmf.alloc.release_dedup").add();
    return false;
  }
  release(it->second);
  live_grants_.erase(it);
  released_.insert(id);
  journal_release(id);
  return true;
}

void ResourceAllocator::journal_grant(const Grant& g) {
  BufWriter w;
  w.u8(kRecGrant);
  w.u64(g.id);
  w.u32(static_cast<std::uint32_t>(g.placements.size()));
  for (const Placement& p : g.placements) {
    w.str(p.host);
    w.i32(p.count);
  }
  journal_.append(std::move(w).take());
}

void ResourceAllocator::journal_release(std::uint64_t id) {
  BufWriter w;
  w.u8(kRecRelease);
  w.u64(id);
  journal_.append(std::move(w).take());
}

// ----------------------------------------------------------------- leases

void ResourceAllocator::enable_leases(double duration_s) {
  lease_duration_s_ = duration_s;
}

void ResourceAllocator::note_heartbeat(const std::string& host) {
  ++heartbeats_received_;
  last_heartbeat_[host] = host_->network().engine().now();
  if (expired_.erase(host) != 0) {
    kLog.info("lease revived for %s", host.c_str());
  }
}

void ResourceAllocator::sweep_leases() {
  if (lease_duration_s_ <= 0) return;
  const sim::Time now = host_->network().engine().now();
  const sim::Time limit = sim::from_sec(lease_duration_s_);
  for (ResourceInfo& r : resources_) {
    if (r.allocated == 0 || expired_.count(r.host) != 0) continue;
    auto it = last_heartbeat_.find(r.host);
    // A host allocated before leases were enabled starts its window now.
    if (it == last_heartbeat_.end()) {
      last_heartbeat_[r.host] = now;
      continue;
    }
    if (now - it->second <= limit) continue;
    kLog.info("lease EXPIRED for %s at t=%.3fs (%d CPUs shed)",
              r.host.c_str(), sim::to_sec(now), r.allocated);
    expired_.insert(r.host);
    r.allocated = 0;
    ++leases_expired_;
    telemetry::metrics().counter("rmf.lease.expired").add();
  }
}

// --------------------------------------------------------------- recovery

void ResourceAllocator::restart() {
  if (listener_) listener_->close();
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "allocator cannot re-bind its port");
  listener_ = *listener;
  spawn_serve();
  replay_journal();
}

void ResourceAllocator::replay_journal() {
  telemetry::Span span("rmf", "rmf.recovery.replay");
  span.arg("daemon", "alloc@" + host_->name());
  ++journal_replays_;
  telemetry::metrics().counter("rmf.recovery.replays").add();

  for (ResourceInfo& r : resources_) r.allocated = 0;
  live_grants_.clear();
  released_.clear();
  expired_.clear();
  std::uint64_t max_id = 0;
  for (const Bytes& rec : journal_.records()) {
    BufReader r(rec);
    auto tag = r.u8();
    if (!tag.ok()) break;
    if (*tag == kRecGrant) {
      auto id = r.u64();
      auto n = r.u32();
      if (!id.ok() || !n.ok()) break;
      std::vector<Placement> ps;
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto host = r.str();
        auto count = r.i32();
        if (!host.ok() || !count.ok()) break;
        ps.push_back(Placement{std::move(*host), *count});
      }
      max_id = std::max(max_id, *id);
      live_grants_[*id] = ps;
      for (const Placement& p : ps) {
        for (ResourceInfo& res : resources_) {
          if (res.host == p.host) {
            res.allocated = std::min(res.cpus, res.allocated + p.count);
            break;
          }
        }
      }
    } else if (*tag == kRecRelease) {
      auto id = r.u64();
      if (!id.ok()) break;
      auto it = live_grants_.find(*id);
      if (it != live_grants_.end()) {
        release(it->second);
        live_grants_.erase(it);
      }
      released_.insert(*id);
    }
  }
  next_grant_id_ = max_id + 1;
  // Every host still holding CPUs gets a fresh lease window; heartbeats
  // re-establish liveness from here.
  if (lease_duration_s_ > 0) {
    const sim::Time now = host_->network().engine().now();
    for (const ResourceInfo& r : resources_) {
      if (r.allocated > 0) last_heartbeat_[r.host] = now;
    }
  }
  kLog.info("allocator replayed %zu grants live, %zu released",
            live_grants_.size(), released_.size());
}

// ------------------------------------------------------------------ serve

void ResourceAllocator::serve(sim::Process& self) {
  // Capture the listener: restart() swaps in a fresh one for the *new*
  // serve process; this incarnation must keep draining (and dying with)
  // its own.
  sim::ListenerPtr listener = listener_;
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    auto* handler = host_->network().engine().spawn(
        "rmf.alloc@" + host_->name() + ".req",
        [this, sock](sim::Process& h) { handle(h, sock); });
    if (auto* f = host_->network().fault()) {
      f->register_host_process(host_->name(), handler);
    }
  }
}

void ResourceAllocator::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  const auto type = peek_type(*frame);
  // Releases and heartbeats are one-way notifications.
  if (type.ok() && *type == MsgType::kRelease) {
    auto rel = Release::decode(*frame);
    if (rel.ok()) {
      if (!rel->grant_ids.empty()) {
        for (std::uint64_t id : rel->grant_ids) release_grant(id);
      } else {
        release(rel->placements);
      }
    }
    conn->close();
    return;
  }
  if (type.ok() && *type == MsgType::kHeartbeat) {
    auto hb = Heartbeat::decode(*frame);
    if (hb.ok()) note_heartbeat(hb->host);
    conn->close();
    return;
  }
  auto req = AllocRequest::decode(*frame);
  if (!req.ok()) {
    conn->close();
    return;
  }
  ++requests_served_;
  Grant g = grant(req->nprocs, req->exclude, req->preferred);
  AllocReply reply;
  if (g.placements.empty()) {
    reply.ok = false;
    reply.error = "insufficient capacity for " + std::to_string(req->nprocs) +
                  " processes";
  } else {
    reply.ok = true;
    reply.grant_id = g.id;
    reply.placements = std::move(g.placements);
  }
  kLog.debug("alloc request for %d procs -> %s", req->nprocs,
             reply.ok ? "ok" : reply.error.c_str());
  (void)conn->send(reply.encode());
  conn->close();
}

}  // namespace wacs::rmf
