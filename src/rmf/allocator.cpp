#include "rmf/allocator.hpp"

#include <algorithm>
#include <numeric>

#include "common/log.hpp"

namespace wacs::rmf {
namespace {
const log::Logger kLog("rmf.alloc");
}

ResourceAllocator::ResourceAllocator(sim::Host& host, std::uint16_t port,
                                     AllocPolicy policy)
    : host_(&host), port_(port), policy_(policy) {}

void ResourceAllocator::register_resource(ResourceInfo info) {
  WACS_CHECK(info.cpus > 0);
  resources_.push_back(std::move(info));
}

void ResourceAllocator::start() {
  WACS_CHECK_MSG(!started_, "allocator already started");
  started_ = true;
  auto listener = host_->stack().listen(port_);
  WACS_CHECK_MSG(listener.ok(), "allocator cannot bind its port");
  listener_ = *listener;
  host_->network().engine().spawn(
      "rmf.alloc@" + host_->name(),
      [this](sim::Process& self) { serve(self); });
}

std::vector<Placement> ResourceAllocator::select(
    int nprocs, const std::vector<std::string>& exclude) {
  auto excluded = [&exclude](const ResourceInfo& r) {
    return std::find(exclude.begin(), exclude.end(), r.host) != exclude.end();
  };
  const int free_total = std::accumulate(
      resources_.begin(), resources_.end(), 0,
      [&](int acc, const ResourceInfo& r) {
        return excluded(r) ? acc : acc + r.cpus - r.allocated;
      });
  if (nprocs <= 0 || free_total < nprocs) return {};

  // Build the visit order per policy over resource indices.
  std::vector<std::size_t> order(resources_.size());
  std::iota(order.begin(), order.end(), 0u);
  switch (policy_) {
    case AllocPolicy::kFastestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [this](std::size_t a, std::size_t b) {
                         return resources_[a].speed > resources_[b].speed;
                       });
      break;
    case AllocPolicy::kLeastLoaded:
      std::stable_sort(order.begin(), order.end(),
                       [this](std::size_t a, std::size_t b) {
                         return resources_[a].cpus - resources_[a].allocated >
                                resources_[b].cpus - resources_[b].allocated;
                       });
      break;
    case AllocPolicy::kRoundRobin:
      std::rotate(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(
                                      rr_cursor_ % order.size()),
                  order.end());
      ++rr_cursor_;
      break;
  }

  std::vector<Placement> out;
  int remaining = nprocs;
  for (std::size_t idx : order) {
    if (remaining == 0) break;
    ResourceInfo& r = resources_[idx];
    if (excluded(r)) continue;
    const int take = std::min(remaining, r.cpus - r.allocated);
    if (take <= 0) continue;
    r.allocated += take;
    out.push_back(Placement{r.host, take});
    remaining -= take;
  }
  WACS_CHECK(remaining == 0);
  return out;
}

void ResourceAllocator::release(const std::vector<Placement>& placements) {
  for (const Placement& p : placements) {
    for (ResourceInfo& r : resources_) {
      if (r.host == p.host) {
        r.allocated = std::max(0, r.allocated - p.count);
        break;
      }
    }
  }
}

void ResourceAllocator::serve(sim::Process& self) {
  while (true) {
    auto conn = listener_->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    host_->network().engine().spawn(
        "rmf.alloc@" + host_->name() + ".req",
        [this, sock](sim::Process& handler) { handle(handler, sock); });
  }
}

void ResourceAllocator::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  // Releases are one-way notifications from a finished job manager.
  if (auto type = peek_type(*frame);
      type.ok() && *type == MsgType::kRelease) {
    auto rel = Release::decode(*frame);
    if (rel.ok()) release(rel->placements);
    conn->close();
    return;
  }
  auto req = AllocRequest::decode(*frame);
  if (!req.ok()) {
    conn->close();
    return;
  }
  ++requests_served_;
  auto placements = select(req->nprocs, req->exclude);
  AllocReply reply;
  if (placements.empty()) {
    reply.ok = false;
    reply.error = "insufficient capacity for " + std::to_string(req->nprocs) +
                  " processes";
  } else {
    reply.ok = true;
    reply.placements = std::move(placements);
  }
  kLog.debug("alloc request for %d procs -> %s", req->nprocs,
             reply.ok ? "ok" : reply.error.c_str());
  (void)conn->send(reply.encode());
  conn->close();
}

}  // namespace wacs::rmf
