// The resource allocator: a daemon inside the firewall that knows every
// computing resource and answers "which resources are best to execute a
// job" (Fig 2, steps 3-4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rmf/protocol.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

/// A computing resource the allocator can hand out.
struct ResourceInfo {
  std::string host;
  int cpus = 1;
  double speed = 1.0;  ///< relative per-CPU rate
  int allocated = 0;   ///< CPUs currently handed out
};

/// Selection policies.
enum class AllocPolicy {
  kFastestFirst,  ///< fill fastest resources first (default)
  kLeastLoaded,   ///< spread by free-CPU count
  kRoundRobin,    ///< rotate across resources
};

class ResourceAllocator {
 public:
  ResourceAllocator(sim::Host& host, std::uint16_t port,
                    AllocPolicy policy = AllocPolicy::kFastestFirst);

  void register_resource(ResourceInfo info);
  void start();

  Contact contact() const { return Contact{host_->name(), port_}; }

  /// Pure selection logic, exposed for unit tests: chooses placements for
  /// `nprocs` processes from the currently-free capacity and marks them
  /// allocated. Hosts named in `exclude` (believed dead by the requester)
  /// are skipped. Empty result when capacity is insufficient.
  std::vector<Placement> select(int nprocs,
                                const std::vector<std::string>& exclude = {});
  /// Returns capacity (used by tests and by job teardown).
  void release(const std::vector<Placement>& placements);

  const std::vector<ResourceInfo>& resources() const { return resources_; }
  std::uint64_t requests_served() const { return requests_served_; }

 private:
  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);

  sim::Host* host_;
  std::uint16_t port_;
  AllocPolicy policy_;
  std::vector<ResourceInfo> resources_;
  std::size_t rr_cursor_ = 0;
  std::uint64_t requests_served_ = 0;
  sim::ListenerPtr listener_;
  bool started_ = false;
};

}  // namespace wacs::rmf
