// The resource allocator: a daemon inside the firewall that knows every
// computing resource and answers "which resources are best to execute a
// job" (Fig 2, steps 3-4).
//
// Crash recovery: every grant and release is journaled to the host's
// durable store before the reply leaves, so restart() can rebuild the
// allocation table exactly (grants minus releases). Releases dedup on the
// grant id — a job manager may retry a Release across an allocator restart
// without double-crediting capacity. Lease-based failure detection
// (enable_leases) expires hosts that hold CPUs but stop heartbeating and
// sheds their load, so a crashed Q-server site degrades instead of wedging
// the capacity pool.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rmf/journal.hpp"
#include "rmf/protocol.hpp"
#include "simnet/tcp.hpp"

namespace wacs::rmf {

/// A computing resource the allocator can hand out.
struct ResourceInfo {
  std::string host;
  int cpus = 1;
  double speed = 1.0;  ///< relative per-CPU rate
  int allocated = 0;   ///< CPUs currently handed out
};

/// Selection policies.
enum class AllocPolicy {
  kFastestFirst,  ///< fill fastest resources first (default)
  kLeastLoaded,   ///< spread by free-CPU count
  kRoundRobin,    ///< rotate across resources
};

class ResourceAllocator {
 public:
  /// A named allocation. `id` 0 with empty placements = request denied.
  struct Grant {
    std::uint64_t id = 0;
    std::vector<Placement> placements;
  };

  ResourceAllocator(sim::Host& host, std::uint16_t port,
                    AllocPolicy policy = AllocPolicy::kFastestFirst);

  void register_resource(ResourceInfo info);
  void start();

  Contact contact() const { return Contact{host_->name(), port_}; }

  /// Pure selection logic, exposed for unit tests: chooses placements for
  /// `nprocs` processes from the currently-free capacity and marks them
  /// allocated. Hosts named in `exclude` (believed dead by the requester)
  /// are skipped. Empty result when capacity is insufficient.
  std::vector<Placement> select(int nprocs,
                                const std::vector<std::string>& exclude = {});
  /// Returns capacity (used by tests and by job teardown).
  void release(const std::vector<Placement>& placements);

  // ------------------------------------------------ grants (journaled path)

  /// select() plus a journaled grant id; expired-lease hosts are skipped on
  /// top of the caller's exclude list. When `preferred` is non-empty the
  /// allocator honors it all-or-nothing (scheduler-pinned placements from an
  /// MDS match); if the pinned hosts lack capacity it falls back to policy
  /// selection.
  Grant grant(int nprocs, const std::vector<std::string>& exclude = {},
              const std::vector<Placement>& preferred = {});

  /// Releases a grant by id. Idempotent: false (and no capacity change) for
  /// an unknown or already-released id.
  bool release_grant(std::uint64_t id);

  // ------------------------------------------------------------- leases

  /// Hosts holding CPUs must heartbeat at least every `duration_s` or their
  /// lease expires: the allocator sheds their allocation and excludes them
  /// from grants until the next heartbeat. 0 disables (the default).
  void enable_leases(double duration_s);
  void note_heartbeat(const std::string& host);
  /// Expires overdue leases now. grant() calls this; exposed for tests that
  /// want to observe an expiry without issuing a request.
  void sweep_leases();
  bool lease_expired(const std::string& host) const {
    return expired_.count(host) != 0;
  }

  // ------------------------------------------------------------ recovery

  /// Restart-hook body: re-listens, respawns the serve loop, and replays
  /// the journal to rebuild grants and per-resource allocation.
  void restart();

  const std::vector<ResourceInfo>& resources() const { return resources_; }
  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t releases_deduped() const { return releases_deduped_; }
  std::uint64_t leases_expired() const { return leases_expired_; }
  std::uint64_t heartbeats_received() const { return heartbeats_received_; }
  std::uint64_t journal_replays() const { return journal_replays_; }
  sim::Process* serve_process() const { return serve_proc_; }

 private:
  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);
  std::vector<Placement> take_preferred(
      int nprocs, const std::vector<std::string>& exclude,
      const std::vector<Placement>& preferred);
  void spawn_serve();
  void journal_grant(const Grant& g);
  void journal_release(std::uint64_t id);
  void replay_journal();

  sim::Host* host_;
  std::uint16_t port_;
  AllocPolicy policy_;
  std::vector<ResourceInfo> resources_;
  std::size_t rr_cursor_ = 0;
  std::uint64_t requests_served_ = 0;
  sim::ListenerPtr listener_;
  bool started_ = false;
  sim::Process* serve_proc_ = nullptr;

  Journal journal_;
  std::uint64_t next_grant_id_ = 1;
  std::map<std::uint64_t, std::vector<Placement>> live_grants_;
  std::set<std::uint64_t> released_;
  std::uint64_t releases_deduped_ = 0;
  std::uint64_t journal_replays_ = 0;

  double lease_duration_s_ = 0;  ///< 0 = leases off
  std::map<std::string, sim::Time> last_heartbeat_;
  std::set<std::string> expired_;
  std::uint64_t leases_expired_ = 0;
  std::uint64_t heartbeats_received_ = 0;
};

}  // namespace wacs::rmf
