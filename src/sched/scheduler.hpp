// The multi-tenant grid scheduler (DESIGN.md §17).
//
// Sits between submitters/gatekeeper and the execution layer and makes
// RMF a multi-tenant service:
//
//   admission     per-tenant queue caps and a global cap; over-cap
//                 submissions get an explicit retryable Busy verdict
//                 (the nxproxy Busy{retry_after_ms} idiom) instead of
//                 wedging the queue.
//   ordering      per-tenant FIFO, cross-tenant fair-share with
//                 half-life decay (sched/fairshare.hpp) over a
//                 priority-indexed pending queue (sched/queue.hpp).
//   backfill      EASY: when the head job does not fit, later jobs may
//                 run now iff they cannot delay the head's earliest
//                 reservation; the candidate scan is bounded.
//   matching      MDS-backed (sched/matcher.hpp): sites publish host
//                 entries with TTLs, the scheduler refreshes by filtered
//                 subtree search and dispatches to the best-fitting site.
//   dispatch      batched frames over persistent runner connections
//                 (runners dial out — leaf sites keep zero inbound
//                 holes); runner sheds are requeued with site backoff,
//                 lost dispatches are recovered by a deadline sweep.
//   durability    accepts/dispatches/completions journal before their
//                 effects become visible; snapshot + truncate bounds the
//                 log; restart() replays to the exact pre-crash state.
//
// The scheduler can also interpose on the paper's grid path: pointed at a
// ResourceAllocator it proxies AllocRequest/Release, pinning MDS-matched
// placements via AllocRequest.preferred and charging fair-share for the
// allocation's lifetime (GridSystem::add_scheduler).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mds/server.hpp"
#include "rmf/journal.hpp"
#include "rmf/protocol.hpp"
#include "sched/fairshare.hpp"
#include "sched/matcher.hpp"
#include "sched/queue.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sched {

class Scheduler {
 public:
  struct Options {
    std::uint16_t port = 2180;
    Contact mds;        ///< directory server; empty host = no refresh
    Contact allocator;  ///< grid-path proxy target; empty host = off

    double half_life_s = 600;      ///< fair-share decay half-life
    double pass_interval_s = 0.25;  ///< scheduling pass cadence
    double mds_refresh_s = 10;     ///< directory re-search period
    double entry_ttl_s = 120;      ///< matcher record lifetime

    int max_pending_per_tenant = 200;     ///< admission cap (per tenant)
    std::size_t max_pending_total = 100000;  ///< admission cap (global)
    std::uint32_t retry_after_ms = 500;   ///< Busy verdict backoff hint
    int max_nprocs = 4096;                ///< reject wider jobs outright

    std::size_t backfill_scan = 256;  ///< bounded candidate scan per pass
    double dispatch_grace_s = 30;     ///< est + grace before a dispatch is
                                      ///< presumed lost and requeued
    int max_attempts = 5;             ///< requeues before the job fails
    std::size_t snapshot_every = 2048;  ///< journal records per snapshot
  };

  Scheduler(sim::Host& host, Options options);

  void start();
  /// Restart-hook body: re-listen, respawn serve, replay the journal.
  void restart();

  Contact contact() const { return Contact{host_->name(), options_.port}; }
  Options& mutable_options() { return options_; }
  sim::Process* serve_process() const { return serve_proc_; }

  /// Direct index access for static registration in tests (no MDS).
  ResourceIndex& index() { return index_; }
  const FairShare& shares() const { return shares_; }

  // Observability (tests, bench, obs probes).
  std::size_t pending_jobs() const { return queue_.size(); }
  std::size_t inflight_jobs() const { return inflight_.size(); }
  std::size_t tenants_waiting() const { return queue_.tenants_waiting(); }
  std::uint64_t jobs_accepted() const { return jobs_accepted_; }
  std::uint64_t jobs_shed() const { return jobs_shed_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t jobs_failed() const { return jobs_failed_; }
  std::uint64_t jobs_backfilled() const { return jobs_backfilled_; }
  std::uint64_t jobs_requeued() const { return jobs_requeued_; }
  std::uint64_t dispatch_batches() const { return dispatch_batches_; }
  std::uint64_t dup_completions() const { return dup_completions_; }
  std::uint64_t journal_replays() const { return journal_replays_; }
  std::uint64_t mds_refreshes() const { return mds_refreshes_; }
  std::size_t connected_runners() const { return runners_.size(); }
  /// When the last job reached a final state (completed or failed). The
  /// makespan clock for benches: engine.now() after a drain also counts
  /// idle daemon timers (publisher TTL sleeps), not work.
  sim::Time last_done() const { return last_done_; }
  /// Fair share of the currently most-charged tenant, in basis points of
  /// the total decayed usage (10000 = one tenant holds everything).
  std::int64_t top_share_bp() const;

 private:
  struct Inflight {
    std::string tenant;
    std::string site;
    std::string task;
    int nprocs = 1;
    double est_runtime_s = 1.0;
    sim::Time enqueued_at = 0;
    sim::Time dispatched_at = 0;
    int attempts = 0;
  };
  struct GrantRec {  // grid-path proxied allocation
    std::string tenant;
    int nprocs = 0;
    std::vector<rmf::Placement> placements;
    sim::Time granted_at = 0;
  };

  void serve(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);
  void handle_runner(sim::Process& self, sim::SocketPtr conn,
                     const rmf::SchedHello& hello);
  rmf::SchedSubmitReply on_submit(const rmf::SchedSubmit& submit);
  void on_complete(const std::string& site, const rmf::SchedComplete& batch);
  void on_dispatch_reply(const std::string& site,
                         const rmf::SchedDispatchReply& reply);
  void proxy_alloc(sim::Process& self, sim::SimSocket& conn,
                   const rmf::AllocRequest& req);
  void proxy_release(sim::Process& self, const rmf::Release& rel);

  void ensure_pass();
  void pass_loop(sim::Process& self);
  void refresh_index(sim::Process& self);
  void schedule_pass();
  void sweep_deadlines();
  void requeue(std::uint64_t sched_id, Inflight rec);
  void fail_job(std::uint64_t sched_id, const Inflight& rec);
  void charge(const std::string& tenant, double cpu_seconds);
  void maybe_snapshot();

  void journal_accepts(const std::vector<PendingJob>& jobs);
  void journal_dispatch(const std::string& site,
                        const std::vector<std::uint64_t>& ids);
  void journal_completes(const std::vector<rmf::SchedComplete::Item>& items);
  void journal_requeues(const std::vector<std::uint64_t>& ids);
  void write_snapshot();
  void replay_journal();
  void spawn_serve();
  void register_proc(sim::Process* proc);

  sim::Time now() const;
  double now_s() const;

  sim::Host* host_;
  Options options_;
  sim::ListenerPtr listener_;
  sim::Process* serve_proc_ = nullptr;
  bool started_ = false;
  bool pass_active_ = false;

  FairShare shares_;
  PendingQueue queue_;
  ResourceIndex index_;
  std::map<std::uint64_t, Inflight> inflight_;
  std::uint64_t next_sched_id_ = 1;

  std::map<std::string, sim::SocketPtr> runners_;  // site → live connection
  std::map<std::string, sim::Time> backoff_;       // site → skip until

  std::map<std::uint64_t, GrantRec> grants_;  // grid-path ledger
  sim::Time last_refresh_ = 0;
  bool index_primed_ = false;
  /// Set by replay: the first index refresh after a crash re-applies the
  /// in-flight debits (the index is volatile; the inflight ledger is not).
  bool reapply_debits_ = false;

  rmf::Journal journal_;
  std::uint64_t snapshot_mark_ = 0;
  std::uint64_t journal_replays_ = 0;

  std::uint64_t jobs_accepted_ = 0;
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_backfilled_ = 0;
  std::uint64_t jobs_requeued_ = 0;
  std::uint64_t dispatch_batches_ = 0;
  std::uint64_t dup_completions_ = 0;
  std::uint64_t mds_refreshes_ = 0;
  sim::Time last_done_ = 0;
};

}  // namespace wacs::sched
