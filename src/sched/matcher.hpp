// MDS-backed resource index: answers "which site/hosts fit this job".
//
// The scheduler periodically searches the grid's MDS directory (subtree
// "o=grid", filter "(cpus=*)(site=*)") and feeds the entries here. Each
// entry describes one host (attrs: site, cpus, speed); the index keeps
// host records plus per-site aggregates and layers its *own* in-flight
// CPU debits on top. Published load is deliberately ignored for
// accounting — the scheduler's debits are self-consistent with its own
// dispatches, so there is no reconciliation drift against a stale
// directory snapshot. What the directory contributes is membership: a
// site whose runner stops re-registering (crashed host) ages out after
// `ttl_s` and stops receiving dispatches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mds/directory.hpp"
#include "rmf/job.hpp"
#include "simnet/time.hpp"

namespace wacs::sched {

class ResourceIndex {
 public:
  struct HostRec {
    std::string host;
    std::string site;
    int cpus = 0;
    double speed = 1.0;
    int inflight = 0;  ///< CPUs debited by this scheduler (grid path)
    sim::Time expires_at = 0;
  };
  struct SiteRec {
    int cpus = 0;      ///< published capacity across live hosts
    int inflight = 0;  ///< CPUs debited by this scheduler
    int hosts = 0;
  };

  /// Ingests one directory entry (upsert by host name; refreshes the TTL).
  /// Entries without numeric `cpus` or a `site` attribute are ignored.
  void upsert(const mds::Entry& entry, sim::Time now, double ttl_s);

  /// Drops hosts whose TTL lapsed (their capacity leaves the aggregates;
  /// inflight debits on dropped hosts are forgotten — the scheduler's
  /// deadline sweep requeues their jobs). Returns how many were dropped.
  std::size_t expire(sim::Time now);

  /// Extends the TTL of every host of `site` to at least `expires_at`. A
  /// live runner connection is fresher evidence than the directory (an
  /// idle runner parks its publish loop, so its entries may lapse while
  /// the site is demonstrably up).
  void touch_site(const std::string& site, sim::Time expires_at);

  /// Best site for an `nprocs`-wide job: most free CPUs, ties by name.
  /// Sites in `skip` (backed off, disconnected) are excluded. Empty when
  /// nothing fits.
  std::string match_site(int nprocs,
                         const std::map<std::string, sim::Time>& skip,
                         sim::Time now) const;

  /// Grid path: concrete host placements for `nprocs`, fastest hosts
  /// first (the allocator's kFastestFirst order), spilling across sites.
  /// Hosts in `exclude` (believed dead by the requester) are skipped.
  /// Empty when free capacity is insufficient. Does NOT debit.
  std::vector<rmf::Placement> match_hosts(
      int nprocs, const std::vector<std::string>& exclude = {}) const;

  // In-flight accounting (site granularity for the dispatch path, host
  // granularity for the grid/allocator-proxy path).
  void debit_site(const std::string& site, int nprocs);
  void credit_site(const std::string& site, int nprocs);
  void debit_hosts(const std::vector<rmf::Placement>& placements);
  void credit_hosts(const std::vector<rmf::Placement>& placements);

  int free_cpus(const std::string& site) const;
  int total_free_cpus() const;
  int total_cpus() const;
  std::size_t sites() const { return sites_.size(); }
  std::size_t hosts() const { return hosts_.size(); }
  const std::map<std::string, SiteRec>& site_records() const { return sites_; }

 private:
  std::map<std::string, HostRec> hosts_;  // keyed by host name
  std::map<std::string, SiteRec> sites_;
};

}  // namespace wacs::sched
