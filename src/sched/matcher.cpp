#include "sched/matcher.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>

namespace wacs::sched {
namespace {

/// Strict non-negative integer parse; nullopt on anything else (the MDS
/// stores strings; a malformed publish must not corrupt the aggregates).
std::optional<int> parse_cpus(const std::string& s) {
  if (s.empty() || s.size() > 9) return std::nullopt;
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

void ResourceIndex::upsert(const mds::Entry& entry, sim::Time now,
                           double ttl_s) {
  const auto site_it = entry.attributes.find("site");
  const auto cpus_it = entry.attributes.find("cpus");
  const auto host_it = entry.attributes.find("host");
  if (site_it == entry.attributes.end() || cpus_it == entry.attributes.end()) {
    return;
  }
  const auto cpus = parse_cpus(cpus_it->second);
  if (!cpus.has_value() || *cpus <= 0) return;
  // The host name comes from an explicit attr when present, else the DN's
  // last component ("o=grid/ou=site/host=h" → "h").
  std::string host;
  if (host_it != entry.attributes.end()) {
    host = host_it->second;
  } else {
    const auto pos = entry.dn.rfind('=');
    if (pos == std::string::npos) return;
    host = entry.dn.substr(pos + 1);
  }
  double speed = 1.0;
  if (const auto it = entry.attributes.find("speed");
      it != entry.attributes.end()) {
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end != nullptr && *end == '\0' && v > 0) speed = v;
  }

  auto [rec_it, inserted] = hosts_.try_emplace(host);
  HostRec& rec = rec_it->second;
  if (!inserted) {
    // Capacity or site changes re-aggregate; inflight debits survive the
    // refresh (they are the scheduler's own bookkeeping).
    auto& old_site = sites_[rec.site];
    old_site.cpus -= rec.cpus;
    old_site.hosts -= 1;
    old_site.inflight -= rec.inflight;
    // Site-level debits (dispatch bookkeeping) are not attached to any
    // host; a record that still carries some must survive the re-add or
    // the refresh would mint free capacity.
    if (old_site.hosts == 0 && old_site.inflight == 0) {
      sites_.erase(rec.site);
    }
  }
  rec.host = host;
  rec.site = site_it->second;
  rec.cpus = *cpus;
  rec.speed = speed;
  rec.expires_at = now + sim::from_sec(ttl_s);
  auto& site = sites_[rec.site];
  site.cpus += rec.cpus;
  site.hosts += 1;
  site.inflight += rec.inflight;
}

std::size_t ResourceIndex::expire(sim::Time now) {
  std::size_t dropped = 0;
  for (auto it = hosts_.begin(); it != hosts_.end();) {
    if (it->second.expires_at > now) {
      ++it;
      continue;
    }
    auto& site = sites_[it->second.site];
    site.cpus -= it->second.cpus;
    site.hosts -= 1;
    site.inflight -= it->second.inflight;
    if (site.hosts == 0 && site.inflight == 0) {
      sites_.erase(it->second.site);
    }
    it = hosts_.erase(it);
    ++dropped;
  }
  return dropped;
}

void ResourceIndex::touch_site(const std::string& site,
                               sim::Time expires_at) {
  for (auto& [_, rec] : hosts_) {
    if (rec.site == site && rec.expires_at < expires_at) {
      rec.expires_at = expires_at;
    }
  }
}

std::string ResourceIndex::match_site(
    int nprocs, const std::map<std::string, sim::Time>& skip,
    sim::Time now) const {
  std::string best;
  int best_free = 0;
  for (const auto& [name, rec] : sites_) {
    const int free = rec.cpus - rec.inflight;
    if (free < nprocs) continue;
    if (const auto it = skip.find(name); it != skip.end() && it->second > now) {
      continue;
    }
    if (free > best_free) {
      best = name;
      best_free = free;
    }
  }
  return best;
}

std::vector<rmf::Placement> ResourceIndex::match_hosts(
    int nprocs, const std::vector<std::string>& exclude) const {
  std::vector<const HostRec*> order;
  order.reserve(hosts_.size());
  for (const auto& [name, rec] : hosts_) {
    if (rec.cpus <= rec.inflight) continue;
    if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) {
      continue;
    }
    order.push_back(&rec);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const HostRec* a, const HostRec* b) {
                     return a->speed > b->speed;  // ties keep name order
                   });
  std::vector<rmf::Placement> out;
  int need = nprocs;
  for (const HostRec* rec : order) {
    if (need == 0) break;
    const int take = std::min(need, rec->cpus - rec->inflight);
    out.push_back(rmf::Placement{rec->host, take});
    need -= take;
  }
  if (need > 0) return {};
  return out;
}

void ResourceIndex::debit_site(const std::string& site, int nprocs) {
  const auto it = sites_.find(site);
  if (it != sites_.end()) it->second.inflight += nprocs;
}

void ResourceIndex::credit_site(const std::string& site, int nprocs) {
  const auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.inflight = std::max(0, it->second.inflight - nprocs);
}

void ResourceIndex::debit_hosts(const std::vector<rmf::Placement>& placements) {
  for (const auto& p : placements) {
    const auto it = hosts_.find(p.host);
    if (it == hosts_.end()) continue;
    it->second.inflight += p.count;
    debit_site(it->second.site, p.count);
  }
}

void ResourceIndex::credit_hosts(
    const std::vector<rmf::Placement>& placements) {
  for (const auto& p : placements) {
    const auto it = hosts_.find(p.host);
    if (it == hosts_.end()) continue;
    it->second.inflight = std::max(0, it->second.inflight - p.count);
    credit_site(it->second.site, p.count);
  }
}

int ResourceIndex::free_cpus(const std::string& site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.cpus - it->second.inflight;
}

int ResourceIndex::total_free_cpus() const {
  int total = 0;
  for (const auto& [_, rec] : sites_) total += rec.cpus - rec.inflight;
  return total;
}

int ResourceIndex::total_cpus() const {
  int total = 0;
  for (const auto& [_, rec] : sites_) total += rec.cpus;
  return total;
}

}  // namespace wacs::sched
