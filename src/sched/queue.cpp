#include "sched/queue.hpp"

#include "common/error.hpp"
#include "sched/fairshare.hpp"

namespace wacs::sched {

void PendingQueue::push(const FairShare& shares, PendingJob job) {
  auto& dq = by_tenant_[job.tenant];
  if (dq.empty()) index_insert(shares, job.tenant);
  dq.push_back(std::move(job));
  ++total_;
}

void PendingQueue::push_front(const FairShare& shares, PendingJob job) {
  auto& dq = by_tenant_[job.tenant];
  if (dq.empty()) index_insert(shares, job.tenant);
  dq.push_front(std::move(job));
  ++total_;
}

const PendingJob* PendingQueue::head() const {
  if (index_.empty()) return nullptr;
  const auto& tenant = index_.begin()->second;
  return &by_tenant_.at(tenant).front();
}

PendingJob PendingQueue::pop_head() {
  WACS_CHECK(!index_.empty());
  return pop_front_of(index_.begin()->second);
}

std::vector<const PendingJob*> PendingQueue::backfill_candidates(
    std::size_t limit) const {
  std::vector<const PendingJob*> out;
  auto it = index_.begin();
  if (it != index_.end()) ++it;  // skip the head tenant (it holds the
                                 // reservation; its front job is the head)
  for (; it != index_.end() && out.size() < limit; ++it) {
    out.push_back(&by_tenant_.at(it->second).front());
  }
  return out;
}

PendingJob PendingQueue::pop_front_of(const std::string& tenant) {
  auto it = by_tenant_.find(tenant);
  WACS_CHECK(it != by_tenant_.end() && !it->second.empty());
  PendingJob job = std::move(it->second.front());
  it->second.pop_front();
  --total_;
  if (it->second.empty()) {
    index_erase(tenant);
    by_tenant_.erase(it);
  }
  return job;
}

PendingJob PendingQueue::take(const std::string& tenant,
                              std::uint64_t sched_id) {
  auto it = by_tenant_.find(tenant);
  WACS_CHECK(it != by_tenant_.end());
  auto& dq = it->second;
  auto pos = dq.begin();
  while (pos != dq.end() && pos->sched_id != sched_id) ++pos;
  WACS_CHECK_MSG(pos != dq.end(), "take: job not pending for this tenant");
  PendingJob job = std::move(*pos);
  dq.erase(pos);
  --total_;
  if (dq.empty()) {
    index_erase(tenant);
    by_tenant_.erase(it);
  }
  return job;
}

void PendingQueue::rekey(const FairShare& shares, const std::string& tenant) {
  const auto it = indexed_key_.find(tenant);
  if (it == indexed_key_.end()) return;  // nothing pending for this tenant
  index_.erase({it->second, tenant});
  indexed_key_.erase(it);
  index_insert(shares, tenant);
}

std::vector<const PendingJob*> PendingQueue::all_jobs() const {
  std::vector<const PendingJob*> out;
  out.reserve(total_);
  for (const auto& [_, dq] : by_tenant_) {
    for (const PendingJob& job : dq) out.push_back(&job);
  }
  return out;
}

std::size_t PendingQueue::tenant_depth(const std::string& tenant) const {
  const auto it = by_tenant_.find(tenant);
  return it == by_tenant_.end() ? 0 : it->second.size();
}

void PendingQueue::index_insert(const FairShare& shares,
                                const std::string& tenant) {
  const double key = shares.priority_key(tenant);
  index_.insert({key, tenant});
  indexed_key_[tenant] = key;
}

void PendingQueue::index_erase(const std::string& tenant) {
  const auto it = indexed_key_.find(tenant);
  WACS_CHECK(it != indexed_key_.end());
  index_.erase({it->second, tenant});
  indexed_key_.erase(it);
}

}  // namespace wacs::sched
