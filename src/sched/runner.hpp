// Site runner: the leaf-site execution daemon of the multi-tenant
// scheduler (DESIGN.md §17).
//
// Firewall-compliant by construction: the runner *dials out* to the
// scheduler and holds one persistent connection (SchedHello first), so a
// leaf site needs zero inbound holes — the paper's constraint, scaled to
// 50 sites. Down that connection come SchedDispatch batches; up go
// SchedDispatchReply (saturation shed: jobs that would exceed local
// capacity are rejected with a retry hint) and SchedComplete batches.
//
// Execution costs no process per job: each accepted job is an
// engine.after() timer that fires at its runtime estimate, guarded by an
// epoch counter and a host-down check so jobs die with a crashed host
// instead of completing from beyond the grave. Completions accumulate and
// flush as batches; unacknowledged batches are resent on every reconnect
// (the scheduler journals-then-acks and dedups, making completion
// accounting exactly-once).
//
// The runner also keeps the site's MDS presence alive: it re-registers
// one directory entry per local host at half the TTL, gated on having
// work so the event queue can drain when the grid goes quiet.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "mds/server.hpp"
#include "rmf/protocol.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sched {

class SiteRunner {
 public:
  struct HostSlot {
    std::string host;
    int cpus = 1;
    double speed = 1.0;
  };

  struct Options {
    std::string site;
    Contact scheduler;
    Contact mds;              ///< empty host = no directory publishing
    std::vector<HostSlot> hosts;
    double publish_ttl_s = 60;     ///< MDS entry lifetime
    double reconnect_backoff_s = 1.0;
    double flush_interval_s = 0.2;  ///< completion batch cadence
    std::uint32_t shed_retry_after_ms = 500;
  };

  SiteRunner(sim::Host& host, Options options);

  /// Dials the scheduler, publishes the site's entries, starts serving.
  void start();
  /// Restart-hook body (fault injector): bumps the epoch so orphaned job
  /// timers no-op, clears volatile state, and redials. In-flight jobs are
  /// lost with the crash — the scheduler's deadline sweep requeues them.
  void restart();

  int capacity_cpus() const { return capacity_; }
  int inflight_cpus() const { return inflight_cpus_; }
  std::uint64_t jobs_started() const { return jobs_started_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t jobs_shed() const { return jobs_shed_; }
  std::uint64_t batches_resent() const { return batches_resent_; }
  const std::string& site() const { return options_.site; }

 private:
  struct Running {
    std::string tenant;
    int nprocs = 0;
    double est_runtime_s = 0;
  };

  void conn_loop(sim::Process& self);
  void handle_dispatch(const rmf::SchedDispatch& batch);
  void finish_job(std::uint64_t sched_id, std::uint64_t epoch);
  void ensure_flusher();
  void flush_completions();
  void publish_entries(sim::Process& self);
  void ensure_publisher();
  void register_proc(sim::Process* proc);
  bool busy() const;

  sim::Host* host_;
  Options options_;
  int capacity_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped on restart; stale timers no-op

  sim::SocketPtr conn_;      ///< live scheduler connection (conn_loop owns)
  bool conn_active_ = false;
  bool flusher_active_ = false;
  bool publisher_active_ = false;

  std::map<std::uint64_t, Running> running_;  // sched_id → job
  int inflight_cpus_ = 0;

  std::vector<rmf::SchedComplete::Item> done_buffer_;
  std::deque<rmf::SchedComplete> unacked_;  ///< sent, not yet acked
  std::uint64_t next_batch_seq_ = 1;

  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t batches_resent_ = 0;
};

}  // namespace wacs::sched
