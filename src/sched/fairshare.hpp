// Decayed per-tenant fair-share accounting (DESIGN.md §17).
//
// Classic half-life decay (Maui / Slurm style): a tenant's usage halves
// every `half_life_s` of virtual time, so recent consumption dominates and
// idle tenants drift back toward equal footing. Stored in *scaled* form —
// charge(t) adds cpu_seconds * 2^(t/half_life) — which makes decay free:
// the stored value never changes between charges, only the interpretation
// does. Because decay multiplies every tenant by the same factor, relative
// order is invariant between charges; the pending queue's priority index
// therefore only needs re-keying when a tenant is actually charged.
//
// The scale factor grows without bound, so the tracker rebases (divides
// every stored value by a common power of two and advances the origin)
// whenever the exponent gets large. Rebasing changes no ordering and no
// displayed usage.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace wacs::sched {

class FairShare {
 public:
  explicit FairShare(double half_life_s = 600.0);

  /// Larger weight = bigger entitled share (priority key divides by it).
  void set_weight(const std::string& tenant, double weight);

  /// Records `cpu_seconds` of consumption by `tenant` at time `now_s`.
  void charge(const std::string& tenant, double cpu_seconds, double now_s);

  /// Scheduling key: decayed usage / weight. Lower = schedule sooner.
  /// Tenants never charged key at 0 (head of the line). Comparable only
  /// between tenants (the absolute value depends on the rebase origin).
  double priority_key(const std::string& tenant) const;

  /// Decayed usage in cpu-seconds as of `now_s` (display / tests).
  double usage(const std::string& tenant, double now_s) const;

  /// Largest tenant's fraction of total decayed usage, in [0, 1] (0 when
  /// nothing has been charged). Scale-invariant, so no `now` needed.
  double top_share() const;

  std::size_t tenants() const { return tenants_.size(); }
  double half_life_s() const { return half_life_s_; }

  /// Snapshot for the scheduler journal; restore() inverts it exactly.
  Bytes encode() const;
  Status restore(const Bytes& snapshot);

 private:
  struct Tenant {
    double scaled = 0;  ///< usage * 2^((charge_time - origin)/half_life)
    double weight = 1.0;
  };

  void maybe_rebase(double now_s);

  double half_life_s_;
  double origin_s_ = 0;  ///< scaled values are relative to this time
  std::map<std::string, Tenant> tenants_;
};

}  // namespace wacs::sched
