#include "sched/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/fault.hpp"

namespace wacs::sched {
namespace {

const log::Logger kLog("sched");

// Journal record tags. Appends happen before the externally visible
// effect (verdict sent, dispatch sent, completion acked), so replay
// rebuilds exactly what any peer could have observed.
constexpr std::uint8_t kRecAccept = 1;
constexpr std::uint8_t kRecDispatch = 2;
constexpr std::uint8_t kRecComplete = 3;
constexpr std::uint8_t kRecRequeue = 4;
constexpr std::uint8_t kRecSnapshot = 5;

telemetry::Gauge& pending_gauge() {
  static telemetry::Gauge& g = telemetry::metrics().gauge("sched.pending");
  return g;
}
telemetry::Gauge& inflight_gauge() {
  static telemetry::Gauge& g = telemetry::metrics().gauge("sched.inflight");
  return g;
}

void put_pending(BufWriter& w, const PendingJob& job) {
  w.u64(job.sched_id);
  w.str(job.tenant);
  w.str(job.task);
  w.i32(job.nprocs);
  w.f64(job.est_runtime_s);
  w.i64(job.enqueued_at);
  w.i32(job.attempts);
}

Result<PendingJob> get_pending(BufReader& r) {
  auto id = r.u64();
  auto tenant = r.str();
  auto task = r.str();
  auto nprocs = r.i32();
  auto est = r.f64();
  auto enq = r.i64();
  auto attempts = r.i32();
  if (!id.ok() || !tenant.ok() || !task.ok() || !nprocs.ok() || !est.ok() ||
      !enq.ok() || !attempts.ok()) {
    return Error(ErrorCode::kProtocolError, "torn pending-job record");
  }
  PendingJob job;
  job.sched_id = *id;
  job.tenant = *tenant;
  job.task = *task;
  job.nprocs = *nprocs;
  job.est_runtime_s = *est;
  job.enqueued_at = *enq;
  job.attempts = *attempts;
  return job;
}

}  // namespace

Scheduler::Scheduler(sim::Host& host, Options options)
    : host_(&host),
      options_(std::move(options)),
      shares_(options_.half_life_s),
      journal_(host, "sched") {}

sim::Time Scheduler::now() const { return host_->network().engine().now(); }
double Scheduler::now_s() const { return sim::to_sec(now()); }

void Scheduler::start() {
  if (started_) return;
  started_ = true;
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "scheduler listen failed");
  listener_ = *listener;
  spawn_serve();
}

void Scheduler::restart() {
  started_ = true;
  pass_active_ = false;
  runners_.clear();
  backoff_.clear();
  queue_ = PendingQueue();
  inflight_.clear();
  grants_.clear();
  index_ = ResourceIndex();
  index_primed_ = false;
  last_refresh_ = 0;
  if (listener_) listener_->close();
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "scheduler re-listen failed");
  listener_ = *listener;
  spawn_serve();
  replay_journal();
  ensure_pass();
}

void Scheduler::spawn_serve() {
  serve_proc_ = host_->network().engine().spawn(
      "sched@" + host_->name(),
      [this](sim::Process& self) { serve(self); });
  register_proc(serve_proc_);
}

void Scheduler::register_proc(sim::Process* proc) {
  if (auto* fault = host_->network().fault(); fault != nullptr) {
    fault->register_host_process(host_->name(), proc);
  }
}

void Scheduler::serve(sim::Process& self) {
  // Pin this generation's listener: restart() closes and replaces the
  // member while the previous serve process may still be parked in
  // accept(), and that accept must unwind against a live object (it
  // returns an error once the listener is closed).
  const auto listener = listener_;
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    auto* handler = host_->network().engine().spawn(
        "sched.conn@" + host_->name(),
        [this, sock = *conn](sim::Process& p) { handle(p, sock); });
    register_proc(handler);
  }
}

void Scheduler::handle(sim::Process& self, sim::SocketPtr conn) {
  while (true) {
    auto frame = conn->recv(self);
    if (!frame.ok()) return;
    auto type = rmf::peek_type(*frame);
    if (!type.ok()) continue;
    switch (*type) {
      case rmf::MsgType::kSchedHello: {
        auto hello = rmf::SchedHello::decode(*frame);
        if (hello.ok()) handle_runner(self, conn, *hello);
        return;  // handle_runner owns the connection until it dies
      }
      case rmf::MsgType::kSchedSubmit: {
        auto submit = rmf::SchedSubmit::decode(*frame);
        if (!submit.ok()) break;
        if (!conn->send(on_submit(*submit).encode()).ok()) return;
        break;
      }
      case rmf::MsgType::kAllocRequest: {
        auto req = rmf::AllocRequest::decode(*frame);
        if (req.ok()) proxy_alloc(self, *conn, *req);
        break;
      }
      case rmf::MsgType::kRelease: {
        auto rel = rmf::Release::decode(*frame);
        if (rel.ok()) proxy_release(self, *rel);
        break;
      }
      default:
        break;  // not addressed to the scheduler; drop
    }
  }
}

// ------------------------------------------------------------- admission

rmf::SchedSubmitReply Scheduler::on_submit(const rmf::SchedSubmit& submit) {
  rmf::SchedSubmitReply reply;
  reply.verdicts.reserve(submit.jobs.size());
  std::vector<PendingJob> accepted;
  const sim::Time t = now();
  std::size_t tenant_depth = queue_.tenant_depth(submit.tenant);
  std::size_t total = queue_.size();
  for (const rmf::SchedJob& job : submit.jobs) {
    rmf::SchedVerdict v;
    v.client_seq = job.client_seq;
    if (submit.tenant.empty() || job.task.empty() || job.nprocs <= 0 ||
        job.nprocs > options_.max_nprocs || job.est_runtime_s <= 0) {
      v.code = rmf::SchedVerdict::Code::kError;
      v.error = "invalid job";
    } else if (tenant_depth >=
                   static_cast<std::size_t>(options_.max_pending_per_tenant) ||
               total >= options_.max_pending_total) {
      // The retryable shed: queue caps keep one tenant (or a global
      // burst) from wedging everyone; the submitter backs off and
      // retries instead of timing out blind.
      v.code = rmf::SchedVerdict::Code::kBusy;
      v.retry_after_ms = options_.retry_after_ms;
      ++jobs_shed_;
      static telemetry::Counter& shed =
          telemetry::metrics().counter("sched.jobs.shed");
      shed.add();
    } else {
      v.code = rmf::SchedVerdict::Code::kAccepted;
      v.sched_id = next_sched_id_++;
      PendingJob p;
      p.sched_id = v.sched_id;
      p.tenant = submit.tenant;
      p.task = job.task;
      p.nprocs = job.nprocs;
      p.est_runtime_s = job.est_runtime_s;
      p.enqueued_at = t;
      accepted.push_back(std::move(p));
      ++tenant_depth;
      ++total;
      ++jobs_accepted_;
    }
    reply.verdicts.push_back(std::move(v));
  }
  if (!accepted.empty()) {
    journal_accepts(accepted);  // before the verdicts become visible
    for (PendingJob& job : accepted) queue_.push(shares_, std::move(job));
    static telemetry::Counter& c =
        telemetry::metrics().counter("sched.jobs.accepted");
    c.add(static_cast<std::int64_t>(accepted.size()));
    pending_gauge().set(static_cast<std::int64_t>(queue_.size()));
    ensure_pass();
  }
  maybe_snapshot();
  return reply;
}

// ------------------------------------------------------------ runner path

void Scheduler::handle_runner(sim::Process& self, sim::SocketPtr conn,
                              const rmf::SchedHello& hello) {
  runners_[hello.site] = conn;  // latest connection wins
  // A live runner is capacity: if its site is already indexed, keep it
  // from expiring; either way a pass may now be able to dispatch.
  index_.touch_site(hello.site, now() + sim::from_sec(options_.entry_ttl_s));
  ensure_pass();
  while (true) {
    auto frame = conn->recv(self);
    if (!frame.ok()) break;
    auto type = rmf::peek_type(*frame);
    if (!type.ok()) continue;
    if (*type == rmf::MsgType::kSchedComplete) {
      auto batch = rmf::SchedComplete::decode(*frame);
      if (!batch.ok()) continue;
      on_complete(hello.site, *batch);
      if (!conn->send(rmf::SchedCompleteAck{batch->batch_seq}.encode())
               .ok()) {
        break;
      }
    } else if (*type == rmf::MsgType::kSchedDispatchReply) {
      auto reply = rmf::SchedDispatchReply::decode(*frame);
      if (reply.ok()) on_dispatch_reply(hello.site, *reply);
    }
  }
  const auto it = runners_.find(hello.site);
  if (it != runners_.end() && it->second == conn) runners_.erase(it);
}

void Scheduler::on_complete(const std::string& site,
                            const rmf::SchedComplete& batch) {
  std::vector<rmf::SchedComplete::Item> known;
  known.reserve(batch.items.size());
  for (const rmf::SchedComplete::Item& item : batch.items) {
    if (inflight_.count(item.sched_id) != 0) {
      known.push_back(item);
    } else {
      // A resent batch the journal already absorbed: ack without charge.
      ++dup_completions_;
    }
  }
  if (known.empty()) return;
  journal_completes(known);  // journal, then apply, then the caller acks
  static telemetry::Histogram& turnaround =
      telemetry::metrics().histogram("sched.turnaround_ms");
  const sim::Time t = now();
  for (const rmf::SchedComplete::Item& item : known) {
    auto it = inflight_.find(item.sched_id);
    const Inflight rec = std::move(it->second);
    inflight_.erase(it);
    index_.credit_site(rec.site, rec.nprocs);
    if (item.ok) {
      ++jobs_completed_;
      charge(rec.tenant, item.cpu_seconds);
    } else {
      ++jobs_failed_;
    }
    turnaround.observe(sim::to_ms(t - rec.enqueued_at));
  }
  last_done_ = t;
  static telemetry::Counter& c =
      telemetry::metrics().counter("sched.jobs.completed");
  c.add(static_cast<std::int64_t>(known.size()));
  inflight_gauge().set(static_cast<std::int64_t>(inflight_.size()));
  (void)site;
  ensure_pass();
  maybe_snapshot();
}

void Scheduler::on_dispatch_reply(const std::string& site,
                                  const rmf::SchedDispatchReply& reply) {
  if (reply.retry_after_ms > 0) {
    backoff_[site] = now() + sim::from_sec(reply.retry_after_ms / 1000.0);
  }
  std::vector<std::uint64_t> requeued;
  for (std::uint64_t id : reply.rejected) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;  // completed in the meantime
    Inflight rec = std::move(it->second);
    inflight_.erase(it);
    index_.credit_site(rec.site, rec.nprocs);
    if (rec.attempts + 1 >= options_.max_attempts) {
      fail_job(id, rec);
      continue;
    }
    requeued.push_back(id);
    requeue(id, std::move(rec));
  }
  if (!requeued.empty()) journal_requeues(requeued);
  ensure_pass();
}

void Scheduler::requeue(std::uint64_t sched_id, Inflight rec) {
  PendingJob job;
  job.sched_id = sched_id;
  job.tenant = std::move(rec.tenant);
  job.task = std::move(rec.task);
  job.nprocs = rec.nprocs;
  job.est_runtime_s = rec.est_runtime_s;
  job.enqueued_at = rec.enqueued_at;
  job.attempts = rec.attempts + 1;
  ++jobs_requeued_;
  static telemetry::Counter& c =
      telemetry::metrics().counter("sched.jobs.requeued");
  c.add();
  queue_.push_front(shares_, std::move(job));
  pending_gauge().set(static_cast<std::int64_t>(queue_.size()));
  inflight_gauge().set(static_cast<std::int64_t>(inflight_.size()));
}

void Scheduler::fail_job(std::uint64_t sched_id, const Inflight& rec) {
  ++jobs_failed_;
  last_done_ = now();
  kLog.warn("job %llu (%s) failed after %d attempts",
            static_cast<unsigned long long>(sched_id), rec.tenant.c_str(),
            rec.attempts + 1);
  journal_completes({rmf::SchedComplete::Item{sched_id, false, 0}});
}

void Scheduler::charge(const std::string& tenant, double cpu_seconds) {
  shares_.charge(tenant, cpu_seconds, now_s());
  // A charge is the only event that can reorder tenants (decay cannot).
  queue_.rekey(shares_, tenant);
}

std::int64_t Scheduler::top_share_bp() const {
  return static_cast<std::int64_t>(10000.0 * shares_.top_share());
}

// ------------------------------------------------------------- pass loop

void Scheduler::ensure_pass() {
  if (pass_active_ || !started_) return;
  if (queue_.empty() && inflight_.empty()) return;
  pass_active_ = true;
  auto* proc = host_->network().engine().spawn(
      "sched.pass@" + host_->name(), [this](sim::Process& self) {
        struct Flag {
          bool* active;
          ~Flag() { *active = false; }
        } flag{&pass_active_};
        pass_loop(self);
      });
  register_proc(proc);
}

void Scheduler::pass_loop(sim::Process& self) {
  // Parks when the grid goes quiet (no pending, no inflight) so the event
  // queue can drain; on_submit / on_complete re-arm it.
  while (!queue_.empty() || !inflight_.empty()) {
    refresh_index(self);
    sweep_deadlines();
    schedule_pass();
    pending_gauge().set(static_cast<std::int64_t>(queue_.size()));
    inflight_gauge().set(static_cast<std::int64_t>(inflight_.size()));
    self.sleep(options_.pass_interval_s);
  }
}

void Scheduler::refresh_index(sim::Process& self) {
  if (options_.mds.host.empty()) return;
  const sim::Time t = now();
  if (index_primed_ && t - last_refresh_ < sim::from_sec(options_.mds_refresh_s)) {
    return;
  }
  mds::MdsClient client(*host_, options_.mds);
  auto entries =
      client.search(self, "o=grid", mds::Scope::kSubtree, "(cpus=*)(site=*)");
  if (!entries.ok()) return;  // directory down; keep the stale index
  ++mds_refreshes_;
  last_refresh_ = t;
  // An empty directory is not a primed one: at boot the runners' first
  // registrations may still be in flight, and backing off for a full
  // refresh period would stall the first dispatch wave. Keep searching
  // every pass until something shows up.
  if (entries->empty() && index_.hosts() == 0) return;
  for (const mds::Entry& entry : *entries) {
    index_.upsert(entry, t, options_.entry_ttl_s);
  }
  for (const auto& [site, _] : runners_) {
    index_.touch_site(site, t + sim::from_sec(options_.entry_ttl_s));
  }
  index_.expire(t);
  if (reapply_debits_) {
    reapply_debits_ = false;
    for (const auto& [_, rec] : inflight_) {
      index_.debit_site(rec.site, rec.nprocs);
    }
  }
  index_primed_ = true;
}

void Scheduler::sweep_deadlines() {
  const sim::Time t = now();
  std::vector<std::uint64_t> overdue;
  for (const auto& [id, rec] : inflight_) {
    const sim::Time deadline =
        rec.dispatched_at +
        sim::from_sec(rec.est_runtime_s + options_.dispatch_grace_s);
    if (deadline < t) overdue.push_back(id);
  }
  if (overdue.empty()) return;
  std::vector<std::uint64_t> requeued;
  for (std::uint64_t id : overdue) {
    auto it = inflight_.find(id);
    Inflight rec = std::move(it->second);
    inflight_.erase(it);
    index_.credit_site(rec.site, rec.nprocs);
    if (rec.attempts + 1 >= options_.max_attempts) {
      fail_job(id, rec);
      continue;
    }
    requeued.push_back(id);
    requeue(id, std::move(rec));
  }
  if (!requeued.empty()) {
    kLog.warn("%s: deadline sweep requeued %zu lost dispatches",
              host_->name().c_str(), requeued.size());
    journal_requeues(requeued);
  }
}

void Scheduler::schedule_pass() {
  const sim::Time t = now();
  // Sites the matcher must skip this pass: backed off (runner shed) or
  // indexed without a live runner connection.
  std::map<std::string, sim::Time> skip = backoff_;
  for (const auto& [site, _] : index_.site_records()) {
    if (runners_.count(site) == 0) skip[site] = t + 1;
  }

  struct Batch {
    std::vector<rmf::SchedDispatch::Item> items;
    std::vector<std::uint64_t> ids;
  };
  std::map<std::string, Batch> batches;
  static telemetry::Histogram& wait_ms =
      telemetry::metrics().histogram("sched.queue_wait_ms");

  auto dispatch_to = [&](const std::string& site, PendingJob job) {
    index_.debit_site(site, job.nprocs);
    Inflight rec;
    rec.tenant = job.tenant;
    rec.site = site;
    rec.task = job.task;
    rec.nprocs = job.nprocs;
    rec.est_runtime_s = job.est_runtime_s;
    rec.enqueued_at = job.enqueued_at;
    rec.dispatched_at = t;
    rec.attempts = job.attempts;
    wait_ms.observe(sim::to_ms(t - job.enqueued_at));
    Batch& batch = batches[site];
    batch.items.push_back(rmf::SchedDispatch::Item{
        job.sched_id, std::move(job.tenant), std::move(job.task), job.nprocs,
        job.est_runtime_s});
    batch.ids.push_back(job.sched_id);
    inflight_.emplace(job.sched_id, std::move(rec));
  };

  // In-order phase: drain heads while they fit somewhere.
  while (const PendingJob* head = queue_.head()) {
    const std::string site = index_.match_site(head->nprocs, skip, t);
    if (site.empty()) break;
    dispatch_to(site, queue_.pop_head());
  }

  // EASY backfill: the head (if any) does not fit anywhere right now.
  // Compute its earliest reservation from in-flight completion estimates,
  // then let bounded later candidates through iff they cannot delay it.
  if (const PendingJob* head = queue_.head();
      head != nullptr && options_.backfill_scan > 0) {
    // Earliest time some site frees enough CPUs for the head: walk each
    // candidate site's in-flight completions in finish order.
    sim::Time shadow = 0;  // 0 = no site can ever fit the head
    std::string shadow_site;
    int shadow_extra = 0;
    for (const auto& [site, rec] : index_.site_records()) {
      if (runners_.count(site) == 0) continue;
      if (rec.cpus < head->nprocs) continue;
      std::vector<std::pair<sim::Time, int>> finishes;  // (when, cpus)
      for (const auto& [_, inflight] : inflight_) {
        if (inflight.site != site) continue;
        finishes.emplace_back(
            inflight.dispatched_at + sim::from_sec(inflight.est_runtime_s),
            inflight.nprocs);
      }
      std::sort(finishes.begin(), finishes.end());
      int free = rec.cpus - rec.inflight;
      sim::Time when = t;
      std::size_t i = 0;
      while (free < head->nprocs && i < finishes.size()) {
        when = std::max(when, finishes[i].first);
        free += finishes[i].second;
        ++i;
      }
      if (free < head->nprocs) continue;  // even a full drain can't fit it
      if (shadow_site.empty() || when < shadow) {
        shadow = when;
        shadow_site = site;
        shadow_extra = free - head->nprocs;
      }
    }

    struct Candidate {
      std::string tenant;
      int nprocs;
      double est_runtime_s;
    };
    std::vector<Candidate> cands;
    for (const PendingJob* j :
         queue_.backfill_candidates(options_.backfill_scan)) {
      cands.push_back(Candidate{j->tenant, j->nprocs, j->est_runtime_s});
    }
    for (const Candidate& cand : cands) {
      const std::string site = index_.match_site(cand.nprocs, skip, t);
      if (site.empty()) continue;
      // The EASY condition: never delay the head's reservation. Safe when
      // the candidate runs on another site, finishes before the shadow
      // time, or fits inside the reserved site's spare CPUs at that time.
      const bool safe =
          shadow_site.empty() || site != shadow_site ||
          t + sim::from_sec(cand.est_runtime_s) <= shadow ||
          cand.nprocs <= shadow_extra;
      if (!safe) continue;
      if (site == shadow_site && t + sim::from_sec(cand.est_runtime_s) > shadow) {
        shadow_extra -= cand.nprocs;
      }
      dispatch_to(site, queue_.pop_front_of(cand.tenant));
      ++jobs_backfilled_;
    }
  }

  for (auto& [site, batch] : batches) {
    journal_dispatch(site, batch.ids);  // before the dispatch is visible
    ++dispatch_batches_;
    const auto it = runners_.find(site);
    if (it != runners_.end()) {
      (void)it->second->send(
          rmf::SchedDispatch{std::move(batch.items)}.encode());
    }
    // A send into a just-died connection is recovered by the deadline
    // sweep, exactly like a runner crash after receipt.
  }
  if (!batches.empty()) {
    static telemetry::Counter& c =
        telemetry::metrics().counter("sched.jobs.dispatched");
    std::int64_t n = 0;
    for (const auto& [_, batch] : batches) {
      n += static_cast<std::int64_t>(batch.ids.size());
    }
    c.add(n);
    maybe_snapshot();
  }
}

// ------------------------------------------------------------- grid path

void Scheduler::proxy_alloc(sim::Process& self, sim::SimSocket& conn,
                            const rmf::AllocRequest& req) {
  refresh_index(self);
  const std::string tenant = req.tenant.empty() ? "grid" : req.tenant;
  rmf::AllocRequest fwd = req;
  fwd.tenant = tenant;
  fwd.preferred = index_.match_hosts(req.nprocs, req.exclude);

  auto fail = [&](const std::string& why) {
    rmf::AllocReply reply;
    reply.ok = false;
    reply.error = why;
    (void)conn.send(reply.encode());
  };
  if (options_.allocator.host.empty()) return fail("no allocator configured");
  auto alloc = host_->stack().connect(self, options_.allocator);
  if (!alloc.ok()) return fail("allocator unreachable");
  if (!(*alloc)->send(fwd.encode()).ok()) return fail("allocator send failed");
  auto frame = (*alloc)->recv(self);
  (*alloc)->close();
  if (!frame.ok()) return fail("allocator reply lost");
  auto reply = rmf::AllocReply::decode(*frame);
  if (!reply.ok()) return fail("allocator reply malformed");
  if (reply->ok) {
    index_.debit_hosts(reply->placements);
    grants_[reply->grant_id] =
        GrantRec{tenant, req.nprocs, reply->placements, now()};
  }
  (void)conn.send(*frame);  // forward the allocator's reply verbatim
}

void Scheduler::proxy_release(sim::Process& self, const rmf::Release& rel) {
  if (!options_.allocator.host.empty()) {
    auto alloc = host_->stack().connect(self, options_.allocator);
    if (alloc.ok()) {
      (void)(*alloc)->send(rel.encode());
      (*alloc)->close();
    }
  }
  const double t = now_s();
  for (std::uint64_t id : rel.grant_ids) {
    const auto it = grants_.find(id);
    if (it == grants_.end()) continue;
    const GrantRec& g = it->second;
    // Fair-share charge for the allocation's whole lifetime: width ×
    // wall duration, the multi-tenant analogue of cpu_seconds.
    charge(g.tenant, (t - sim::to_sec(g.granted_at)) * g.nprocs);
    index_.credit_hosts(g.placements);
    grants_.erase(it);
  }
}

// --------------------------------------------------------------- journal

void Scheduler::journal_accepts(const std::vector<PendingJob>& jobs) {
  BufWriter w;
  w.u8(kRecAccept);
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const PendingJob& job : jobs) put_pending(w, job);
  journal_.append(std::move(w).take());
}

void Scheduler::journal_dispatch(const std::string& site,
                                 const std::vector<std::uint64_t>& ids) {
  BufWriter w;
  w.u8(kRecDispatch);
  w.str(site);
  w.i64(now());
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (std::uint64_t id : ids) w.u64(id);
  journal_.append(std::move(w).take());
}

void Scheduler::journal_completes(
    const std::vector<rmf::SchedComplete::Item>& items) {
  BufWriter w;
  w.u8(kRecComplete);
  w.i64(now());
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const rmf::SchedComplete::Item& item : items) {
    w.u64(item.sched_id);
    w.boolean(item.ok);
    w.f64(item.cpu_seconds);
  }
  journal_.append(std::move(w).take());
}

void Scheduler::journal_requeues(const std::vector<std::uint64_t>& ids) {
  BufWriter w;
  w.u8(kRecRequeue);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (std::uint64_t id : ids) w.u64(id);
  journal_.append(std::move(w).take());
}

void Scheduler::maybe_snapshot() {
  if (options_.snapshot_every == 0) return;
  if (journal_.appended() - snapshot_mark_ < options_.snapshot_every) return;
  write_snapshot();
}

void Scheduler::write_snapshot() {
  // truncate + append runs inside one engine slice with no blocking call
  // between them, so no crash event can interleave — the journal is never
  // observably empty.
  BufWriter w;
  w.u8(kRecSnapshot);
  w.u64(next_sched_id_);
  w.blob(shares_.encode());
  const auto pending = queue_.all_jobs();
  w.u32(static_cast<std::uint32_t>(pending.size()));
  for (const PendingJob* job : pending) put_pending(w, *job);
  w.u32(static_cast<std::uint32_t>(inflight_.size()));
  for (const auto& [id, rec] : inflight_) {
    w.u64(id);
    w.str(rec.tenant);
    w.str(rec.site);
    w.str(rec.task);
    w.i32(rec.nprocs);
    w.f64(rec.est_runtime_s);
    w.i64(rec.enqueued_at);
    w.i64(rec.dispatched_at);
    w.i32(rec.attempts);
  }
  journal_.truncate();
  journal_.append(std::move(w).take());
  snapshot_mark_ = journal_.appended();
}

void Scheduler::replay_journal() {
  const auto records = journal_.records();
  if (records.empty()) return;
  ++journal_replays_;
  shares_ = FairShare(options_.half_life_s);
  // Tenant of each live job, for front-of-tenant pops during replay.
  std::map<std::uint64_t, std::string> tenants;

  for (const Bytes& record : records) {
    BufReader r(record);
    auto tag = r.u8();
    if (!tag.ok()) break;
    switch (*tag) {
      case kRecSnapshot: {
        auto next_id = r.u64();
        auto shares_blob = r.blob();
        if (!next_id.ok() || !shares_blob.ok()) break;
        next_sched_id_ = *next_id;
        (void)shares_.restore(*shares_blob);
        queue_ = PendingQueue();
        inflight_.clear();
        tenants.clear();
        auto np = r.u32();
        if (!np.ok()) break;
        for (std::uint32_t i = 0; i < *np; ++i) {
          auto job = get_pending(r);
          if (!job.ok()) break;
          tenants[job->sched_id] = job->tenant;
          queue_.push(shares_, std::move(*job));
        }
        auto ni = r.u32();
        if (!ni.ok()) break;
        for (std::uint32_t i = 0; i < *ni; ++i) {
          auto id = r.u64();
          auto tenant = r.str();
          auto site = r.str();
          auto task = r.str();
          auto nprocs = r.i32();
          auto est = r.f64();
          auto enq = r.i64();
          auto disp = r.i64();
          auto attempts = r.i32();
          if (!id.ok() || !tenant.ok() || !site.ok() || !task.ok() ||
              !nprocs.ok() || !est.ok() || !enq.ok() || !disp.ok() ||
              !attempts.ok()) {
            break;
          }
          Inflight rec;
          rec.tenant = *tenant;
          rec.site = *site;
          rec.task = *task;
          rec.nprocs = *nprocs;
          rec.est_runtime_s = *est;
          rec.enqueued_at = *enq;
          rec.dispatched_at = *disp;
          rec.attempts = *attempts;
          tenants[*id] = rec.tenant;
          inflight_.emplace(*id, std::move(rec));
        }
        break;
      }
      case kRecAccept: {
        auto n = r.u32();
        if (!n.ok()) break;
        for (std::uint32_t i = 0; i < *n; ++i) {
          auto job = get_pending(r);
          if (!job.ok()) break;
          if (job->sched_id >= next_sched_id_) {
            next_sched_id_ = job->sched_id + 1;
          }
          tenants[job->sched_id] = job->tenant;
          queue_.push(shares_, std::move(*job));
        }
        break;
      }
      case kRecDispatch: {
        auto site = r.str();
        auto at = r.i64();
        auto n = r.u32();
        if (!site.ok() || !at.ok() || !n.ok()) break;
        for (std::uint32_t i = 0; i < *n; ++i) {
          auto id = r.u64();
          if (!id.ok()) break;
          const auto tenant_it = tenants.find(*id);
          if (tenant_it == tenants.end()) continue;
          // One pass's dispatch records are grouped per site, so jobs of
          // the same tenant can be journaled out of pop order — remove by
          // id rather than assuming the front.
          PendingJob job = queue_.take(tenant_it->second, *id);
          Inflight rec;
          rec.tenant = job.tenant;
          rec.site = *site;
          rec.task = job.task;
          rec.nprocs = job.nprocs;
          rec.est_runtime_s = job.est_runtime_s;
          rec.enqueued_at = job.enqueued_at;
          rec.dispatched_at = *at;
          rec.attempts = job.attempts;
          inflight_.emplace(*id, std::move(rec));
        }
        break;
      }
      case kRecComplete: {
        auto at = r.i64();
        auto n = r.u32();
        if (!at.ok() || !n.ok()) break;
        for (std::uint32_t i = 0; i < *n; ++i) {
          auto id = r.u64();
          auto ok = r.u8();
          auto cpu_s = r.f64();
          if (!id.ok() || !ok.ok() || !cpu_s.ok()) break;
          auto it = inflight_.find(*id);
          if (it == inflight_.end()) continue;
          if (*ok != 0) {
            shares_.charge(it->second.tenant, *cpu_s, sim::to_sec(*at));
            queue_.rekey(shares_, it->second.tenant);
          }
          tenants.erase(*id);
          inflight_.erase(it);
        }
        break;
      }
      case kRecRequeue: {
        auto n = r.u32();
        if (!n.ok()) break;
        for (std::uint32_t i = 0; i < *n; ++i) {
          auto id = r.u64();
          if (!id.ok()) break;
          auto it = inflight_.find(*id);
          if (it == inflight_.end()) continue;
          Inflight rec = std::move(it->second);
          inflight_.erase(it);
          PendingJob job;
          job.sched_id = *id;
          job.tenant = rec.tenant;
          job.task = rec.task;
          job.nprocs = rec.nprocs;
          job.est_runtime_s = rec.est_runtime_s;
          job.enqueued_at = rec.enqueued_at;
          job.attempts = rec.attempts + 1;
          queue_.push_front(shares_, std::move(job));
        }
        break;
      }
      default:
        break;  // unknown tag from a future version: skip
    }
  }
  reapply_debits_ = !inflight_.empty();
  pending_gauge().set(static_cast<std::int64_t>(queue_.size()));
  inflight_gauge().set(static_cast<std::int64_t>(inflight_.size()));
  kLog.warn("%s: journal replayed: %zu pending, %zu inflight",
            host_->name().c_str(), queue_.size(), inflight_.size());
}

}  // namespace wacs::sched
