#include "sched/fairshare.hpp"

#include <cmath>

namespace wacs::sched {

FairShare::FairShare(double half_life_s) : half_life_s_(half_life_s) {
  WACS_CHECK(half_life_s_ > 0);
}

void FairShare::set_weight(const std::string& tenant, double weight) {
  WACS_CHECK(weight > 0);
  tenants_[tenant].weight = weight;
}

void FairShare::charge(const std::string& tenant, double cpu_seconds,
                       double now_s) {
  if (cpu_seconds <= 0) return;
  maybe_rebase(now_s);
  tenants_[tenant].scaled +=
      cpu_seconds * std::exp2((now_s - origin_s_) / half_life_s_);
}

double FairShare::priority_key(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  return it->second.scaled / it->second.weight;
}

double FairShare::usage(const std::string& tenant, double now_s) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  return it->second.scaled * std::exp2(-(now_s - origin_s_) / half_life_s_);
}

double FairShare::top_share() const {
  double top = 0;
  double total = 0;
  for (const auto& [_, t] : tenants_) {
    total += t.scaled;
    if (t.scaled > top) top = t.scaled;
  }
  return total > 0 ? top / total : 0;
}

void FairShare::maybe_rebase(double now_s) {
  // 2^32 of headroom keeps every charge's scale factor comfortably inside
  // double range while rebasing rarely (once per 32 half-lives).
  if ((now_s - origin_s_) / half_life_s_ < 32.0) return;
  const double factor = std::exp2(-(now_s - origin_s_) / half_life_s_);
  for (auto& [_, t] : tenants_) t.scaled *= factor;
  origin_s_ = now_s;
}

Bytes FairShare::encode() const {
  BufWriter w;
  w.f64(half_life_s_);
  w.f64(origin_s_);
  w.u32(static_cast<std::uint32_t>(tenants_.size()));
  for (const auto& [name, t] : tenants_) {
    w.str(name);
    w.f64(t.scaled);
    w.f64(t.weight);
  }
  return std::move(w).take();
}

Status FairShare::restore(const Bytes& snapshot) {
  BufReader r(snapshot);
  auto half = r.f64();
  auto origin = r.f64();
  auto n = r.u32();
  if (!half.ok() || !origin.ok() || !n.ok()) {
    return Status(ErrorCode::kProtocolError, "torn fair-share snapshot");
  }
  std::map<std::string, Tenant> tenants;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto name = r.str();
    auto scaled = r.f64();
    auto weight = r.f64();
    if (!name.ok() || !scaled.ok() || !weight.ok()) {
      return Status(ErrorCode::kProtocolError, "torn fair-share snapshot");
    }
    tenants[std::string(*name)] = Tenant{*scaled, *weight};
  }
  half_life_s_ = *half;
  origin_s_ = *origin;
  tenants_ = std::move(tenants);
  return Status();
}

}  // namespace wacs::sched
