#include "sched/runner.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/fault.hpp"

namespace wacs::sched {
namespace {

const log::Logger kLog("sched.runner");

}  // namespace

SiteRunner::SiteRunner(sim::Host& host, Options options)
    : host_(&host), options_(std::move(options)) {
  for (const HostSlot& slot : options_.hosts) capacity_ += slot.cpus;
  WACS_CHECK(capacity_ > 0);
}

void SiteRunner::start() {
  if (conn_active_) return;
  conn_active_ = true;
  auto* proc = host_->network().engine().spawn(
      "sched.runner@" + options_.site, [this](sim::Process& self) {
        struct Flag {
          bool* active;
          ~Flag() { *active = false; }
        } flag{&conn_active_};
        conn_loop(self);
      });
  register_proc(proc);
  ensure_publisher();
}

void SiteRunner::restart() {
  // Everything volatile died with the host: running jobs (their timers
  // no-op via the epoch guard), buffered and unacked completions (the
  // scheduler's deadline sweep requeues what it never saw finish).
  ++epoch_;
  running_.clear();
  inflight_cpus_ = 0;
  done_buffer_.clear();
  unacked_.clear();
  conn_.reset();
  conn_active_ = false;
  flusher_active_ = false;
  publisher_active_ = false;
  start();
}

void SiteRunner::conn_loop(sim::Process& self) {
  while (true) {
    auto sock = host_->stack().connect(self, options_.scheduler);
    if (!sock.ok()) {
      kLog.debug("%s: scheduler dial failed: %s", options_.site.c_str(),
                 sock.error().to_string().c_str());
      self.sleep(options_.reconnect_backoff_s);
      continue;
    }
    conn_ = *sock;
    rmf::SchedHello hello{options_.site, Contact{host_->name(), 0}};
    if (!conn_->send(hello.encode()).ok()) {
      conn_.reset();
      self.sleep(options_.reconnect_backoff_s);
      continue;
    }
    // Unacked completion batches are resent verbatim on every reconnect;
    // the scheduler dedups on sched_id, so this is at-least-once wire,
    // exactly-once accounting.
    for (const rmf::SchedComplete& batch : unacked_) {
      ++batches_resent_;
      (void)conn_->send(batch.encode());
    }
    while (true) {
      auto frame = conn_->recv(self);
      if (!frame.ok()) break;
      auto type = rmf::peek_type(*frame);
      if (!type.ok()) continue;
      if (*type == rmf::MsgType::kSchedDispatch) {
        auto batch = rmf::SchedDispatch::decode(*frame);
        if (batch.ok()) handle_dispatch(*batch);
      } else if (*type == rmf::MsgType::kSchedCompleteAck) {
        auto ack = rmf::SchedCompleteAck::decode(*frame);
        if (ack.ok()) {
          while (!unacked_.empty() &&
                 unacked_.front().batch_seq <= ack->batch_seq) {
            unacked_.pop_front();
          }
        }
      }
    }
    conn_.reset();
    self.sleep(options_.reconnect_backoff_s);
  }
}

void SiteRunner::handle_dispatch(const rmf::SchedDispatch& batch) {
  sim::Engine& engine = host_->network().engine();
  std::vector<std::uint64_t> rejected;
  for (const rmf::SchedDispatch::Item& item : batch.items) {
    if (item.nprocs > capacity_ - inflight_cpus_) {
      rejected.push_back(item.sched_id);
      ++jobs_shed_;
      continue;
    }
    inflight_cpus_ += item.nprocs;
    running_[item.sched_id] =
        Running{item.tenant, item.nprocs, item.est_runtime_s};
    ++jobs_started_;
    engine.after(item.est_runtime_s,
                 [this, id = item.sched_id, epoch = epoch_] {
                   finish_job(id, epoch);
                 });
  }
  if (!rejected.empty() && conn_ != nullptr) {
    (void)conn_->send(
        rmf::SchedDispatchReply{options_.shed_retry_after_ms,
                                std::move(rejected)}
            .encode());
  }
  ensure_publisher();  // load changed; keep the directory presence fresh
  ensure_flusher();
}

void SiteRunner::finish_job(std::uint64_t sched_id, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // job died with a host crash
  if (auto* fault = host_->network().fault();
      fault != nullptr && fault->host_down(*host_)) {
    return;  // host is down right now; restart() will bump the epoch
  }
  const auto it = running_.find(sched_id);
  if (it == running_.end()) return;
  const Running job = it->second;
  running_.erase(it);
  inflight_cpus_ -= job.nprocs;
  ++jobs_completed_;
  done_buffer_.push_back(rmf::SchedComplete::Item{
      sched_id, true, job.nprocs * job.est_runtime_s});
  ensure_flusher();
}

void SiteRunner::ensure_flusher() {
  if (flusher_active_) return;
  flusher_active_ = true;
  auto* proc = host_->network().engine().spawn(
      "sched.flush@" + options_.site, [this](sim::Process& self) {
        struct Flag {
          bool* active;
          ~Flag() { *active = false; }
        } flag{&flusher_active_};
        // Lives for the whole busy epoch: exiting as soon as the buffers
        // drain would mean a fresh process per completion burst, which at
        // bench scale exhausts OS threads (finished sim processes are only
        // reaped at engine shutdown). Parks when the site goes fully idle;
        // handle_dispatch and finish_job re-arm it.
        while (busy()) {
          self.sleep(options_.flush_interval_s);
          flush_completions();
        }
      });
  register_proc(proc);
}

void SiteRunner::flush_completions() {
  if (!done_buffer_.empty()) {
    rmf::SchedComplete batch;
    batch.batch_seq = next_batch_seq_++;
    batch.items = std::move(done_buffer_);
    done_buffer_.clear();
    unacked_.push_back(std::move(batch));
    if (conn_ != nullptr) (void)conn_->send(unacked_.back().encode());
  } else if (!unacked_.empty() && conn_ != nullptr) {
    // Ack outstanding with a live connection: nudge the oldest batch (a
    // batch sent in the instant before a scheduler crash needs this).
    ++batches_resent_;
    (void)conn_->send(unacked_.front().encode());
  }
}

void SiteRunner::publish_entries(sim::Process& self) {
  if (options_.mds.host.empty()) return;
  mds::MdsClient client(*host_, options_.mds);
  for (const HostSlot& slot : options_.hosts) {
    mds::Entry entry;
    entry.dn = "o=grid/ou=" + options_.site + "/host=" + slot.host;
    entry.attributes["host"] = slot.host;
    entry.attributes["site"] = options_.site;
    entry.attributes["cpus"] = std::to_string(slot.cpus);
    entry.attributes["speed"] = std::to_string(slot.speed);
    entry.attributes["runner"] = host_->name();
    (void)client.publish(self, std::move(entry), options_.publish_ttl_s);
  }
}

void SiteRunner::ensure_publisher() {
  if (publisher_active_) return;
  publisher_active_ = true;
  auto* proc = host_->network().engine().spawn(
      "sched.publish@" + options_.site, [this](sim::Process& self) {
        struct Flag {
          bool* active;
          ~Flag() { *active = false; }
        } flag{&publisher_active_};
        // Publish at least once (discovery), then re-register at half the
        // TTL while the site has work; parks when idle so the event queue
        // can drain. The scheduler keeps connected sites alive past the
        // directory TTL (ResourceIndex::touch_site), so parking is safe.
        publish_entries(self);
        while (busy()) {
          self.sleep(options_.publish_ttl_s / 2);
          publish_entries(self);
        }
      });
  register_proc(proc);
}

void SiteRunner::register_proc(sim::Process* proc) {
  if (auto* fault = host_->network().fault(); fault != nullptr) {
    fault->register_host_process(host_->name(), proc);
  }
}

bool SiteRunner::busy() const {
  return inflight_cpus_ > 0 || !done_buffer_.empty() || !unacked_.empty();
}

}  // namespace wacs::sched
