// Priority-indexed pending queue for the multi-tenant scheduler.
//
// Jobs are FIFO within a tenant; tenants are ordered by their fair-share
// priority key (lower = sooner). The cross-tenant order lives in an
// incremental index — a set of (key, tenant) pairs covering exactly the
// tenants with pending work — so head() is O(log T) rather than a scan of
// 10k tenants per pass. The index is only re-keyed when a tenant's key
// actually changes (a fair-share charge; decay alone never reorders, see
// fairshare.hpp), which the scheduler signals via rekey().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "simnet/time.hpp"

namespace wacs::sched {

class FairShare;

/// One accepted, not-yet-dispatched job.
struct PendingJob {
  std::uint64_t sched_id = 0;
  std::string tenant;
  std::string task;
  int nprocs = 1;
  double est_runtime_s = 1.0;
  sim::Time enqueued_at = 0;
  int attempts = 0;  ///< dispatch attempts so far (requeues increment)
};

class PendingQueue {
 public:
  /// Appends to the tenant's FIFO (new submission).
  void push(const FairShare& shares, PendingJob job);
  /// Prepends (requeue after a shed or a lost dispatch); keeps FIFO order
  /// for the tenant's other jobs.
  void push_front(const FairShare& shares, PendingJob job);

  /// Front job of the highest-priority tenant; nullptr when empty. The
  /// pointer is invalidated by any mutation.
  const PendingJob* head() const;
  /// Removes and returns head(). Precondition: !empty().
  PendingJob pop_head();

  /// Front jobs of up to `limit` tenants in priority order, skipping the
  /// head tenant (backfill candidates; one candidate per tenant keeps the
  /// scan bounded and intra-tenant FIFO intact).
  std::vector<const PendingJob*> backfill_candidates(std::size_t limit) const;
  /// Removes the front job of `tenant` (a successful backfill dispatch).
  PendingJob pop_front_of(const std::string& tenant);
  /// Removes `tenant`'s job with this id wherever it sits in the FIFO
  /// (journal replay: one pass's dispatch records are grouped per site,
  /// so same-tenant jobs can be journaled out of pop order).
  PendingJob take(const std::string& tenant, std::uint64_t sched_id);

  /// Re-keys `tenant` in the priority index after a fair-share charge.
  void rekey(const FairShare& shares, const std::string& tenant);

  /// Every pending job, tenant-sorted, FIFO within tenant (snapshots).
  std::vector<const PendingJob*> all_jobs() const;

  bool empty() const { return total_ == 0; }
  std::size_t size() const { return total_; }
  std::size_t tenant_depth(const std::string& tenant) const;
  std::size_t tenants_waiting() const { return index_.size(); }

 private:
  void index_insert(const FairShare& shares, const std::string& tenant);
  void index_erase(const std::string& tenant);

  std::map<std::string, std::deque<PendingJob>> by_tenant_;
  /// (priority key, tenant) for every tenant with a non-empty deque.
  std::set<std::pair<double, std::string>> index_;
  /// Key each tenant was indexed under (erase needs the exact pair).
  std::map<std::string, double> indexed_key_;
  std::size_t total_ = 0;
};

}  // namespace wacs::sched
