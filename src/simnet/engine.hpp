// Discrete-event simulation engine with cooperative processes.
//
// The engine owns a time-ordered event queue. Simulated daemons (proxy
// servers, Q servers, MPI ranks, ...) are Processes: each runs on its own
// OS thread, but exactly one thread — either the engine or a single process —
// executes at any instant, handing control back and forth through binary
// semaphores. This gives processes natural blocking semantics (recv(),
// accept(), sleep()) without callback inversion, while keeping the
// simulation fully deterministic: ties in the event queue break by insertion
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "prof/prof.hpp"
#include "simnet/time.hpp"

namespace wacs::sim {

class Engine;

/// Thrown inside a process blocked on a primitive when the engine shuts
/// down; unwinds the process stack so its thread can be joined. Process
/// bodies do not normally catch it.
struct ShutdownError {};

/// Thrown inside a process that was killed by the fault injector (host
/// crash, process kill). Unwinds the stack so RAII cleanup (socket
/// destructors emitting RSTs, CPU-slot guards) runs; bodies do not catch it.
struct KillError {};

/// A simulated sequential process. Created via Engine::spawn(); the body
/// runs on a dedicated thread and may call the blocking operations below.
class Process {
 public:
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() const { return engine_; }

  /// Advances this process's virtual time by `seconds`.
  void sleep(double seconds);
  void sleep_until(Time t);

  /// Cede control so other events at the current timestamp can run.
  void yield();

  /// Blocks until another actor calls wake(). Used by synchronization
  /// primitives (channels, sockets); application code normally uses those
  /// instead. Throws ShutdownError if the engine is shutting down.
  void suspend();

  /// Makes a suspended process runnable at the current simulation time.
  /// No-op if the process is not currently suspended (so a notify racing
  /// with a timeout is harmless).
  ///
  /// Calling wake() from another process's body executes the woken process
  /// *nested* inside the caller until it blocks again. Synchronization
  /// primitives avoid that by deferring through the event queue:
  /// `engine().at(engine().now(), [p]{ p->wake(); })`.
  void wake();

  bool finished() const { return state_ == State::kFinished; }

  /// True once kill() has been requested; the process unwinds via KillError
  /// at its next blocking point (or immediately if it was blocked).
  bool killed() const { return killed_; }

  /// Asynchronously terminates this process: its next (or current) blocking
  /// call throws KillError, unwinding the stack so destructors run. Must be
  /// called from the engine context (an event handler) or another process —
  /// never from the victim's own body. Idempotent; a no-op on finished
  /// processes.
  void kill();

 private:
  friend class Engine;

  enum class State { kCreated, kRunnable, kRunning, kWaiting, kFinished };

  Process(Engine& engine, std::string name,
          std::function<void(Process&)> body);

  void thread_main();
  void switch_to_engine();   // called on process thread
  void run_slice();          // called on engine thread: give process the token

  Engine& engine_;
  std::string name_;
  std::function<void(Process&)> body_;
  State state_ = State::kCreated;
  bool killed_ = false;
  std::binary_semaphore proc_token_{0};
  std::binary_semaphore engine_token_{0};
  std::thread thread_;
#if WACS_PROF
  // Cached slice histogram so profiled handoffs skip the name lookup;
  // EngineProfile::clear() zeroes slots in place, keeping this valid.
  prof::Log2Hist* prof_slice_ = nullptr;
#endif
};

/// The event-driven simulation core.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void at(Time t, std::function<void()> fn) {
    at(t, "event", std::move(fn));
  }
  /// Schedules `fn` at `t` with a host-profiling label. `label` must have
  /// static storage duration ("tcp.deliver", "proc.sleep", ...); it names
  /// the per-event-type cost bucket in the host-time profile and costs
  /// nothing when profiling is compiled out or disabled.
  void at(Time t, const char* label, std::function<void()> fn);
  /// Schedules `fn` after `seconds` of virtual time.
  void after(double seconds, std::function<void()> fn) {
    at(now_ + from_sec(seconds), std::move(fn));
  }

  /// Creates a process whose body starts at the current simulation time.
  /// The body receives its own Process handle for blocking calls. The
  /// returned pointer stays valid for the engine's lifetime.
  Process* spawn(std::string name, std::function<void(Process&)> body);

  /// Convenience overload for bodies that capture their handle externally.
  Process* spawn(std::string name, std::function<void()> body) {
    return spawn(std::move(name),
                 [body = std::move(body)](Process&) { body(); });
  }

  /// Runs events until the queue drains or stop() is called. Processes that
  /// are still blocked when the queue drains remain suspended (they are
  /// unwound at shutdown); this is normal for daemon processes.
  void run();

  /// Runs until the queue drains or the clock would pass `deadline`.
  void run_until(Time deadline);

  void stop() { stopped_ = true; }

  bool shutting_down() const { return shutting_down_; }

  /// The process whose slice is executing right now, or nullptr when the
  /// engine itself (an event handler) is running. Lets RAII teardown code
  /// distinguish a kill-unwind (abort sockets) from an orderly drop.
  Process* current() const { return current_; }

  /// Number of events executed so far (for tests and perf sanity checks).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Host-time profile of this engine's dispatch loop (lazily created).
  /// Advisory only: it accumulates wall-clock nanoseconds and never feeds
  /// back into virtual time, so same-seed runs stay byte-identical.
  prof::EngineProfile& profile();

  /// Names of processes still blocked (waiting or never scheduled). After
  /// run() drains, daemons are expected here — anything else is a deadlock
  /// diagnostic.
  std::vector<std::string> blocked_process_names() const;

  /// Unwinds and joins every process. Called by the destructor; may be
  /// called earlier to assert clean teardown in tests.
  void shutdown();

 private:
  friend class Process;

  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
#if WACS_PROF
    const char* label;  // static-storage event-type name for host profiling
#endif
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void dispatch_next();

  Time now_ = 0;
  Process* current_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stopped_ = false;
  bool shutting_down_ = false;
  bool running_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  telemetry::Counter& events_metric_;
  telemetry::Counter& spawns_metric_;
  std::unique_ptr<prof::EngineProfile> prof_;
#if WACS_PROF
  // Cached steady_clock read: the end of event N is the start of event N+1,
  // so the profiled dispatch loop pays one clock read per event, not two.
  // -1 means stale (profiling was off for the previous event).
  std::int64_t prof_last_ns_ = -1;
#endif
};

}  // namespace wacs::sim
