// Durable per-host storage: the simulated machine's local disk.
//
// A DurableStore is a key → bytes map that models what a real daemon gets
// from fsync'd files: writes are synchronous and *survive host crashes*. The
// fault injector kills a crashed host's processes and resets its
// connections, but never touches the store — that asymmetry (volatile
// processes, durable disk) is exactly what the RMF write-ahead journal
// (rmf/journal.hpp) builds its crash recovery on.
//
// Writes are charged zero virtual time: journal I/O is not one of the
// quantities the paper measures, and keeping it free means enabling
// journaling cannot shift the table 2 / table 4 timings. The write counters
// exist so tests and benches can still reason about journal volume.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace wacs::sim {

class DurableStore {
 public:
  /// Creates or replaces `key`.
  void put(const std::string& key, Bytes value) {
    ++writes_;
    bytes_written_ += value.size();
    data_[key] = std::move(value);
  }

  /// Appends raw bytes to `key`, creating it when absent. Append-only logs
  /// (journals) use this so a record write never rewrites earlier records.
  void append(const std::string& key, const Bytes& data) {
    ++writes_;
    bytes_written_ += data.size();
    Bytes& value = data_[key];
    value.insert(value.end(), data.begin(), data.end());
  }

  /// The stored value, or nullptr when absent. The pointer stays valid until
  /// the next mutation of that key.
  const Bytes* get(const std::string& key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }

  bool erase(const std::string& key) { return data_.erase(key) != 0; }

  /// Keys beginning with `prefix`, in lexicographic (deterministic) order.
  std::vector<std::string> keys(const std::string& prefix = "") const {
    std::vector<std::string> out;
    for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out.push_back(it->first);
    }
    return out;
  }

  std::size_t size() const { return data_.size(); }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::map<std::string, Bytes> data_;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace wacs::sim
