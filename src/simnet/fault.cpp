#include "simnet/fault.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sim {
namespace {
const log::Logger kLog("sim.fault");
}

FaultInjector::FaultInjector(Network& net, std::uint64_t seed)
    : net_(net), rng_(seed) {
  WACS_CHECK_MSG(net_.fault_ == nullptr,
                 "a FaultInjector is already attached to this network");
  net_.fault_ = this;
}

FaultInjector::~FaultInjector() {
  if (net_.fault_ == this) net_.fault_ = nullptr;
}

Link& FaultInjector::link(const std::string& name) {
  auto l = net_.find_link(name);
  WACS_CHECK_MSG(l.ok(), "fault plan names " + name + ": " +
                             l.error().message());
  return **l;
}

// --------------------------------------------------------------- the plan

void FaultInjector::plan_link_flap(const std::string& link_name, Time down_at,
                                   Time up_at) {
  WACS_CHECK_MSG(down_at < up_at, "link flap window must be non-empty");
  link(link_name);  // validate the name at plan time, not mid-run
  net_.engine().at(down_at, [this, link_name] {
    set_link_down(link_name, true);
  });
  net_.engine().at(up_at, [this, link_name] {
    set_link_down(link_name, false);
  });
}

void FaultInjector::plan_link_loss(const std::string& link_name, Time at,
                                   double p) {
  WACS_CHECK_MSG(p >= 0.0 && p <= 1.0, "loss probability out of range");
  link(link_name);
  net_.engine().at(at, [this, link_name, p] { set_link_loss(link_name, p); });
}

void FaultInjector::plan_host_crash(const std::string& host_name, Time at) {
  net_.host(host_name);  // validate
  net_.engine().at(at, [this, host_name] { crash_host_now(host_name); });
}

void FaultInjector::plan_host_restart(const std::string& host_name, Time at) {
  net_.host(host_name);
  net_.engine().at(at, [this, host_name] { restart_host_now(host_name); });
}

void FaultInjector::plan_process_kill(Process* victim, Time at) {
  net_.engine().at(at, [this, victim] {
    kLog.info("killing process %s", victim->name().c_str());
    ++counters_.processes_killed;
    victim->kill();
  });
}

// --------------------------------------------------- immediate transitions

void FaultInjector::set_link_down(const std::string& link_name, bool down) {
  Link* l = &link(link_name);
  if (down) {
    if (!down_links_.insert(l).second) return;  // already down
    ++counters_.link_down_events;
    kLog.info("link %s DOWN at t=%.3fs", link_name.c_str(),
              to_sec(net_.engine().now()));
    // Every established connection routed over the link loses its state:
    // both ends observe kConnectionReset (TCP keepalive / RST semantics
    // collapsed to the instant of the fault so tests stay deterministic).
    reset_connections_if(
        [this, l](const TrackedConn& tc) {
          auto path = net_.route(*tc.a, *tc.b);
          return path.ok() &&
                 std::find(path->begin(), path->end(), l) != path->end();
        },
        "link down");
  } else {
    if (down_links_.erase(l) == 0) return;
    ++counters_.link_up_events;
    kLog.info("link %s UP at t=%.3fs", link_name.c_str(),
              to_sec(net_.engine().now()));
  }
}

void FaultInjector::set_link_loss(const std::string& link_name, double p) {
  Link* l = &link(link_name);
  if (p <= 0.0) {
    loss_.erase(l);
  } else {
    loss_[l] = p;
  }
}

void FaultInjector::crash_host_now(const std::string& host_name) {
  Host& h = net_.host(host_name);
  if (!crashed_hosts_.insert(&h).second) return;
  ++counters_.hosts_crashed;
  crash_times_[host_name] = net_.engine().now();
  kLog.info("host %s CRASH at t=%.3fs", host_name.c_str(),
            to_sec(net_.engine().now()));
  // Kill resident processes first: their unwinding destructors close or
  // reset sockets they own. Then sweep registered connections touching the
  // host so even sockets parked in idle daemons observe the crash.
  auto it = host_processes_.find(host_name);
  if (it != host_processes_.end()) {
    for (Process* p : it->second) {
      if (p->finished() || p->killed()) continue;
      ++counters_.processes_killed;
      p->kill();
    }
  }
  reset_connections_if(
      [&h](const TrackedConn& tc) { return tc.a == &h || tc.b == &h; },
      "host crash");
}

void FaultInjector::restart_host_now(const std::string& host_name) {
  Host& h = net_.host(host_name);
  if (crashed_hosts_.erase(&h) == 0) return;
  ++counters_.hosts_restarted;
  restart_times_[host_name] = net_.engine().now();
  kLog.info("host %s RESTART at t=%.3fs", host_name.c_str(),
            to_sec(net_.engine().now()));
  auto it = restart_hooks_.find(host_name);
  if (it == restart_hooks_.end()) return;
  // Ascending priority, registration order within a priority. Sorted at fire
  // time (restarts are rare; registrations are not) and stably keyed by a
  // registration sequence so the order is deterministic.
  std::vector<RestartHook*> order;
  order.reserve(it->second.size());
  for (auto& hook : it->second) order.push_back(&hook);
  std::sort(order.begin(), order.end(),
            [](const RestartHook* a, const RestartHook* b) {
              return a->priority != b->priority ? a->priority < b->priority
                                                : a->seq < b->seq;
            });
  for (RestartHook* hook : order) hook->fn();
}

// ------------------------------------------------------- transport queries

bool FaultInjector::path_down(const std::vector<Link*>& path) const {
  if (down_links_.empty()) return false;
  for (Link* l : path) {
    if (down_links_.count(l) != 0) return true;
  }
  return false;
}

bool FaultInjector::host_down(const Host& host) const {
  return crashed_hosts_.count(&host) != 0;
}

bool FaultInjector::should_drop(const std::vector<Link*>& path) {
  if (loss_.empty()) return false;
  for (Link* l : path) {
    auto it = loss_.find(l);
    if (it != loss_.end() && rng_.bernoulli(it->second)) {
      ++counters_.messages_dropped;
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- registration

void FaultInjector::register_connection(std::weak_ptr<detail::ConnState> conn,
                                        Host* a, Host* b) {
  // Lazy pruning keeps the registry proportional to live connections.
  std::erase_if(conns_,
                [](const TrackedConn& tc) { return tc.conn.expired(); });
  conns_.push_back(TrackedConn{std::move(conn), a, b});
}

void FaultInjector::register_host_process(const std::string& host_name,
                                          Process* p) {
  host_processes_[host_name].push_back(p);
}

void FaultInjector::on_host_restart(const std::string& host_name,
                                    std::function<void()> callback,
                                    int priority) {
  restart_hooks_[host_name].push_back(
      RestartHook{priority, next_hook_seq_++, std::move(callback)});
}

Time FaultInjector::last_crash_time(const std::string& host_name) const {
  auto it = crash_times_.find(host_name);
  return it == crash_times_.end() ? 0 : it->second;
}

Time FaultInjector::last_restart_time(const std::string& host_name) const {
  auto it = restart_times_.find(host_name);
  return it == restart_times_.end() ? 0 : it->second;
}

// ------------------------------------------------------------------ reset

void FaultInjector::reset_connections_if(
    const std::function<bool(const TrackedConn&)>& pred, const char* reason) {
  for (TrackedConn& tc : conns_) {
    auto conn = tc.conn.lock();
    if (conn == nullptr) continue;
    if (conn->reset[0] && conn->reset[1]) continue;
    if (!pred(tc)) continue;
    reset_conn(*conn, reason);
  }
  std::erase_if(conns_,
                [](const TrackedConn& tc) { return tc.conn.expired(); });
}

void FaultInjector::reset_conn(detail::ConnState& conn, const char* reason) {
  ++counters_.connections_reset;
  for (int side = 0; side < 2; ++side) {
    conn.reset[side] = true;
    conn.readers[side].notify_all();
  }
  (void)reason;
}

}  // namespace wacs::sim
