// RetryPolicy adapter for simulated processes.
//
// common/retry.hpp only computes delays; this header binds it to virtual
// time: backoff sleeps advance the simulation clock of the calling process
// and the overall deadline is measured on the engine's clock. The real-socket
// nxproxy client has its own wall-clock binding (see nxproxy/client.cpp).
#pragma once

#include <utility>

#include "common/retry.hpp"
#include "simnet/engine.hpp"

namespace wacs::sim {

/// Runs `op` (returning Status or Result<T>) under `policy`, sleeping
/// between attempts in virtual time. Deterministic for a fixed
/// (policy, seed) and event order.
template <typename Op>
auto retry_in_sim(Process& self, const RetryPolicy& policy,
                  std::uint64_t seed, Op&& op) -> decltype(op()) {
  return retry_call(
      policy, seed, std::forward<Op>(op),
      [&self](std::int64_t delay_ns) { self.sleep(to_sec(delay_ns)); },
      [&self]() -> std::int64_t { return self.engine().now(); });
}

}  // namespace wacs::sim
