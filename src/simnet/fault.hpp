// Deterministic fault injection for the simulated network.
//
// A FaultInjector carries a *fault plan*: link down/up windows, per-link
// message-loss probabilities, host crash/restart times, and process kills,
// all scheduled in virtual time on the simulation's event queue and drawing
// randomness only from a seeded Rng — the same seed always produces the same
// fault trace. The transport (tcp.cpp) consults the injector at connect,
// send, and delivery time so that affected operations surface
// kConnectionReset / kTimeout instead of hanging, which is what the recovery
// layers (retry in nexus/proxy, requeue in rmf, work reclamation in the
// knapsack master) are built against.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simnet/net.hpp"

namespace wacs::sim {

namespace detail {
struct ConnState;
}  // namespace detail

/// Recovery-relevant event counts, reported by the fault bench.
struct FaultCounters {
  std::uint64_t link_down_events = 0;
  std::uint64_t link_up_events = 0;
  std::uint64_t connections_reset = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t hosts_crashed = 0;
  std::uint64_t hosts_restarted = 0;
  std::uint64_t processes_killed = 0;
};

class FaultInjector {
 public:
  /// Attaches to `net` (net.fault() starts returning this injector; at most
  /// one may be attached). All randomness derives from `seed`.
  FaultInjector(Network& net, std::uint64_t seed);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // ------------------------------------------------------------ fault plan

  /// Schedules a down window on the named link (LAN, WAN, or loopback):
  /// down at `down_at`, back up at `up_at`. While down, established
  /// connections routed over the link are reset and new connects time out.
  void plan_link_flap(const std::string& link_name, Time down_at, Time up_at);

  /// From `at` on, every message crossing the named link is independently
  /// dropped with probability `p` (seeded, deterministic). `p` = 0 clears.
  void plan_link_loss(const std::string& link_name, Time at, double p);

  /// Crashes a host at `at`: every process registered on it is killed
  /// (stacks unwind, socket destructors emit RSTs) and every registered
  /// connection touching the host is reset.
  void plan_host_crash(const std::string& host_name, Time at);

  /// Restarts a host at `at`: runs the restart callbacks registered for it
  /// (daemons such as the outer proxy server re-listen there).
  void plan_host_restart(const std::string& host_name, Time at);

  /// Kills one process at `at` (e.g. a single MPI rank), independent of
  /// host state.
  void plan_process_kill(Process* victim, Time at);

  // ------------------------------------------- immediate state transitions

  void set_link_down(const std::string& link_name, bool down);
  void set_link_loss(const std::string& link_name, double p);
  void crash_host_now(const std::string& host_name);
  void restart_host_now(const std::string& host_name);

  // -------------------------------------------------- transport-side hooks

  /// True if any hop of `path` is currently down.
  bool path_down(const std::vector<Link*>& path) const;

  /// True if the host is crashed (and not yet restarted).
  bool host_down(const Host& host) const;

  /// Consumes randomness: true if a message crossing `path` now should be
  /// lost to per-link loss.
  bool should_drop(const std::vector<Link*>& path);

  /// Connections register themselves at establishment so link/host faults
  /// can reset them. Expired entries are pruned lazily.
  void register_connection(std::weak_ptr<detail::ConnState> conn, Host* a,
                           Host* b);

  /// Called by socket teardown paths that emit an RST, for accounting.
  void count_reset() { ++counters_.connections_reset; }

  // ------------------------------------------------- process registration

  /// Registers a process as running on `host_name`; a crash of that host
  /// kills it. Finished processes are skipped at crash time.
  void register_host_process(const std::string& host_name, Process* p);

  /// Registers a callback invoked when `host_name` restarts. Hooks fire in
  /// ascending `priority`; equal priorities fire in registration order.
  /// Layering matters: a daemon must come back after the services it dials
  /// during its own restart (e.g. a Q server re-dispatching journaled parts
  /// resolves gass:// inputs through the site's GASS cache, so the cache
  /// restarts at a lower priority). core/grid.cpp assigns the priorities.
  void on_host_restart(const std::string& host_name,
                       std::function<void()> callback, int priority = 0);

  /// When the host last crashed / restarted (0 = never). Recovery benches
  /// measure crash → first-post-replay-dispatch gaps from these.
  Time last_crash_time(const std::string& host_name) const;
  Time last_restart_time(const std::string& host_name) const;

  /// How long a connect() into a faulted path/host stalls before kTimeout
  /// (stands in for the kernel SYN timeout; virtual seconds).
  double connect_timeout_s() const { return connect_timeout_s_; }
  void set_connect_timeout_s(double s) { connect_timeout_s_ = s; }

  const FaultCounters& counters() const { return counters_; }

 private:
  struct TrackedConn {
    std::weak_ptr<detail::ConnState> conn;
    Host* a;
    Host* b;
  };

  struct RestartHook {
    int priority;
    std::uint64_t seq;  ///< registration order, the tie-break
    std::function<void()> fn;
  };

  Link& link(const std::string& name);
  void reset_connections_if(
      const std::function<bool(const TrackedConn&)>& pred,
      const char* reason);
  void reset_conn(detail::ConnState& conn, const char* reason);

  Network& net_;
  Rng rng_;
  double connect_timeout_s_ = 3.0;
  std::set<const Link*> down_links_;
  std::map<const Link*, double> loss_;
  std::set<const Host*> crashed_hosts_;
  std::vector<TrackedConn> conns_;
  std::map<std::string, std::vector<Process*>> host_processes_;
  std::map<std::string, std::vector<RestartHook>> restart_hooks_;
  std::uint64_t next_hook_seq_ = 0;
  std::map<std::string, Time> crash_times_;
  std::map<std::string, Time> restart_times_;
  FaultCounters counters_;
};

}  // namespace wacs::sim
