#include "simnet/tcp.hpp"

#include "common/log.hpp"
#include "simnet/fault.hpp"

namespace wacs::sim {
namespace {
const log::Logger kLog("sim.tcp");

constexpr std::uint16_t kDefaultEphemeralLo = 32768;
constexpr std::uint16_t kDefaultEphemeralHi = 60999;

/// Stamps outgoing-message metadata: send time always (it feeds hop-latency
/// histograms); trace context and a flow arrow only when tracing is on.
/// The flow arrow carries the network's per-hop charge decomposition plus
/// the inbox-arrival time, so offline analysis can attribute the
/// send-to-dequeue interval to LAN / WAN / queueing exactly.
telemetry::MsgMeta stamp_meta(Engine& engine,
                              const std::vector<HopCharge>& hops,
                              Time arrival, std::uint64_t wire_bytes) {
  telemetry::MsgMeta meta;
  meta.sent_at = engine.now();
  if (telemetry::tracer().enabled()) {
    meta.ctx = telemetry::current_context();
    json::Value args = json::Value::object();
    args.set("arr", arrival);
    args.set("bytes", wire_bytes);
    json::Value path = json::Value::array();
    for (const HopCharge& hop : hops) {
      json::Value h = json::Value::object();
      h.set("l", hop.link->params().name);
      h.set("k", hop_kind_name(hop.kind));
      h.set("q", hop.timing.queued);
      h.set("tx", hop.timing.tx);
      h.set("lat", hop.timing.lat);
      path.push_back(std::move(h));
    }
    args.set("path", std::move(path));
    meta.flow = telemetry::tracer().flow_start("tcp", meta.ctx,
                                               std::move(args));
  }
  return meta;
}

/// Dequeues the front frame for `side`, recording its receive telemetry.
Bytes take_front(detail::ConnState& st, int side) {
  detail::InFrame fr = std::move(st.inbox[side].front());
  st.inbox[side].pop_front();
  st.last_rx[side] = fr.meta;
  if (fr.meta.flow != 0) {
    telemetry::tracer().flow_end(fr.meta.flow, fr.meta.ctx);
  }
  return std::move(fr.data);
}
}  // namespace

// -------------------------------------------------------------- SimSocket

SimSocket::~SimSocket() {
  detail::ConnState& st = *state_;
  if (st.closed[side_] || st.reset[side_]) return;
  Network& net = local_host_->network();
  Engine& engine = net.engine();
  if (engine.shutting_down()) return;  // whole-simulation teardown
  Process* cur = engine.current();
  if (cur == nullptr || !cur->killed()) {
    // Ordinary drop without close(): treat as orderly close (the FIN rides
    // behind any queued data), preserving the repo-wide idiom of letting a
    // socket fall out of scope at the end of a process body.
    close();
    return;
  }
  // Kill-unwind: the owning process crashed. Real TCP answers the peer's
  // next segment with RST; we deliver the reset after one-way latency so
  // the peer cannot tell a crashed peer from a mid-stream link fault.
  abort();
}

void SimSocket::abort() {
  detail::ConnState& st = *state_;
  if (st.closed[side_] || st.reset[side_]) {
    st.closed[side_] = true;
    return;
  }
  st.closed[side_] = true;
  st.readers[side_].notify_all();
  Network& net = local_host_->network();
  if (FaultInjector* f = net.fault()) f->count_reset();
  const Time arrival = net.path_latency(*local_host_, *peer_host_);
  const int peer_side = 1 - side_;
  auto state = state_;
  net.engine().at(arrival, "tcp.reset", [state, peer_side] {
    if (state->closed[peer_side] || state->reset[peer_side]) return;
    state->reset[peer_side] = true;
    state->readers[peer_side].notify_all();
  });
}

Status SimSocket::send(Bytes message) {
  detail::ConnState& st = *state_;
  if (st.reset[side_]) {
    return Status(ErrorCode::kConnectionReset, "connection reset");
  }
  if (st.closed[side_]) {
    return Status(ErrorCode::kConnectionClosed, "send on closed socket");
  }
  if (st.fin_seen[side_]) {
    return Status(ErrorCode::kConnectionClosed, "peer closed the connection");
  }
  Network& net = local_host_->network();
  if (FaultInjector* fault = net.fault()) {
    auto path = net.route(*local_host_, *peer_host_);
    if (fault->host_down(*peer_host_) ||
        (path.ok() && fault->path_down(*path))) {
      // Sending into a dead path: collapse the retransmit-until-RST dance
      // into an immediate reset of both sides.
      for (int side = 0; side < 2; ++side) {
        st.reset[side] = true;
        st.readers[side].notify_all();
      }
      fault->count_reset();
      return Status(ErrorCode::kConnectionReset,
                    "connection reset (network fault)");
    }
    if (path.ok() && fault->should_drop(*path)) {
      // Message loss: the path is charged (the bytes did travel part-way)
      // but the peer never sees the message; recovery is the caller's
      // timeout + retry.
      static telemetry::Counter& drops =
          telemetry::metrics().counter("tcp.msgs.dropped");
      drops.add();
      st.bytes_sent[side_] += message.size();
      net.deliver(*local_host_, *peer_host_, message.size());
      return Status();
    }
  }
  static telemetry::Counter& msgs = telemetry::metrics().counter("tcp.msgs");
  static telemetry::Counter& bytes = telemetry::metrics().counter("tcp.bytes");
  msgs.add();
  bytes.add(message.size());
  st.bytes_sent[side_] += message.size();
  const std::uint64_t wire_bytes =
      message.size() + Network::kMessageOverheadBytes;
  std::vector<HopCharge> hops;
  const Time arrival =
      net.deliver(*local_host_, *peer_host_, message.size(),
                  telemetry::tracer().enabled() ? &hops : nullptr);
  const int peer_side = 1 - side_;
  auto state = state_;
  detail::InFrame frame{std::move(message),
                        stamp_meta(net.engine(), hops, arrival, wire_bytes)};
  net.engine().at(arrival, "tcp.deliver",
                  [state, peer_side, fr = std::move(frame)]() mutable {
    if (state->reset[peer_side]) return;  // connection torn while in flight
    state->inbox[peer_side].push_back(std::move(fr));
    state->readers[peer_side].notify_one();
  });
  return Status();
}

namespace {

/// Shared tail of recv()/recv_deadline(): the wait predicate already holds.
Result<Bytes> finish_recv(detail::ConnState& st, int side) {
  if (st.reset[side]) {
    // A reset discards anything still buffered (RST semantics): buffered
    // bytes of a torn connection cannot be trusted to be complete.
    return Error(ErrorCode::kConnectionReset, "connection reset by peer");
  }
  if (!st.inbox[side].empty()) {
    return take_front(st, side);
  }
  return Error(ErrorCode::kConnectionClosed,
               st.closed[side] ? "socket closed locally" : "end of stream");
}

}  // namespace

Result<Bytes> SimSocket::recv(Process& self) {
  detail::ConnState& st = *state_;
  st.readers[side_].wait_until(self, [&] {
    return !st.inbox[side_].empty() || st.fin_seen[side_] ||
           st.closed[side_] || st.reset[side_];
  });
  return finish_recv(st, side_);
}

Result<Bytes> SimSocket::recv_deadline(Process& self, Time deadline) {
  detail::ConnState& st = *state_;
  const bool ready = st.readers[side_].wait_until_deadline(self, deadline, [&] {
    return !st.inbox[side_].empty() || st.fin_seen[side_] ||
           st.closed[side_] || st.reset[side_];
  });
  if (!ready) {
    return Error(ErrorCode::kTimeout, "recv deadline exceeded");
  }
  return finish_recv(st, side_);
}

std::optional<Bytes> SimSocket::try_recv() {
  detail::ConnState& st = *state_;
  if (st.inbox[side_].empty()) return std::nullopt;
  return take_front(st, side_);
}

bool SimSocket::recv_ready() const {
  const detail::ConnState& st = *state_;
  return !st.inbox[side_].empty() || st.fin_seen[side_] || st.closed[side_] ||
         st.reset[side_];
}

void SimSocket::close() {
  detail::ConnState& st = *state_;
  if (st.closed[side_]) return;
  st.closed[side_] = true;
  st.readers[side_].notify_all();
  if (st.reset[side_]) return;  // the connection is already torn; no FIN
  // The FIN rides the same path as data, so it arrives after everything
  // already sent (FIFO per direction).
  Network& net = local_host_->network();
  const Time arrival = net.deliver(*local_host_, *peer_host_, 0);
  const int peer_side = 1 - side_;
  auto state = state_;
  net.engine().at(arrival, "tcp.fin", [state, peer_side] {
    state->fin_seen[peer_side] = true;
    state->readers[peer_side].notify_all();
  });
}

bool SimSocket::closed() const {
  return state_->closed[side_] || state_->fin_seen[side_] ||
         state_->reset[side_];
}

// ------------------------------------------------------------ SimListener

SimListener::~SimListener() { close(); }

Result<SocketPtr> SimListener::accept(Process& self) {
  pending_waiters_.wait_until(self,
                              [this] { return !pending_.empty() || closed_; });
  if (!pending_.empty()) {
    SocketPtr s = std::move(pending_.front());
    pending_.pop_front();
    return s;
  }
  return Error(ErrorCode::kConnectionClosed, "listener closed");
}

Result<SocketPtr> SimListener::accept_deadline(Process& self, Time deadline) {
  const bool ready = pending_waiters_.wait_until_deadline(
      self, deadline, [this] { return !pending_.empty() || closed_; });
  if (!ready) {
    return Error(ErrorCode::kTimeout, "accept deadline exceeded");
  }
  if (!pending_.empty()) {
    SocketPtr s = std::move(pending_.front());
    pending_.pop_front();
    return s;
  }
  return Error(ErrorCode::kConnectionClosed, "listener closed");
}

std::optional<SocketPtr> SimListener::try_accept() {
  if (pending_.empty()) return std::nullopt;
  SocketPtr s = std::move(pending_.front());
  pending_.pop_front();
  return s;
}

void SimListener::close() {
  if (closed_) return;
  closed_ = true;
  // Refuse connections that were accepted by the stack but never by the
  // application: the dialing side sees an immediate EOF.
  for (SocketPtr& s : pending_) s->close();
  pending_.clear();
  host_->stack().release_port(port_);
  pending_waiters_.notify_all();
}

// --------------------------------------------------------------- NetStack

Result<ListenerPtr> NetStack::listen(std::uint16_t port, const Env* env) {
  Engine& engine = host_->network().engine();
  if (port == 0) {
    std::uint16_t lo = kDefaultEphemeralLo;
    std::uint16_t hi = kDefaultEphemeralHi;
    if (env != nullptr) {
      auto min_port = env->get_int(env_keys::kTcpMinPort, lo);
      if (!min_port) return min_port.error();
      auto max_port = env->get_int(env_keys::kTcpMaxPort, hi);
      if (!max_port) return max_port.error();
      lo = static_cast<std::uint16_t>(*min_port);
      hi = static_cast<std::uint16_t>(*max_port);
      if (lo > hi || *min_port < 1 || *max_port > 65535) {
        return Error(ErrorCode::kInvalidArgument,
                     "bad TCP_MIN_PORT/TCP_MAX_PORT range");
      }
    }
    bool found = false;
    for (std::uint32_t p = lo; p <= hi; ++p) {
      if (listeners_.count(static_cast<std::uint16_t>(p)) == 0) {
        port = static_cast<std::uint16_t>(p);
        found = true;
        break;
      }
    }
    if (!found) {
      return Error(ErrorCode::kResourceExhausted,
                   "no free port in [" + std::to_string(lo) + "," +
                       std::to_string(hi) + "] on " + host_->name());
    }
  } else if (listeners_.count(port) != 0) {
    return Error(ErrorCode::kAlreadyExists,
                 "port " + std::to_string(port) + " already bound on " +
                     host_->name());
  }

  auto listener =
      std::shared_ptr<SimListener>(new SimListener(*host_, port, engine));
  listeners_[port] = listener;
  return listener;
}

Result<SocketPtr> NetStack::connect(Process& self, const Contact& dst) {
  Network& net = host_->network();
  Engine& engine = net.engine();

  telemetry::Span span("tcp", "tcp.connect");
  if (span.active()) span.arg("dst", dst.to_string());
  const Time t0 = engine.now();

  auto dst_host = net.find_host(dst.host);
  if (!dst_host) return dst_host.error();
  auto path = net.route(*host_, **dst_host);
  if (!path) return path.error();

  FaultInjector* fault = net.fault();
  if (fault != nullptr &&
      (fault->host_down(*host_) || fault->host_down(**dst_host) ||
       fault->path_down(*path))) {
    // The SYN vanishes into a dead path or host: the dialer learns nothing
    // until its connect timeout expires.
    self.sleep(fault->connect_timeout_s());
    return Error(ErrorCode::kTimeout,
                 "connect to " + dst.to_string() + " timed out (fault)");
  }

  const Time syn_arrival = net.path_latency(*host_, **dst_host);
  const Time rtt_done =
      syn_arrival + (net.path_latency(**dst_host, *host_) - engine.now());

  // Firewall verdict: a deny-based filter drops the SYN, so the caller
  // learns nothing until its own timeout; we charge one round trip as a
  // conservative stand-in for that timeout.
  Status admitted = net.admit_connection(*host_, **dst_host, dst.port);
  if (!admitted.ok()) {
    self.sleep_until(rtt_done);
    return admitted.error();
  }

  NetStack& peer_stack = (*dst_host)->stack();
  auto it = peer_stack.listeners_.find(dst.port);
  std::shared_ptr<SimListener> listener =
      it != peer_stack.listeners_.end() ? it->second.lock() : nullptr;
  if (listener == nullptr || listener->closed_) {
    self.sleep_until(rtt_done);
    return Error(ErrorCode::kConnectionRefused,
                 "no listener on " + dst.to_string());
  }

  const Contact local_contact{host_->name(), next_ephemeral_++};
  if (next_ephemeral_ == 0) next_ephemeral_ = kDefaultEphemeralLo;

  auto state = std::make_shared<detail::ConnState>(engine);
  if (fault != nullptr) {
    fault->register_connection(state, host_, *dst_host);
  }
  auto client = SocketPtr(new SimSocket(*host_, **dst_host, local_contact,
                                        dst, state, 0));
  auto server = SocketPtr(new SimSocket(**dst_host, *host_,
                                        Contact{(*dst_host)->name(), dst.port},
                                        local_contact, state, 1));

  engine.at(syn_arrival, "tcp.syn", [listener, server, state] {
    if (listener->closed_) {
      // Listener vanished while the SYN was in flight: refuse.
      state->fin_seen[0] = true;
      state->readers[0].notify_all();
      return;
    }
    listener->pending_.push_back(server);
    listener->pending_waiters_.notify_one();
  });

  self.sleep_until(rtt_done);
  if (state->reset[0]) {
    return Error(ErrorCode::kConnectionReset,
                 "connection reset during handshake on " + dst.to_string());
  }
  if (state->fin_seen[0]) {
    return Error(ErrorCode::kConnectionRefused,
                 "listener closed during handshake on " + dst.to_string());
  }
  static telemetry::Histogram& connect_ms =
      telemetry::metrics().histogram("tcp.connect_ms");
  connect_ms.observe(to_ms(engine.now() - t0));
  kLog.trace("%s connected to %s", host_->name().c_str(),
             dst.to_string().c_str());
  return client;
}

}  // namespace wacs::sim
