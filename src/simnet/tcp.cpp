#include "simnet/tcp.hpp"

#include "common/log.hpp"

namespace wacs::sim {
namespace {
const log::Logger kLog("sim.tcp");

constexpr std::uint16_t kDefaultEphemeralLo = 32768;
constexpr std::uint16_t kDefaultEphemeralHi = 60999;
}  // namespace

// -------------------------------------------------------------- SimSocket

Status SimSocket::send(Bytes message) {
  detail::ConnState& st = *state_;
  if (st.closed[side_]) {
    return Status(ErrorCode::kConnectionClosed, "send on closed socket");
  }
  if (st.fin_seen[side_]) {
    return Status(ErrorCode::kConnectionClosed, "peer closed the connection");
  }
  Network& net = local_host_->network();
  st.bytes_sent[side_] += message.size();
  const Time arrival = net.deliver(*local_host_, *peer_host_, message.size());
  const int peer_side = 1 - side_;
  auto state = state_;
  net.engine().at(arrival, [state, peer_side, msg = std::move(message)]() mutable {
    state->inbox[peer_side].push_back(std::move(msg));
    state->readers[peer_side].notify_one();
  });
  return Status();
}

Result<Bytes> SimSocket::recv(Process& self) {
  detail::ConnState& st = *state_;
  st.readers[side_].wait_until(self, [&] {
    return !st.inbox[side_].empty() || st.fin_seen[side_] || st.closed[side_];
  });
  if (!st.inbox[side_].empty()) {
    Bytes msg = std::move(st.inbox[side_].front());
    st.inbox[side_].pop_front();
    return msg;
  }
  return Error(ErrorCode::kConnectionClosed,
               st.closed[side_] ? "socket closed locally" : "end of stream");
}

std::optional<Bytes> SimSocket::try_recv() {
  detail::ConnState& st = *state_;
  if (st.inbox[side_].empty()) return std::nullopt;
  Bytes msg = std::move(st.inbox[side_].front());
  st.inbox[side_].pop_front();
  return msg;
}

bool SimSocket::recv_ready() const {
  const detail::ConnState& st = *state_;
  return !st.inbox[side_].empty() || st.fin_seen[side_] || st.closed[side_];
}

void SimSocket::close() {
  detail::ConnState& st = *state_;
  if (st.closed[side_]) return;
  st.closed[side_] = true;
  st.readers[side_].notify_all();
  // The FIN rides the same path as data, so it arrives after everything
  // already sent (FIFO per direction).
  Network& net = local_host_->network();
  const Time arrival = net.deliver(*local_host_, *peer_host_, 0);
  const int peer_side = 1 - side_;
  auto state = state_;
  net.engine().at(arrival, [state, peer_side] {
    state->fin_seen[peer_side] = true;
    state->readers[peer_side].notify_all();
  });
}

bool SimSocket::closed() const {
  return state_->closed[side_] || state_->fin_seen[side_];
}

// ------------------------------------------------------------ SimListener

SimListener::~SimListener() { close(); }

Result<SocketPtr> SimListener::accept(Process& self) {
  pending_waiters_.wait_until(self,
                              [this] { return !pending_.empty() || closed_; });
  if (!pending_.empty()) {
    SocketPtr s = std::move(pending_.front());
    pending_.pop_front();
    return s;
  }
  return Error(ErrorCode::kConnectionClosed, "listener closed");
}

std::optional<SocketPtr> SimListener::try_accept() {
  if (pending_.empty()) return std::nullopt;
  SocketPtr s = std::move(pending_.front());
  pending_.pop_front();
  return s;
}

void SimListener::close() {
  if (closed_) return;
  closed_ = true;
  // Refuse connections that were accepted by the stack but never by the
  // application: the dialing side sees an immediate EOF.
  for (SocketPtr& s : pending_) s->close();
  pending_.clear();
  host_->stack().release_port(port_);
  pending_waiters_.notify_all();
}

// --------------------------------------------------------------- NetStack

Result<ListenerPtr> NetStack::listen(std::uint16_t port, const Env* env) {
  Engine& engine = host_->network().engine();
  if (port == 0) {
    std::uint16_t lo = kDefaultEphemeralLo;
    std::uint16_t hi = kDefaultEphemeralHi;
    if (env != nullptr) {
      auto min_port = env->get_int(env_keys::kTcpMinPort, lo);
      if (!min_port) return min_port.error();
      auto max_port = env->get_int(env_keys::kTcpMaxPort, hi);
      if (!max_port) return max_port.error();
      lo = static_cast<std::uint16_t>(*min_port);
      hi = static_cast<std::uint16_t>(*max_port);
      if (lo > hi || *min_port < 1 || *max_port > 65535) {
        return Error(ErrorCode::kInvalidArgument,
                     "bad TCP_MIN_PORT/TCP_MAX_PORT range");
      }
    }
    bool found = false;
    for (std::uint32_t p = lo; p <= hi; ++p) {
      if (listeners_.count(static_cast<std::uint16_t>(p)) == 0) {
        port = static_cast<std::uint16_t>(p);
        found = true;
        break;
      }
    }
    if (!found) {
      return Error(ErrorCode::kResourceExhausted,
                   "no free port in [" + std::to_string(lo) + "," +
                       std::to_string(hi) + "] on " + host_->name());
    }
  } else if (listeners_.count(port) != 0) {
    return Error(ErrorCode::kAlreadyExists,
                 "port " + std::to_string(port) + " already bound on " +
                     host_->name());
  }

  auto listener =
      std::shared_ptr<SimListener>(new SimListener(*host_, port, engine));
  listeners_[port] = listener;
  return listener;
}

Result<SocketPtr> NetStack::connect(Process& self, const Contact& dst) {
  Network& net = host_->network();
  Engine& engine = net.engine();

  auto dst_host = net.find_host(dst.host);
  if (!dst_host) return dst_host.error();
  auto path = net.route(*host_, **dst_host);
  if (!path) return path.error();

  const Time syn_arrival = net.path_latency(*host_, **dst_host);
  const Time rtt_done =
      syn_arrival + (net.path_latency(**dst_host, *host_) - engine.now());

  // Firewall verdict: a deny-based filter drops the SYN, so the caller
  // learns nothing until its own timeout; we charge one round trip as a
  // conservative stand-in for that timeout.
  Status admitted = net.admit_connection(*host_, **dst_host, dst.port);
  if (!admitted.ok()) {
    self.sleep_until(rtt_done);
    return admitted.error();
  }

  NetStack& peer_stack = (*dst_host)->stack();
  auto it = peer_stack.listeners_.find(dst.port);
  std::shared_ptr<SimListener> listener =
      it != peer_stack.listeners_.end() ? it->second.lock() : nullptr;
  if (listener == nullptr || listener->closed_) {
    self.sleep_until(rtt_done);
    return Error(ErrorCode::kConnectionRefused,
                 "no listener on " + dst.to_string());
  }

  const Contact local_contact{host_->name(), next_ephemeral_++};
  if (next_ephemeral_ == 0) next_ephemeral_ = kDefaultEphemeralLo;

  auto state = std::make_shared<detail::ConnState>(engine);
  auto client = SocketPtr(new SimSocket(*host_, **dst_host, local_contact,
                                        dst, state, 0));
  auto server = SocketPtr(new SimSocket(**dst_host, *host_,
                                        Contact{(*dst_host)->name(), dst.port},
                                        local_contact, state, 1));

  engine.at(syn_arrival, [listener, server, state] {
    if (listener->closed_) {
      // Listener vanished while the SYN was in flight: refuse.
      state->fin_seen[0] = true;
      state->readers[0].notify_all();
      return;
    }
    listener->pending_.push_back(server);
    listener->pending_waiters_.notify_one();
  });

  self.sleep_until(rtt_done);
  if (state->fin_seen[0]) {
    return Error(ErrorCode::kConnectionRefused,
                 "listener closed during handshake on " + dst.to_string());
  }
  kLog.trace("%s connected to %s", host_->name().c_str(),
             dst.to_string().c_str());
  return client;
}

}  // namespace wacs::sim
