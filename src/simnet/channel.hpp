// Typed blocking message channel between simulated processes.
//
// Channels are zero-latency in-memory queues: the building block for
// intra-host coordination (e.g. a Q server handing a job to a worker
// process). Anything that crosses the network uses simnet TCP instead, which
// charges latency and bandwidth.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "simnet/waitq.hpp"

namespace wacs::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : readers_(engine) {}

  /// Enqueues a value; never blocks (unbounded queue).
  void send(T value) {
    WACS_CHECK_MSG(!closed_, "send on closed channel");
    queue_.push_back(std::move(value));
    readers_.notify_one();
  }

  /// Blocks `self` until a value or close. Returns nullopt once the channel
  /// is closed *and* drained.
  std::optional<T> recv(Process& self) {
    readers_.wait_until(self, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Marks the channel closed; pending values remain receivable.
  void close() {
    closed_ = true;
    readers_.notify_all();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  std::deque<T> queue_;
  WaitQueue readers_;
  bool closed_ = false;
};

}  // namespace wacs::sim
