// TCP-like transport over the simulated network.
//
// Message-oriented streams: each send() delivers one framed message (Nexus,
// the proxy protocol, and MiniMPI are all message protocols, so the model
// frames at that granularity). Connection establishment performs the
// firewall admission check at the site gateways and costs one round trip;
// data messages are charged latency + bandwidth + queueing along the path.
//
// Ephemeral port allocation honours the Globus 1.1 TCP_MIN_PORT/TCP_MAX_PORT
// environment workaround so the paper's "allow-based configuration through a
// port range" alternative can be reproduced and compared against the proxy.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/config.hpp"
#include "common/contact.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "simnet/net.hpp"
#include "simnet/waitq.hpp"

namespace wacs::sim {

class SimSocket;
class SimListener;
class NetStack;
using SocketPtr = std::shared_ptr<SimSocket>;
using ListenerPtr = std::shared_ptr<SimListener>;

namespace detail {

/// One delivered message plus the telemetry metadata the sender stamped on
/// it (send time, trace context, flow id).
struct InFrame {
  Bytes data;
  telemetry::MsgMeta meta;
};

/// Shared state of an established connection. Each endpoint owns one side:
/// an inbox of delivered messages plus close flags.
struct ConnState {
  explicit ConnState(Engine& engine)
      : readers{WaitQueue(engine), WaitQueue(engine)} {}

  std::deque<InFrame> inbox[2];
  WaitQueue readers[2];
  bool closed[2] = {false, false};       ///< side i called close()
  bool fin_seen[2] = {false, false};     ///< side i observed the peer's close
  bool reset[2] = {false, false};        ///< side i observed an abnormal RST
  std::uint64_t bytes_sent[2] = {0, 0};
  telemetry::MsgMeta last_rx[2];         ///< meta of side i's last dequeue
};

}  // namespace detail

/// One endpoint of an established simulated TCP connection.
class SimSocket {
 public:
  /// Destruction without an orderly close() is the crash path (process
  /// kill, exception unwind): the peer observes kConnectionReset. Orderly
  /// teardown calls close() first and the peer sees EOF instead.
  ~SimSocket();

  /// Sends one message. Asynchronous: the call charges the path and returns
  /// immediately (infinite send buffer); FIFO delivery is guaranteed.
  /// Errors if either side already closed; kConnectionReset if the
  /// connection was torn by a fault (the send also observes current link
  /// faults, so sending into a downed path fails fast).
  Status send(Bytes message);

  /// Blocks until a message arrives; kConnectionClosed signals orderly EOF,
  /// kConnectionReset an abnormal teardown (peer crash, link fault).
  Result<Bytes> recv(Process& self);

  /// recv() bounded by an absolute virtual-time deadline; kTimeout if
  /// nothing arrived by then. Never blocks past `deadline`.
  Result<Bytes> recv_deadline(Process& self, Time deadline);

  /// Non-blocking: a message if one is queued.
  std::optional<Bytes> try_recv();

  /// True if a recv(self) would return without blocking (data or EOF).
  bool recv_ready() const;

  /// Orderly close of this side. recv() on the peer drains queued messages
  /// and then reports EOF. Idempotent.
  void close();

  /// Abnormal close: delivers an RST that discards the peer's buffered data
  /// (recv there reports kConnectionReset). Relays use this to propagate a
  /// reset across a bridged connection instead of masking it as EOF.
  void abort();

  bool closed() const;

  /// True once this side observed an abnormal reset.
  bool reset() const { return state_->reset[side_]; }

  const Contact& local_contact() const { return local_; }
  const Contact& peer_contact() const { return peer_; }
  Host& local_host() { return *local_host_; }

  std::uint64_t bytes_sent() const { return state_->bytes_sent[side_]; }

  /// Telemetry metadata of the most recently received message: its send
  /// time (per-hop latency) and the sender's trace context (causal parent
  /// for work triggered by the message). Zero-valued before the first recv.
  const telemetry::MsgMeta& last_rx_meta() const {
    return state_->last_rx[side_];
  }

 private:
  friend class NetStack;
  SimSocket(Host& local_host, Host& peer_host, Contact local, Contact peer,
            std::shared_ptr<detail::ConnState> state, int side)
      : local_host_(&local_host),
        peer_host_(&peer_host),
        local_(std::move(local)),
        peer_(std::move(peer)),
        state_(std::move(state)),
        side_(side) {}

  Host* local_host_;
  Host* peer_host_;
  Contact local_;
  Contact peer_;
  std::shared_ptr<detail::ConnState> state_;
  int side_;  ///< which half of ConnState this endpoint owns
};

/// A listening port. accept() yields established sockets in arrival order.
class SimListener {
 public:
  ~SimListener();

  /// Blocks until a connection is pending; kConnectionClosed after close().
  Result<SocketPtr> accept(Process& self);

  /// accept() bounded by an absolute deadline; kTimeout when it passes.
  Result<SocketPtr> accept_deadline(Process& self, Time deadline);

  std::optional<SocketPtr> try_accept();

  /// Stops accepting and releases the port. Pending, not-yet-accepted
  /// connections are refused.
  void close();

  std::uint16_t port() const { return port_; }
  Host& host() { return *host_; }

 private:
  friend class NetStack;
  SimListener(Host& host, std::uint16_t port, Engine& engine)
      : host_(&host), port_(port), pending_waiters_(engine) {}

  Host* host_;
  std::uint16_t port_;
  std::deque<SocketPtr> pending_;
  WaitQueue pending_waiters_;
  bool closed_ = false;
};

/// Per-host transport endpoint: the socket API simulated code programs to.
class NetStack {
 public:
  explicit NetStack(Host& host) : host_(&host) {}

  /// Binds a listener. port 0 allocates an ephemeral port; when `env`
  /// defines TCP_MIN_PORT/TCP_MAX_PORT the allocation is confined to that
  /// range (the Globus 1.1 workaround).
  Result<ListenerPtr> listen(std::uint16_t port, const Env* env = nullptr);

  /// Connects to `dst`. Blocks the calling process for the handshake round
  /// trip; fails with kPermissionDenied (firewall) or kConnectionRefused
  /// (no listener).
  Result<SocketPtr> connect(Process& self, const Contact& dst);

  Host& host() { return *host_; }

 private:
  friend class SimListener;
  friend class SimSocket;

  void release_port(std::uint16_t port) { listeners_.erase(port); }

  Host* host_;
  /// weak: the application owns listeners; an in-flight SYN must observe a
  /// destroyed listener as "refused", not dereference it.
  std::map<std::uint16_t, std::weak_ptr<SimListener>> listeners_;
  std::uint16_t next_ephemeral_ = 32768;
};

}  // namespace wacs::sim
