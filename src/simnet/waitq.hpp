// Condition-variable-like wait queue for simulated processes.
//
// A process parks itself on a WaitQueue while a predicate is false; any actor
// that changes the guarded state calls notify_one()/notify_all(). Wakeups are
// deferred through the event queue, so notifiers never execute the waiter
// nested inside themselves.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>

#include "simnet/engine.hpp"

namespace wacs::sim {

class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) : engine_(engine) {}

  /// Parks `self` until a notify reaches it. Spurious wakeups are possible
  /// (notify_all, or a notify whose state was consumed by another process);
  /// callers must re-check their predicate — see wait_until().
  void wait(Process& self) {
    waiters_.push_back(&self);
    self.suspend();
  }

  /// Standard condition loop: waits until `pred()` holds.
  template <typename Pred>
  void wait_until(Process& self, Pred pred) {
    while (!pred()) wait(self);
  }

  /// Condition loop with a deadline: waits until `pred()` holds or the
  /// simulation clock reaches `deadline`. Returns true if the predicate
  /// held, false on timeout. Each park arms a one-shot timer whose `fired`
  /// token is defused as soon as the wait returns, so a stale timer can
  /// never wake this process out of a *later* unrelated wait.
  template <typename Pred>
  bool wait_until_deadline(Process& self, Time deadline, Pred pred) {
    while (!pred()) {
      if (engine_.now() >= deadline) return false;
      auto fired = std::make_shared<bool>(false);
      Process* p = &self;
      engine_.at(deadline, "waitq.deadline", [p, fired] {
        if (!*fired) p->wake();
      });
      wait(self);
      *fired = true;
      remove(&self);  // timer wakeups leave our entry in waiters_
    }
    return true;
  }

  /// Drops `p` from the queue if present (used after a timed wait ends by
  /// timeout while the process is still enqueued). Safe when absent.
  void remove(Process* p) { std::erase(waiters_, p); }

  void notify_one() {
    if (waiters_.empty()) return;
    Process* p = waiters_.front();
    waiters_.pop_front();
    engine_.at(engine_.now(), "waitq.wake", [p] { p->wake(); });
  }

  void notify_all() {
    while (!waiters_.empty()) notify_one();
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::deque<Process*> waiters_;
};

}  // namespace wacs::sim
