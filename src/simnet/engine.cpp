#include "simnet/engine.hpp"

#include "common/log.hpp"

namespace wacs::sim {
namespace {
const log::Logger kLog("sim.engine");
}

// ---------------------------------------------------------------- Process

Process::Process(Engine& engine, std::string name,
                 std::function<void(Process&)> body)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)) {
  thread_ = std::thread([this] { thread_main(); });
}

Process::~Process() {
  // Engine::shutdown() is responsible for unwinding; by the time a Process
  // is destroyed its thread must have finished.
  if (thread_.joinable()) thread_.join();
}

void Process::thread_main() {
  // Wait for the first scheduling slice before running the body.
  proc_token_.acquire();
  // This OS thread *is* the simulated process; its name becomes the trace
  // track every event recorded from this body lands on.
  telemetry::set_current_track(name_);
  try {
    // A process that was spawned but never scheduled before shutdown (or
    // killed before its first slice) must not run its body during teardown.
    if (!engine_.shutting_down() && !killed_) body_(*this);
  } catch (const ShutdownError&) {
    // Normal teardown path for daemon processes blocked at shutdown.
  } catch (const KillError&) {
    // Fault-injected termination; the stack has unwound, destructors ran.
  }
  state_ = State::kFinished;
  engine_token_.release();  // final handoff; never resumed again
}

void Process::switch_to_engine() {
  engine_token_.release();
  proc_token_.acquire();
  if (engine_.shutting_down()) throw ShutdownError{};
  if (killed_) throw KillError{};
}

void Process::run_slice() {
  WACS_CHECK_MSG(state_ == State::kRunnable || state_ == State::kCreated,
                 "resuming a process that is not runnable");
  state_ = State::kRunning;
  // Save/restore around the handoff: a nested wake() (process A resuming
  // process B directly) must restore A as current when B blocks again.
  Process* prev = engine_.current_;
  engine_.current_ = this;
#if WACS_PROF
  const bool prof_on = prof::enabled();
  const std::int64_t slice_t0 = prof_on ? prof::now_ns() : 0;
#endif
  proc_token_.release();
  engine_token_.acquire();
#if WACS_PROF
  if (prof_on) {
    if (prof_slice_ == nullptr) {
      prof_slice_ = &engine_.profile().slice_slot(name_);
    }
    prof_slice_->observe(prof::now_ns() - slice_t0);
  }
#endif
  engine_.current_ = prev;
  if (state_ == State::kRunning) state_ = State::kWaiting;
}

void Process::sleep(double seconds) {
  WACS_CHECK(seconds >= 0);
  sleep_until(engine_.now() + from_sec(seconds));
}

void Process::sleep_until(Time t) {
  WACS_CHECK_MSG(state_ == State::kRunning,
                 "sleep() must be called from the process's own body");
  engine_.at(t, "proc.sleep", [this] { wake(); });
  suspend();
}

void Process::yield() {
  engine_.at(engine_.now(), "proc.yield", [this] { wake(); });
  suspend();
}

void Process::suspend() {
  WACS_CHECK_MSG(state_ == State::kRunning,
                 "suspend() must be called from the process's own body");
  state_ = State::kWaiting;
  switch_to_engine();
  // Woken: the engine has already marked us kRunning via run_slice().
}

void Process::wake() {
  if (state_ != State::kWaiting) return;  // not suspended: ignore
  state_ = State::kRunnable;
  run_slice();
}

void Process::kill() {
  if (killed_ || state_ == State::kFinished) return;
  killed_ = true;
  if (state_ == State::kWaiting) {
    // Resume the victim now; switch_to_engine observes killed_ and throws
    // KillError, unwinding through the body with destructors running.
    state_ = State::kRunnable;
    run_slice();
  }
  // kCreated: thread_main skips the body at its first slice.
  // kRunnable/kRunning: the flag is observed at the next blocking call.
}

// ----------------------------------------------------------------- Engine

Engine::Engine()
    : events_metric_(telemetry::metrics().counter("sim.events")),
      spawns_metric_(telemetry::metrics().counter("sim.spawns")) {}

Engine::~Engine() { shutdown(); }

void Engine::at(Time t, const char* label, std::function<void()> fn) {
  WACS_CHECK_MSG(t >= now_, "cannot schedule an event in the past");
#if WACS_PROF
  queue_.push(Event{t, next_seq_++, std::move(fn), label});
#else
  (void)label;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
#endif
}

prof::EngineProfile& Engine::profile() {
  if (!prof_) prof_ = std::make_unique<prof::EngineProfile>();
  return *prof_;
}

Process* Engine::spawn(std::string name, std::function<void(Process&)> body) {
  WACS_CHECK_MSG(!shutting_down_, "spawn() after shutdown");
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body)));
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  spawns_metric_.add();
  at(now_, "proc.spawn", [raw] {
    raw->state_ = Process::State::kRunnable;
    raw->run_slice();
  });
  return raw;
}

void Engine::dispatch_next() {
  // The queue's top is copied out before execution because the handler may
  // schedule new events (invalidating top()).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++events_executed_;
  events_metric_.add();
#if WACS_PROF
  if (prof::enabled()) {
    if (prof_last_ns_ < 0) prof_last_ns_ = prof::now_ns();
    const std::int64_t t0 = prof_last_ns_;
    ev.fn();
    const std::int64_t t1 = prof::now_ns();
    profile().record_event(ev.label, t1 - t0, queue_.size());
    prof_last_ns_ = t1;
    return;
  }
  prof_last_ns_ = -1;  // cache is stale once profiling turns off
#endif
  ev.fn();
}

void Engine::run() {
  WACS_CHECK_MSG(!running_, "Engine::run() is not reentrant");
  // The running engine is the tracer's time source; the newest engine to
  // run wins (benches build testbeds back to back).
  telemetry::tracer().set_clock(this, [this] { return now_; });
  running_ = true;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) dispatch_next();
  running_ = false;
}

void Engine::run_until(Time deadline) {
  WACS_CHECK_MSG(!running_, "Engine::run() is not reentrant");
  telemetry::tracer().set_clock(this, [this] { return now_; });
  running_ = true;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= deadline) {
    dispatch_next();
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
  running_ = false;
}

std::vector<std::string> Engine::blocked_process_names() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (p->state_ == Process::State::kWaiting ||
        p->state_ == Process::State::kCreated) {
      names.push_back(p->name());
    }
  }
  return names;
}

void Engine::shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  // Resume every blocked process so it observes shutting_down() and throws
  // ShutdownError, unwinding its stack. Iterate by index: a dying process
  // does not spawn, but be defensive about vector growth anyway.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    Process& p = *processes_[i];
    if (p.state_ == Process::State::kWaiting) {
      p.state_ = Process::State::kRunnable;
      p.run_slice();
    } else if (p.state_ == Process::State::kCreated) {
      // Never scheduled: give the thread its first token so thread_main can
      // observe shutdown (body runs, but its first blocking call throws).
      p.state_ = Process::State::kRunnable;
      p.run_slice();
    }
    WACS_CHECK_MSG(p.finished(), "process failed to unwind at shutdown");
  }
  processes_.clear();
  // Pending events may capture sockets/listeners whose destructors touch
  // topology objects; drop them now, while those objects are still alive.
  queue_ = {};
  telemetry::tracer().clear_clock(this);
  kLog.debug("engine shut down after %llu events",
             static_cast<unsigned long long>(events_executed_));
}

}  // namespace wacs::sim
