// Simulated time: a 64-bit count of nanoseconds since simulation start.
//
// All latencies, bandwidth-induced transfer times, and CPU costs advance this
// clock; wall-clock time never enters the model, so runs are deterministic
// and a 20-processor wide-area execution simulates in milliseconds.
#pragma once

#include <cstdint>

namespace wacs::sim {

/// Nanoseconds of virtual time.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Seconds (double) → Time, rounding to nearest nanosecond.
constexpr Time from_sec(double seconds) {
  return static_cast<Time>(seconds * 1e9 + (seconds >= 0 ? 0.5 : -0.5));
}

constexpr double to_sec(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_ms(Time t) { return static_cast<double>(t) * 1e-6; }

}  // namespace wacs::sim
