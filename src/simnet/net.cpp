#include "simnet/net.hpp"

#include <algorithm>
#include <cstdio>

#include "common/units.hpp"
#include "simnet/tcp.hpp"

namespace wacs::sim {

// ------------------------------------------------------------------- Link

Time Link::transmit(Time start, int direction, std::uint64_t bytes,
                    TxTiming* timing) {
  const int dir = params_.duplex ? (direction & 1) : 0;
  const Time begin = std::max(start, busy_until_[dir]);
  const Time tx = from_sec(static_cast<double>(bytes) / params_.bandwidth_bps);
  busy_until_[dir] = begin + tx;
  bytes_carried_ += bytes;
  ++messages_carried_;
  const Time lat = from_sec(params_.latency_s);
  if (timing != nullptr) {
    timing->queued = begin - start;
    timing->tx = tx;
    timing->lat = lat;
  }
  if (sample_width_ > 0) {
    // Bytes land in the bucket where serialization began; busy time spreads
    // across every bucket the [begin, begin+tx) interval touches.
    const auto first = static_cast<std::size_t>(begin / sample_width_);
    const auto last = static_cast<std::size_t>(
        tx > 0 ? (begin + tx - 1) / sample_width_ : first);
    if (samples_.size() <= last) samples_.resize(last + 1);
    samples_[first].bytes += bytes;
    for (std::size_t i = first; i <= last; ++i) {
      const Time lo = std::max<Time>(begin, static_cast<Time>(i) * sample_width_);
      const Time hi = std::min<Time>(begin + tx,
                                     static_cast<Time>(i + 1) * sample_width_);
      if (hi > lo) samples_[i].busy += hi - lo;
    }
  }
  return begin + tx + lat;
}

const char* hop_kind_name(HopCharge::Kind kind) {
  switch (kind) {
    case HopCharge::Kind::kLocal: return "local";
    case HopCharge::Kind::kLan: return "lan";
    case HopCharge::Kind::kWan: return "wan";
  }
  return "?";
}

// ------------------------------------------------------------------- Host

Host::Host(Network& network, HostParams params)
    : network_(&network),
      params_(std::move(params)),
      loopback_(LinkParams{.name = params_.name + "-lo",
                           .latency_s = usec(15),
                           .bandwidth_bps = mbyte_per_sec(200),
                           .duplex = true}) {
  stack_ = std::make_unique<NetStack>(*this);
}

Host::~Host() = default;

// ---------------------------------------------------------------- Network

Network::Network(Engine& engine) : engine_(engine) {
#if WACS_PROF
  // Registered eagerly so per-site slice attribution works whenever
  // profiling is switched on mid-run; resolution only happens at dump time.
  engine_.profile().set_site_resolver([this](const std::string& host_name) {
    auto h = find_host(host_name);
    return h.ok() ? (*h)->site() : std::string();
  });
#endif
}

Network::~Network() {
#if WACS_PROF
  // The resolver captures `this`; drop it before the topology goes away.
  engine_.profile().set_site_resolver({});
#endif
  engine_.shutdown();
}

Site& Network::add_site(const std::string& name, fw::Policy policy,
                        LinkParams lan) {
  WACS_CHECK_MSG(sites_by_name_.count(name) == 0, "duplicate site " + name);
  if (lan.name.empty()) lan.name = name + "-lan";
  auto site = std::unique_ptr<Site>(
      new Site(name, std::move(policy), std::move(lan)));
  Site* raw = site.get();
  raw->lan().enable_sampling(sample_width_);
  sites_.push_back(std::move(site));
  sites_by_name_[name] = raw;
  return *raw;
}

Host& Network::add_host(HostParams params) {
  WACS_CHECK_MSG(hosts_by_name_.count(params.name) == 0,
                 "duplicate host " + params.name);
  WACS_CHECK_MSG(sites_by_name_.count(params.site) != 0,
                 "host " + params.name + " references unknown site " +
                     params.site);
  auto host = std::unique_ptr<Host>(new Host(*this, std::move(params)));
  Host* raw = host.get();
  raw->loopback_.enable_sampling(sample_width_);
  hosts_.push_back(std::move(host));
  hosts_by_name_[raw->name()] = raw;
  sites_by_name_[raw->site()]->hosts_.push_back(raw);
  return *raw;
}

Link& Network::connect_sites(const std::string& site_a,
                             const std::string& site_b, LinkParams params) {
  WACS_CHECK(sites_by_name_.count(site_a) != 0);
  WACS_CHECK(sites_by_name_.count(site_b) != 0);
  WACS_CHECK_MSG(site_a != site_b, "WAN link must join distinct sites");
  auto key = std::minmax(site_a, site_b);
  auto key_pair = std::make_pair(key.first, key.second);
  WACS_CHECK_MSG(wan_.count(key_pair) == 0,
                 "sites already connected: " + site_a + "," + site_b);
  if (params.name.empty()) params.name = key.first + "<->" + key.second;
  auto link = std::make_unique<Link>(std::move(params));
  Link* raw = link.get();
  raw->enable_sampling(sample_width_);
  wan_[key_pair] = std::move(link);
  return *raw;
}

Result<Site*> Network::find_site(const std::string& name) {
  auto it = sites_by_name_.find(name);
  if (it == sites_by_name_.end()) {
    return Error(ErrorCode::kNotFound, "unknown site " + name);
  }
  return it->second;
}

Result<Host*> Network::find_host(const std::string& name) {
  auto it = hosts_by_name_.find(name);
  if (it == hosts_by_name_.end()) {
    return Error(ErrorCode::kNotFound, "unknown host " + name);
  }
  return it->second;
}

Result<Link*> Network::find_link(const std::string& name) {
  for (const auto& site : sites_) {
    if (site->lan().params().name == name) return &site->lan();
  }
  for (const auto& [key, link] : wan_) {
    if (link->params().name == name) return link.get();
  }
  for (const auto& host : hosts_) {
    if (host->loopback_.params().name == name) return &host->loopback_;
  }
  return Error(ErrorCode::kNotFound, "unknown link " + name);
}

Host& Network::host(const std::string& name) {
  auto h = find_host(name);
  WACS_CHECK_MSG(h.ok(), "unknown host " + name);
  return **h;
}

Site& Network::site(const std::string& name) {
  auto s = find_site(name);
  WACS_CHECK_MSG(s.ok(), "unknown site " + name);
  return **s;
}

Result<std::vector<Link*>> Network::route(Host& src, Host& dst) {
  if (&src == &dst) {
    return std::vector<Link*>{&src.loopback_};
  }
  Site& ssite = site(src.site());
  Site& dsite = site(dst.site());
  if (&ssite == &dsite) {
    return std::vector<Link*>{&ssite.lan()};
  }
  auto key = std::minmax(src.site(), dst.site());
  auto it = wan_.find(std::make_pair(key.first, key.second));
  if (it == wan_.end()) {
    return Error(ErrorCode::kNotFound,
                 "no WAN route between " + src.site() + " and " + dst.site());
  }
  return std::vector<Link*>{&ssite.lan(), it->second.get(), &dsite.lan()};
}

int Network::direction_of(Host& src, Host& dst) const {
  // One bit per path, used only by duplex links: orient by lexicographic
  // (site, host) order so that A->B and B->A occupy independent resources.
  auto src_key = std::make_pair(src.site(), src.name());
  auto dst_key = std::make_pair(dst.site(), dst.name());
  return src_key < dst_key ? 0 : 1;
}

Status Network::admit_connection(Host& src, Host& dst,
                                 std::uint16_t dst_port) {
  Site& ssite = site(src.site());
  Site& dsite = site(dst.site());

  fw::ConnAttempt attempt;
  attempt.src_host = src.name();
  attempt.src_site = src.site();
  attempt.dst_host = dst.name();
  attempt.dst_site = dst.site();
  attempt.dst_port = dst_port;

  auto deny = [&](const fw::Firewall& firewall) {
    return Status(ErrorCode::kPermissionDenied,
                  "connection " + src.name() + " -> " + dst.name() + ":" +
                      std::to_string(dst_port) + " denied by " +
                      firewall.name());
  };

  if (&ssite == &dsite) {
    // Same site: the firewall only sits between the DMZ and the inside.
    if (src.zone() == Zone::kDmz && dst.zone() == Zone::kInside) {
      attempt.direction = fw::Direction::kInbound;
      if (!ssite.firewall().permit(attempt)) return deny(ssite.firewall());
    } else if (src.zone() == Zone::kInside && dst.zone() == Zone::kDmz) {
      attempt.direction = fw::Direction::kOutbound;
      if (!ssite.firewall().permit(attempt)) return deny(ssite.firewall());
    }
    return Status();
  }

  // Cross-site: leave the source site (outbound, unless the source host is
  // already outside the filter), then enter the destination site (inbound,
  // unless the destination host is in the DMZ).
  if (src.zone() == Zone::kInside) {
    attempt.direction = fw::Direction::kOutbound;
    if (!ssite.firewall().permit(attempt)) return deny(ssite.firewall());
  }
  if (dst.zone() == Zone::kInside) {
    attempt.direction = fw::Direction::kInbound;
    if (!dsite.firewall().permit(attempt)) return deny(dsite.firewall());
  }
  return Status();
}

Time Network::deliver(Host& src, Host& dst, std::uint64_t payload_bytes,
                      std::vector<HopCharge>* detail) {
  PROF_SCOPE("net.deliver");
  auto path = route(src, dst);
  WACS_CHECK_MSG(path.ok(), path.error().message());
  const int dir = direction_of(src, dst);
  const std::uint64_t wire_bytes = payload_bytes + kMessageOverheadBytes;
  Time t = engine_.now();
  for (std::size_t i = 0; i < path->size(); ++i) {
    Link* link = (*path)[i];
    TxTiming timing;
    t = link->transmit(t, dir, wire_bytes, detail ? &timing : nullptr);
    if (detail == nullptr) continue;
    // Routes have one of three shapes (see route()): loopback, single LAN,
    // or LAN-WAN-LAN — the middle hop of a 3-link path is the WAN.
    HopCharge hop;
    hop.link = link;
    hop.kind = &src == &dst             ? HopCharge::Kind::kLocal
               : path->size() == 3 && i == 1 ? HopCharge::Kind::kWan
                                             : HopCharge::Kind::kLan;
    hop.timing = timing;
    detail->push_back(hop);
  }
#if WACS_PROF
  if (prof::enabled()) {
    // Lookahead ledger: classify the delivery and record its virtual-time
    // latency. `t - now` is the earliest this message can affect the
    // destination — the bound a conservative parallel engine would exploit.
    engine_.profile().record_delivery(src.site(), dst.site(),
                                      t - engine_.now());
  }
#endif
  return t;
}

Time Network::path_latency(Host& src, Host& dst) {
  auto path = route(src, dst);
  WACS_CHECK_MSG(path.ok(), path.error().message());
  Time t = engine_.now();
  for (Link* link : *path) t = link->latency_only(t);
  return t;
}

std::string Network::traffic_report() const {
  const double elapsed = to_sec(engine_.now());
  std::string out = "link traffic";
  char buf[160];
  std::snprintf(buf, sizeof buf, " (over %.3f virtual seconds):\n", elapsed);
  out += buf;
  auto add_link = [&](const Link& link) {
    if (link.messages_carried() == 0) return;
    const double util =
        elapsed > 0 ? static_cast<double>(link.bytes_carried()) /
                          link.params().bandwidth_bps / elapsed
                    : 0.0;
    std::snprintf(buf, sizeof buf,
                  "  %-20s %12llu bytes  %8llu msgs  %5.1f%% mean util\n",
                  link.params().name.c_str(),
                  static_cast<unsigned long long>(link.bytes_carried()),
                  static_cast<unsigned long long>(link.messages_carried()),
                  100.0 * util);
    out += buf;
  };
  for (const auto& site : sites_) add_link(site->lan());
  for (const auto& [key, link] : wan_) add_link(*link);
  for (const auto& host : hosts_) add_link(host->loopback_);
  return out;
}

std::vector<const Link*> Network::all_links() const {
  std::vector<const Link*> links;
  for (const auto& site : sites_) links.push_back(&site->lan());
  for (const auto& [key, link] : wan_) links.push_back(link.get());
  for (const auto& host : hosts_) links.push_back(&host->loopback_);
  return links;
}

void Network::reset_traffic_counters() {
  for (const auto& site : sites_) site->lan().reset_counters();
  for (const auto& [key, link] : wan_) link->reset_counters();
  for (const auto& host : hosts_) host->loopback_.reset_counters();
}

void Network::enable_link_sampling(Time bucket_width) {
  sample_width_ = bucket_width > 0 ? bucket_width : 0;
  for (const auto& site : sites_) site->lan().enable_sampling(sample_width_);
  for (const auto& [key, link] : wan_) link->enable_sampling(sample_width_);
  for (const auto& host : hosts_) host->loopback_.enable_sampling(sample_width_);
}

json::Value Network::utilization_json() const {
  json::Value out = json::Value::object();
  out.set("bucket_ns", sample_width_);
  json::Value links = json::Value::object();
  for (const Link* link : all_links()) {
    if (link->samples().empty()) continue;
    json::Value buckets = json::Value::array();
    const auto& samples = link->samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].bytes == 0 && samples[i].busy == 0) continue;
      json::Value b = json::Value::object();
      b.set("i", static_cast<std::int64_t>(i));
      b.set("bytes", samples[i].bytes);
      b.set("busy_ns", samples[i].busy);
      buckets.push_back(std::move(b));
    }
    if (buckets.items().empty()) continue;
    links.set(link->params().name, std::move(buckets));
  }
  out.set("links", std::move(links));
  return out;
}

std::string Network::utilization_ascii(int max_cols) const {
  if (sample_width_ <= 0 || max_cols <= 0) return "";
  std::size_t total_buckets = 0;
  for (const Link* link : all_links()) {
    total_buckets = std::max(total_buckets, link->samples().size());
  }
  if (total_buckets == 0) return "";
  const auto cols =
      std::min<std::size_t>(static_cast<std::size_t>(max_cols), total_buckets);
  // Cell c aggregates sampler buckets [c*per, (c+1)*per).
  const std::size_t per = (total_buckets + cols - 1) / cols;
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "link utilization (%zu cells x %.1f ms, ' '<1%%..'#'>=90%%):\n",
                cols, to_ms(static_cast<Time>(per) * sample_width_));
  std::string out = buf;
  static const char kGlyphs[] = " .:-=+*oO#";  // 10 busy-fraction levels
  for (const Link* link : all_links()) {
    const auto& samples = link->samples();
    if (samples.empty()) continue;
    bool any = false;
    std::string row;
    for (std::size_t c = 0; c < cols; ++c) {
      Time busy = 0;
      for (std::size_t i = c * per;
           i < std::min(samples.size(), (c + 1) * per); ++i) {
        busy += samples[i].busy;
      }
      const double frac = static_cast<double>(busy) /
                          static_cast<double>(static_cast<Time>(per) *
                                              sample_width_);
      auto level = static_cast<std::size_t>(frac * 10.0);
      if (frac >= 0.01 && level == 0) level = 1;
      row += kGlyphs[std::min<std::size_t>(level, 9)];
      any = any || busy > 0;
    }
    if (!any) continue;
    std::snprintf(buf, sizeof buf, "  %-20s |%s|\n", link->params().name.c_str(),
                  row.c_str());
    out += buf;
  }
  return out;
}

std::string Network::describe() const {
  std::string out;
  for (const auto& site : sites_) {
    out += "site " + site->name() + "  (lan: " + site->lan().params().name;
    char buf[96];
    std::snprintf(buf, sizeof buf, ", %.2f ms, %.2f MB/s)\n",
                  site->lan().params().latency_s * 1e3,
                  site->lan().params().bandwidth_bps / 1e6);
    out += buf;
    for (const Host* h : site->hosts()) {
      std::snprintf(buf, sizeof buf, "  host %-14s zone=%-6s speed=%.2f cpus=%d\n",
                    h->name().c_str(),
                    h->zone() == Zone::kDmz ? "dmz" : "inside", h->cpu_speed(),
                    h->cpus());
      out += buf;
    }
  }
  for (const auto& [key, link] : wan_) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "wan %s <-> %s  (%.2f ms, %.0f kbit/s)\n",
                  key.first.c_str(), key.second.c_str(),
                  link->params().latency_s * 1e3,
                  link->params().bandwidth_bps * 8 / 1e3);
    out += buf;
  }
  return out;
}

}  // namespace wacs::sim
