// Network topology model: sites, hosts, links, routing, firewall placement.
//
// The model is flow-level and message-granular: a message of S bytes moving
// across a path is charged, per hop, queueing behind earlier traffic on that
// link (busy-until reservation), S/bandwidth of transmission time, and the
// link's propagation latency (store-and-forward per hop). That is coarse but
// captures exactly the quantities the paper reports: per-message latency,
// size-dependent bandwidth, and contention between flows sharing the 1.5 Mbps
// WAN.
//
// Firewalls sit at site boundaries. Hosts are either kInside (behind the
// firewall) or kDmz (outside it, like the paper's outer proxy server at
// RWCP, reachable from the Internet without traversing the filter).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "firewall/policy.hpp"
#include "simnet/engine.hpp"
#include "simnet/storage.hpp"

namespace wacs::sim {

enum class Zone { kInside, kDmz };

/// Physical characteristics of a link.
struct LinkParams {
  std::string name;
  double latency_s = 0;        ///< one-way propagation + stack traversal
  double bandwidth_bps = 1e9;  ///< bytes per second
  bool duplex = true;          ///< false = shared segment (single resource)
};

/// How one transmit() charge decomposed, for telemetry and trace analysis.
struct TxTiming {
  Time queued = 0;  ///< wait for earlier traffic to drain (link contention)
  Time tx = 0;      ///< serialization at link bandwidth
  Time lat = 0;     ///< propagation latency
};

/// A transmission resource. transmit() serializes messages FIFO per
/// direction by keeping a busy-until horizon.
class Link {
 public:
  explicit Link(LinkParams params) : params_(std::move(params)) {
    WACS_CHECK(params_.bandwidth_bps > 0);
    WACS_CHECK(params_.latency_s >= 0);
  }

  /// Reserves the medium for `bytes` starting no earlier than `start`
  /// (direction 0 or 1; ignored for shared segments). Returns the arrival
  /// time at the far end; `timing`, when non-null, receives the charge
  /// decomposition (queued + tx + lat telescopes: start + sum = arrival).
  Time transmit(Time start, int direction, std::uint64_t bytes,
                TxTiming* timing = nullptr);

  /// Propagation-only traversal (control packets whose occupancy we ignore).
  Time latency_only(Time start) const {
    return start + from_sec(params_.latency_s);
  }

  const LinkParams& params() const { return params_; }
  std::uint64_t bytes_carried() const { return bytes_carried_; }
  std::uint64_t messages_carried() const { return messages_carried_; }
  void reset_counters() {
    bytes_carried_ = messages_carried_ = 0;
    samples_.clear();
  }

  // ---- time-bucketed utilization sampling ------------------------------
  // Off by default (bucket width 0): transmit() then costs nothing extra.
  // When enabled, every charge accumulates its bytes into the bucket of its
  // transmission start and spreads its busy (serialization) time across the
  // buckets it spans, so Network::utilization_json() can emit per-link
  // utilization timelines.

  struct UtilBucket {
    std::uint64_t bytes = 0;
    Time busy = 0;  ///< serialization ns inside this bucket (<= width)
  };

  /// Enables sampling with the given bucket width (ns); 0 disables. Clears
  /// previously collected samples.
  void enable_sampling(Time bucket_width) {
    sample_width_ = bucket_width > 0 ? bucket_width : 0;
    samples_.clear();
  }
  Time sample_bucket_width() const { return sample_width_; }
  /// Bucket i covers [i*width, (i+1)*width). Trailing buckets may be absent.
  const std::vector<UtilBucket>& samples() const { return samples_; }

 private:
  LinkParams params_;
  Time busy_until_[2] = {0, 0};
  std::uint64_t bytes_carried_ = 0;
  std::uint64_t messages_carried_ = 0;
  Time sample_width_ = 0;
  std::vector<UtilBucket> samples_;
};

/// Per-hop charge record for one delivered message. Network::deliver()
/// fills a vector of these on request (the tcp layer asks when tracing is
/// on, and stamps them onto the message's flow arrow for offline analysis).
struct HopCharge {
  enum class Kind { kLocal, kLan, kWan };
  const Link* link = nullptr;
  Kind kind = Kind::kLan;
  TxTiming timing;
};

const char* hop_kind_name(HopCharge::Kind kind);  ///< "local" / "lan" / "wan"

class Network;
class NetStack;
class FaultInjector;

/// Parameters for creating a host.
struct HostParams {
  std::string name;
  std::string site;
  Zone zone = Zone::kInside;
  double cpu_speed = 1.0;  ///< relative compute rate (see core/testbeds)
  int cpus = 1;
};

/// A machine attached to a site's LAN. Its NetStack provides the TCP-like
/// transport (see simnet/tcp.hpp).
class Host {
 public:
  ~Host();  // out of line: NetStack is incomplete here

  const std::string& name() const { return params_.name; }
  const std::string& site() const { return params_.site; }
  Zone zone() const { return params_.zone; }
  double cpu_speed() const { return params_.cpu_speed; }
  int cpus() const { return params_.cpus; }

  NetStack& stack() { return *stack_; }
  Network& network() { return *network_; }

  /// The host's local disk. Unlike processes and connections, its contents
  /// survive FaultInjector::crash_host_now / restart_host_now — daemons that
  /// journal here can replay their state from a restart hook.
  DurableStore& disk() { return disk_; }

 private:
  friend class Network;
  Host(Network& network, HostParams params);

  Network* network_;
  HostParams params_;
  std::unique_ptr<NetStack> stack_;
  Link loopback_;
  DurableStore disk_;
};

/// A site: a LAN segment, a set of hosts, and a gateway firewall.
class Site {
 public:
  const std::string& name() const { return name_; }
  fw::Firewall& firewall() { return firewall_; }
  Link& lan() { return lan_; }
  const std::vector<Host*>& hosts() const { return hosts_; }

 private:
  friend class Network;
  Site(std::string name, fw::Policy policy, LinkParams lan)
      : name_(std::move(name)),
        firewall_(name_ + "-fw", std::move(policy)),
        lan_(std::move(lan)) {}

  std::string name_;
  fw::Firewall firewall_;
  Link lan_;
  std::vector<Host*> hosts_;
};

/// The whole topology plus routing and admission control.
class Network {
 public:
  explicit Network(Engine& engine);

  /// Unwinds every simulated process (and drops queued events) before the
  /// hosts they reference are destroyed. This makes `Engine engine; Network
  /// net{engine};` member order safe regardless of destruction order of
  /// objects that capture hosts/sockets in process stacks or events.
  ~Network();

  Engine& engine() { return engine_; }

  /// Framing overhead charged per message on every link (headers, acks).
  static constexpr std::uint64_t kMessageOverheadBytes = 64;

  Site& add_site(const std::string& name, fw::Policy policy, LinkParams lan);
  Host& add_host(HostParams params);
  /// Installs a point-to-point WAN link between two existing sites.
  Link& connect_sites(const std::string& site_a, const std::string& site_b,
                      LinkParams params);

  Result<Site*> find_site(const std::string& name);
  Result<Host*> find_host(const std::string& name);
  /// Looks a link up by its LinkParams name (site LANs, WAN links, and host
  /// loopbacks, e.g. "imnet" or "rwcp-lan"); fault plans target links this
  /// way.
  Result<Link*> find_link(const std::string& name);
  /// find_host that aborts on unknown names; for topology-construction code.
  Host& host(const std::string& name);
  Site& site(const std::string& name);

  /// The hop sequence from `src` to `dst` (loopback, LAN, or LAN-WAN-LAN).
  /// Errors when the sites are not connected.
  Result<std::vector<Link*>> route(Host& src, Host& dst);

  /// Applies every firewall on the src→dst path to a connection attempt
  /// toward `dst_port`. Counters update on the evaluating firewall.
  Status admit_connection(Host& src, Host& dst, std::uint16_t dst_port);

  /// Charges a message across the full path; returns arrival time.
  /// Precondition: a route exists (call sites hold an open connection).
  /// `detail`, when non-null, receives one HopCharge per link traversed
  /// (hop kinds follow the route shape: loopback, LAN, or LAN-WAN-LAN).
  Time deliver(Host& src, Host& dst, std::uint64_t payload_bytes,
               std::vector<HopCharge>* detail = nullptr);

  /// Sum of hop latencies src→dst, no occupancy (control-packet time).
  Time path_latency(Host& src, Host& dst);

  const std::vector<std::unique_ptr<Site>>& sites() const { return sites_; }

  /// Human-readable topology description (used by bench headers to echo the
  /// paper's Figure 5).
  std::string describe() const;

  /// Traffic accounting per link (LANs, WANs, loopbacks with traffic),
  /// rendered as a table: bytes, messages, and mean utilization over
  /// [0, now]. Examples print this after a run.
  std::string traffic_report() const;

  /// Zeroes every link counter (per-experiment measurement windows).
  void reset_traffic_counters();

  /// Turns on time-bucketed byte/busy sampling on every link, current and
  /// future (bucket width in ns; 0 disables). Existing samples are dropped.
  void enable_link_sampling(Time bucket_width);

  /// Per-link utilization timeline collected by the samplers:
  /// {"bucket_ns": W, "links": {name: [{"i": bucket, "bytes": B,
  /// "busy_ns": T}, ...]}} — sparse (empty buckets omitted), links without
  /// traffic omitted, deterministic topology order.
  json::Value utilization_json() const;

  /// ASCII utilization timeline, one row per link with traffic: each cell
  /// aggregates the sampler buckets that fall into it and prints a busy-
  /// fraction glyph (' ' idle .. '#' saturated). For terminals; the JSON
  /// form is the machine interface.
  std::string utilization_ascii(int max_cols = 64) const;

  /// Every link in the topology — site LANs, WAN links, host loopbacks —
  /// in deterministic order. Telemetry exports per-link byte counters from
  /// this.
  std::vector<const Link*> all_links() const;

  /// WAN links with their endpoint site names, deterministic (map) order.
  /// Metrics agents use this to attribute inter-site byte counters to the
  /// link's lexicographically-first site exactly once.
  struct WanLink {
    std::string site_a;
    std::string site_b;
    const Link* link;
  };
  std::vector<WanLink> wan_links() const {
    std::vector<WanLink> out;
    out.reserve(wan_.size());
    for (const auto& [key, link] : wan_) {
      out.push_back({key.first, key.second, link.get()});
    }
    return out;
  }

  /// The fault injector attached to this network, or nullptr when the run
  /// is fault-free (the common case; every fault check is skipped then).
  FaultInjector* fault() { return fault_; }

 private:
  friend class FaultInjector;  // attaches/detaches itself

  int direction_of(Host& src, Host& dst) const;

  FaultInjector* fault_ = nullptr;
  Time sample_width_ = 0;  ///< applied to links added after enable_link_sampling
  Engine& engine_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::map<std::string, Site*> sites_by_name_;
  std::map<std::string, Host*> hosts_by_name_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Link>> wan_;
};

}  // namespace wacs::sim
