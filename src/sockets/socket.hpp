// Blocking TCP sockets with full-read/full-write helpers and length-prefixed
// framing — the substrate for the real (non-simulated) Nexus Proxy daemons.
//
// All operations report failure through Result/Status; EINTR is retried.
// Peers are untrusted: frame lengths are bounded, short reads are handled.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/contact.hpp"
#include "common/error.hpp"
#include "sockets/fd.hpp"

namespace wacs::net {

/// Hard ceiling on a single framed message; a malicious length prefix must
/// not make a relay daemon allocate gigabytes.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// An established TCP connection.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(Fd fd) : fd_(std::move(fd)) {}

  /// Dials host:port (numeric IP or resolvable name).
  static Result<TcpSocket> dial(const Contact& target);

  /// dial() bounded by `timeout_ms` per address attempt (non-blocking
  /// connect + poll); kTimeout when the peer does not answer in time. The
  /// returned socket is back in blocking mode.
  static Result<TcpSocket> dial_timeout(const Contact& target, int timeout_ms);

  bool valid() const { return fd_.valid(); }
  int native() const { return fd_.get(); }

  /// Writes the whole buffer (looping over partial writes).
  Status write_all(std::span<const std::uint8_t> data);

  /// Reads exactly `n` bytes. kConnectionClosed on clean EOF at offset 0.
  Result<Bytes> read_exact(std::size_t n);

  /// Reads whatever is available, up to `max` bytes; kConnectionClosed on
  /// EOF. Used by the relay pumps.
  Result<Bytes> read_some(std::size_t max);

  /// read_some() bounded by `timeout_ms`: kTimeout when no byte arrives in
  /// time. The relay pumps use this to notice half-open peers that TCP
  /// alone would let linger for hours.
  Result<Bytes> read_some_timeout(std::size_t max, int timeout_ms);

  /// Length-prefixed frame I/O (u32 LE length + payload). `max_len` caps
  /// the accepted length prefix — network-facing surfaces pass a limit
  /// sized to their message set so a hostile prefix is rejected *before*
  /// any allocation, not at the generic relay ceiling.
  Status write_frame(const Bytes& frame);
  Result<Bytes> read_frame(std::uint32_t max_len = kMaxFrameBytes);

  /// read_frame() bounded by an overall `timeout_ms` budget across header
  /// and payload (poll before every read); kTimeout when it runs out.
  Result<Bytes> read_frame_timeout(int timeout_ms,
                                   std::uint32_t max_len = kMaxFrameBytes);

  /// Enables TCP keepalive probing so a half-open peer (crashed host,
  /// vanished NAT entry) eventually surfaces as a read error instead of a
  /// silent forever-stall. Times are seconds.
  Status set_keepalive(int idle_s, int interval_s, int count);

  /// Address of the remote end ("ip:port").
  Result<Contact> peer() const;
  /// Address of the local end.
  Result<Contact> local() const;

  /// Unblocks any reader/writer on another thread, then closes.
  void shutdown();
  void close() { fd_.reset(); }

 private:
  Fd fd_;
};

/// A listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;

  /// Binds and listens on `bind_ip:port` (port 0 = ephemeral).
  static Result<TcpListener> bind(const std::string& bind_ip,
                                  std::uint16_t port);

  bool valid() const { return fd_.valid(); }
  std::uint16_t port() const { return port_; }

  /// Blocks until a connection arrives. Fails once shutdown() was called.
  /// Transient failures (EMFILE/ENFILE/ECONNABORTED/ENOBUFS/...) come back
  /// as kUnavailable so accept loops can retry with backoff; a shut-down or
  /// dead listener is kConnectionClosed and means the loop must exit.
  Result<TcpSocket> accept();

  /// Unblocks a pending accept() on another thread, then closes.
  void shutdown();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

namespace testing {

/// Test-only fault injection: the hook is consulted before every
/// ::accept(); a nonzero return makes that accept fail with the returned
/// errno (classified exactly like the real thing, no queued connection is
/// consumed). Pass nullptr to uninstall. Production code never sets this.
using AcceptFaultHook = std::function<int(std::uint16_t port)>;
void set_accept_fault_hook(AcceptFaultHook hook);

}  // namespace testing

}  // namespace wacs::net
