#include "sockets/fault.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace wacs::net::fault {

FaultSchedule::FaultSchedule(const FaultSpec& spec, std::uint64_t stream_id)
    : spec_(spec),
      // splitmix-style mix so stream 0 and stream 1 are unrelated even for
      // adjacent seeds.
      rng_(spec.seed * 0x9e3779b97f4a7c15ULL + stream_id) {}

std::size_t FaultSchedule::next_slice(std::size_t n) {
  if (spec_.max_write_slice == 0 || n <= 1) return n;
  const std::size_t cap = std::min(n, spec_.max_write_slice);
  return static_cast<std::size_t>(rng_.uniform(1, cap));
}

bool FaultSchedule::should_stall() {
  if (spec_.stall_prob <= 0.0) return false;
  return rng_.bernoulli(spec_.stall_prob);
}

bool FaultSchedule::should_reset(std::int64_t written) const {
  return spec_.reset_after_bytes >= 0 && written >= spec_.reset_after_bytes;
}

FaultySocket::FaultySocket(TcpSocket sock, const FaultSpec& spec,
                           std::uint64_t stream_id)
    : sock_(std::move(sock)), schedule_(spec, stream_id) {}

Status FaultySocket::write_all(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (schedule_.should_reset(written_)) {
      reset_now();
      return Status(ErrorCode::kConnectionReset,
                    "fault schedule reset the connection");
    }
    if (schedule_.should_stall()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(schedule_.stall_ms()));
    }
    std::size_t n = schedule_.next_slice(data.size() - off);
    const std::int64_t reset_at = schedule_.reset_after_bytes();
    if (reset_at >= 0 && written_ < reset_at) {
      // Never write past the reset boundary: the next loop iteration must
      // observe written_ == reset_at and fire the reset, slicing or not.
      n = std::min(n, static_cast<std::size_t>(reset_at - written_));
    }
    if (auto s = sock_.write_all(data.subspan(off, n)); !s.ok()) return s;
    off += n;
    written_ += static_cast<std::int64_t>(n);
  }
  return Status();
}

Status FaultySocket::write_frame(const Bytes& frame) {
  WACS_CHECK_MSG(frame.size() <= kMaxFrameBytes, "oversized outgoing frame");
  Bytes wire;
  wire.reserve(frame.size() + 4);
  const auto len = static_cast<std::uint32_t>(frame.size());
  wire.push_back(static_cast<std::uint8_t>(len));
  wire.push_back(static_cast<std::uint8_t>(len >> 8));
  wire.push_back(static_cast<std::uint8_t>(len >> 16));
  wire.push_back(static_cast<std::uint8_t>(len >> 24));
  wire.insert(wire.end(), frame.begin(), frame.end());
  // One faulty write over header+payload: slicing can split the length
  // prefix itself, and a reset can land mid-frame — the hostile cases the
  // daemons' deadlines must survive.
  return write_all(wire);
}

void FaultySocket::reset_now() {
  if (!sock_.valid()) return;
  struct linger lg {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(sock_.native(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  sock_.close();
}

FaultyListener::FaultyListener(TcpListener listener, const FaultSpec& spec)
    : listener_(std::move(listener)), schedule_(spec, 0) {}

Result<TcpSocket> FaultyListener::accept() {
  ++accepts_;
  int inject = 0;
  if (pending_errno_ != 0) {
    inject = pending_errno_;
    pending_errno_ = 0;
  } else if (every_nth_ > 0 && accepts_ % every_nth_ == 0) {
    inject = every_errno_;
  }
  if (inject != 0) {
    errno = inject;
    // Mirror TcpListener's classification so consumers exercise the same
    // retry-vs-exit decision a real errno would force.
    const bool transient =
        inject == ECONNABORTED || inject == EMFILE || inject == ENFILE ||
        inject == ENOBUFS || inject == ENOMEM || inject == EAGAIN ||
        inject == EPROTO || inject == EPERM;
    return Error(transient ? ErrorCode::kUnavailable
                           : ErrorCode::kConnectionClosed,
                 std::string("accept: ") + std::strerror(inject));
  }
  return listener_.accept();
}

ScopedAcceptFaults::ScopedAcceptFaults(std::uint16_t port, int err, int count)
    : remaining_(std::make_shared<std::atomic<int>>(count)), count_(count) {
  auto remaining = remaining_;
  net::testing::set_accept_fault_hook(
      [port, err, remaining](std::uint16_t p) -> int {
        if (p != port) return 0;
        int left = remaining->load();
        while (left > 0) {
          if (remaining->compare_exchange_weak(left, left - 1)) return err;
        }
        return 0;
      });
}

ScopedAcceptFaults::~ScopedAcceptFaults() {
  net::testing::set_accept_fault_hook(nullptr);
}

int ScopedAcceptFaults::delivered() const {
  return count_ - remaining_->load();
}

}  // namespace wacs::net::fault
