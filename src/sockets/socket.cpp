#include "sockets/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <mutex>

#include <cerrno>
#include <cstring>

namespace wacs::net {
namespace {

// Test-only accept fault injection; armed_ keeps the unset case to one
// relaxed load on the accept path.
std::atomic<bool> g_accept_fault_armed{false};
std::mutex g_accept_fault_mu;
testing::AcceptFaultHook g_accept_fault_hook;

/// Errno to inject for the next accept on `port`, or 0.
int accept_fault_for(std::uint16_t port) {
  if (!g_accept_fault_armed.load(std::memory_order_relaxed)) return 0;
  std::lock_guard<std::mutex> lock(g_accept_fault_mu);
  return g_accept_fault_hook ? g_accept_fault_hook(port) : 0;
}

/// Accept failures a supervised loop should retry: the listener is fine,
/// the process (fd table, kernel buffers) or the half-open connection was
/// not. ECONNABORTED is the canonical hostile-WAN case — the peer reset
/// between SYN and accept.
bool accept_errno_is_transient(int err) {
  switch (err) {
    case ECONNABORTED:
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
    case EPROTO:
    case EPERM:  // Linux firewalls report denied connections this way
      return true;
    default:
      return false;
  }
}

Error errno_error(ErrorCode code, const std::string& what) {
  return Error(code, what + ": " + std::strerror(errno));
}

Result<Contact> contact_of(const sockaddr_storage& ss) {
  char ip[INET6_ADDRSTRLEN] = {};
  std::uint16_t port = 0;
  if (ss.ss_family == AF_INET) {
    const auto* a = reinterpret_cast<const sockaddr_in*>(&ss);
    ::inet_ntop(AF_INET, &a->sin_addr, ip, sizeof ip);
    port = ntohs(a->sin_port);
  } else if (ss.ss_family == AF_INET6) {
    const auto* a = reinterpret_cast<const sockaddr_in6*>(&ss);
    ::inet_ntop(AF_INET6, &a->sin6_addr, ip, sizeof ip);
    port = ntohs(a->sin6_port);
  } else {
    return Error(ErrorCode::kInternal, "unknown address family");
  }
  return Contact{ip, port};
}

/// Polls `fd` for `events` with EINTR retry. kTimeout on expiry.
Status wait_for(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return errno_error(ErrorCode::kInternal, "poll");
  if (rc == 0) return Status(ErrorCode::kTimeout, "poll timed out");
  return Status();
}

Status set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_error(ErrorCode::kInternal, "fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) {
    return errno_error(ErrorCode::kInternal, "fcntl(F_SETFL)");
  }
  return Status();
}

}  // namespace

Result<TcpSocket> TcpSocket::dial(const Contact& target) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(target.port);
  if (int rc = ::getaddrinfo(target.host.c_str(), port_str.c_str(), &hints,
                             &res);
      rc != 0) {
    return Error(ErrorCode::kNotFound,
                 "resolve " + target.host + ": " + ::gai_strerror(rc));
  }
  struct Freer {
    addrinfo* p;
    ~Freer() { ::freeaddrinfo(p); }
  } freer{res};

  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_errno = errno;
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpSocket(std::move(fd));
    }
    last_errno = errno;
  }
  errno = last_errno;
  return errno_error(ErrorCode::kConnectionRefused,
                     "connect " + target.to_string());
}

Result<TcpSocket> TcpSocket::dial_timeout(const Contact& target,
                                          int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(target.port);
  if (int rc = ::getaddrinfo(target.host.c_str(), port_str.c_str(), &hints,
                             &res);
      rc != 0) {
    return Error(ErrorCode::kNotFound,
                 "resolve " + target.host + ": " + ::gai_strerror(rc));
  }
  struct Freer {
    addrinfo* p;
    ~Freer() { ::freeaddrinfo(p); }
  } freer{res};

  bool timed_out = false;
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_errno = errno;
      continue;
    }
    if (auto s = set_nonblocking(fd.get(), true); !s.ok()) return s.error();
    int rc;
    do {
      rc = ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      if (errno != EINPROGRESS) {
        last_errno = errno;
        continue;
      }
      auto ready = wait_for(fd.get(), POLLOUT, timeout_ms);
      if (!ready.ok()) {
        if (ready.error().code() == ErrorCode::kTimeout) {
          timed_out = true;
          continue;
        }
        return ready.error();
      }
      int soerr = 0;
      socklen_t len = sizeof soerr;
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
          soerr != 0) {
        last_errno = soerr != 0 ? soerr : errno;
        continue;
      }
    }
    if (auto s = set_nonblocking(fd.get(), false); !s.ok()) return s.error();
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return TcpSocket(std::move(fd));
  }
  if (timed_out) {
    return Error(ErrorCode::kTimeout,
                 "connect " + target.to_string() + " timed out");
  }
  errno = last_errno;
  return errno_error(ErrorCode::kConnectionRefused,
                     "connect " + target.to_string());
}

/// Classifies a failed send/recv errno: a peer abort (RST) and a
/// keepalive/retransmit expiry are different verdicts from an orderly
/// close, and callers act on the difference (retry vs give up, eviction
/// accounting, chaos-test assertions).
ErrorCode stream_errno_code() {
  switch (errno) {
    case ECONNRESET:
      return ErrorCode::kConnectionReset;
    case ETIMEDOUT:
      return ErrorCode::kTimeout;
    default:
      return ErrorCode::kConnectionClosed;
  }
}

Status TcpSocket::write_all(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error(stream_errno_code(), "send");
    }
    off += static_cast<std::size_t>(n);
  }
  return Status();
}

Result<Bytes> TcpSocket::read_exact(std::size_t n) {
  Bytes out(n);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = ::recv(fd_.get(), out.data() + off, n - off, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errno_error(stream_errno_code(), "recv");
    }
    if (got == 0) {
      return Error(ErrorCode::kConnectionClosed,
                   off == 0 ? "end of stream"
                            : "connection truncated mid-message");
    }
    off += static_cast<std::size_t>(got);
  }
  return out;
}

Result<Bytes> TcpSocket::read_some(std::size_t max) {
  Bytes out(max);
  while (true) {
    const ssize_t got = ::recv(fd_.get(), out.data(), max, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errno_error(stream_errno_code(), "recv");
    }
    if (got == 0) return Error(ErrorCode::kConnectionClosed, "end of stream");
    out.resize(static_cast<std::size_t>(got));
    return out;
  }
}

Result<Bytes> TcpSocket::read_some_timeout(std::size_t max, int timeout_ms) {
  if (auto s = wait_for(fd_.get(), POLLIN, timeout_ms); !s.ok()) {
    return s.error();
  }
  return read_some(max);
}

Status TcpSocket::set_keepalive(int idle_s, int interval_s, int count) {
  int one = 1;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one) !=
      0) {
    return errno_error(ErrorCode::kInternal, "setsockopt(SO_KEEPALIVE)");
  }
#ifdef TCP_KEEPIDLE
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_KEEPIDLE, &idle_s, sizeof idle_s);
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_KEEPINTVL, &interval_s,
               sizeof interval_s);
  ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof count);
#else
  (void)idle_s;
  (void)interval_s;
  (void)count;
#endif
  return Status();
}

Status TcpSocket::write_frame(const Bytes& frame) {
  WACS_CHECK_MSG(frame.size() <= kMaxFrameBytes, "oversized outgoing frame");
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(frame.size());
  header[0] = static_cast<std::uint8_t>(len);
  header[1] = static_cast<std::uint8_t>(len >> 8);
  header[2] = static_cast<std::uint8_t>(len >> 16);
  header[3] = static_cast<std::uint8_t>(len >> 24);
  if (auto s = write_all(header); !s.ok()) return s;
  return write_all(frame);
}

Result<Bytes> TcpSocket::read_frame(std::uint32_t max_len) {
  auto header = read_exact(4);
  if (!header.ok()) return header.error();
  const std::uint32_t len = static_cast<std::uint32_t>((*header)[0]) |
                            static_cast<std::uint32_t>((*header)[1]) << 8 |
                            static_cast<std::uint32_t>((*header)[2]) << 16 |
                            static_cast<std::uint32_t>((*header)[3]) << 24;
  if (len > max_len || len > kMaxFrameBytes) {
    return Error(ErrorCode::kProtocolError, "frame length exceeds limit");
  }
  if (len == 0) return Bytes{};
  return read_exact(len);
}

Result<Bytes> TcpSocket::read_frame_timeout(int timeout_ms,
                                            std::uint32_t max_len) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  // Poll-before-read variant of read_exact, sharing one overall budget
  // across the length header and the payload.
  auto read_exact_by = [&](std::size_t n) -> Result<Bytes> {
    Bytes out(n);
    std::size_t off = 0;
    while (off < n) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        return Error(ErrorCode::kTimeout, "read_frame timed out");
      }
      if (auto s = wait_for(fd_.get(), POLLIN, static_cast<int>(left.count()));
          !s.ok()) {
        return s.error();
      }
      const ssize_t got = ::recv(fd_.get(), out.data() + off, n - off, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return errno_error(stream_errno_code(), "recv");
      }
      if (got == 0) {
        return Error(ErrorCode::kConnectionClosed,
                     off == 0 ? "end of stream"
                              : "connection truncated mid-message");
      }
      off += static_cast<std::size_t>(got);
    }
    return out;
  };

  auto header = read_exact_by(4);
  if (!header.ok()) return header.error();
  const std::uint32_t len = static_cast<std::uint32_t>((*header)[0]) |
                            static_cast<std::uint32_t>((*header)[1]) << 8 |
                            static_cast<std::uint32_t>((*header)[2]) << 16 |
                            static_cast<std::uint32_t>((*header)[3]) << 24;
  if (len > max_len || len > kMaxFrameBytes) {
    return Error(ErrorCode::kProtocolError, "frame length exceeds limit");
  }
  if (len == 0) return Bytes{};
  return read_exact_by(len);
}

Result<Contact> TcpSocket::peer() const {
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return errno_error(ErrorCode::kInternal, "getpeername");
  }
  return contact_of(ss);
}

Result<Contact> TcpSocket::local() const {
  sockaddr_storage ss{};
  socklen_t len = sizeof ss;
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return errno_error(ErrorCode::kInternal, "getsockname");
  }
  return contact_of(ss);
}

void TcpSocket::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<TcpListener> TcpListener::bind(const std::string& bind_ip,
                                      std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error(ErrorCode::kInternal, "socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_ip.c_str(), &addr.sin_addr) != 1) {
    return Error(ErrorCode::kInvalidArgument, "bad bind address " + bind_ip);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_error(ErrorCode::kAlreadyExists,
                       "bind " + bind_ip + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), 128) != 0) {
    return errno_error(ErrorCode::kInternal, "listen");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return errno_error(ErrorCode::kInternal, "getsockname");
  }
  TcpListener l;
  l.fd_ = std::move(fd);
  l.port_ = ntohs(bound.sin_port);
  return l;
}

Result<TcpSocket> TcpListener::accept() {
  while (true) {
    if (const int injected = accept_fault_for(port_); injected != 0) {
      errno = injected;
    } else {
      const int fd = ::accept(fd_.get(), nullptr, nullptr);
      if (fd >= 0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return TcpSocket(Fd(fd));
      }
      if (errno == EINTR) continue;
    }
    if (accept_errno_is_transient(errno)) {
      return errno_error(ErrorCode::kUnavailable, "accept");
    }
    return errno_error(ErrorCode::kConnectionClosed, "accept");
  }
}

void TcpListener::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

namespace testing {

void set_accept_fault_hook(AcceptFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_accept_fault_mu);
  g_accept_fault_hook = std::move(hook);
  g_accept_fault_armed.store(static_cast<bool>(g_accept_fault_hook),
                             std::memory_order_relaxed);
}

}  // namespace testing

}  // namespace wacs::net
