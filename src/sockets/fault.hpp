// Deterministic socket-fault shim: reproducible hostile peers for the real
// Nexus Proxy.
//
// The simulated world has simnet/fault.*; the real daemons need an attacker
// that misbehaves at the syscall boundary. FaultySocket and FaultyListener
// wrap the plain TCP types and consult a seeded per-stream schedule, so a
// chaos run with seed S replays the same short writes, stalls, mid-frame
// resets, and injected accept errnos every time. Test/bench only — nothing
// in src/ outside this file links against it at runtime.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sockets/socket.hpp"

namespace wacs::net::fault {

/// Knobs for one fault stream. All probabilities are per I/O operation;
/// the schedule they drive is a pure function of (spec.seed, stream_id).
struct FaultSpec {
  std::uint64_t seed = 1;
  /// >0: each write is sliced into chunks of 1..max_write_slice bytes, so
  /// the peer sees short reads and frames arriving byte by byte.
  std::size_t max_write_slice = 0;
  /// Probability of sleeping `stall_ms` before an individual slice/read —
  /// a slow-sender (slowloris) in miniature.
  double stall_prob = 0.0;
  int stall_ms = 0;
  /// >=0: after this many payload bytes have been written, the next write
  /// aborts the connection with an RST (SO_LINGER 0 close) instead —
  /// the mid-handshake / mid-stream reset case.
  std::int64_t reset_after_bytes = -1;
};

/// Derives the schedule stream for connection `stream_id` of a spec.
/// Deterministic: independent of thread interleaving because every socket
/// owns its own stream.
class FaultSchedule {
 public:
  FaultSchedule(const FaultSpec& spec, std::uint64_t stream_id);

  /// Next write-slice length for a remaining span of `n` bytes.
  std::size_t next_slice(std::size_t n);
  /// Whether to stall before the next operation.
  bool should_stall();
  int stall_ms() const { return spec_.stall_ms; }
  /// Whether a write that has already delivered `written` bytes must turn
  /// into a reset instead.
  bool should_reset(std::int64_t written) const;
  /// The configured reset boundary (-1 = no reset). Writers clamp slices to
  /// it so the reset lands at exactly this byte count even when slicing is
  /// off.
  std::int64_t reset_after_bytes() const { return spec_.reset_after_bytes; }

 private:
  FaultSpec spec_;
  Rng rng_;
};

/// An established socket that misbehaves on schedule. The read side is
/// passed through (the victim is the peer); the write side slices, stalls,
/// and resets.
class FaultySocket {
 public:
  FaultySocket(TcpSocket sock, const FaultSpec& spec,
               std::uint64_t stream_id = 0);

  /// Writes with scheduled slicing/stalling; kConnectionReset when the
  /// schedule fired the reset (the socket is gone afterwards).
  Status write_all(std::span<const std::uint8_t> data);
  /// Length-prefixed frame via the faulty write path.
  Status write_frame(const Bytes& frame);

  Result<Bytes> read_some(std::size_t max) { return sock_.read_some(max); }
  Result<Bytes> read_exact(std::size_t n) { return sock_.read_exact(n); }
  Result<Bytes> read_frame(std::uint32_t max_len = kMaxFrameBytes) {
    return sock_.read_frame(max_len);
  }

  /// Aborts the connection with an RST now (SO_LINGER 0 + close): the peer
  /// sees ECONNRESET, not a clean EOF.
  void reset_now();

  std::int64_t bytes_written() const { return written_; }
  TcpSocket& raw() { return sock_; }
  void shutdown() { sock_.shutdown(); }

 private:
  TcpSocket sock_;
  FaultSchedule schedule_;
  std::int64_t written_ = 0;
};

/// A listener whose accept() fails with scheduled errnos. `fail_next(err)`
/// arms one injected failure; `fail_every(n, err)` arms a periodic one
/// (every n-th accept fails). Injected failures never consume a queued
/// connection — exactly like a real EMFILE.
class FaultyListener {
 public:
  FaultyListener(TcpListener listener, const FaultSpec& spec);

  Result<TcpSocket> accept();
  void fail_next(int err) { pending_errno_ = err; }
  void fail_every(int nth, int err) {
    every_nth_ = nth;
    every_errno_ = err;
  }

  std::uint16_t port() const { return listener_.port(); }
  void shutdown() { listener_.shutdown(); }
  TcpListener& raw() { return listener_; }

 private:
  TcpListener listener_;
  FaultSchedule schedule_;
  int pending_errno_ = 0;
  int every_nth_ = 0;
  int every_errno_ = 0;
  std::uint64_t accepts_ = 0;
};

/// RAII installation of the process-wide accept fault hook (see
/// net::testing::set_accept_fault_hook): the first `count` accepts on
/// `port` fail with `err`. Injecting into a specific port keeps the rest
/// of the process (other daemons, the test itself) untouched.
class ScopedAcceptFaults {
 public:
  ScopedAcceptFaults(std::uint16_t port, int err, int count);
  ~ScopedAcceptFaults();

  ScopedAcceptFaults(const ScopedAcceptFaults&) = delete;
  ScopedAcceptFaults& operator=(const ScopedAcceptFaults&) = delete;

  /// Injections delivered so far.
  int delivered() const;

 private:
  std::shared_ptr<std::atomic<int>> remaining_;
  int count_;
};

}  // namespace wacs::net::fault
