#include "firewall/rule.hpp"

namespace wacs::fw {

std::string to_string(Action a) {
  return a == Action::kAllow ? "allow" : "deny";
}

std::string to_string(Direction d) {
  return d == Direction::kInbound ? "inbound" : "outbound";
}

bool Rule::matches(const ConnAttempt& attempt) const {
  if (direction != attempt.direction) return false;
  if (src_site && *src_site != attempt.src_site) return false;
  if (src_host && *src_host != attempt.src_host) return false;
  if (dst_host && *dst_host != attempt.dst_host) return false;
  if (!ports.contains(attempt.dst_port)) return false;
  return true;
}

std::string Rule::to_string() const {
  std::string out = fw::to_string(action) + " " + fw::to_string(direction);
  if (ports.lo == 0 && ports.hi == 65535) {
    out += " tcp/*";
  } else if (ports.lo == ports.hi) {
    out += " tcp/" + std::to_string(ports.lo);
  } else {
    out += " tcp/" + std::to_string(ports.lo) + "-" + std::to_string(ports.hi);
  }
  if (src_site) out += " from site=" + *src_site;
  if (src_host) out += " from host=" + *src_host;
  if (dst_host) out += " to host=" + *dst_host;
  if (!comment.empty()) out += "  # " + comment;
  return out;
}

}  // namespace wacs::fw
