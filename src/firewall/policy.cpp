#include "firewall/policy.hpp"

#include "common/log.hpp"

namespace wacs::fw {
namespace {
const wacs::log::Logger kLog("firewall");
}

Policy Policy::typical() { return Policy(Action::kDeny, Action::kAllow); }

Policy Policy::open() { return Policy(Action::kAllow, Action::kAllow); }

Policy& Policy::add_rule(Rule rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

Policy& Policy::open_inbound(PortRange ports, std::string comment) {
  Rule rule;
  rule.action = Action::kAllow;
  rule.direction = Direction::kInbound;
  rule.ports = ports;
  rule.comment = std::move(comment);
  return add_rule(std::move(rule));
}

Policy& Policy::open_inbound_from(std::string src_host, PortRange ports,
                                  std::string comment) {
  Rule rule;
  rule.action = Action::kAllow;
  rule.direction = Direction::kInbound;
  rule.src_host = std::move(src_host);
  rule.ports = ports;
  rule.comment = std::move(comment);
  return add_rule(std::move(rule));
}

Action Policy::evaluate(const ConnAttempt& attempt) const {
  for (const Rule& rule : rules_) {
    if (rule.matches(attempt)) return rule.action;
  }
  return attempt.direction == Direction::kInbound ? default_inbound_
                                                  : default_outbound_;
}

std::string Policy::to_string() const {
  std::string out = "default inbound: " + fw::to_string(default_inbound_) +
                    ", default outbound: " + fw::to_string(default_outbound_) +
                    "\n";
  for (const Rule& rule : rules_) out += "  " + rule.to_string() + "\n";
  return out;
}

bool Firewall::permit(const ConnAttempt& attempt) {
  const bool ok = policy_.evaluate(attempt) == Action::kAllow;
  if (ok) {
    ++allowed_;
  } else {
    ++denied_;
    kLog.debug("%s denied %s %s:%s -> %s:%u", name_.c_str(),
               fw::to_string(attempt.direction).c_str(),
               attempt.src_site.c_str(), attempt.src_host.c_str(),
               attempt.dst_host.c_str(), static_cast<unsigned>(attempt.dst_port));
  }
  return ok;
}

}  // namespace wacs::fw
