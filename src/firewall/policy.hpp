// Firewall policies and the stateful gateway filter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "firewall/rule.hpp"

namespace wacs::fw {

/// An ordered rule list plus per-direction defaults. evaluate() applies the
/// first matching rule; otherwise the direction's default.
class Policy {
 public:
  Policy(Action default_inbound, Action default_outbound)
      : default_inbound_(default_inbound), default_outbound_(default_outbound) {}

  /// The paper's assumed configuration: deny-based inbound (all incoming
  /// connections refused unless a rule opens them), allow-based outbound.
  static Policy typical();

  /// Fully open (a site "with no firewall", like the paper's I-WAY/GUSTO
  /// testbeds).
  static Policy open();

  Policy& add_rule(Rule rule);

  /// Opens a single inbound port (or range) — e.g. the nxport from the
  /// outer proxy server to the inner server, or the Globus 1.1
  /// TCP_MIN_PORT..TCP_MAX_PORT workaround the paper criticizes.
  Policy& open_inbound(PortRange ports, std::string comment = "");
  Policy& open_inbound_from(std::string src_host, PortRange ports,
                            std::string comment = "");

  Action evaluate(const ConnAttempt& attempt) const;

  Action default_inbound() const { return default_inbound_; }
  Action default_outbound() const { return default_outbound_; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Multi-line audit dump of the rule set.
  std::string to_string() const;

 private:
  Action default_inbound_;
  Action default_outbound_;
  std::vector<Rule> rules_;
};

/// A named gateway filter with counters; one per site in the simulation.
class Firewall {
 public:
  Firewall(std::string name, Policy policy)
      : name_(std::move(name)), policy_(std::move(policy)) {}

  /// Evaluates and counts a connection attempt.
  bool permit(const ConnAttempt& attempt);

  const std::string& name() const { return name_; }
  const Policy& policy() const { return policy_; }
  void set_policy(Policy policy) { policy_ = std::move(policy); }
  /// Appends a rule to the live policy (daemon deployment punches holes
  /// one by one, like editing a router config).
  void add_rule(Rule rule) { policy_.add_rule(std::move(rule)); }

  std::uint64_t allowed() const { return allowed_; }
  std::uint64_t denied() const { return denied_; }
  void reset_counters() { allowed_ = denied_ = 0; }

 private:
  std::string name_;
  Policy policy_;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace wacs::fw
