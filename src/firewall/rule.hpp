// Firewall rule model.
//
// The paper's threat model (§1) distinguishes *allow-based* configurations
// (default allow, specific ports closed) from *deny-based* ones (default
// deny, specific ports opened), and assumes the typical combination: deny-
// based for incoming packets, allow-based for outgoing. Rules here match
// connection attempts — the simulator applies them at TCP establishment,
// modelling a stateful packet filter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace wacs::fw {

enum class Action { kAllow, kDeny };
enum class Direction { kInbound, kOutbound };

std::string to_string(Action a);
std::string to_string(Direction d);

/// An inclusive TCP port interval. Default-constructed = all ports.
struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;

  static PortRange single(std::uint16_t p) { return {p, p}; }
  bool contains(std::uint16_t p) const { return lo <= p && p <= hi; }
  bool valid() const { return lo <= hi; }

  friend bool operator==(const PortRange&, const PortRange&) = default;
};

/// A connection attempt as seen by a site's gateway.
struct ConnAttempt {
  std::string src_host;
  std::string src_site;
  std::string dst_host;
  std::string dst_site;
  std::uint16_t dst_port = 0;
  Direction direction = Direction::kInbound;  ///< relative to this gateway
};

/// One match-and-act entry. Unset criteria are wildcards. First matching
/// rule in a Policy wins (iptables-like semantics).
struct Rule {
  Action action = Action::kDeny;
  Direction direction = Direction::kInbound;
  std::optional<std::string> src_site;  ///< match the peer's site name
  std::optional<std::string> src_host;  ///< match the initiating host
  std::optional<std::string> dst_host;  ///< match the target host
  PortRange ports;                      ///< match the destination port
  std::string comment;                  ///< for audit dumps

  bool matches(const ConnAttempt& attempt) const;

  /// "allow inbound tcp/9900 from site=internet to host=rwcp-inner  # nxport".
  std::string to_string() const;
};

}  // namespace wacs::fw
