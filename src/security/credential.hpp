// GSI-like credentials with delegation.
//
// The Globus Security Infrastructure authenticated users with X.509
// certificates and supported *proxy credentials*: a user delegates a
// short-lived credential to a job manager, which can act on the user's
// behalf without holding the long-term key. The paper relies on this
// ("basic mechanisms such as communication, authentication, ...").
//
// Offline reproduction: public-key crypto is replaced by HMAC-SHA-256
// chains. The grid CA holds a secret; a credential is signed with it; each
// delegation level is signed with the *parent credential's MAC* (so a
// holder can delegate without contacting the CA, exactly the proxy-cert
// property). Verifiers hold the CA secret — i.e., symmetric-trust GSI.
// Every structural property of the GSI chain is preserved: expiry,
// delegation-depth limits, tamper evidence, and subject-path tracking
// ("/user/jobmanager/...").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "security/sha256.hpp"
#include "simnet/time.hpp"

namespace wacs::security {

/// One link of a credential chain.
struct Credential {
  std::string subject;        ///< e.g. "yoshio" or "yoshio/jobmanager"
  std::string issuer;         ///< "grid-ca" or the parent's subject
  sim::Time expires_at = 0;   ///< virtual-time expiry
  int max_delegation_depth = 0;  ///< how many further levels may be minted
  Digest mac{};               ///< HMAC over the canonical fields

  /// Canonical bytes covered by the MAC (everything except the MAC).
  Bytes canonical() const;

  Bytes encode() const;
  static Result<Credential> decode(BufReader& r);
};

/// A delegation chain: chain[0] is CA-issued; chain[i>0] is signed with
/// chain[i-1]'s MAC.
struct CredentialChain {
  std::vector<Credential> links;

  const Credential& leaf() const { return links.back(); }

  /// Hex-encoded wire form (fits anywhere a string credential is carried).
  std::string encode_hex() const;
  static Result<CredentialChain> decode_hex(const std::string& hex);

  Bytes encode() const;
  static Result<CredentialChain> decode(const Bytes& data);
};

/// The grid certificate authority (symmetric-trust stand-in).
class CertAuthority {
 public:
  explicit CertAuthority(std::string secret) : secret_(std::move(secret)) {}

  /// Issues a root credential for `subject`, valid until `expires_at`
  /// (virtual time), allowing `max_delegation_depth` further levels.
  CredentialChain issue(const std::string& subject, sim::Time expires_at,
                        int max_delegation_depth = 2) const;

  /// Verifies a chain at virtual time `now`: MAC chain intact, no link
  /// expired, delegation depth respected, subjects properly nested.
  Status verify(const CredentialChain& chain, sim::Time now) const;

 private:
  std::string secret_;
};

/// Mints a child credential signed by `parent`'s leaf — no CA needed (the
/// GSI proxy-credential operation). The child's lifetime is clipped to the
/// parent's and its remaining delegation depth decreases by one.
/// Fails when the parent's depth is exhausted.
Result<CredentialChain> delegate(const CredentialChain& parent,
                                 const std::string& child_role,
                                 sim::Time expires_at);

}  // namespace wacs::security
