// SHA-256 (FIPS 180-4), implemented from scratch — no crypto dependency is
// available offline, and the credential layer needs a real hash.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace wacs::security {

using Digest = std::array<std::uint8_t, 32>;

/// One-shot SHA-256.
Digest sha256(std::span<const std::uint8_t> data);
inline Digest sha256(const std::string& s) {
  return sha256(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

/// Incremental interface (used by HMAC).
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lowercase hex of a digest.
std::string to_hex(const Digest& digest);

/// One-shot hash straight to lowercase hex — the content-address form used
/// as a GASS cache key.
std::string sha256_hex(std::span<const std::uint8_t> data);
inline std::string sha256_hex(const std::string& s) {
  return sha256_hex(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}
inline std::string sha256_hex(const Bytes& b) {
  return sha256_hex(std::span<const std::uint8_t>(b));
}
/// Parses 64 hex chars; error on malformed input.
Result<Digest> digest_from_hex(const std::string& hex);

/// HMAC-SHA-256 (RFC 2104).
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);
inline Digest hmac_sha256(const Bytes& key, const Bytes& message) {
  return hmac_sha256(std::span<const std::uint8_t>(key),
                     std::span<const std::uint8_t>(message));
}

/// Constant-time digest comparison.
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace wacs::security
