#include "security/credential.hpp"

#include <algorithm>

namespace wacs::security {
namespace {

Digest sign(const std::string& key_text, const Bytes& message) {
  Bytes key(key_text.begin(), key_text.end());
  return hmac_sha256(key, message);
}

Digest sign_with_digest(const Digest& key, const Bytes& message) {
  Bytes key_bytes(key.begin(), key.end());
  return hmac_sha256(key_bytes, message);
}

}  // namespace

Bytes Credential::canonical() const {
  BufWriter w;
  w.str(subject);
  w.str(issuer);
  w.i64(expires_at);
  w.i32(max_delegation_depth);
  return std::move(w).take();
}

Bytes Credential::encode() const {
  BufWriter w;
  w.raw(canonical());
  w.raw(std::span<const std::uint8_t>(mac.data(), mac.size()));
  return std::move(w).take();
}

Result<Credential> Credential::decode(BufReader& r) {
  Credential out;
  auto subject = r.str();
  if (!subject) return subject.error();
  out.subject = std::move(*subject);
  auto issuer = r.str();
  if (!issuer) return issuer.error();
  out.issuer = std::move(*issuer);
  auto expires = r.i64();
  if (!expires) return expires.error();
  out.expires_at = *expires;
  auto depth = r.i32();
  if (!depth) return depth.error();
  out.max_delegation_depth = *depth;
  for (std::size_t i = 0; i < out.mac.size(); ++i) {
    auto b = r.u8();
    if (!b) return b.error();
    out.mac[i] = *b;
  }
  return out;
}

Bytes CredentialChain::encode() const {
  BufWriter w;
  w.u32(static_cast<std::uint32_t>(links.size()));
  for (const Credential& c : links) w.raw(c.encode());
  return std::move(w).take();
}

Result<CredentialChain> CredentialChain::decode(const Bytes& data) {
  BufReader r(data);
  auto n = r.u32();
  if (!n) return n.error();
  if (*n == 0 || *n > 16) {
    return Error(ErrorCode::kProtocolError, "implausible chain length");
  }
  CredentialChain out;
  out.links.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto c = Credential::decode(r);
    if (!c) return c.error();
    out.links.push_back(std::move(*c));
  }
  if (!r.at_end()) {
    return Error(ErrorCode::kProtocolError, "trailing bytes after chain");
  }
  return out;
}

std::string CredentialChain::encode_hex() const {
  static const char* kHex = "0123456789abcdef";
  const Bytes raw = encode();
  std::string out;
  out.reserve(raw.size() * 2);
  for (std::uint8_t b : raw) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

Result<CredentialChain> CredentialChain::decode_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Error(ErrorCode::kInvalidArgument, "odd-length credential hex");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  Bytes raw;
  raw.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Error(ErrorCode::kInvalidArgument, "bad credential hex digit");
    }
    raw.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return decode(raw);
}

CredentialChain CertAuthority::issue(const std::string& subject,
                                     sim::Time expires_at,
                                     int max_delegation_depth) const {
  Credential root;
  root.subject = subject;
  root.issuer = "grid-ca";
  root.expires_at = expires_at;
  root.max_delegation_depth = max_delegation_depth;
  root.mac = sign(secret_, root.canonical());
  return CredentialChain{{std::move(root)}};
}

Status CertAuthority::verify(const CredentialChain& chain,
                             sim::Time now) const {
  if (chain.links.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty credential chain");
  }
  const Credential& root = chain.links.front();
  if (root.issuer != "grid-ca") {
    return Status(ErrorCode::kPermissionDenied, "root not issued by the CA");
  }
  if (!digest_equal(root.mac, sign(secret_, root.canonical()))) {
    return Status(ErrorCode::kPermissionDenied, "root MAC mismatch");
  }

  for (std::size_t i = 0; i < chain.links.size(); ++i) {
    const Credential& link = chain.links[i];
    if (link.expires_at <= now) {
      return Status(ErrorCode::kPermissionDenied,
                    "credential for " + link.subject + " expired");
    }
    if (i == 0) continue;
    const Credential& parent = chain.links[i - 1];
    if (!digest_equal(link.mac,
                      sign_with_digest(parent.mac, link.canonical()))) {
      return Status(ErrorCode::kPermissionDenied,
                    "delegation MAC mismatch at level " + std::to_string(i));
    }
    if (link.issuer != parent.subject) {
      return Status(ErrorCode::kPermissionDenied,
                    "delegation issuer does not match parent subject");
    }
    if (link.subject.rfind(parent.subject + "/", 0) != 0) {
      return Status(ErrorCode::kPermissionDenied,
                    "delegated subject must extend the parent's");
    }
    if (link.expires_at > parent.expires_at) {
      return Status(ErrorCode::kPermissionDenied,
                    "delegated credential outlives its parent");
    }
    if (link.max_delegation_depth != parent.max_delegation_depth - 1 ||
        link.max_delegation_depth < 0) {
      return Status(ErrorCode::kPermissionDenied,
                    "delegation depth violation");
    }
  }
  return Status();
}

Result<CredentialChain> delegate(const CredentialChain& parent,
                                 const std::string& child_role,
                                 sim::Time expires_at) {
  if (parent.links.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty parent chain");
  }
  const Credential& leaf = parent.leaf();
  if (leaf.max_delegation_depth <= 0) {
    return Error(ErrorCode::kPermissionDenied,
                 "delegation depth exhausted for " + leaf.subject);
  }
  Credential child;
  child.subject = leaf.subject + "/" + child_role;
  child.issuer = leaf.subject;
  child.expires_at = std::min(expires_at, leaf.expires_at);
  child.max_delegation_depth = leaf.max_delegation_depth - 1;
  child.mac = sign_with_digest(leaf.mac, child.canonical());

  CredentialChain out = parent;
  out.links.push_back(std::move(child));
  return out;
}

}  // namespace wacs::security
