#include "common/config.hpp"

#include <charconv>

namespace wacs {

Result<std::int64_t> Env::get_int(const std::string& key,
                                  std::int64_t fallback) const {
  auto raw = get(key);
  if (!raw) return fallback;
  std::int64_t v = 0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) {
    return Error(ErrorCode::kInvalidArgument,
                 "config key " + key + " has non-integer value '" + *raw + "'");
  }
  return v;
}

Result<std::optional<Contact>> Env::get_contact(const std::string& key) const {
  auto raw = get(key);
  if (!raw) return std::optional<Contact>{};
  auto parsed = Contact::parse(*raw);
  if (!parsed) {
    return Error(ErrorCode::kInvalidArgument,
                 "config key " + key + ": " + parsed.error().to_string());
  }
  return std::optional<Contact>{*parsed};
}

}  // namespace wacs
