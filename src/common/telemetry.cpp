#include "common/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace wacs::telemetry {
namespace {

// Per-OS-thread state. Exactly one simulated process (or the engine)
// executes at any instant, so these are effectively per-Process and every
// mutation is ordered by the engine's semaphore handoffs.
thread_local std::vector<TraceContext> t_context_stack;
thread_local std::string t_track = "engine";

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

// -------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  WACS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  reset();
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, x);
  if (prev == 0) {
    // First observation seeds min/max; the CAS helpers then keep them tight.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  } else {
    atomic_min_double(min_, x);
    atomic_max_double(max_, x);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0 : max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo = i == 0 ? std::min(min, bounds.empty() ? min : bounds[0])
                             : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : max;
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      const double frac =
          1.0 - (static_cast<double>(seen) - target) /
                    static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
  }
  return max;
}

Histogram::Summary Histogram::Snapshot::summary() const {
  Summary s;
  s.count = count;
  s.sum = sum;
  s.min = min;
  s.max = max;
  s.mean = mean();
  s.p50 = quantile(0.5);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  std::size_t count) {
  WACS_CHECK_MSG(lo > 0 && hi > lo, "exponential bounds need 0 < lo < hi");
  WACS_CHECK_MSG(count >= 2, "exponential bounds need at least two buckets");
  std::vector<double> bounds;
  bounds.reserve(count);
  const double ratio =
      std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
  double b = lo;
  for (std::size_t i = 0; i + 1 < count; ++i) {
    bounds.push_back(b);
    b *= ratio;
  }
  bounds.push_back(hi);  // exact top bound, no accumulated rounding
  return bounds;
}

const std::vector<double>& default_ms_buckets() {
  static const std::vector<double> kBuckets = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1,    2.5,   5,     10,
      25,   50,    100,  250,  500,  1000, 2500, 5000,  10000, 30000,
      60000};
  return kBuckets;
}

const std::vector<double>& exponential_ms_buckets() {
  static const std::vector<double> kBuckets =
      Histogram::exponential_bounds(0.001, 10000.0, 40);
  return kBuckets;
}

// --------------------------------------------------------------- Registry

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

Registry::Delta Registry::delta_since(Snapshot& base) const {
  std::lock_guard<std::mutex> lock(mu_);
  Delta d;
  // Instruments only ever get added, and both the maps and the snapshot
  // vectors are name-sorted, so a single merge walk finds every change.
  auto merge = [](const auto& live, auto& base_vec, auto& out,
                  auto value_of) {
    std::size_t i = 0;
    for (const auto& [name, instr] : live) {
      const std::int64_t cur = value_of(*instr);
      std::int64_t prev = 0;
      if (i < base_vec.size() && base_vec[i].first == name) {
        prev = static_cast<std::int64_t>(base_vec[i].second);
        base_vec[i].second = static_cast<
            std::decay_t<decltype(base_vec[i].second)>>(cur);
        ++i;
      }
      if (cur != prev) out.emplace_back(name, cur - prev);
    }
  };
  merge(counters_, base.counters, d.counters, [](const Counter& c) {
    return static_cast<std::int64_t>(c.value());
  });
  merge(gauges_, base.gauges, d.gauges,
        [](const Gauge& g) { return g.value(); });
  // New names (absent from base) must appear in the next delta's base too.
  if (base.counters.size() != counters_.size()) {
    base.counters.clear();
    for (const auto& [name, c] : counters_) {
      base.counters.emplace_back(name, c->value());
    }
  }
  if (base.gauges.size() != gauges_.size()) {
    base.gauges.clear();
    for (const auto& [name, g] : gauges_) {
      base.gauges.emplace_back(name, g->value());
    }
  }
  return d;
}

std::string Registry::render() const {
  const Snapshot s = snapshot();
  std::string out;
  if (!s.counters.empty() || !s.gauges.empty()) {
    TextTable t({"metric", "value"});
    for (const auto& [name, v] : s.counters) t.add_row({name, format_count(v)});
    for (const auto& [name, v] : s.gauges) t.add_row({name, std::to_string(v)});
    out += t.to_string();
  }
  if (!s.histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p99", "min", "max"});
    for (const auto& [name, h] : s.histograms) {
      t.add_row({name, format_count(h.count), format_double(h.mean()),
                 format_double(h.quantile(0.5)), format_double(h.quantile(0.99)),
                 format_double(h.min), format_double(h.max)});
    }
    if (!out.empty()) out += "\n";
    out += t.to_string();
  }
  return out;
}

Registry& metrics() {
  static Registry* g_registry = new Registry();  // leaked: outlives daemons
  return *g_registry;
}

// ----------------------------------------------------------------- Tracer

TraceContext current_context() {
  return t_context_stack.empty() ? TraceContext{} : t_context_stack.back();
}

void set_current_track(const std::string& track) { t_track = track; }

const std::string& current_track() { return t_track; }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_trace_.store(1, std::memory_order_relaxed);
  next_span_.store(1, std::memory_order_relaxed);
  next_flow_.store(1, std::memory_order_relaxed);
}

void Tracer::set_clock(const void* owner, std::function<TimeNs()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_owner_ = owner;
  clock_ = std::move(clock);
}

void Tracer::clear_clock(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clock_owner_ != owner) return;  // a newer engine already took over
  clock_owner_ = nullptr;
  clock_ = nullptr;
}

TimeNs Tracer::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_ ? clock_() : 0;
}

std::uint64_t Tracer::next_trace_id() {
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::next_span_id() {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record_span(std::string_view cat, std::string name, TimeNs start,
                         TimeNs end, TraceContext ctx, std::uint64_t parent,
                         json::Value args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{Event::Kind::kSpan, std::string(cat),
                          std::move(name), t_track, start, end - start,
                          ctx.trace_id, ctx.span_id, parent, std::move(args)});
}

void Tracer::instant(std::string_view cat, std::string name, json::Value args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const TraceContext ctx = current_context();
  events_.push_back(Event{Event::Kind::kInstant, std::string(cat),
                          std::move(name), t_track, clock_ ? clock_() : 0, 0,
                          ctx.trace_id, ctx.span_id, 0, std::move(args)});
}

std::uint64_t Tracer::flow_start(std::string_view cat, TraceContext ctx,
                                 json::Value args) {
  // An invalid ctx (send from outside any span) still gets an arrow: the
  // arrow's track + timestamps carry the causal link even with no sender
  // span to anchor it, and critical-path extraction needs every message
  // hop — job-completion sends, for one, happen outside spans.
  if (!enabled()) return 0;
  const std::uint64_t id = next_flow_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{Event::Kind::kFlowStart, std::string(cat), "msg",
                          t_track, clock_ ? clock_() : 0, 0, ctx.trace_id, id,
                          ctx.span_id, std::move(args)});
  return id;
}

void Tracer::flow_end(std::uint64_t flow, TraceContext ctx) {
  if (!enabled() || flow == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{Event::Kind::kFlowEnd, "flow", "msg", t_track,
                          clock_ ? clock_() : 0, 0, ctx.trace_id, flow,
                          ctx.span_id, {}});
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Event& e : events_) {
    json::Value line = json::Value::object();
    switch (e.kind) {
      case Event::Kind::kSpan: line.set("type", "span"); break;
      case Event::Kind::kInstant: line.set("type", "instant"); break;
      case Event::Kind::kFlowStart: line.set("type", "flow_s"); break;
      case Event::Kind::kFlowEnd: line.set("type", "flow_f"); break;
    }
    line.set("cat", e.cat);
    line.set("name", e.name);
    line.set("track", e.track);
    line.set("ts", e.ts);
    if (e.kind == Event::Kind::kSpan) line.set("dur", e.dur);
    line.set("trace", e.trace_id);
    if (e.kind == Event::Kind::kFlowStart || e.kind == Event::Kind::kFlowEnd) {
      line.set("flow", e.span_id);
      if (e.parent != 0) line.set("span", e.parent);
    } else {
      line.set("span", e.span_id);
      if (e.parent != 0) line.set("parent", e.parent);
    }
    if (!e.args.members().empty()) line.set("args", e.args);
    line.dump_to(out);
    out += '\n';
  }
  return out;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);

  // Track -> (pid, tid). Tracks named "proc@host" group under the host;
  // everything else (the engine, bench main) groups under "sim". Ids are
  // assigned in first-appearance order, which is deterministic.
  std::vector<std::string> groups;                      // index = pid - 1
  std::vector<std::pair<std::string, int>> tracks;      // track -> pid
  auto split_group = [](const std::string& track) -> std::string {
    const auto at = track.rfind('@');
    if (at == std::string::npos || at + 1 == track.size()) return "sim";
    // Strip a ".suffix" after the host ("relay@gw.fwd" -> "gw").
    std::string host = track.substr(at + 1);
    const auto dot = host.find('.');
    if (dot != std::string::npos) host = host.substr(0, dot);
    return host;
  };
  auto ids_for = [&](const std::string& track) -> std::pair<int, int> {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i].first == track) {
        return {tracks[i].second, static_cast<int>(i) + 1};
      }
    }
    const std::string group = split_group(track);
    int pid = 0;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i] == group) pid = static_cast<int>(i) + 1;
    }
    if (pid == 0) {
      groups.push_back(group);
      pid = static_cast<int>(groups.size());
    }
    tracks.emplace_back(track, pid);
    return {pid, static_cast<int>(tracks.size())};
  };

  std::vector<json::Value> body;
  body.reserve(events_.size());
  for (const Event& e : events_) {
    const auto [pid, tid] = ids_for(e.track);
    json::Value ev = json::Value::object();
    ev.set("name", e.name);
    ev.set("cat", e.cat);
    switch (e.kind) {
      case Event::Kind::kSpan:
        ev.set("ph", "X");
        ev.set("dur", static_cast<double>(e.dur) / 1000.0);
        break;
      case Event::Kind::kInstant:
        ev.set("ph", "i");
        ev.set("s", "t");
        break;
      case Event::Kind::kFlowStart:
        ev.set("ph", "s");
        ev.set("id", e.span_id);
        break;
      case Event::Kind::kFlowEnd:
        ev.set("ph", "f");
        ev.set("bp", "e");
        ev.set("id", e.span_id);
        break;
    }
    ev.set("ts", static_cast<double>(e.ts) / 1000.0);
    ev.set("pid", pid);
    ev.set("tid", tid);
    if (!e.args.members().empty()) {
      ev.set("args", e.args);
    } else if (e.kind == Event::Kind::kSpan) {
      json::Value args = json::Value::object();
      args.set("trace", e.trace_id);
      args.set("span", e.span_id);
      if (e.parent != 0) args.set("parent", e.parent);
      ev.set("args", args);
    }
    body.push_back(std::move(ev));
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    json::Value meta = json::Value::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", static_cast<int>(i) + 1);
    meta.set("args", json::Value::object().set("name", groups[i]));
    if (!first) out += ",\n";
    first = false;
    meta.dump_to(out);
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    json::Value meta = json::Value::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", tracks[i].second);
    meta.set("tid", static_cast<int>(i) + 1);
    meta.set("args", json::Value::object().set("name", tracks[i].first));
    if (!first) out += ",\n";
    first = false;
    meta.dump_to(out);
  }
  for (const json::Value& ev : body) {
    if (!first) out += ",\n";
    first = false;
    ev.dump_to(out);
  }
  out += "\n]}\n";
  return out;
}

Tracer& tracer() {
  static Tracer* g_tracer = new Tracer();  // leaked: outlives daemons
  return *g_tracer;
}

// ------------------------------------------------------------------- Span

Span::Span(std::string_view cat, std::string name) {
  if (!tracer().enabled()) return;
  open(cat, std::move(name), current_context());
}

Span::Span(std::string_view cat, std::string name, TraceContext parent) {
  if (!tracer().enabled()) return;
  if (!parent.valid()) parent = current_context();
  open(cat, std::move(name), parent);
}

void Span::open(std::string_view cat, std::string name, TraceContext parent) {
  active_ = true;
  cat_ = std::string(cat);
  name_ = std::move(name);
  Tracer& tr = tracer();
  ctx_.trace_id = parent.valid() ? parent.trace_id : tr.next_trace_id();
  ctx_.span_id = tr.next_span_id();
  parent_ = parent.valid() ? parent.span_id : 0;
  start_ = tr.now();
  t_context_stack.push_back(ctx_);
}

Span::~Span() {
  if (!active_) return;
  // LIFO by construction: spans are scoped objects on one process's stack.
  WACS_CHECK(!t_context_stack.empty() &&
             t_context_stack.back().span_id == ctx_.span_id);
  t_context_stack.pop_back();
  Tracer& tr = tracer();
  tr.record_span(cat_, std::move(name_), start_, tr.now(), ctx_, parent_,
                 std::move(args_));
}

void Span::arg(std::string key, json::Value v) {
  if (!active_) return;
  args_.set(std::move(key), std::move(v));
}

}  // namespace wacs::telemetry
