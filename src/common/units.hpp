// Unit helpers: sizes in bytes, rates in bytes/second, durations in
// simulated seconds. Named constructors keep testbed definitions readable
// ("mbit(1.5)" for the IMnet WAN link) and make unit mistakes grep-able.
#pragma once

#include <cstdint>

namespace wacs {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/// Link rates: the paper quotes decimal network units (100Base-T = 100
/// megabit/s; IMnet = 1.5 megabit/s).
constexpr double mbit_per_sec(double mbit) { return mbit * 1e6 / 8.0; }
constexpr double kbit_per_sec(double kbit) { return kbit * 1e3 / 8.0; }
constexpr double mbyte_per_sec(double mb) { return mb * 1e6; }

/// Durations in seconds.
constexpr double usec(double v) { return v * 1e-6; }
constexpr double msec(double v) { return v * 1e-3; }

}  // namespace wacs
