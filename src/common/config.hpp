// Environment-style configuration maps.
//
// Globus 1.x configured the proxy route through environment variables
// (NEXUS_PROXY_OUTER_SERVER, NEXUS_PROXY_INNER_SERVER, TCP_MIN_PORT,
// TCP_MAX_PORT). Each simulated process carries an Env of its own, so a rank
// at RWCP can be proxy-configured while a rank at ETL is not — exactly the
// per-host deployment the paper describes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/contact.hpp"
#include "common/error.hpp"

namespace wacs {

/// String key/value configuration with typed getters.
class Env {
 public:
  Env() = default;

  void set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
  }
  void unset(const std::string& key) { values_.erase(key); }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::optional<std::string> get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  /// Integer getter; returns error (not fallback) when the value is present
  /// but unparsable, so configuration typos surface loudly.
  Result<std::int64_t> get_int(const std::string& key,
                               std::int64_t fallback) const;

  /// Contact getter with the same present-but-bad policy.
  Result<std::optional<Contact>> get_contact(const std::string& key) const;

  std::size_t size() const { return values_.size(); }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// Canonical keys, mirroring the Globus 1.x names used in the paper.
namespace env_keys {
inline constexpr const char* kProxyOuterServer = "NEXUS_PROXY_OUTER_SERVER";
inline constexpr const char* kProxyInnerServer = "NEXUS_PROXY_INNER_SERVER";
inline constexpr const char* kTcpMinPort = "TCP_MIN_PORT";
inline constexpr const char* kTcpMaxPort = "TCP_MAX_PORT";
/// Contact of the site's GASS cache server (host:port). Resources resolve
/// gass:// input URLs through this server so WAN pulls happen once per site.
inline constexpr const char* kGassServer = "WACS_GASS_SERVER";
}  // namespace env_keys

}  // namespace wacs
