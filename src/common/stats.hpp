// Streaming summary statistics and table formatting helpers.
//
// The paper reports max / min / average per host group (Tables 5-6) and
// latency / bandwidth pairs (Table 2); RunningStats accumulates those in one
// pass, and the format helpers render the bench tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wacs {

/// One-pass min/max/mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  /// Folds another accumulator in, as if its samples had been add()ed here
  /// (parallel-variance combination) — lets per-rank stats merge without
  /// replaying samples.
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double min() const;   ///< Precondition: count() > 0.
  double max() const;   ///< Precondition: count() > 0.
  double mean() const;  ///< 0 when empty.
  double variance() const;  ///< population variance; 0 when n < 2.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
};

/// Pretty-printers used by the bench harness.
std::string format_duration_ms(double ms);     ///< "0.41 ms", "25.0 ms"
std::string format_bandwidth(double bytes_per_sec);  ///< "6.32 MB/s", "70.5 KB/s"
std::string format_count(std::uint64_t n);     ///< "12,345"

/// Fixed-width text table: column headers plus rows, padded to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with a header separator; every row padded per-column.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wacs
