// Minimal JSON document model for machine-readable telemetry output.
//
// Telemetry artifacts (trace JSONL, Chrome trace_event files, BENCH_*.json
// reports) must be byte-identical across same-seed runs, so this model is
// deliberately deterministic: objects preserve insertion order, integers and
// doubles are distinct types (integers never pass through floating point),
// and doubles render via std::to_chars shortest round-trip form. The parser
// exists for tooling (tools/trace_dump) and tests, not for untrusted input
// at scale.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace wacs::json {

class Value;

using Array = std::vector<Value>;
using Members = std::vector<std::pair<std::string, Value>>;

/// One JSON value. Cheap to move; copying deep-copies.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(int v) : type_(Type::kInt), int_(v) {}  // NOLINT
  Value(unsigned v) : type_(Type::kInt), int_(v) {}  // NOLINT
  Value(std::int64_t v) : type_(Type::kInt), int_(v) {}  // NOLINT
  /// Counters are u64 but JSON interop caps at i64; telemetry values stay
  /// far below that.
  Value(std::uint64_t v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : type_(Type::kDouble), double_(v) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Value array() { Value v; v.type_ = Type::kArray; return v; }
  static Value object() { Value v; v.type_ = Type::kObject; return v; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }

  // -- builders ----------------------------------------------------------
  /// Appends to an array (converts a null value into an array first).
  Value& push_back(Value v);
  /// Sets a key on an object (converts a null value into an object first).
  /// Insertion order is preserved; setting an existing key overwrites it
  /// in place.
  Value& set(std::string key, Value v);

  // -- accessors ---------------------------------------------------------
  bool as_bool(bool fallback = false) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  double as_double(double fallback = 0) const;  ///< ints convert
  const std::string& as_string() const;         ///< "" unless kString
  const Array& items() const;                   ///< empty unless kArray
  const Members& members() const;               ///< empty unless kObject
  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);

  /// Compact deterministic serialization (no whitespace).
  std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  static Result<Value> parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Members members_;
};

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
void append_quoted(std::string& out, std::string_view s);

}  // namespace wacs::json
