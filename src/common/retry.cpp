#include "common/retry.hpp"

#include <algorithm>
#include <cmath>

namespace wacs {

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kTimeout:
    case ErrorCode::kConnectionRefused:
    case ErrorCode::kConnectionReset:
      return true;
    default:
      return false;
  }
}

std::int64_t RetrySchedule::next_delay_ns(std::int64_t elapsed_ns) {
  ++attempts_;
  if (attempts_ >= policy_.max_attempts) return -1;
  // Exponential base for the k-th retry: initial * multiplier^(k-1), capped.
  double base = static_cast<double>(policy_.initial_backoff_ns);
  for (int i = 1; i < attempts_; ++i) {
    base *= policy_.multiplier;
    if (base >= static_cast<double>(policy_.max_backoff_ns)) break;
  }
  base = std::min(base, static_cast<double>(policy_.max_backoff_ns));
  // Symmetric jitter in [-j, +j] around the base, never below zero. The rng
  // is consumed once per retry so the sequence is a pure function of
  // (policy, seed, retry index).
  const double factor =
      1.0 + policy_.jitter * (2.0 * rng_.uniform01() - 1.0);
  std::int64_t delay =
      static_cast<std::int64_t>(std::llround(base * std::max(0.0, factor)));
  if (policy_.deadline_ns >= 0 &&
      elapsed_ns + delay >= policy_.deadline_ns) {
    return -1;  // the budget would expire before the retry could start
  }
  return delay;
}

}  // namespace wacs
