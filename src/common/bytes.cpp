#include "common/bytes.hpp"

namespace wacs {

Bytes pattern_bytes(std::size_t n, std::uint64_t seed) {
  Bytes out(n);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL;
  for (std::size_t i = 0; i < n; ++i) {
    // splitmix-ish byte stream: cheap, deterministic, sensitive to position.
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    out[i] = static_cast<std::uint8_t>(z ^ (z >> 31));
  }
  return out;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wacs
