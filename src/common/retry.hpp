// Reusable retry policy: bounded attempts, exponential backoff with
// deterministic jitter, and an overall deadline.
//
// The wide-area failure literature (NorduGrid's GridFTP evaluation in
// particular) attributes most transfer failures to transient network faults
// that a bounded retry recovers; this header is the single place that policy
// lives. It is deliberately free of any simnet dependency: the simulated
// stacks sleep in virtual time and the real-socket nxproxy client sleeps on
// the wall clock, so the policy only *computes* delays and the caller supplies
// sleep/now functions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace wacs {

/// Which failures are worth retrying: transient unavailability, timeouts,
/// refused connections (daemon restarting), and abnormal resets (link flap).
/// Permission denials and protocol violations are permanent and never retried.
bool is_retryable(ErrorCode code);

/// Declarative retry policy. All durations are nanoseconds so the same policy
/// drives both virtual (simnet) and wall-clock (nxproxy) time.
struct RetryPolicy {
  int max_attempts = 4;  ///< total tries, including the first; >= 1
  std::int64_t initial_backoff_ns = 10'000'000;  ///< delay after 1st failure
  double multiplier = 2.0;                       ///< backoff growth factor
  std::int64_t max_backoff_ns = 1'000'000'000;   ///< cap on a single delay
  double jitter = 0.1;              ///< +/- fraction applied to each delay
  std::int64_t deadline_ns = -1;    ///< overall budget from first try; <0=none

  /// A policy that tries exactly once (no retries, no added latency).
  static RetryPolicy none() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Tracks one retry loop: yields the jittered delay before each retry and
/// enforces max_attempts plus the overall deadline. Deterministic: the same
/// (policy, seed) produces the same delay sequence.
class RetrySchedule {
 public:
  RetrySchedule(RetryPolicy policy, std::uint64_t seed)
      : policy_(std::move(policy)), rng_(seed) {}

  /// Attempts handed out so far (0 before the first next_delay_ns call
  /// answers for attempt #1's failure).
  int attempts() const { return attempts_; }

  /// After attempt `attempts()+1` fails with `elapsed_ns` spent since the
  /// first try: returns the delay to sleep before retrying, or -1 when the
  /// loop must give up (attempt budget exhausted, or the deadline would pass
  /// before/during the backoff sleep).
  std::int64_t next_delay_ns(std::int64_t elapsed_ns);

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
};

/// Runs `op` under `policy`. `op` must return Status or Result<T>;
/// `sleep(ns)` blocks the caller for `ns` (virtual or wall time); `now()`
/// returns a monotonic nanosecond clock used for the overall deadline.
/// Non-retryable errors pass straight through.
template <typename Op, typename Sleep, typename Now>
auto retry_call(const RetryPolicy& policy, std::uint64_t seed, Op&& op,
                Sleep&& sleep, Now&& now) -> decltype(op()) {
  RetrySchedule schedule(policy, seed);
  const std::int64_t start = now();
  for (;;) {
    auto result = op();
    if (result.ok() || !is_retryable(result.error().code())) return result;
    const std::int64_t delay = schedule.next_delay_ns(now() - start);
    if (delay < 0) return result;
    if (delay > 0) sleep(delay);
  }
}

}  // namespace wacs
