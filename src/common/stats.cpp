#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace wacs {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double RunningStats::min() const {
  WACS_CHECK(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  WACS_CHECK(n_ > 0);
  return max_;
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string format_duration_ms(double ms) {
  char buf[64];
  if (ms < 0.01) {
    std::snprintf(buf, sizeof buf, "%.1f us", ms * 1000.0);
  } else if (ms < 10.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ms);
  } else if (ms < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.1f ms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", ms / 1000.0);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_sec) {
  char buf[64];
  if (bytes_per_sec >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f MB/s", bytes_per_sec / 1e6);
  } else if (bytes_per_sec >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f KB/s", bytes_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f B/s", bytes_per_sec);
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  WACS_CHECK_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) line += "  ";
    }
    // Trim trailing pad so lines diff cleanly.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 != widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace wacs
