// Deterministic pseudo-random number generation (xoshiro256**).
//
// Simulations, workload generators, and property tests all need reproducible
// randomness that is independent of the standard library implementation;
// std::mt19937 sequences are stable but the distributions are not, so we own
// both the generator and the distribution code.
#pragma once

#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace wacs {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm),
/// seeded via splitmix64 so that small consecutive seeds give unrelated
/// streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to fill state; avoids the all-zero state for any seed.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    WACS_CHECK(lo <= hi);
    const std::uint64_t span = hi - lo;
    if (span == std::numeric_limits<std::uint64_t>::max()) return next_u64();
    // Debiased modulo (rejection sampling).
    const std::uint64_t bound = span + 1;
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return lo + v % bound;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  bool bernoulli(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace wacs
