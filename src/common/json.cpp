#include "common/json.hpp"

#include <charconv>
#include <cstdio>

namespace wacs::json {
namespace {

const std::string kEmptyString;
const Array kEmptyArray;
const Members kEmptyMembers;

}  // namespace

Value& Value::push_back(Value v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  WACS_CHECK_MSG(type_ == Type::kArray, "push_back on a non-array");
  array_.push_back(std::move(v));
  return *this;
}

Value& Value::set(std::string key, Value v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  WACS_CHECK_MSG(type_ == Type::kObject, "set on a non-object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

bool Value::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

std::int64_t Value::as_int(std::int64_t fallback) const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
  return fallback;
}

double Value::as_double(double fallback) const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return fallback;
}

const std::string& Value::as_string() const {
  return type_ == Type::kString ? string_ : kEmptyString;
}

const Array& Value::items() const {
  return type_ == Type::kArray ? array_ : kEmptyArray;
}

const Members& Value::members() const {
  return type_ == Type::kObject ? members_ : kEmptyMembers;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Value::find(std::string_view key) {
  return const_cast<Value*>(std::as_const(*this).find(key));
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Value::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      auto [p, ec] = std::to_chars(buf, buf + sizeof buf, int_);
      (void)ec;
      out.append(buf, p);
      break;
    }
    case Type::kDouble: {
      // Shortest round-trip form: deterministic and exact. JSON has no
      // inf/nan; clamp those to null rather than emit an invalid document.
      if (double_ != double_ || double_ > 1.7e308 || double_ < -1.7e308) {
        out += "null";
        break;
      }
      char buf[40];
      auto [p, ec] = std::to_chars(buf, buf + sizeof buf, double_);
      (void)ec;
      out.append(buf, p);
      break;
    }
    case Type::kString:
      append_quoted(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        append_quoted(out, k);
        out += ':';
        v.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// ------------------------------------------------------------------ parser

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Error err(const std::string& what) const {
    return Error(ErrorCode::kProtocolError,
                 "json: " + what + " at offset " + std::to_string(pos));
  }

  Result<Value> parse_value() {
    skip_ws();
    if (at_end()) return err("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return Value(std::move(*s));
      }
      case 't':
        if (text.substr(pos, 4) == "true") { pos += 4; return Value(true); }
        return err("bad literal");
      case 'f':
        if (text.substr(pos, 5) == "false") { pos += 5; return Value(false); }
        return err("bad literal");
      case 'n':
        if (text.substr(pos, 4) == "null") { pos += 4; return Value(nullptr); }
        return err("bad literal");
      default:
        return parse_number();
    }
  }

  Result<std::string> parse_string() {
    if (peek() != '"') return err("expected string");
    ++pos;
    std::string out;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return err("truncated \\u escape");
          unsigned code = 0;
          auto [p, ec] = std::from_chars(text.data() + pos,
                                         text.data() + pos + 4, code, 16);
          if (ec != std::errc() || p != text.data() + pos + 4) {
            return err("bad \\u escape");
          }
          pos += 4;
          // Our own writer only escapes control characters; decode the
          // basic-multilingual-plane scalar as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return err("bad escape");
      }
    }
    return err("unterminated string");
  }

  Result<Value> parse_number() {
    const std::size_t start = pos;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
    bool is_double = false;
    while (!at_end()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    const std::string_view tok = text.substr(start, pos - start);
    if (tok.empty()) return err("expected value");
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(v);
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      return err("bad number");
    }
    return Value(d);
  }

  Result<Value> parse_array() {
    ++pos;  // '['
    Value out = Value::array();
    skip_ws();
    if (!at_end() && peek() == ']') { ++pos; return out; }
    while (true) {
      auto v = parse_value();
      if (!v.ok()) return v.error();
      out.push_back(std::move(*v));
      skip_ws();
      if (at_end()) return err("unterminated array");
      if (peek() == ',') { ++pos; continue; }
      if (peek() == ']') { ++pos; return out; }
      return err("expected ',' or ']'");
    }
  }

  Result<Value> parse_object() {
    ++pos;  // '{'
    Value out = Value::object();
    skip_ws();
    if (!at_end() && peek() == '}') { ++pos; return out; }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (at_end() || peek() != ':') return err("expected ':'");
      ++pos;
      auto v = parse_value();
      if (!v.ok()) return v.error();
      out.set(std::move(*key), std::move(*v));
      skip_ws();
      if (at_end()) return err("unterminated object");
      if (peek() == ',') { ++pos; continue; }
      if (peek() == '}') { ++pos; return out; }
      return err("expected ',' or '}'");
    }
  }
};

}  // namespace

Result<Value> Value::parse(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value();
  if (!v.ok()) return v;
  p.skip_ws();
  if (!p.at_end()) return p.err("trailing characters");
  return v;
}

}  // namespace wacs::json
