// Contact strings — "host:port" endpoint addresses.
//
// Globus/Nexus identifies communication endpoints by textual contact strings
// exchanged out of band (e.g. in job startup messages). The Nexus Proxy works
// by *rewriting* them: a process behind a firewall advertises the outer
// server's address instead of its own. Keeping the address a first-class type
// makes that rewrite explicit and testable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace wacs {

/// A network endpoint address: hostname plus TCP port.
struct Contact {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const {
    return host + ":" + std::to_string(port);
  }

  friend bool operator==(const Contact&, const Contact&) = default;

  /// Parses "host:port". Rejects empty hosts, missing/garbage/overflowing
  /// ports. IPv6 literals use "[addr]:port".
  static Result<Contact> parse(std::string_view text);
};

}  // namespace wacs
