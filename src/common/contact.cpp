#include "common/contact.hpp"

#include <charconv>

namespace wacs {

Result<Contact> Contact::parse(std::string_view text) {
  auto bad = [&](const char* why) {
    return Error(ErrorCode::kInvalidArgument,
                 "bad contact string '" + std::string(text) + "': " + why);
  };

  std::string_view host_part;
  std::string_view port_part;
  if (!text.empty() && text.front() == '[') {
    // IPv6 literal: [addr]:port
    auto close = text.find(']');
    if (close == std::string_view::npos) return bad("unterminated '['");
    host_part = text.substr(1, close - 1);
    if (close + 1 >= text.size() || text[close + 1] != ':') {
      return bad("missing ':port' after ']'");
    }
    port_part = text.substr(close + 2);
  } else {
    auto colon = text.rfind(':');
    if (colon == std::string_view::npos) return bad("missing ':'");
    host_part = text.substr(0, colon);
    port_part = text.substr(colon + 1);
  }

  if (host_part.empty()) return bad("empty host");
  if (port_part.empty()) return bad("empty port");

  std::uint32_t port = 0;
  auto [ptr, ec] = std::from_chars(port_part.data(),
                                   port_part.data() + port_part.size(), port);
  if (ec != std::errc() || ptr != port_part.data() + port_part.size()) {
    return bad("port is not a number");
  }
  if (port > 65535) return bad("port out of range");

  return Contact{std::string(host_part), static_cast<std::uint16_t>(port)};
}

}  // namespace wacs
