// Minimal leveled logger. Thread-safe, cheap when the level is disabled.
//
// Components log through a named Logger so that traces from the many daemons
// in a simulation (gatekeeper, allocator, outer/inner proxy servers, ranks)
// can be distinguished and filtered.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <type_traits>

namespace wacs::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded. Default: kWarn (so
/// tests and benches stay quiet unless asked), overridable once at startup
/// via the WACS_LOG_LEVEL environment variable ("trace".."off").
void set_level(Level level);
Level level();

/// Structured sink: when on, every line is a single JSON object
/// {"ts_ms": <epoch ms>, "level": "...", "component": "...", "msg": "..."}
/// so daemon logs are machine-parsable next to metrics. Off by default
/// (human format); WACS_LOG_JSON=1 turns it on at startup.
void set_json(bool on);
bool json_enabled();

/// Formats one log line (no trailing newline) in the active sink format.
/// Exposed so tests can check the JSON shape without scraping stderr; in
/// JSON mode `ts_ms` is stamped at call time.
std::string format_line(Level level, std::string_view component,
                        std::string_view body);

/// Only these pass safely through C varargs; anything else (std::string is
/// the classic offender) is undefined behavior at the `...` boundary, so
/// Logger rejects it at compile time. Pass .c_str() instead.
template <typename T>
inline constexpr bool is_printfable_v =
    std::is_arithmetic_v<std::decay_t<T>> ||
    std::is_pointer_v<std::decay_t<T>> || std::is_enum_v<std::decay_t<T>>;

std::string_view to_string(Level level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
Level parse_level(std::string_view name);

/// printf-style log statement. `component` names the emitting subsystem.
void logf(Level level, std::string_view component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Component-bound convenience wrapper.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void trace(const char* fmt, Args... args) const {
    static_assert((is_printfable_v<Args> && ...),
                  "log arguments must be printf-compatible scalars");
    logf(Level::kTrace, component_, fmt, args...);
  }
  template <typename... Args>
  void debug(const char* fmt, Args... args) const {
    static_assert((is_printfable_v<Args> && ...),
                  "log arguments must be printf-compatible scalars");
    logf(Level::kDebug, component_, fmt, args...);
  }
  template <typename... Args>
  void info(const char* fmt, Args... args) const {
    static_assert((is_printfable_v<Args> && ...),
                  "log arguments must be printf-compatible scalars");
    logf(Level::kInfo, component_, fmt, args...);
  }
  template <typename... Args>
  void warn(const char* fmt, Args... args) const {
    static_assert((is_printfable_v<Args> && ...),
                  "log arguments must be printf-compatible scalars");
    logf(Level::kWarn, component_, fmt, args...);
  }
  template <typename... Args>
  void error(const char* fmt, Args... args) const {
    static_assert((is_printfable_v<Args> && ...),
                  "log arguments must be printf-compatible scalars");
    logf(Level::kError, component_, fmt, args...);
  }

  const std::string& component() const { return component_; }

 private:
  std::string component_;
};

}  // namespace wacs::log
