// Metrics registry and causal tracer for the simulated wide-area stack.
//
// Two instruments, one subsystem (DESIGN.md §10):
//
//  * Metrics — named counters, gauges, and fixed-bucket histograms in a
//    process-global registry. The hot path is an atomic add (no locks, no
//    map lookups: call sites hold a reference obtained once). Metrics are
//    always on; recording never advances simulated time, so they cannot
//    change behaviour.
//
//  * Tracing — spans and flow arrows over *virtual* time. A span covers an
//    interval of one simulated process's execution ("relay.hop",
//    "knapsack.steal", "rmf.job"); a flow links a message's send to its
//    receive across processes and hosts. Context propagates through a
//    thread-local stack: each simulated Process runs on its own OS thread
//    and exactly one thread executes at a time, so the thread-local *is*
//    the per-process context and recording order is deterministic.
//    Transports stamp the current context onto in-flight messages, which is
//    how one knapsack steal is reconstructable hop by hop through the
//    relays. Tracing is off by default: every record call starts with one
//    relaxed atomic load and does nothing else when disabled.
//
// Exports: trace JSONL (our schema, one event per line, byte-identical
// across same-seed runs) and Chrome trace_event JSON (loads in
// chrome://tracing / Perfetto; virtual nanoseconds map to microsecond
// timestamps). See DESIGN.md §10 for the naming scheme.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace wacs::telemetry {

/// Virtual-time timestamp (nanoseconds; mirrors sim::Time without the
/// dependency — common/ sits below simnet/).
using TimeNs = std::int64_t;

// ======================================================== metrics registry

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket catches the rest. Buckets are relaxed atomic
/// increments; sum/min/max use CAS loops (uncontended in the simulator,
/// where the semaphore handoff serializes all threads anyway).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  /// The quantile set benches and bench-diff report instead of raw buckets.
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };

  struct Snapshot {
    std::vector<double> bounds;        ///< upper bounds, ascending
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;  ///< 0 when count == 0
    double max = 0;

    double mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
    /// Approximate quantile (linear interpolation inside the bucket; the
    /// overflow bucket interpolates toward the observed max).
    double quantile(double q) const;
    Summary summary() const;
  };
  Snapshot snapshot() const;
  Summary summary() const { return snapshot().summary(); }
  void reset();

  /// Geometric bucket ladder: `count` upper bounds from `lo` to `hi`
  /// inclusive, each bucket a constant factor wider than the last. For
  /// latency ranges spanning µs → s (proxied WAN relay hops next to
  /// loopback splices), where a linear ladder either saturates at the top
  /// or loses all resolution at the bottom.
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                std::size_t count);
  /// Histogram over exponential_bounds(lo, hi, count). Returned as a
  /// prvalue (mandatory elision): Histogram itself is neither movable nor
  /// copyable.
  static Histogram exponential(double lo, double hi, std::size_t count) {
    return Histogram(exponential_bounds(lo, hi, count));
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

/// Default latency buckets in milliseconds, 10 µs .. 60 s, roughly 1-2.5-5
/// per decade — wide enough for a LAN hop and a WAN knapsack steal alike.
const std::vector<double>& default_ms_buckets();

/// Exponential latency buckets in milliseconds, 1 µs .. 10 s (40 bounds,
/// ~6 per decade). The real-relay daemons use these: a loopback splice and
/// a proxied WAN round trip differ by five orders of magnitude.
const std::vector<double>& exponential_ms_buckets();

/// Named instruments. Registration takes a mutex; returned references stay
/// valid for the registry's lifetime (reset() zeroes values, it never
/// invalidates handles), so call sites cache them.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = default_ms_buckets());

  /// Zeroes every instrument (per-run measurement windows).
  void reset();

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  /// Name-sorted (std::map order): deterministic output.
  Snapshot snapshot() const;

  /// Scalar changes between a prior snapshot and now. Counters and gauges
  /// only — delta export ships scalar time series; histograms stay in the
  /// full snapshot. Names absent from `base` delta from zero.
  struct Delta {
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    bool empty() const { return counters.empty() && gauges.empty(); }
  };
  /// Changes since `base` (name-sorted, unchanged series omitted), then
  /// advances `base`'s scalar values to the current ones. One lock, no
  /// histogram copying: cheap enough for a sub-second export period.
  Delta delta_since(Snapshot& base) const;

  /// Rendered via TextTable: counters/gauges, then histogram summaries.
  std::string render() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry.
Registry& metrics();

// ================================================================ tracing

/// Identity of a span, carried across messages to parent downstream work.
/// trace_id groups one causal chain (a job, a steal, a handshake);
/// span_id is the immediate parent.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// Metadata transports stamp onto an in-flight message. `sent_at` is always
/// stamped (it feeds per-hop latency histograms); ctx/flow only when the
/// tracer is enabled.
struct MsgMeta {
  TraceContext ctx;
  std::uint64_t flow = 0;  ///< flow-arrow id; 0 = none
  TimeNs sent_at = 0;
};

/// The context of the innermost open Span on this thread (invalid if none).
TraceContext current_context();

/// Names the track ("process lane") for events recorded on this thread.
/// The simulation engine sets it to the Process name; the convention
/// "name@host" groups tracks by host in the Chrome export.
void set_current_track(const std::string& track);
const std::string& current_track();

class Tracer {
 public:
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  /// Drops recorded events and resets id counters (fresh run).
  void clear();

  /// Virtual-time source. The engine binds itself around run(); `owner`
  /// disambiguates nested engine lifetimes (clear_clock is a no-op unless
  /// the owner matches).
  void set_clock(const void* owner, std::function<TimeNs()> clock);
  void clear_clock(const void* owner);
  TimeNs now() const;

  std::uint64_t next_trace_id();
  std::uint64_t next_span_id();

  /// Records a completed span (called by Span's destructor).
  void record_span(std::string_view cat, std::string name, TimeNs start,
                   TimeNs end, TraceContext ctx, std::uint64_t parent,
                   json::Value args);
  /// Records a point event on the current track.
  void instant(std::string_view cat, std::string name, json::Value args = {});
  /// Records the start of a flow arrow at the current time on the current
  /// track; returns the flow id to stamp onto the message (0 if disabled).
  /// `args` may carry transport detail (e.g. the per-hop link charges the
  /// network computed for this message) for offline analysis.
  std::uint64_t flow_start(std::string_view cat, TraceContext ctx,
                           json::Value args = {});
  /// Records the end of a flow arrow on the *receiving* thread's track.
  void flow_end(std::uint64_t flow, TraceContext ctx);

  std::size_t event_count() const;

  /// One event per line; byte-identical across same-seed runs.
  std::string to_jsonl() const;
  /// Chrome trace_event JSON object (Perfetto / chrome://tracing).
  std::string to_chrome_json() const;

 private:
  struct Event {
    enum class Kind : std::uint8_t { kSpan, kInstant, kFlowStart, kFlowEnd };
    Kind kind;
    std::string cat;
    std::string name;
    std::string track;
    TimeNs ts = 0;
    TimeNs dur = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;  ///< span id, or flow id for flow events
    std::uint64_t parent = 0;
    json::Value args;
  };

  mutable std::mutex mu_;  // recording is already serialized; belt and braces
  std::atomic<bool> enabled_{false};
  const void* clock_owner_ = nullptr;
  std::function<TimeNs()> clock_;
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<std::uint64_t> next_flow_{1};
  std::vector<Event> events_;
};

/// The process-global tracer.
Tracer& tracer();

/// RAII span. When tracing is disabled at construction the object is inert
/// (no allocation, no context push). While open, the span is the current
/// context on its thread: child spans parent to it and transports stamp it
/// onto outgoing messages.
class Span {
 public:
  /// Parents to the current context, or starts a new trace if none.
  Span(std::string_view cat, std::string name);
  /// Parents to `parent` (e.g. a received message's context); starts a new
  /// trace when `parent` is invalid and no context is open.
  Span(std::string_view cat, std::string name, TraceContext parent);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }
  TraceContext context() const { return ctx_; }
  /// Attaches a key/value to the span (no-op when inert).
  void arg(std::string key, json::Value v);

 private:
  void open(std::string_view cat, std::string name, TraceContext parent);

  bool active_ = false;
  TraceContext ctx_;
  std::uint64_t parent_ = 0;
  TimeNs start_ = 0;
  std::string cat_;
  std::string name_;
  json::Value args_;
};

}  // namespace wacs::telemetry
