#include "common/bench_report.hpp"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/telemetry.hpp"

namespace wacs::bench {
namespace {

std::string dir_from_env(const char* var) {
  const char* v = std::getenv(var);
  std::string dir = (v != nullptr && *v != '\0') ? v : ".";
  if (dir.back() != '/') dir += '/';
  return dir;
}

Status write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error(ErrorCode::kInternal, "cannot open " + path + " for writing");
  }
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const int rc = std::fclose(f);
  if (n != body.size() || rc != 0) {
    return Error(ErrorCode::kInternal, "short write to " + path);
  }
  return Status();
}

json::Value histogram_json(const telemetry::Histogram::Snapshot& h) {
  const telemetry::Histogram::Summary s = h.summary();
  json::Value out = json::Value::object();
  out.set("count", s.count);
  out.set("sum", s.sum);
  out.set("min", s.min);
  out.set("max", s.max);
  out.set("mean", s.mean);
  out.set("p50", s.p50);
  out.set("p95", s.p95);
  out.set("p99", s.p99);
  json::Value buckets = json::Value::array();
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;  // sparse: most buckets are empty
    json::Value b = json::Value::object();
    b.set("le", i < h.bounds.size() ? json::Value(h.bounds[i])
                                    : json::Value("inf"));
    b.set("n", h.counts[i]);
    buckets.push_back(std::move(b));
  }
  out.set("buckets", std::move(buckets));
  return out;
}

}  // namespace

// Stamped by the build system (src/common/CMakeLists.txt runs `git describe`
// at configure time); "unknown" outside a git checkout.
#ifndef WACS_GIT_DESCRIBE
#define WACS_GIT_DESCRIBE "unknown"
#endif

Report::Report(std::string id)
    : id_(std::move(id)),
      root_(json::Value::object()),
      start_(std::chrono::steady_clock::now()) {
  root_.set("bench", id_);
  root_.set("schema_version", kSchemaVersion);
  root_.set("git", WACS_GIT_DESCRIBE);
}

void Report::set(std::string key, json::Value v) {
  root_.set(std::move(key), std::move(v));
}

void Report::add_row(json::Value row) {
  if (root_.find("rows") == nullptr) root_.set("rows", json::Value::array());
  root_.find("rows")->push_back(std::move(row));
}

void Report::attach_metrics_snapshot() {
  const auto snap = telemetry::metrics().snapshot();
  json::Value m = json::Value::object();
  if (!snap.counters.empty()) {
    json::Value c = json::Value::object();
    for (const auto& [name, v] : snap.counters) c.set(name, v);
    m.set("counters", std::move(c));
  }
  if (!snap.gauges.empty()) {
    json::Value g = json::Value::object();
    for (const auto& [name, v] : snap.gauges) g.set(name, v);
    m.set("gauges", std::move(g));
  }
  if (!snap.histograms.empty()) {
    json::Value h = json::Value::object();
    for (const auto& [name, v] : snap.histograms) h.set(name, histogram_json(v));
    m.set("histograms", std::move(h));
  }
  root_.set("metrics", std::move(m));
}

Result<std::string> Report::write() const {
  const std::string path = dir_from_env("WACS_BENCH_OUT") + "BENCH_" + id_ + ".json";
  // Advisory host-side stats are stamped at write time into a copy so the
  // deterministic payload (root_) is untouched; bench-diff skips "advisory"
  // the way it skips "git".
  json::Value out = root_;
  const auto wall = std::chrono::steady_clock::now() - start_;
  json::Value advisory = json::Value::object();
  advisory.set("wall_ms",
               static_cast<std::int64_t>(
                   std::chrono::duration_cast<std::chrono::milliseconds>(wall)
                       .count()));
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    advisory.set("peak_rss_kb", static_cast<std::int64_t>(ru.ru_maxrss));
  }
  out.set("advisory", std::move(advisory));
  std::string body = out.dump();
  body += '\n';
  auto st = write_file(path, body);
  if (!st.ok()) return st.error();
  return path;
}

bool trace_requested() {
  const char* v = std::getenv("WACS_TRACE");
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

Result<std::string> write_trace_files(const std::string& base) {
  const std::string dir = dir_from_env("WACS_TRACE_DIR");
  const std::string jsonl_path = dir + base + ".trace.jsonl";
  auto st = write_file(jsonl_path, telemetry::tracer().to_jsonl());
  if (!st.ok()) return st.error();
  st = write_file(dir + base + ".chrome.json",
                  telemetry::tracer().to_chrome_json());
  if (!st.ok()) return st.error();
  return jsonl_path;
}

}  // namespace wacs::bench
