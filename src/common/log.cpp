#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wacs::log {
namespace {

Level initial_level() {
  if (const char* env = std::getenv("WACS_LOG_LEVEL")) {
    return parse_level(env);
  }
  return Level::kWarn;
}

std::atomic<Level> g_level{initial_level()};
std::mutex g_mutex;  // serializes whole lines across threads

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level parse_level(std::string_view name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kWarn;
}

void logf(Level level, std::string_view component, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%-5.5s] %-16.*s %s\n",
               std::string(to_string(level)).c_str(),
               static_cast<int>(component.size()), component.data(), body);
}

}  // namespace wacs::log
