#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/json.hpp"

namespace wacs::log {
namespace {

Level initial_level() {
  if (const char* env = std::getenv("WACS_LOG_LEVEL")) {
    return parse_level(env);
  }
  return Level::kWarn;
}

bool initial_json() {
  const char* env = std::getenv("WACS_LOG_JSON");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

std::atomic<Level> g_level{initial_level()};
std::atomic<bool> g_json{initial_json()};
std::mutex g_mutex;  // serializes whole lines across threads

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }

void set_json(bool on) { g_json.store(on, std::memory_order_relaxed); }
bool json_enabled() { return g_json.load(std::memory_order_relaxed); }

std::string_view to_string(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level parse_level(std::string_view name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kWarn;
}

std::string format_line(Level level, std::string_view component,
                        std::string_view body) {
  if (!json_enabled()) {
    char line[1280];
    std::snprintf(line, sizeof(line), "[%-5.5s] %-16.*s %.*s",
                  std::string(to_string(level)).c_str(),
                  static_cast<int>(component.size()), component.data(),
                  static_cast<int>(body.size()), body.data());
    return line;
  }
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::string out;
  out.reserve(body.size() + component.size() + 64);
  out += "{\"ts_ms\":";
  out += std::to_string(ms);
  out += ",\"level\":";
  json::append_quoted(out, to_string(level));
  out += ",\"component\":";
  json::append_quoted(out, component);
  out += ",\"msg\":";
  json::append_quoted(out, body);
  out += "}";
  return out;
}

void logf(Level level, std::string_view component, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  std::string line = format_line(level, component, body);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace wacs::log
