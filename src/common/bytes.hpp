// Byte buffers and a little-endian serialization layer.
//
// Both the simulated and the real Nexus Proxy speak a framed binary wire
// protocol; BufWriter/BufReader are the single encode/decode mechanism so a
// message serialized by either side parses in the other. All integers are
// little-endian fixed width; strings and blobs are u32-length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace wacs {

using Bytes = std::vector<std::uint8_t>;

/// Appends values to a growable byte vector.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(Bytes initial) : buf_(std::move(initial)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// u32 length prefix + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }
  /// Unprefixed bytes (caller frames them some other way).
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads values back out of a byte span. Every accessor reports truncation
/// through Result instead of reading past the end, so malformed frames from a
/// peer cannot crash a relay daemon.
class BufReader {
 public:
  explicit BufReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit BufReader(const Bytes& data) : data_(data) {}

  Result<std::uint8_t> u8() { return read_le<std::uint8_t>(); }
  Result<std::uint16_t> u16() { return read_le<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return read_le<std::uint64_t>(); }
  Result<std::int32_t> i32() {
    auto v = read_le<std::uint32_t>();
    if (!v) return v.error();
    return static_cast<std::int32_t>(*v);
  }
  Result<std::int64_t> i64() {
    auto v = read_le<std::uint64_t>();
    if (!v) return v.error();
    return static_cast<std::int64_t>(*v);
  }
  Result<double> f64() {
    auto bits = read_le<std::uint64_t>();
    if (!bits) return bits.error();
    double v;
    std::memcpy(&v, &*bits, sizeof v);
    return v;
  }
  Result<bool> boolean() {
    auto v = u8();
    if (!v) return v.error();
    return *v != 0;
  }

  Result<std::string> str() {
    auto len = u32();
    if (!len) return len.error();
    if (remaining() < *len) return truncated("string body");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), *len);
    pos_ += *len;
    return out;
  }
  Result<Bytes> blob() {
    auto len = u32();
    if (!len) return len.error();
    if (remaining() < *len) return truncated("blob body");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> read_le() {
    if (remaining() < sizeof(T)) return truncated("fixed-width value");
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  Error truncated(const char* what) const {
    return Error(ErrorCode::kProtocolError,
                 std::string("truncated frame while reading ") + what);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: bytes of a string literal/payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Deterministic pattern payload of `n` bytes; used by tests and benches to
/// verify end-to-end integrity of relayed streams.
Bytes pattern_bytes(std::size_t n, std::uint64_t seed = 0);

/// FNV-1a over a byte span; cheap integrity check for relayed payloads.
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

}  // namespace wacs
