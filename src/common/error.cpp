#include "common/error.hpp"

namespace wacs {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kPermissionDenied: return "PermissionDenied";
    case ErrorCode::kConnectionRefused: return "ConnectionRefused";
    case ErrorCode::kConnectionClosed: return "ConnectionClosed";
    case ErrorCode::kConnectionReset: return "ConnectionReset";
    case ErrorCode::kTimeout: return "Timeout";
    case ErrorCode::kProtocolError: return "ProtocolError";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    case ErrorCode::kUnavailable: return "Unavailable";
    case ErrorCode::kInternal: return "Internal";
  }
  return "UnknownErrorCode";
}

std::string Error::to_string() const {
  std::string out(wacs::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& message) {
  std::fprintf(stderr, "WACS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace wacs
