// Error handling primitives used across the wacs libraries.
//
// Networked and queueing code has many expected failure paths (connection
// refused by a firewall, unknown resource, protocol violation); those are
// reported through Result<T> rather than exceptions so that call sites are
// forced to consider them. Programming errors (precondition violations) use
// WACS_CHECK and terminate.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace wacs {

/// Broad classification of an error; refine with the message text.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   ///< e.g. a firewall rejected the connection
  kConnectionRefused,  ///< no listener / peer closed
  kConnectionClosed,   ///< stream ended mid-operation
  kConnectionReset,    ///< peer vanished abnormally (crash, link fault, RST)
  kTimeout,
  kProtocolError,  ///< malformed wire message
  kResourceExhausted,
  kUnavailable,  ///< transient: retry may succeed
  kInternal,
};

/// Human-readable name of an ErrorCode ("PermissionDenied", ...).
std::string_view to_string(ErrorCode code);

/// An error: a code plus a free-form message.
class [[nodiscard]] Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "PermissionDenied: inbound tcp/3001 denied by rwcp-fw".
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// Either a value or an Error. A deliberately small expected<T, Error>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Value accessors. Precondition: ok().
  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  /// Error accessor. Precondition: !ok().
  const Error& error() const { return std::get<Error>(data_); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  ///< success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)
  Status(ErrorCode code, std::string message)
      : error_(Error(code, std::move(message))) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return *error_; }
  std::string to_string() const { return ok() ? "Ok" : error_->to_string(); }

 private:
  std::optional<Error> error_;
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& message);
}  // namespace detail

/// Precondition/invariant check; always on (this is systems code whose
/// correctness we benchmark, not a hot inner loop).
#define WACS_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::wacs::detail::check_failed(__FILE__, __LINE__, #expr, "");    \
    }                                                                 \
  } while (false)

#define WACS_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::wacs::detail::check_failed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                 \
  } while (false)

}  // namespace wacs
