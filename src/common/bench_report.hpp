// Machine-readable per-run bench output: BENCH_<id>.json plus optional trace
// files, written next to the binary (or into WACS_BENCH_OUT / WACS_TRACE_DIR).
//
// Every hand-rolled bench_* binary builds one of these so the perf
// trajectory is recorded, not just printed. Outputs contain no wall-clock
// timestamps or hostnames: a bench re-run with the same seed must produce
// byte-identical files.
#pragma once

#include <chrono>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace wacs::bench {

/// Accumulates one bench run's results and writes BENCH_<id>.json.
class Report {
 public:
  /// Report format version, stamped as root key "schema_version". Bump when
  /// the layout of BENCH_*.json changes incompatibly; bench-diff compares it
  /// exactly so a schema change fails loudly instead of producing nonsense
  /// field diffs. v2 = PR 3 (schema_version/git stamps, histogram p95).
  static constexpr int kSchemaVersion = 2;

  /// `id` names the output file: BENCH_<id>.json (e.g. "table4"). The
  /// report is pre-stamped with "bench", "schema_version", and "git" (the
  /// `git describe` string of the built tree).
  explicit Report(std::string id);

  /// Root-level field ("nodes_per_sec", "config", ...). Insertion order is
  /// preserved in the file.
  void set(std::string key, json::Value v);
  /// Appends a row to the root-level "rows" array (per-config results).
  void add_row(json::Value row);

  /// Current metrics().snapshot() rendered under root key "metrics"
  /// (counters/gauges as numbers, histograms as {count,sum,min,max,mean,
  /// p50,p99,buckets}). Call at the end of the measurement window.
  void attach_metrics_snapshot();

  /// Writes BENCH_<id>.json into WACS_BENCH_OUT (default "."). Returns the
  /// path written. The file additionally carries an "advisory" object
  /// (host wall-clock ms since construction, peak RSS from getrusage) that
  /// bench-diff ignores — like "git", it varies run to run but makes
  /// overhead trends visible across PRs.
  Result<std::string> write() const;

  const json::Value& root() const { return root_; }

 private:
  std::string id_;
  json::Value root_;
  std::chrono::steady_clock::time_point start_;
};

/// True when WACS_TRACE is set non-empty (and not "0"): benches use this to
/// decide whether to enable the tracer for their measurement run.
bool trace_requested();

/// Writes the tracer's current buffer as <base>.trace.jsonl and
/// <base>.chrome.json into WACS_TRACE_DIR (default "."). Returns the JSONL
/// path written.
Result<std::string> write_trace_files(const std::string& base);

}  // namespace wacs::bench
