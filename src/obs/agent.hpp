// Per-site metrics agent: samples local probes each export period and ships
// delta reports to the Collector over the simulated WAN (DESIGN.md §14).
//
// One agent runs per site, on one of the site's hosts, as an ordinary
// simulated process — so its traffic is charged to the network like any
// other flow and must pass the same firewalls. It dials the collector's
// *advertised* contact: the outer proxy server's public port when the
// collector's site is firewalled, i.e. observability rides the one approved
// hole like everything else.
//
// The agent's periodic timer would keep the event queue alive forever, so
// the loop is gated on a busy predicate (the grid's in-flight job count):
// when the system goes idle the agent sends one final report (marking
// staleness benign) and parks. GridSystem::run_jobs re-arms it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/contact.hpp"
#include "common/telemetry.hpp"
#include "obs/wire.hpp"
#include "simnet/tcp.hpp"

namespace wacs::obs {

struct AgentOptions {
  double interval_s = 0.25;
  /// Also export the process-global telemetry registry (counters/gauges as
  /// "reg.c.*"/"reg.g.*" series). One agent per simulation should do this —
  /// the registry is process-wide, so exporting it from every site would
  /// just ship the same numbers twice.
  bool export_registry = false;
};

class MetricsAgent {
 public:
  /// `resolve` yields the collector contact (nullopt while its proxy bind
  /// is still settling — the agent skips the tick and retries). `busy`
  /// keeps the periodic loop alive; see file comment.
  MetricsAgent(sim::Host& host, AgentOptions opts,
               std::function<std::optional<Contact>()> resolve,
               std::function<bool()> busy);

  /// Registers a sampled series (absolute value; the agent computes wire
  /// deltas). Call before the first ensure_running().
  void add_probe(std::string name, std::function<std::int64_t()> fn);
  /// Registers a component health source.
  void add_health(std::string component, std::function<Health()> fn);

  /// Spawns the export loop if it is not already running. Idempotent;
  /// called at the start of every run_jobs.
  void ensure_running();

  const std::string& site() const { return host_->site(); }
  sim::Host& host() { return *host_; }
  std::uint64_t reports_sent() const { return reports_sent_; }

 private:
  void run(sim::Process& self);
  void tick(sim::Process& self, bool final_report);
  /// Current connection, dialing + Hello on demand; nullptr on failure.
  sim::SimSocket* connection(sim::Process& self);

  sim::Host* host_;
  AgentOptions opts_;
  std::function<std::optional<Contact>()> resolve_;
  std::function<bool()> busy_;

  struct Probe {
    std::string name;
    std::function<std::int64_t()> sample;
  };
  struct HealthProbe {
    std::string component;
    std::function<Health()> sample;
  };
  std::vector<Probe> probes_;
  std::vector<HealthProbe> health_;

  /// Registry delta baseline (export_registry agents); absolute values
  /// accumulated from deltas so registry series encode like probe series.
  telemetry::Registry::Snapshot reg_base_;
  std::map<std::string, std::int64_t> reg_abs_;

  // Per-connection encoder state: series ids, last sent value per id, last
  // sent health per component. Reset when the connection drops so a fresh
  // connection is self-describing.
  sim::SocketPtr conn_;
  std::map<std::string, std::uint32_t> ids_;
  std::vector<std::int64_t> last_sent_;
  std::map<std::string, Health> last_health_;

  bool active_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t reports_sent_ = 0;
};

}  // namespace wacs::obs
