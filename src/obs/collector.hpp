// Collector: the submit-host endpoint of the observability plane
// (DESIGN.md §14).
//
// Accepts MetricsAgent connections — directly from its own site, and
// through the Nexus Proxy from everywhere else (it NXProxyBinds exactly
// like the GASS server, so remote agents dial the outer server's public
// port and no firewall gains a rule for observability). Each decoded
// report is appended to a deterministic JSONL journal and folded into a
// TimelineState (ring-buffered series, component health, SLO verdicts).
// `wacs-top` replays the same journal through the same TimelineState, so
// what the operator sees offline is exactly what the collector computed
// live.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "obs/timeline.hpp"
#include "proxy/client.hpp"
#include "simnet/tcp.hpp"
#include "simnet/waitq.hpp"

namespace wacs::obs {

struct CollectorOptions {
  std::uint16_t port = 7300;
  TimelineOptions timeline;
  /// Journal rotation threshold in bytes; 0 = unbounded (short runs and
  /// byte-identical bench artifacts). The environment variable
  /// WACS_OBS_JOURNAL_MAX_MB overrides this for long-running deployments.
  /// When the live journal reaches the cap it rotates: the current text
  /// becomes the `.1` generation (replacing the previous one) and the live
  /// journal restarts empty — a two-generation ring, so memory stays
  /// bounded at ~2x the cap while the newest tail is always complete.
  std::size_t journal_max_bytes = 0;
};

class Collector {
 public:
  Collector(sim::Host& host, CollectorOptions options, Env env);

  void start();

  Contact contact() const { return Contact{host_->name(), options_.port}; }
  /// Outer-server rewrite of our contact; empty until the bind completes
  /// (or forever, when the site needs no proxy).
  const std::optional<Contact>& public_contact() const {
    return public_contact_;
  }
  /// True once the proxy bind resolved (either way) — remote agents wait
  /// for this before dialing.
  bool bind_settled() const { return bind_done_; }
  /// The address remote agents should use: public when proxied.
  Contact advertised_contact() const {
    return public_contact_.value_or(contact());
  }

  TimelineState& timeline() { return timeline_; }
  const TimelineState& timeline() const { return timeline_; }
  /// One line per applied report, arrival order; byte-identical across
  /// same-seed runs. With a rotation cap this is the newest generation
  /// only — rotated_journal() holds the previous one.
  const std::string& journal() const { return journal_; }
  /// The `.1` generation: journal text displaced by the last rotation
  /// (empty until the cap is first reached).
  const std::string& rotated_journal() const { return rotated_journal_; }
  std::uint64_t journal_rotations() const { return journal_rotations_; }
  std::uint64_t reports_received() const { return reports_received_; }
  std::uint64_t decode_errors() const { return decode_errors_; }

  sim::Host& host() { return *host_; }

 private:
  void spawn_serve();
  void serve(sim::Process& self, sim::ListenerPtr listener);
  void serve_proxied(sim::Process& self);
  void handle(sim::Process& self, sim::SocketPtr conn);

  sim::Host* host_;
  CollectorOptions options_;
  Env env_;
  TimelineState timeline_;
  sim::ListenerPtr listener_;
  std::optional<Contact> public_contact_;
  bool bind_done_ = false;
  std::string journal_;
  std::string rotated_journal_;
  std::size_t journal_max_bytes_ = 0;
  std::uint64_t journal_rotations_ = 0;
  std::uint64_t reports_received_ = 0;
  std::uint64_t decode_errors_ = 0;
  bool started_ = false;
};

}  // namespace wacs::obs
