// Observability wire protocol: what a per-site MetricsAgent ships to the
// Collector on the submit host (DESIGN.md §14).
//
// The transport is ordinary simulated TCP — which means the one
// firewall-approved proxied port when the agent's site sits behind a
// firewall; observability gets no side channel. Frames are small on
// purpose: series names travel once (Report.defs assigns a varint id the
// first time a series appears on a connection) and samples are
// zigzag-varint *deltas* from the previous report, so an idle site costs a
// few bytes per period. A fresh connection restarts both the id space and
// the delta baseline, which makes reconnects self-describing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace wacs::obs {

// ------------------------------------------------------------- varints

/// LEB128 unsigned varint append.
void put_uvarint(BufWriter& w, std::uint64_t v);
Result<std::uint64_t> get_uvarint(BufReader& r);

/// Zigzag-encoded signed varint (small magnitudes of either sign stay
/// 1 byte; metric deltas hover near zero).
void put_varint(BufWriter& w, std::int64_t v);
Result<std::int64_t> get_varint(BufReader& r);

// ------------------------------------------------------------- health

/// Component health as reported by an agent and aggregated by the
/// collector. Ordered worst-last so "worst of" is std::max.
enum class Health : std::uint8_t { kUp = 0, kDegraded = 1, kDown = 2 };

const char* health_name(Health h);            ///< "up"/"degraded"/"down"
Result<Health> parse_health(std::string_view name);

// ------------------------------------------------------------- messages

/// First frame on every agent connection.
struct Hello {
  std::string site;
  std::string agent_host;

  Bytes encode() const;
  static Result<Hello> decode(const Bytes& frame);
};

/// One export period. `defs` introduces series ids new on this connection;
/// `samples` carries (id, delta-from-last-report); `health` carries only
/// components whose state changed (or all, on the first report).
struct Report {
  std::uint64_t seq = 0;
  std::int64_t t_ns = 0;
  /// Last report of the run: the site went quiet on purpose, staleness
  /// after this is not a failure.
  bool final_report = false;
  std::vector<std::pair<std::uint32_t, std::string>> defs;
  std::vector<std::pair<std::uint32_t, std::int64_t>> samples;
  std::vector<std::pair<std::string, Health>> health;

  Bytes encode() const;
  static Result<Report> decode(const Bytes& frame);
};

/// Frame type tags (first byte of every frame).
inline constexpr std::uint8_t kMsgHello = 1;
inline constexpr std::uint8_t kMsgReport = 2;

/// Type tag of a frame without consuming it.
Result<std::uint8_t> peek_type(const Bytes& frame);

}  // namespace wacs::obs
