#include "obs/wire.hpp"

namespace wacs::obs {

void put_uvarint(BufWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

Result<std::uint64_t> get_uvarint(BufReader& r) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    auto b = r.u8();
    if (!b.ok()) return b.error();
    v |= static_cast<std::uint64_t>(*b & 0x7f) << shift;
    if ((*b & 0x80) == 0) return v;
  }
  return Error(ErrorCode::kProtocolError, "uvarint longer than 10 bytes");
}

void put_varint(BufWriter& w, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_uvarint(w, (u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

Result<std::int64_t> get_varint(BufReader& r) {
  auto u = get_uvarint(r);
  if (!u.ok()) return u.error();
  return static_cast<std::int64_t>((*u >> 1) ^ (~(*u & 1) + 1));
}

const char* health_name(Health h) {
  switch (h) {
    case Health::kUp: return "up";
    case Health::kDegraded: return "degraded";
    case Health::kDown: return "down";
  }
  return "?";
}

Result<Health> parse_health(std::string_view name) {
  if (name == "up") return Health::kUp;
  if (name == "degraded") return Health::kDegraded;
  if (name == "down") return Health::kDown;
  return Error(ErrorCode::kProtocolError,
               "unknown health state: " + std::string(name));
}

Bytes Hello::encode() const {
  BufWriter w;
  w.u8(kMsgHello);
  w.str(site);
  w.str(agent_host);
  return std::move(w).take();
}

Result<Hello> Hello::decode(const Bytes& frame) {
  BufReader r(frame);
  auto type = r.u8();
  if (!type.ok()) return type.error();
  if (*type != kMsgHello) {
    return Error(ErrorCode::kProtocolError, "not a Hello frame");
  }
  Hello out;
  auto site = r.str();
  if (!site.ok()) return site.error();
  out.site = std::move(*site);
  auto host = r.str();
  if (!host.ok()) return host.error();
  out.agent_host = std::move(*host);
  return out;
}

Bytes Report::encode() const {
  BufWriter w;
  w.u8(kMsgReport);
  put_uvarint(w, seq);
  put_varint(w, t_ns);
  w.u8(final_report ? 1 : 0);
  put_uvarint(w, defs.size());
  for (const auto& [id, name] : defs) {
    put_uvarint(w, id);
    w.str(name);
  }
  put_uvarint(w, samples.size());
  for (const auto& [id, delta] : samples) {
    put_uvarint(w, id);
    put_varint(w, delta);
  }
  put_uvarint(w, health.size());
  for (const auto& [component, state] : health) {
    w.str(component);
    w.u8(static_cast<std::uint8_t>(state));
  }
  return std::move(w).take();
}

Result<Report> Report::decode(const Bytes& frame) {
  BufReader r(frame);
  auto type = r.u8();
  if (!type.ok()) return type.error();
  if (*type != kMsgReport) {
    return Error(ErrorCode::kProtocolError, "not a Report frame");
  }
  Report out;
  auto seq = get_uvarint(r);
  if (!seq.ok()) return seq.error();
  out.seq = *seq;
  auto t = get_varint(r);
  if (!t.ok()) return t.error();
  out.t_ns = *t;
  auto fin = r.u8();
  if (!fin.ok()) return fin.error();
  out.final_report = *fin != 0;

  auto n_defs = get_uvarint(r);
  if (!n_defs.ok()) return n_defs.error();
  if (*n_defs > r.remaining()) {
    return Error(ErrorCode::kProtocolError, "def count exceeds frame");
  }
  out.defs.reserve(*n_defs);
  for (std::uint64_t i = 0; i < *n_defs; ++i) {
    auto id = get_uvarint(r);
    if (!id.ok()) return id.error();
    auto name = r.str();
    if (!name.ok()) return name.error();
    out.defs.emplace_back(static_cast<std::uint32_t>(*id), std::move(*name));
  }

  auto n_samples = get_uvarint(r);
  if (!n_samples.ok()) return n_samples.error();
  if (*n_samples > r.remaining()) {
    return Error(ErrorCode::kProtocolError, "sample count exceeds frame");
  }
  out.samples.reserve(*n_samples);
  for (std::uint64_t i = 0; i < *n_samples; ++i) {
    auto id = get_uvarint(r);
    if (!id.ok()) return id.error();
    auto delta = get_varint(r);
    if (!delta.ok()) return delta.error();
    out.samples.emplace_back(static_cast<std::uint32_t>(*id), *delta);
  }

  auto n_health = get_uvarint(r);
  if (!n_health.ok()) return n_health.error();
  if (*n_health > r.remaining()) {
    return Error(ErrorCode::kProtocolError, "health count exceeds frame");
  }
  out.health.reserve(*n_health);
  for (std::uint64_t i = 0; i < *n_health; ++i) {
    auto component = r.str();
    if (!component.ok()) return component.error();
    auto state = r.u8();
    if (!state.ok()) return state.error();
    if (*state > static_cast<std::uint8_t>(Health::kDown)) {
      return Error(ErrorCode::kProtocolError, "bad health state byte");
    }
    out.health.emplace_back(std::move(*component),
                            static_cast<Health>(*state));
  }
  return out;
}

Result<std::uint8_t> peek_type(const Bytes& frame) {
  BufReader r(frame);
  return r.u8();
}

}  // namespace wacs::obs
