#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace wacs::obs {
namespace {

/// Latest-value / latest-rate reads shared by breach evaluation and the
/// renderer. Rate uses the last two points; a single point has no rate.
double latest_value(const Ring& ring) {
  return ring.size() == 0 ? 0 : static_cast<double>(ring.latest().v);
}

bool latest_rate(const Ring& ring, double* out) {
  if (ring.size() < 2) return false;
  const auto& a = ring.at(ring.size() - 2);
  const auto& b = ring.latest();
  if (b.t_ns <= a.t_ns) return false;
  *out = static_cast<double>(b.v - a.v) /
         (static_cast<double>(b.t_ns - a.t_ns) / 1e9);
  return true;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

}  // namespace

void Ring::push(Point p) {
  if (points_.size() < capacity_) {
    points_.push_back(p);
    return;
  }
  points_[head_] = p;
  head_ = (head_ + 1) % capacity_;
}

const Ring::Point& Ring::at(std::size_t i) const {
  WACS_CHECK(i < points_.size());
  return points_[(head_ + i) % points_.size()];
}

std::vector<SloRule> default_slo_rules() {
  return {
      // Queue latency proxy: parts waiting behind busy CPUs. The wide-area
      // Table 4 runs keep per-host queues in the single digits; a deep
      // queue means dispatch has stalled.
      {"queue_depth_high", "queue_depth", SloRule::Kind::kValueAbove, 32.0,
       Health::kDegraded},
      // Requeue churn: parts bouncing off dead/leaseless ranks faster than
      // one every couple of seconds is a failing site, not a blip.
      {"requeue_rate_high", "parts_requeued", SloRule::Kind::kRateAbove, 0.5,
       Health::kDegraded},
      // WAN saturation: the paper's trans-Pacific link is 1.5 Mbps
      // (187500 B/s); sustained >90% means every flow is queueing.
      {"wan_link_saturated", "wan.", SloRule::Kind::kRateAbove, 168750.0,
       Health::kDegraded},
  };
}

std::string report_to_jsonl(const SiteReport& r) {
  json::Value line = json::Value::object();
  line.set("t", r.t_ns);
  line.set("site", r.site);
  line.set("seq", r.seq);
  line.set("final", r.final_report);
  json::Value series = json::Value::object();
  for (const auto& [name, v] : r.series) series.set(name, v);
  line.set("series", std::move(series));
  json::Value health = json::Value::object();
  for (const auto& [component, state] : r.health) {
    health.set(component, health_name(state));
  }
  line.set("health", std::move(health));
  return line.dump();
}

Result<SiteReport> report_from_jsonl(std::string_view line) {
  auto doc = json::Value::parse(line);
  if (!doc.ok()) return doc.error();
  SiteReport out;
  const json::Value* site = doc->find("site");
  if (site == nullptr) {
    return Error(ErrorCode::kProtocolError, "journal line missing \"site\"");
  }
  out.site = site->as_string();
  if (const json::Value* t = doc->find("t")) out.t_ns = t->as_int();
  if (const json::Value* seq = doc->find("seq")) {
    out.seq = static_cast<std::uint64_t>(seq->as_int());
  }
  if (const json::Value* fin = doc->find("final")) {
    out.final_report = fin->as_bool();
  }
  if (const json::Value* series = doc->find("series")) {
    for (const auto& [name, v] : series->members()) {
      out.series.emplace_back(name, v.as_int());
    }
  }
  if (const json::Value* health = doc->find("health")) {
    for (const auto& [component, v] : health->members()) {
      auto state = parse_health(v.as_string());
      if (!state.ok()) return state.error();
      out.health.emplace_back(component, *state);
    }
  }
  return out;
}

TimelineState::TimelineState(TimelineOptions opts) : opts_(std::move(opts)) {}

void TimelineState::apply(const SiteReport& r) {
  SiteState& site = sites_.try_emplace(r.site).first->second;
  site.seq = r.seq;
  site.last_t_ns = r.t_ns;
  site.final_report = r.final_report;
  for (const auto& [name, v] : r.series) {
    auto it = site.series.find(name);
    if (it == site.series.end()) {
      it = site.series.emplace(name, Ring(opts_.ring_capacity)).first;
    }
    it->second.push({r.t_ns, v});
  }
  for (const auto& [component, state] : r.health) {
    site.health[component] = state;
  }
  ++reports_applied_;
}

std::vector<SloBreach> TimelineState::breaches(const std::string& site) const {
  std::vector<SloBreach> out;
  auto it = sites_.find(site);
  if (it == sites_.end()) return out;
  for (const SloRule& rule : opts_.slos) {
    for (const auto& [name, ring] : it->second.series) {
      if (!contains(name, rule.series_contains)) continue;
      double value = 0;
      if (rule.kind == SloRule::Kind::kValueAbove) {
        value = latest_value(ring);
      } else if (!latest_rate(ring, &value)) {
        continue;
      }
      if (value > rule.threshold) {
        out.push_back({rule.name, name, value, rule.verdict});
      }
    }
  }
  return out;
}

Health TimelineState::verdict(const std::string& site,
                              std::int64_t now_ns) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) return Health::kDown;  // never heard from
  Health worst = Health::kUp;
  for (const auto& [component, state] : it->second.health) {
    worst = std::max(worst, state);
  }
  for (const SloBreach& b : breaches(site)) {
    worst = std::max(worst, b.verdict);
  }
  if (!it->second.final_report &&
      now_ns - it->second.last_t_ns > opts_.stale_after_ns) {
    worst = Health::kDown;
  }
  return worst;
}

std::vector<std::string> TimelineState::sites() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, _] : sites_) out.push_back(name);
  return out;
}

json::Value TimelineState::snapshot_json(std::int64_t now_ns) const {
  json::Value root = json::Value::object();
  root.set("now_ns", now_ns);
  root.set("reports_applied", reports_applied_);
  json::Value sites = json::Value::object();
  for (const auto& [name, site] : sites_) {
    json::Value s = json::Value::object();
    s.set("verdict", health_name(verdict(name, now_ns)));
    s.set("seq", site.seq);
    s.set("last_t_ns", site.last_t_ns);
    s.set("final", site.final_report);
    json::Value health = json::Value::object();
    for (const auto& [component, state] : site.health) {
      health.set(component, health_name(state));
    }
    s.set("health", std::move(health));
    json::Value breached = json::Value::array();
    for (const SloBreach& b : breaches(name)) {
      json::Value row = json::Value::object();
      row.set("rule", b.rule);
      row.set("series", b.series);
      row.set("value", b.value);
      row.set("verdict", health_name(b.verdict));
      breached.push_back(std::move(row));
    }
    s.set("breaches", std::move(breached));
    json::Value series = json::Value::object();
    for (const auto& [sname, ring] : site.series) {
      json::Value points = json::Value::array();
      for (std::size_t i = 0; i < ring.size(); ++i) {
        json::Value p = json::Value::array();
        p.push_back(ring.at(i).t_ns);
        p.push_back(ring.at(i).v);
        points.push_back(std::move(p));
      }
      series.set(sname, std::move(points));
    }
    s.set("series", std::move(series));
    sites.set(name, std::move(s));
  }
  root.set("sites", std::move(sites));
  return root;
}

std::string TimelineState::render_top(std::int64_t now_ns, int width) const {
  const int spark_w = std::max(8, width - 40);
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "wacs-top  t=%.3fs  sites=%zu\n",
                static_cast<double>(now_ns) / 1e9, sites_.size());
  out += buf;
  for (const auto& [name, site] : sites_) {
    const Health v = verdict(name, now_ns);
    const double age_ms =
        static_cast<double>(now_ns - site.last_t_ns) / 1e6;
    std::snprintf(buf, sizeof(buf),
                  "site %-8s [%-8s] seq=%llu age=%.0fms%s\n", name.c_str(),
                  health_name(v),
                  static_cast<unsigned long long>(site.seq), age_ms,
                  site.final_report ? " (final)" : "");
    out += buf;
    for (const auto& [component, state] : site.health) {
      if (state == Health::kUp) continue;  // only surprises
      std::snprintf(buf, sizeof(buf), "  ! %-28s %s\n", component.c_str(),
                    health_name(state));
      out += buf;
    }
    for (const SloBreach& b : breaches(name)) {
      std::snprintf(buf, sizeof(buf), "  ! slo %-24s %s value=%.1f\n",
                    b.rule.c_str(), b.series.c_str(), b.value);
      out += buf;
    }
    for (const auto& [sname, ring] : site.series) {
      // Utilization-flavored series only; raw counters would double the
      // block height without adding signal a top-style view needs. The
      // scheduler's series (pending depth, per-tenant share, dispatch
      // rate) all carry load signal, so the whole prefix passes.
      if (!contains(sname, "queue_depth") && !contains(sname, "busy_cpus") &&
          !contains(sname, "ranks") && !contains(sname, "bytes") &&
          !contains(sname, "sched.")) {
        continue;
      }
      // Sparkline over the last spark_w points, scaled to the window max.
      static const char kGlyphs[] = " .:-=+*#";
      const std::size_t n =
          std::min<std::size_t>(ring.size(), static_cast<std::size_t>(spark_w));
      std::int64_t max_v = 1;
      for (std::size_t i = ring.size() - n; i < ring.size(); ++i) {
        max_v = std::max(max_v, ring.at(i).v);
      }
      std::string spark;
      for (std::size_t i = ring.size() - n; i < ring.size(); ++i) {
        const std::int64_t g =
            ring.at(i).v <= 0 ? 0 : ring.at(i).v * 7 / max_v;
        spark += kGlyphs[static_cast<std::size_t>(std::min<std::int64_t>(g, 7))];
      }
      std::snprintf(buf, sizeof(buf), "  %-26s %12lld |%s|\n", sname.c_str(),
                    static_cast<long long>(ring.latest().v), spark.c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace wacs::obs
