#include "obs/agent.hpp"

#include <utility>

#include "common/log.hpp"
#include "simnet/fault.hpp"

namespace wacs::obs {
namespace {

const log::Logger kLog("obs.agent");

}  // namespace

MetricsAgent::MetricsAgent(sim::Host& host, AgentOptions opts,
                           std::function<std::optional<Contact>()> resolve,
                           std::function<bool()> busy)
    : host_(&host),
      opts_(opts),
      resolve_(std::move(resolve)),
      busy_(std::move(busy)) {
  // Registry series export *changes since the plane came up*, not the
  // process-global totals: the registry outlives testbeds (benches run
  // several back to back), and only the from-here-on deltas make
  // same-seed runs byte-identical regardless of process history.
  if (opts_.export_registry) reg_base_ = telemetry::metrics().snapshot();
}

void MetricsAgent::add_probe(std::string name,
                             std::function<std::int64_t()> fn) {
  probes_.push_back({std::move(name), std::move(fn)});
}

void MetricsAgent::add_health(std::string component,
                              std::function<Health()> fn) {
  health_.push_back({std::move(component), std::move(fn)});
}

void MetricsAgent::ensure_running() {
  if (active_) return;
  active_ = true;
  auto* proc = host_->network().engine().spawn(
      "obs.agent@" + host_->name(), [this](sim::Process& self) {
        // The flag must clear on every exit path — normal completion and
        // KillError unwind (host crash) alike — so run_jobs can re-arm.
        struct Flag {
          bool* active;
          ~Flag() { *active = false; }
        } flag{&active_};
        run(self);
      });
  if (auto* fault = host_->network().fault(); fault != nullptr) {
    fault->register_host_process(host_->name(), proc);
  }
}

void MetricsAgent::run(sim::Process& self) {
  while (true) {
    self.sleep(opts_.interval_s);
    const bool busy = busy_();
    tick(self, /*final_report=*/!busy);
    if (!busy) return;  // parks the timer; the final report was just sent
  }
}

sim::SimSocket* MetricsAgent::connection(sim::Process& self) {
  if (conn_ != nullptr && !conn_->closed() && !conn_->reset()) {
    return conn_.get();
  }
  conn_.reset();
  ids_.clear();
  last_sent_.clear();
  last_health_.clear();
  auto contact = resolve_();
  if (!contact.has_value()) return nullptr;  // collector bind not settled
  auto sock = host_->stack().connect(self, *contact);
  if (!sock.ok()) {
    kLog.debug("%s: collector dial failed: %s", host_->name().c_str(),
               sock.error().to_string().c_str());
    return nullptr;
  }
  conn_ = *sock;
  Hello hello{host_->site(), host_->name()};
  if (!conn_->send(hello.encode()).ok()) {
    conn_.reset();
    return nullptr;
  }
  return conn_.get();
}

void MetricsAgent::tick(sim::Process& self, bool final_report) {
  auto* conn = connection(self);
  if (conn == nullptr) return;  // skip the period; state stays for retry

  // Sample every series as an absolute value. Registry series accumulate
  // from Registry deltas so they encode exactly like probe series.
  std::vector<std::pair<std::string, std::int64_t>> samples;
  samples.reserve(probes_.size() + reg_abs_.size());
  for (const Probe& p : probes_) samples.emplace_back(p.name, p.sample());
  if (opts_.export_registry) {
    const auto delta = telemetry::metrics().delta_since(reg_base_);
    for (const auto& [name, d] : delta.counters) reg_abs_["reg.c." + name] += d;
    for (const auto& [name, d] : delta.gauges) reg_abs_["reg.g." + name] += d;
    for (const auto& [name, v] : reg_abs_) samples.emplace_back(name, v);
  }

  Report report;
  report.seq = ++seq_;
  report.t_ns = host_->network().engine().now();
  report.final_report = final_report;
  for (const auto& [name, v] : samples) {
    auto it = ids_.find(name);
    if (it == ids_.end()) {
      const auto id = static_cast<std::uint32_t>(ids_.size());
      it = ids_.emplace(name, id).first;
      last_sent_.push_back(0);
      report.defs.emplace_back(id, name);
    }
    const std::int64_t delta = v - last_sent_[it->second];
    if (delta == 0) continue;  // unchanged series cost nothing on the wire
    report.samples.emplace_back(it->second, delta);
    last_sent_[it->second] = v;
  }
  for (const HealthProbe& h : health_) {
    const Health state = h.sample();
    auto it = last_health_.find(h.component);
    if (it != last_health_.end() && it->second == state) continue;
    last_health_[h.component] = state;
    report.health.emplace_back(h.component, state);
  }

  if (!conn->send(report.encode()).ok()) {
    conn_.reset();  // redial (and re-describe) next period
    return;
  }
  ++reports_sent_;
}

}  // namespace wacs::obs
