// Collector-side state: ring-buffered time series, per-site health, SLO
// rules, and the renderings built from them (DESIGN.md §14).
//
// Deliberately free of simulator dependencies: the Collector feeds it live
// reports in virtual time, and `wacs-top` rebuilds the identical state from
// a recorded journal — one implementation, two consumers. All output is
// deterministic (map ordering, integer timestamps), so same-seed runs
// produce byte-identical journals and snapshots and the bench-diff gate can
// cover them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/wire.hpp"

namespace wacs::obs {

/// Fixed-capacity time-series ring; push overwrites the oldest point.
class Ring {
 public:
  struct Point {
    std::int64_t t_ns = 0;
    std::int64_t v = 0;
  };

  explicit Ring(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(Point p);
  std::size_t size() const { return points_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// i = 0 is the oldest retained point.
  const Point& at(std::size_t i) const;
  const Point& latest() const { return at(size() - 1); }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest point once full
  std::vector<Point> points_;
};

/// One health rule over a site's series. `series_contains` selects series
/// by substring ("queue_depth", "wan."); a matching series breaches when
/// its latest value (kValueAbove) or its rate over the last two points in
/// units/sec (kRateAbove) exceeds `threshold`.
struct SloRule {
  enum class Kind { kValueAbove, kRateAbove };
  std::string name;
  std::string series_contains;
  Kind kind = Kind::kValueAbove;
  double threshold = 0;
  Health verdict = Health::kDegraded;
};

/// The stock rule set: deep queues (jobs waiting on busy CPUs), a high
/// requeue rate (parts bouncing off dead ranks), and WAN link saturation
/// (sustained bytes/sec near the paper's 1.5 Mbps trans-Pacific capacity).
std::vector<SloRule> default_slo_rules();

struct TimelineOptions {
  std::size_t ring_capacity = 128;
  /// A site whose newest report is older than this (and not final) is
  /// verdict-down: its agent, host, or path has gone quiet unexpectedly.
  std::int64_t stale_after_ns = 1'000'000'000;
  std::vector<SloRule> slos = default_slo_rules();
};

/// An applied (absolute-valued) report: what one journal line carries.
struct SiteReport {
  std::string site;
  std::uint64_t seq = 0;
  std::int64_t t_ns = 0;
  bool final_report = false;
  std::vector<std::pair<std::string, std::int64_t>> series;  ///< absolute
  std::vector<std::pair<std::string, Health>> health;        ///< changed
};

/// One deterministic JSONL journal line for a report (no trailing newline).
std::string report_to_jsonl(const SiteReport& r);
/// Inverse of report_to_jsonl (also accepts hand-written fixtures).
Result<SiteReport> report_from_jsonl(std::string_view line);

/// A breached SLO rule at evaluation time.
struct SloBreach {
  std::string rule;
  std::string series;
  double value = 0;  ///< latest value or rate, whichever the rule reads
  Health verdict = Health::kUp;
};

class TimelineState {
 public:
  explicit TimelineState(TimelineOptions opts = {});

  /// Ingests one report (collector: decoded live; wacs-top: journal line).
  void apply(const SiteReport& r);

  /// Worst of: component states the site reported, SLO breaches, and
  /// staleness at `now_ns`.
  Health verdict(const std::string& site, std::int64_t now_ns) const;
  std::vector<SloBreach> breaches(const std::string& site) const;

  std::vector<std::string> sites() const;
  std::uint64_t reports_applied() const { return reports_applied_; }

  /// Full deterministic state dump: per-site verdicts, component health,
  /// breaches, and ring contents. The CI snapshot artifact.
  json::Value snapshot_json(std::int64_t now_ns) const;

  /// Terminal rendering (wacs-top): one block per site with verdict, age,
  /// component states, and sparklines for utilization-ish series.
  std::string render_top(std::int64_t now_ns, int width = 72) const;

 private:
  struct SiteState {
    std::uint64_t seq = 0;
    std::int64_t last_t_ns = 0;
    bool final_report = false;
    std::map<std::string, Ring> series;
    std::map<std::string, Health> health;
  };

  TimelineOptions opts_;
  std::map<std::string, SiteState> sites_;
  std::uint64_t reports_applied_ = 0;
};

}  // namespace wacs::obs
