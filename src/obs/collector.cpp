#include "obs/collector.hpp"

#include <cstdlib>
#include <map>
#include <utility>

#include "common/log.hpp"
#include "simnet/fault.hpp"

namespace wacs::obs {
namespace {

const log::Logger kLog("obs.collector");

}  // namespace

Collector::Collector(sim::Host& host, CollectorOptions options, Env env)
    : host_(&host),
      options_(std::move(options)),
      env_(std::move(env)),
      timeline_(options_.timeline) {
  journal_max_bytes_ = options_.journal_max_bytes;
  // Deployment override in whole megabytes; 0/unset leaves the option.
  if (const char* mb = std::getenv("WACS_OBS_JOURNAL_MAX_MB")) {
    const long v = std::atol(mb);
    if (v > 0) journal_max_bytes_ = static_cast<std::size_t>(v) * 1024 * 1024;
  }
}

void Collector::start() {
  WACS_CHECK_MSG(!started_, "collector already started");
  started_ = true;
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "collector cannot bind its port");
  listener_ = *listener;
  spawn_serve();
}

void Collector::spawn_serve() {
  sim::Engine& engine = host_->network().engine();
  engine.spawn("obs.collector@" + host_->name(),
               [this, listener = listener_](sim::Process& self) {
                 serve(self, listener);
               });
  proxy::ProxyClient probe(*host_, env_);
  if (probe.configured()) {
    engine.spawn("obs.collector.proxied@" + host_->name(),
                 [this](sim::Process& self) { serve_proxied(self); });
  } else {
    bind_done_ = true;
  }
}

void Collector::serve(sim::Process& self, sim::ListenerPtr listener) {
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    host_->network().engine().spawn(
        "obs.collector@" + host_->name() + ".conn",
        [this, sock](sim::Process& h) { handle(h, sock); });
  }
}

void Collector::serve_proxied(sim::Process& self) {
  proxy::ProxyClient client(*host_, env_);
  auto bound = client.nx_bind(self);
  if (!bound.ok()) {
    kLog.error("%s: NXProxyBind failed: %s", host_->name().c_str(),
               bound.error().to_string().c_str());
    bind_done_ = true;  // remote agents fall back to the direct contact
    return;
  }
  public_contact_ = (*bound)->public_contact();
  bind_done_ = true;
  kLog.info("%s: collector public contact %s", host_->name().c_str(),
            public_contact_->to_string().c_str());
  while (true) {
    auto conn = (*bound)->nx_accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    host_->network().engine().spawn(
        "obs.collector@" + host_->name() + ".conn",
        [this, sock](sim::Process& h) { handle(h, sock); });
  }
}

void Collector::handle(sim::Process& self, sim::SocketPtr conn) {
  auto first = conn->recv(self);
  if (!first.ok()) return;
  auto hello = Hello::decode(*first);
  if (!hello.ok()) {
    ++decode_errors_;
    conn->close();
    return;
  }
  // Per-connection decoder state. The wire deltas on one connection sum to
  // the absolute value (an agent restarts its baseline at zero whenever it
  // redials), so accumulating from zero here reconstructs absolutes.
  std::map<std::uint32_t, std::string> names;
  std::map<std::uint32_t, std::int64_t> absolute;
  while (true) {
    auto frame = conn->recv(self);
    if (!frame.ok()) return;  // EOF, reset, or crash unwind: connection over
    auto report = Report::decode(*frame);
    if (!report.ok()) {
      ++decode_errors_;
      conn->close();
      return;
    }
    for (auto& [id, name] : report->defs) names[id] = std::move(name);
    SiteReport applied;
    applied.site = hello->site;
    applied.seq = report->seq;
    applied.t_ns = report->t_ns;
    applied.final_report = report->final_report;
    for (const auto& [id, delta] : report->samples) {
      auto it = names.find(id);
      if (it == names.end()) {
        ++decode_errors_;
        conn->close();
        return;
      }
      absolute[id] += delta;
      applied.series.emplace_back(it->second, absolute[id]);
    }
    applied.health = std::move(report->health);
    journal_ += report_to_jsonl(applied);
    journal_ += '\n';
    // Rotation happens on line boundaries only, so both generations always
    // hold whole JSONL records.
    if (journal_max_bytes_ > 0 && journal_.size() >= journal_max_bytes_) {
      rotated_journal_ = std::move(journal_);
      journal_.clear();
      ++journal_rotations_;
      kLog.debug("journal rotated (%zu B -> .1 generation)",
                 rotated_journal_.size());
    }
    timeline_.apply(applied);
    ++reports_received_;
  }
}

}  // namespace wacs::obs
