// GASS client: stores objects on a server and fetches them with N parallel
// striped streams, resuming from per-stripe restart markers after faults.
//
// Routing mirrors the Nexus rule: a proxy-configured client reaches
// cross-site servers through NXProxyConnect (one active open per stripe, so
// every stripe owns a relay pump chain); same-site and unproxied clients
// dial directly. Servers behind a firewall advertise their outer-server
// public contact in URLs, so a direct dial to a `gass://` URL still crosses
// the passive-open relay — either way the stripes parallelize the
// per-message relay cost that throttles a single stream.
#pragma once

#include <cstdint>
#include <optional>

#include "common/config.hpp"
#include "common/retry.hpp"
#include "gass/protocol.hpp"
#include "proxy/client.hpp"
#include "simnet/tcp.hpp"

namespace wacs::gass {

/// Per-transfer tuning. The retry policy governs each stripe's reconnects:
/// a resumed stripe re-sends Get with its restart marker, and the schedule
/// is reset whenever an attempt made progress, so a transfer only fails
/// when a stripe repeatedly moves no bytes at all.
struct TransferOptions {
  int stripes = kDefaultStripes;
  std::uint32_t chunk_bytes = kDefaultChunkBytes;
  std::uint32_t window_chunks = kDefaultWindowChunks;
  double reply_timeout_s = 30.0;  ///< bound on any single wait within a stripe
  RetryPolicy retry = default_retry();

  /// Wide enough to outlast an outer-server crash+restart window.
  static RetryPolicy default_retry() {
    RetryPolicy p;
    p.max_attempts = 10;
    p.initial_backoff_ns = 10'000'000;
    p.max_backoff_ns = 2'000'000'000;
    return p;
  }
};

struct TransferStats {
  std::uint64_t bytes = 0;    ///< payload bytes received
  std::uint64_t chunks = 0;   ///< chunks received
  std::uint64_t resumes = 0;  ///< stripe reconnects that carried a restart marker
  double seconds = 0;         ///< virtual time of the whole fetch
};

class GassClient {
 public:
  /// `env` supplies the proxy route (NEXUS_PROXY_*) and the site cache
  /// server (WACS_GASS_SERVER) used by stage().
  GassClient(sim::Host& host, Env env);

  /// Stores `data` on `server`; returns the advertised URL (public contact
  /// when the server sits behind a proxy).
  Result<GassUrl> put(sim::Process& self, const Contact& server, Bytes data);

  /// Striped fetch of `url` straight from its server.
  Result<Bytes> fetch(sim::Process& self, const GassUrl& url,
                      const TransferOptions& opts = {},
                      TransferStats* stats = nullptr);

  /// Staging entry used by the Q system: when the environment names a site
  /// cache server distinct from the origin, fetch through it (the cache
  /// pulls the object across the WAN once and serves the site over the
  /// LAN); otherwise fetch from the origin directly.
  Result<Bytes> stage(sim::Process& self, const GassUrl& origin,
                      const TransferOptions& opts = {},
                      TransferStats* stats = nullptr);

 private:
  friend class GassServer;  // pull-through shares the routing logic

  Result<Bytes> fetch_impl(sim::Process& self, const GassUrl& url,
                           const std::string& origin,
                           const TransferOptions& opts, TransferStats* stats);
  Result<sim::SocketPtr> dial(sim::Process& self, const Contact& server);

  sim::Host* host_;
  Env env_;
  std::optional<proxy::ProxyClient> proxy_;
};

}  // namespace wacs::gass
