#include "gass/server.hpp"

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/fault.hpp"
#include "simnet/time.hpp"

namespace wacs::gass {
namespace {

const log::Logger kLog("gass.server");

/// Bound on waiting for one ChunkAck; a vanished client frees the handler.
constexpr double kAckTimeoutS = 60.0;

}  // namespace

GassServer::GassServer(sim::Host& host, ServerOptions options, Env env)
    : host_(&host),
      options_(std::move(options)),
      env_(std::move(env)),
      fetcher_(host, env_) {}

void GassServer::register_proc(sim::Process* proc) {
  if (auto* fault = host_->network().fault(); fault != nullptr) {
    fault->register_host_process(host_->name(), proc);
  }
}

void GassServer::spawn_serve() {
  sim::Engine& engine = host_->network().engine();
  bind_wait_ = std::make_unique<sim::WaitQueue>(engine);
  bind_done_ = false;
  public_contact_.reset();
  serve_proc_ = engine.spawn(
      "gass@" + host_->name(),
      [this, listener = listener_](sim::Process& self) {
        serve(self, listener);
      });
  register_proc(serve_proc_);

  proxy::ProxyClient probe(*host_, env_);
  if (probe.configured()) {
    // Passive open: register with the outer server so the public contact
    // can be advertised in URLs, then accept relayed stripes forever.
    auto* proxied = engine.spawn(
        "gass.proxied@" + host_->name(),
        [this](sim::Process& self) { serve_proxied(self); });
    register_proc(proxied);
  } else {
    bind_done_ = true;
  }
}

void GassServer::start() {
  WACS_CHECK_MSG(!started_, "GASS server already started");
  started_ = true;
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "GASS server cannot bind its port");
  listener_ = *listener;
  spawn_serve();
}

void GassServer::restart() {
  if (listener_ != nullptr) listener_->close();
  auto listener = host_->stack().listen(options_.port);
  WACS_CHECK_MSG(listener.ok(), "GASS server cannot re-bind its port");
  listener_ = *listener;
  // In-flight pull-throughs died with their handler processes; the flights
  // table must not park the next miss behind a verdict that never comes.
  flights_.clear();
  spawn_serve();
}

void GassServer::serve(sim::Process& self, sim::ListenerPtr listener) {
  while (true) {
    auto conn = listener->accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    auto* handler = host_->network().engine().spawn(
        "gass@" + host_->name() + ".req",
        [this, sock](sim::Process& h) { handle(h, sock); });
    register_proc(handler);
  }
}

void GassServer::serve_proxied(sim::Process& self) {
  proxy::ProxyClient client(*host_, env_);
  auto bound = client.nx_bind(self);
  if (!bound.ok()) {
    kLog.error("%s: NXProxyBind failed: %s", host_->name().c_str(),
               bound.error().to_string().c_str());
    bind_done_ = true;  // URLs fall back to the direct contact
    bind_wait_->notify_all();
    return;
  }
  public_contact_ = (*bound)->public_contact();
  bind_done_ = true;
  bind_wait_->notify_all();
  kLog.info("%s: GASS public contact %s", host_->name().c_str(),
            public_contact_->to_string().c_str());
  while (true) {
    auto conn = (*bound)->nx_accept(self);
    if (!conn.ok()) return;
    auto sock = *conn;
    auto* handler = host_->network().engine().spawn(
        "gass@" + host_->name() + ".req",
        [this, sock](sim::Process& h) { handle(h, sock); });
    register_proc(handler);
  }
}

void GassServer::handle(sim::Process& self, sim::SocketPtr conn) {
  auto frame = conn->recv(self);
  if (!frame.ok()) return;
  auto type = peek_type(*frame);
  if (!type.ok()) {
    conn->close();
    return;
  }
  if (*type == MsgType::kPut) {
    auto put = Put::decode(*frame);
    if (!put.ok()) {
      (void)conn->send(
          PutReply{false, "", "", put.error().to_string()}.encode());
      conn->close();
      return;
    }
    // URLs must carry the public contact, so a Put racing the proxy bind
    // waits for it to settle.
    bind_wait_->wait_until(self, [&] { return bind_done_; });
    std::string key = store_.put(std::move(put->data));
    const std::string url = url_for(key).to_string();
    (void)conn->send(PutReply{true, std::move(key), url, ""}.encode());
    conn->close();
    return;
  }
  if (*type == MsgType::kGet) {
    auto get = Get::decode(*frame);
    if (!get.ok()) {
      (void)conn->send(
          GetReply{false, 0, get.error().to_string()}.encode());
      conn->close();
      return;
    }
    handle_get(self, conn, *get);
    return;
  }
  conn->close();
}

void GassServer::handle_get(sim::Process& self, sim::SocketPtr conn,
                            const Get& req) {
  telemetry::Span span("gass", "gass.get", conn->last_rx_meta().ctx);
  if (span.active()) {
    span.arg("key", req.key);
    span.arg("stripe", static_cast<double>(req.stripe_id));
  }
  const Bytes* obj = store_.find(req.key);  // counts the hit or miss
  if (obj == nullptr) {
    if (req.origin.empty()) {
      (void)conn->send(
          GetReply{false, 0, "no object " + req.key}.encode());
      conn->close();
      return;
    }
    auto filled = ensure_object(self, req.key, req.origin);
    if (!filled.ok()) {
      (void)conn->send(
          GetReply{false, 0, filled.error().to_string()}.encode());
      conn->close();
      return;
    }
    obj = store_.peek(req.key);
    WACS_CHECK(obj != nullptr);
  }

  const std::uint64_t total = obj->size();
  if (!conn->send(GetReply{true, total, ""}.encode()).ok()) return;

  const std::uint64_t chunks = chunk_count(total, req.chunk_bytes);
  const std::uint64_t expected =
      stripe_chunks(chunks, req.stripe_id, req.stripe_count);
  const std::uint32_t window =
      req.window_chunks == 0 ? 1 : req.window_chunks;
  std::uint64_t sent = std::min(req.resume_chunks, expected);
  std::uint64_t acked = sent;
  while (acked < expected) {
    while (sent < expected && sent - acked < window) {
      const std::uint64_t seq =
          req.stripe_id + sent * req.stripe_count;
      const std::uint64_t offset = seq * req.chunk_bytes;
      const std::uint64_t len =
          std::min<std::uint64_t>(req.chunk_bytes, total - offset);
      Chunk chunk;
      chunk.seq = seq;
      chunk.offset = offset;
      chunk.payload.assign(
          obj->begin() + static_cast<std::ptrdiff_t>(offset),
          obj->begin() + static_cast<std::ptrdiff_t>(offset + len));
      if (!conn->send(chunk.encode()).ok()) return;  // client will resume
      ++sent;
    }
    auto frame = conn->recv_deadline(
        self, host_->network().engine().now() + sim::from_sec(kAckTimeoutS));
    if (!frame.ok()) return;
    auto ack = ChunkAck::decode(*frame);
    if (!ack.ok()) return;
    ++acked;  // acks are FIFO on the stripe connection
  }
  ++gets_served_;
  conn->close();
}

Status GassServer::ensure_object(sim::Process& self, const std::string& key,
                                 const std::string& origin) {
  if (store_.contains(key)) return Status();
  if (auto it = flights_.find(key); it != flights_.end()) {
    // Another handler is already pulling this key: wait for its verdict.
    auto flight = it->second;
    flight->waiters.wait_until(self, [&] { return flight->done; });
    return flight->result;
  }
  auto flight = std::make_shared<Flight>(host_->network().engine());
  flights_.emplace(key, flight);
  ++pull_throughs_;
  static telemetry::Counter& pulls =
      telemetry::metrics().counter("gass.pull_through");
  pulls.add();

  Status result;
  auto origin_url = GassUrl::parse(origin);
  if (!origin_url.ok()) {
    result = origin_url.error();
  } else {
    auto data = fetcher_.fetch(self, *origin_url, options_.fetch);
    if (!data.ok()) {
      result = data.error();
    } else if (store_.put(std::move(*data)) != key) {
      // Content address mismatch: the origin served different bytes than
      // the key promises. Refuse rather than cache-poison.
      result = Error(ErrorCode::kProtocolError,
                     "gass: origin content does not match key " + key);
    }
  }
  flight->done = true;
  flight->result = result;
  flight->waiters.notify_all();
  flights_.erase(key);
  return result;
}

}  // namespace wacs::gass
