// GASS server: one per site, inside the firewall, reachable through the
// Nexus Proxy.
//
// Serves Put (store, returns the content-address URL) and Get (one stripe
// of a windowed chunk stream). When started with a proxy-configured
// environment it NXProxyBinds and advertises the outer server's public
// contact in its URLs, so remote sites can stage from it across the
// firewall. A Get for a missing key with an origin URL triggers a
// pull-through fetch: the server stages the object from the origin into its
// own store first — single-flight, so twenty concurrent rank stagings cost
// one WAN transfer and nineteen LAN cache hits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "common/config.hpp"
#include "gass/cache.hpp"
#include "gass/client.hpp"
#include "gass/protocol.hpp"
#include "proxy/client.hpp"
#include "simnet/tcp.hpp"
#include "simnet/waitq.hpp"

namespace wacs::gass {

struct ServerOptions {
  std::uint16_t port = 7200;
  /// Stripes used for pull-through fetches from an origin (the WAN leg).
  TransferOptions fetch;
};

class GassServer {
 public:
  GassServer(sim::Host& host, ServerOptions options, Env env);

  void start();

  /// Restart-hook body: re-listens, respawns the serve loops, and redoes
  /// the proxy bind. The content-addressed store survives (it stands in
  /// for the site cache's disk), so staged objects are still served after
  /// the crash; in-flight pull-through flights died with their handlers
  /// and are simply forgotten.
  void restart();

  Contact contact() const { return Contact{host_->name(), options_.port}; }
  /// Outer-server rewrite of our contact; empty until the bind completes
  /// (or forever, when the site needs no proxy).
  const std::optional<Contact>& public_contact() const {
    return public_contact_;
  }
  /// The address remote clients should use: public when proxied.
  Contact advertised_contact() const {
    return public_contact_.value_or(contact());
  }
  GassUrl url_for(const std::string& key) const {
    return GassUrl{advertised_contact(), key};
  }

  ObjectStore& store() { return store_; }
  std::uint64_t pull_throughs() const { return pull_throughs_; }
  std::uint64_t gets_served() const { return gets_served_; }
  sim::Process* serve_process() const { return serve_proc_; }

 private:
  void spawn_serve();
  void serve(sim::Process& self, sim::ListenerPtr listener);
  void serve_proxied(sim::Process& self);
  void register_proc(sim::Process* proc);
  void handle(sim::Process& self, sim::SocketPtr conn);
  void handle_get(sim::Process& self, sim::SocketPtr conn, const Get& req);
  /// Ensures `key` is stored, pulling through `origin` on a miss.
  Status ensure_object(sim::Process& self, const std::string& key,
                       const std::string& origin);

  /// Single-flight bookkeeping for concurrent misses of one key.
  struct Flight {
    explicit Flight(sim::Engine& engine) : waiters(engine) {}
    sim::WaitQueue waiters;
    bool done = false;
    Status result;
  };

  sim::Host* host_;
  ServerOptions options_;
  Env env_;
  ObjectStore store_;
  GassClient fetcher_;
  sim::ListenerPtr listener_;
  std::optional<Contact> public_contact_;
  bool bind_done_ = false;  ///< true once the proxy bind resolved (or n/a)
  std::unique_ptr<sim::WaitQueue> bind_wait_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
  std::uint64_t pull_throughs_ = 0;
  std::uint64_t gets_served_ = 0;
  bool started_ = false;
  sim::Process* serve_proc_ = nullptr;
};

}  // namespace wacs::gass
