#include "gass/cache.hpp"

#include "common/telemetry.hpp"
#include "security/sha256.hpp"

namespace wacs::gass {

std::string ObjectStore::put(Bytes data) {
  std::string key = security::sha256_hex(data);
  auto [it, inserted] = objects_.emplace(key, std::move(data));
  if (inserted) stored_bytes_ += it->second.size();
  return key;
}

const Bytes* ObjectStore::find(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    ++misses_;
    static telemetry::Counter& miss =
        telemetry::metrics().counter("gass.cache_miss");
    miss.add();
    return nullptr;
  }
  ++hits_;
  static telemetry::Counter& hit =
      telemetry::metrics().counter("gass.cache_hit");
  hit.add();
  return &it->second;
}

}  // namespace wacs::gass
