// Content-addressed object store backing a GASS server.
//
// Objects are immutable and keyed by their sha256 hex digest, so a store is
// simultaneously the origin's "disk" and a site cache: a key either resolves
// to exactly the right bytes or is absent, and re-inserting the same content
// is a no-op. Hit/miss counters feed the `gass.cache_*` telemetry.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"

namespace wacs::gass {

class ObjectStore {
 public:
  /// Stores `data` under its content address and returns the key.
  /// Idempotent: identical content maps to the same key and is kept once.
  std::string put(Bytes data);

  /// The stored object, or nullptr. Counts a hit or a miss.
  const Bytes* find(const std::string& key);

  /// find() without touching the hit/miss counters (post-fill lookups).
  const Bytes* peek(const std::string& key) const {
    auto it = objects_.find(key);
    return it == objects_.end() ? nullptr : &it->second;
  }

  bool contains(const std::string& key) const {
    return objects_.count(key) != 0;
  }

  std::size_t objects() const { return objects_.size(); }
  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::map<std::string, Bytes> objects_;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace wacs::gass
