#include "gass/protocol.hpp"

namespace wacs::gass {
namespace {

Error bad_frame(const char* what) {
  return Error(ErrorCode::kProtocolError, std::string("gass frame: ") + what);
}

Result<MsgType> expect_type(BufReader& r, MsgType want) {
  auto tag = r.u8();
  if (!tag) return tag.error();
  if (*tag != static_cast<std::uint8_t>(want)) {
    return bad_frame("wrong type tag");
  }
  return want;
}

void put_tag(BufWriter& w, MsgType t) { w.u8(static_cast<std::uint8_t>(t)); }

}  // namespace

std::string GassUrl::to_string() const {
  return "gass://" + server.host + ":" + std::to_string(server.port) + "/" +
         key;
}

Result<GassUrl> GassUrl::parse(const std::string& url) {
  constexpr std::string_view kScheme = "gass://";
  auto bad = [&](const char* what) {
    return Error(ErrorCode::kInvalidArgument,
                 std::string("bad gass url '") + url + "': " + what);
  };
  if (url.rfind(kScheme, 0) != 0) return bad("missing gass:// scheme");
  const std::size_t host_begin = kScheme.size();
  const std::size_t colon = url.find(':', host_begin);
  if (colon == std::string::npos) return bad("missing port");
  const std::size_t slash = url.find('/', colon);
  if (slash == std::string::npos) return bad("missing key");
  GassUrl out;
  out.server.host = url.substr(host_begin, colon - host_begin);
  if (out.server.host.empty()) return bad("empty host");
  const std::string port = url.substr(colon + 1, slash - colon - 1);
  int value = 0;
  for (char c : port) {
    if (c < '0' || c > '9') return bad("non-numeric port");
    value = value * 10 + (c - '0');
    if (value > 65535) return bad("port out of range");
  }
  if (port.empty() || value == 0) return bad("bad port");
  out.server.port = static_cast<std::uint16_t>(value);
  out.key = url.substr(slash + 1);
  if (out.key.empty()) return bad("empty key");
  return out;
}

Result<MsgType> peek_type(const Bytes& frame) {
  if (frame.empty()) return bad_frame("empty frame");
  const std::uint8_t tag = frame[0];
  if (tag < 1 || tag > 6) return bad_frame("unknown type tag");
  return static_cast<MsgType>(tag);
}

Bytes Get::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kGet);
  w.str(key);
  w.str(origin);
  w.u32(stripe_id);
  w.u32(stripe_count);
  w.u64(resume_chunks);
  w.u32(chunk_bytes);
  w.u32(window_chunks);
  return std::move(w).take();
}

Result<Get> Get::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kGet); !t) return t.error();
  Get out;
  auto key = r.str();
  if (!key) return key.error();
  out.key = std::move(*key);
  auto origin = r.str();
  if (!origin) return origin.error();
  out.origin = std::move(*origin);
  auto sid = r.u32();
  if (!sid) return sid.error();
  out.stripe_id = *sid;
  auto count = r.u32();
  if (!count) return count.error();
  out.stripe_count = *count;
  auto resume = r.u64();
  if (!resume) return resume.error();
  out.resume_chunks = *resume;
  auto chunk = r.u32();
  if (!chunk) return chunk.error();
  out.chunk_bytes = *chunk;
  auto window = r.u32();
  if (!window) return window.error();
  out.window_chunks = *window;
  if (out.stripe_count == 0 || out.stripe_id >= out.stripe_count) {
    return bad_frame("stripe id out of range");
  }
  if (out.chunk_bytes == 0) return bad_frame("zero chunk size");
  return out;
}

Bytes GetReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kGetReply);
  w.boolean(ok);
  w.u64(total_bytes);
  w.str(error);
  return std::move(w).take();
}

Result<GetReply> GetReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kGetReply); !t) return t.error();
  GetReply out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto total = r.u64();
  if (!total) return total.error();
  out.total_bytes = *total;
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  return out;
}

Bytes Chunk::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kChunk);
  w.u64(seq);
  w.u64(offset);
  w.blob(payload);
  return std::move(w).take();
}

Result<Chunk> Chunk::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kChunk); !t) return t.error();
  Chunk out;
  auto seq = r.u64();
  if (!seq) return seq.error();
  out.seq = *seq;
  auto offset = r.u64();
  if (!offset) return offset.error();
  out.offset = *offset;
  auto payload = r.blob();
  if (!payload) return payload.error();
  out.payload = std::move(*payload);
  return out;
}

Bytes ChunkAck::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kChunkAck);
  w.u64(seq);
  return std::move(w).take();
}

Result<ChunkAck> ChunkAck::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kChunkAck); !t) return t.error();
  auto seq = r.u64();
  if (!seq) return seq.error();
  return ChunkAck{*seq};
}

Bytes Put::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kPut);
  w.blob(data);
  return std::move(w).take();
}

Result<Put> Put::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kPut); !t) return t.error();
  auto data = r.blob();
  if (!data) return data.error();
  return Put{std::move(*data)};
}

Bytes PutReply::encode() const {
  BufWriter w;
  put_tag(w, MsgType::kPutReply);
  w.boolean(ok);
  w.str(key);
  w.str(url);
  w.str(error);
  return std::move(w).take();
}

Result<PutReply> PutReply::decode(const Bytes& frame) {
  BufReader r(frame);
  if (auto t = expect_type(r, MsgType::kPutReply); !t) return t.error();
  PutReply out;
  auto ok = r.boolean();
  if (!ok) return ok.error();
  out.ok = *ok;
  auto key = r.str();
  if (!key) return key.error();
  out.key = std::move(*key);
  auto url = r.str();
  if (!url) return url.error();
  out.url = std::move(*url);
  auto error = r.str();
  if (!error) return error.error();
  out.error = std::move(*error);
  return out;
}

std::uint64_t chunk_count(std::uint64_t total_bytes,
                          std::uint32_t chunk_bytes) {
  return (total_bytes + chunk_bytes - 1) / chunk_bytes;
}

std::uint64_t stripe_chunks(std::uint64_t chunks, std::uint32_t stripe_id,
                            std::uint32_t stripe_count) {
  if (stripe_id >= chunks % stripe_count) return chunks / stripe_count;
  return chunks / stripe_count + 1;
}

}  // namespace wacs::gass
