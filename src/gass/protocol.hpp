// GASS wire protocol: chunked, striped, resumable file transfers.
//
// Globus GASS (Global Access to Secondary Storage) staged executables and
// input files to remote resources before a job started. Our reproduction
// frames the transfer explicitly so the firewall-compliant path can be
// measured: a file is split into fixed-size chunks, chunk i belongs to
// stripe i % stripe_count, and each stripe travels on its own connection
// (its own NXProxyConnect when the route crosses a firewall, hence its own
// relay pump chain — the GridFTP parallel-streams idea). The receiver acks
// every chunk; the ack doubles as a flow-control credit and as the restart
// marker a resumed transfer continues from after a fault.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/contact.hpp"
#include "common/error.hpp"

namespace wacs::gass {

/// Transfer tuning defaults. The chunk/window pair models the era's TCP
/// socket buffers (8 KB segments, ~16 KB default window): one stripe keeps
/// at most `window` chunks unacked in flight, so the relay-inflated RTT of
/// the proxied path caps per-stripe throughput — exactly the effect
/// parallel streams repair.
inline constexpr std::uint32_t kDefaultChunkBytes = 8 * 1024;
inline constexpr std::uint32_t kDefaultWindowChunks = 2;
inline constexpr int kDefaultStripes = 4;

/// A `gass://host:port/key` URL. The key is the object's content address
/// (sha256 hex); the contact is the serving endpoint — the public contact
/// rewritten by the outer proxy server when the origin sits behind a
/// firewall.
struct GassUrl {
  Contact server;
  std::string key;

  std::string to_string() const;
  static Result<GassUrl> parse(const std::string& url);

  friend bool operator==(const GassUrl&, const GassUrl&) = default;
};

enum class MsgType : std::uint8_t {
  kGet = 1,
  kGetReply = 2,
  kChunk = 3,
  kChunkAck = 4,
  kPut = 5,
  kPutReply = 6,
};

Result<MsgType> peek_type(const Bytes& frame);

/// Opens one stripe of a transfer. `resume_chunks` chunks of this stripe
/// were already received by the client (the restart marker): the server
/// skips them. `origin` is the upstream URL a caching server pulls through
/// on a miss ("" = serve only what is stored).
struct Get {
  std::string key;
  std::string origin;
  std::uint32_t stripe_id = 0;
  std::uint32_t stripe_count = 1;
  std::uint64_t resume_chunks = 0;
  std::uint32_t chunk_bytes = kDefaultChunkBytes;
  std::uint32_t window_chunks = kDefaultWindowChunks;
  Bytes encode() const;
  static Result<Get> decode(const Bytes& frame);
};

struct GetReply {
  bool ok = false;
  std::uint64_t total_bytes = 0;
  std::string error;
  Bytes encode() const;
  static Result<GetReply> decode(const Bytes& frame);
};

/// One chunk. `seq` is the global chunk index (seq % stripe_count names the
/// stripe), `offset` its byte position — the receiver reassembles stripes
/// into one buffer by offset.
struct Chunk {
  std::uint64_t seq = 0;
  std::uint64_t offset = 0;
  Bytes payload;
  Bytes encode() const;
  static Result<Chunk> decode(const Bytes& frame);
};

/// Receiver → sender: chunk `seq` landed. Releases one window credit and
/// advances the stripe's restart marker.
struct ChunkAck {
  std::uint64_t seq = 0;
  Bytes encode() const;
  static Result<ChunkAck> decode(const Bytes& frame);
};

/// Stores an object; the server derives the content-address key itself.
struct Put {
  Bytes data;
  Bytes encode() const;
  static Result<Put> decode(const Bytes& frame);
};

/// `url` is the object's advertised address: the server's public (proxied)
/// contact when it has one, so the URL works from anywhere on the grid.
struct PutReply {
  bool ok = false;
  std::string key;
  std::string url;
  std::string error;
  Bytes encode() const;
  static Result<PutReply> decode(const Bytes& frame);
};

/// Chunks covering `total_bytes`, i.e. ceil(total/chunk); 0 for an empty
/// object (an empty file still transfers: the GetReply carries the size).
std::uint64_t chunk_count(std::uint64_t total_bytes, std::uint32_t chunk_bytes);

/// Chunks of `stripe_id` under a `stripe_count`-way striping of `chunks`.
std::uint64_t stripe_chunks(std::uint64_t chunks, std::uint32_t stripe_id,
                            std::uint32_t stripe_count);

}  // namespace wacs::gass
