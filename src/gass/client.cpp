#include "gass/client.hpp"

#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "simnet/fault.hpp"
#include "simnet/time.hpp"
#include "simnet/waitq.hpp"

namespace wacs::gass {
namespace {

const log::Logger kLog("gass.client");

/// State shared by the stripes of one fetch. Stripe processes only touch it
/// while the engine runs them one at a time, so no locking is needed.
struct FetchState {
  explicit FetchState(sim::Engine& engine) : done_q(engine) {}

  sim::WaitQueue done_q;
  Bytes buffer;
  bool have_total = false;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> received;  ///< per-stripe restart markers
  std::uint64_t bytes = 0;
  std::uint64_t chunks = 0;
  std::uint64_t resumes = 0;
  int done = 0;
  bool failed = false;
  Error failure{ErrorCode::kInternal, "unset"};

  void fail(Error e) {
    if (!failed) {
      failed = true;
      failure = std::move(e);
    }
  }
};

}  // namespace

GassClient::GassClient(sim::Host& host, Env env)
    : host_(&host), env_(std::move(env)) {
  proxy::ProxyClient client(host, env_);
  if (client.configured()) proxy_.emplace(std::move(client));
}

Result<sim::SocketPtr> GassClient::dial(sim::Process& self,
                                        const Contact& server) {
  // Same-site servers are dialed over the LAN; a proxy-configured client
  // reaches anything cross-site through its own outer server (Fig 3 active
  // open), the paper's rule for all wide-area traffic from inside.
  if (proxy_) {
    auto target = host_->network().find_host(server.host);
    const bool same_site =
        target.ok() && (*target)->site() == host_->site();
    if (!same_site) return proxy_->nx_connect(self, server);
  }
  return host_->stack().connect(self, server);
}

Result<GassUrl> GassClient::put(sim::Process& self, const Contact& server,
                                Bytes data) {
  telemetry::Span span("gass", "gass.put");
  if (span.active()) span.arg("bytes", static_cast<double>(data.size()));
  auto conn = dial(self, server);
  if (!conn.ok()) {
    return Error(conn.error().code(),
                 "gass put: " + server.to_string() +
                     " unreachable: " + conn.error().message());
  }
  if (auto s = (*conn)->send(Put{std::move(data)}.encode()); !s.ok()) {
    return s.error();
  }
  auto frame = (*conn)->recv_deadline(
      self, host_->network().engine().now() + sim::from_sec(30.0));
  (*conn)->close();
  if (!frame.ok()) return frame.error();
  auto reply = PutReply::decode(*frame);
  if (!reply.ok()) return reply.error();
  if (!reply->ok) return Error(ErrorCode::kUnavailable, reply->error);
  auto url = GassUrl::parse(reply->url);
  if (!url.ok()) return url.error();
  if (span.active()) span.arg("key", reply->key);
  return *url;
}

Result<Bytes> GassClient::fetch(sim::Process& self, const GassUrl& url,
                                const TransferOptions& opts,
                                TransferStats* stats) {
  return fetch_impl(self, url, "", opts, stats);
}

Result<Bytes> GassClient::stage(sim::Process& self, const GassUrl& origin,
                                const TransferOptions& opts,
                                TransferStats* stats) {
  auto site_server = env_.get_contact(env_keys::kGassServer);
  if (!site_server.ok()) return site_server.error();
  if (site_server->has_value() && **site_server != origin.server) {
    GassUrl via{**site_server, origin.key};
    return fetch_impl(self, via, origin.to_string(), opts, stats);
  }
  return fetch_impl(self, origin, "", opts, stats);
}

Result<Bytes> GassClient::fetch_impl(sim::Process& self, const GassUrl& url,
                                     const std::string& origin,
                                     const TransferOptions& opts,
                                     TransferStats* stats) {
  sim::Engine& engine = host_->network().engine();
  const sim::Time started = engine.now();
  const int stripes = opts.stripes < 1 ? 1 : opts.stripes;
  WACS_CHECK_MSG(opts.chunk_bytes > 0, "gass: zero chunk size");

  telemetry::Span span("gass", "gass.transfer");
  if (span.active()) {
    span.arg("url", url.to_string());
    span.arg("stripes", stripes);
    if (!origin.empty()) span.arg("origin", origin);
  }

  auto state = std::make_shared<FetchState>(engine);
  state->received.assign(static_cast<std::size_t>(stripes), 0);

  // One stripe runs a reconnect loop: dial, send Get with the restart
  // marker, drain+ack chunks, and on any transient failure back off and
  // resume where the marker points. Progress resets the attempt budget.
  auto stripe_run = [this, state, url, origin, opts, stripes,
                     parent = span.context()](sim::Process& stripe_self,
                                              int sid) {
    telemetry::Span stripe_span("gass", "gass.stripe", parent);
    if (stripe_span.active()) stripe_span.arg("stripe", sid);
    const std::uint32_t count = static_cast<std::uint32_t>(stripes);
    const std::uint64_t seed =
        fnv1a(to_bytes(url.to_string() + "#" + std::to_string(sid) + "@" +
                       host_->name()));
    auto& got = state->received[static_cast<std::size_t>(sid)];
    RetrySchedule schedule(opts.retry, seed);
    sim::Time attempt_epoch = stripe_self.engine().now();

    auto finish = [&](std::optional<Error> err) {
      if (err.has_value()) state->fail(std::move(*err));
      ++state->done;
      state->done_q.notify_all();
    };

    for (;;) {
      const std::uint64_t got_before = got;
      // --- one attempt -------------------------------------------------
      std::optional<Error> permanent;
      bool complete = false;
      do {
        auto conn = dial(stripe_self, url.server);
        if (!conn.ok()) break;  // transient: retry below
        Get req;
        req.key = url.key;
        req.origin = origin;
        req.stripe_id = static_cast<std::uint32_t>(sid);
        req.stripe_count = count;
        req.resume_chunks = got;
        req.chunk_bytes = opts.chunk_bytes;
        req.window_chunks = opts.window_chunks;
        if (!(*conn)->send(req.encode()).ok()) break;
        auto deadline = [&] {
          return stripe_self.engine().now() +
                 sim::from_sec(opts.reply_timeout_s);
        };
        auto reply_frame = (*conn)->recv_deadline(stripe_self, deadline());
        if (!reply_frame.ok()) break;
        auto reply = GetReply::decode(*reply_frame);
        if (!reply.ok()) {
          permanent = reply.error();
          break;
        }
        if (!reply->ok) {
          permanent = Error(ErrorCode::kNotFound,
                            "gass get " + url.to_string() + ": " +
                                reply->error);
          break;
        }
        if (!state->have_total) {
          state->have_total = true;
          state->total = reply->total_bytes;
          state->buffer.resize(state->total);
        } else if (state->total != reply->total_bytes) {
          permanent = Error(ErrorCode::kProtocolError,
                            "gass: object size changed mid-transfer");
          break;
        }
        const std::uint64_t chunks =
            chunk_count(state->total, opts.chunk_bytes);
        const std::uint64_t expected =
            stripe_chunks(chunks, static_cast<std::uint32_t>(sid), count);
        bool broken = false;
        while (got < expected) {
          auto frame = (*conn)->recv_deadline(stripe_self, deadline());
          if (!frame.ok()) {
            broken = true;
            break;
          }
          auto chunk = Chunk::decode(*frame);
          if (!chunk.ok()) {
            permanent = chunk.error();
            break;
          }
          const std::uint64_t want_seq =
              static_cast<std::uint64_t>(sid) + got * count;
          if (chunk->seq != want_seq ||
              chunk->offset != want_seq * opts.chunk_bytes ||
              chunk->offset + chunk->payload.size() > state->total) {
            permanent = Error(ErrorCode::kProtocolError,
                              "gass: chunk out of sequence");
            break;
          }
          std::copy(chunk->payload.begin(), chunk->payload.end(),
                    state->buffer.begin() +
                        static_cast<std::ptrdiff_t>(chunk->offset));
          ++got;
          state->bytes += chunk->payload.size();
          ++state->chunks;
          if (!(*conn)->send(ChunkAck{chunk->seq}.encode()).ok()) {
            broken = true;
            break;
          }
        }
        if (permanent.has_value() || broken) break;
        (*conn)->close();
        complete = true;
      } while (false);
      // --- attempt verdict ---------------------------------------------
      if (complete) {
        if (stripe_span.active()) {
          stripe_span.arg("chunks", static_cast<double>(got));
        }
        return finish(std::nullopt);
      }
      if (permanent.has_value()) return finish(std::move(permanent));
      if (state->failed) return finish(std::nullopt);  // sibling gave up
      if (got > got_before) {
        // Forward progress: a flapping link should never exhaust the
        // budget of a transfer that is still moving.
        schedule = RetrySchedule(opts.retry, seed ^ got);
        attempt_epoch = stripe_self.engine().now();
      }
      const std::int64_t delay = schedule.next_delay_ns(
          stripe_self.engine().now() - attempt_epoch);
      if (delay < 0) {
        return finish(Error(ErrorCode::kUnavailable,
                            "gass: stripe " + std::to_string(sid) +
                                " exhausted its retry budget"));
      }
      ++state->resumes;
      static telemetry::Counter& resumed =
          telemetry::metrics().counter("gass.resumes");
      resumed.add();
      kLog.debug("stripe %d of %s resuming at chunk %llu", sid,
                 url.key.c_str(), static_cast<unsigned long long>(got));
      if (delay > 0) stripe_self.sleep(sim::to_sec(delay));
    }
  };

  sim::FaultInjector* fault = host_->network().fault();
  for (int sid = 1; sid < stripes; ++sid) {
    sim::Process* proc = engine.spawn(
        "gass.stripe" + std::to_string(sid) + "@" + host_->name(),
        [stripe_run, sid](sim::Process& p) { stripe_run(p, sid); });
    if (fault != nullptr) fault->register_host_process(host_->name(), proc);
  }
  stripe_run(self, 0);
  state->done_q.wait_until(self, [&] { return state->done >= stripes; });

  if (state->failed) return state->failure;
  static telemetry::Counter& transfers =
      telemetry::metrics().counter("gass.transfers");
  transfers.add();
  static telemetry::Counter& bytes_fetched =
      telemetry::metrics().counter("gass.bytes_fetched");
  bytes_fetched.add(state->bytes);
  if (span.active()) {
    span.arg("bytes", static_cast<double>(state->total));
    span.arg("resumes", static_cast<double>(state->resumes));
  }
  if (stats != nullptr) {
    stats->bytes = state->bytes;
    stats->chunks = state->chunks;
    stats->resumes = state->resumes;
    stats->seconds = sim::to_sec(engine.now() - started);
  }
  return std::move(state->buffer);
}

}  // namespace wacs::gass
