// GridSystem: the wide-area cluster system facade.
//
// Owns the simulation engine, the network topology, and every daemon of the
// firewall-compliant Globus-like stack (Nexus Proxy pair, RMF gatekeeper,
// resource allocator, Q servers), wires the firewall rules they need, and
// runs jobs end to end. Benches and examples build a GridSystem (usually via
// core/testbeds.hpp), submit JobSpecs, and read back results and metrics.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gass/server.hpp"
#include "mds/server.hpp"
#include "obs/agent.hpp"
#include "obs/collector.hpp"
#include "proxy/server.hpp"
#include "rmf/allocator.hpp"
#include "rmf/gatekeeper.hpp"
#include "rmf/qserver.hpp"
#include "sched/scheduler.hpp"
#include "simnet/fault.hpp"
#include "simnet/tcp.hpp"

namespace wacs::core {

/// Well-known ports, mirroring the paper's deployment.
struct Ports {
  std::uint16_t gatekeeper = 2119;
  std::uint16_t mds = 2135;  // the historical MDS/LDAP port
  std::uint16_t allocator = 7000;
  std::uint16_t qserver = 7100;
  std::uint16_t gass = 7200;
  std::uint16_t obs = 7300;
  std::uint16_t sched = 2180;
  std::uint16_t outer = 9911;
  std::uint16_t nxport = 9900;
};

class GridSystem {
 public:
  GridSystem() : net_(engine_) {}

  sim::Engine& engine() { return engine_; }
  sim::Network& net() { return net_; }
  rmf::JobRegistry& registry() { return registry_; }
  const Ports& ports() const { return ports_; }

  // ---- topology (thin wrappers over Network) ---------------------------
  sim::Site& add_site(const std::string& name, fw::Policy policy,
                      sim::LinkParams lan) {
    return net_.add_site(name, std::move(policy), std::move(lan));
  }
  sim::Host& add_host(sim::HostParams params) {
    return net_.add_host(std::move(params));
  }
  sim::Link& connect_sites(const std::string& a, const std::string& b,
                           sim::LinkParams params) {
    return net_.connect_sites(a, b, std::move(params));
  }

  /// Environment applied to ranks spawned on `host` (Q server site env).
  void set_host_env(const std::string& host, Env env);
  /// Convenience: proxy env for all current hosts of `site`.
  void set_site_proxy_env(const std::string& site, const Contact& outer,
                          const Contact& inner);

  // ---- services ---------------------------------------------------------
  /// Starts a Nexus Proxy pair for one site and punches the single nxport
  /// hole in that site's firewall (outer_host must be in the DMZ). May be
  /// called once per firewalled site ("in order to spread the global
  /// computing environment over various sites").
  void add_proxy_pair(const std::string& outer_host,
                      const std::string& inner_host,
                      proxy::RelayParams relay);

  /// Starts the site's GASS server on `host` (firewall-inner; NXProxyBinds
  /// through the site's proxy pair when the host env is proxy-configured)
  /// and points every current host of the site at it via WACS_GASS_SERVER.
  /// Call after add_proxy_pair / set_site_proxy_env and before the site's
  /// add_qserver calls, which snapshot the env.
  void add_gass_server(const std::string& host);

  void add_allocator(const std::string& host,
                     rmf::AllocPolicy policy = rmf::AllocPolicy::kFastestFirst);

  /// Starts a Q server on `host`; registers it with the allocator
  /// (cpus/speed from the host) and opens the firewall for the Q-client
  /// control connection from the gatekeeper host.
  void add_qserver(const std::string& host);

  /// Starts the gatekeeper on a DMZ host and opens the control paths the
  /// paper lists: gatekeeper host → allocator, gatekeeper host → Q servers.
  void add_gatekeeper(const std::string& host, std::string credential);

  /// GSI variant: submissions must carry a credential chain verifiable
  /// against `ca_secret` (see security/credential.hpp).
  void add_gatekeeper_gsi(const std::string& host, std::string ca_secret);

  /// Starts the MDS directory on a DMZ host (publishers dial out to it, so
  /// no firewall hole is needed) and publishes one entry per Q-server
  /// resource added so far — call after the Q servers.
  void add_mds(const std::string& host);

  /// Interposes the multi-tenant scheduler (DESIGN.md §17) between the
  /// gatekeeper and the allocator on a DMZ host: allocation traffic is
  /// repointed through the scheduler, which pins MDS-matched placements
  /// and charges per-tenant fair-share for each grant's lifetime. Requires
  /// the allocator, gatekeeper, and MDS; one firewall hole (scheduler host
  /// → allocator port) mirrors the existing Q-client precedent. If
  /// recovery is already enabled the scheduler gets its restart hook here;
  /// otherwise enable_recovery picks it up.
  void add_scheduler(const std::string& host);

  // ---- fault injection ---------------------------------------------------
  /// Creates (on first call) and returns the grid's fault injector, seeded
  /// with `seed`. Hooks every proxy pair's outer daemon to its host's
  /// restart event, so a planned crash+restart of the DMZ host revives the
  /// outer server with its bind registrations intact. Call before run_job
  /// and lay out the fault plan on the returned injector. The seed is fixed
  /// at the first call; later calls return the same injector. The
  /// WACS_FAULT_SEED environment variable, when set, overrides `seed` (the
  /// CI fault matrix re-runs the fault suite under several seeds this way).
  sim::FaultInjector& faults(std::uint64_t seed = 42);
  sim::FaultInjector* fault_injector() {
    return fault_ ? fault_.get() : nullptr;
  }

  // ---- crash recovery ----------------------------------------------------
  /// Knobs for the recoverable control plane; the defaults suit the
  /// paper-scale testbeds (sub-second heartbeats against multi-second
  /// crash windows).
  struct RecoveryOptions {
    double lease_duration_s = 2.0;        ///< allocator-side silence bound
    double heartbeat_interval_s = 0.5;    ///< Q server → allocator period
    double lease_check_interval_s = 1.0;  ///< gatekeeper JM liveness sweep
  };

  /// Turns on the crash-recoverable control plane grid-wide: allocator
  /// leases + Q-server heartbeats (with the firewall holes they need),
  /// RankDone acks and the JM sweeper at the gatekeeper, JobQuery retries
  /// in run_jobs, and restart hooks for every control daemon in dependency
  /// order (outer proxy 0 < gass 10 < allocator 20 < gatekeeper 30 <
  /// qserver 40). Call after the daemons are added and before run_jobs.
  /// Setting WACS_RMF_RECOVERY=0 in the environment turns this into a
  /// no-op (the legacy control plane, for baseline A/B runs).
  void enable_recovery(const RecoveryOptions& options);
  void enable_recovery() { enable_recovery(RecoveryOptions{}); }
  bool recovery_enabled() const { return recovery_enabled_; }

  // ---- observability ------------------------------------------------------
  /// Knobs for the live observability plane (DESIGN.md §14).
  struct ObservabilityOptions {
    double interval_s = 0.25;  ///< agent export period (virtual seconds)
    obs::TimelineOptions timeline;
    /// Collector journal rotation cap in bytes (0 = unbounded); see
    /// obs::CollectorOptions::journal_max_bytes. WACS_OBS_JOURNAL_MAX_MB
    /// overrides.
    std::size_t journal_max_bytes = 0;
  };

  /// Starts the Collector on `collector_host` (normally the submit host)
  /// and one MetricsAgent on the first host of every site, probing that
  /// site's Q servers, GASS server, proxy pair, firewall counters, and
  /// links. Remote agents dial the collector's *advertised* contact — the
  /// outer proxy server's public port when the collector's site is
  /// firewalled — so observability traffic rides the one approved hole;
  /// this method asserts that it adds no firewall rule anywhere. Call after
  /// the daemons are added and before run_jobs. Setting WACS_OBS=0 in the
  /// environment turns this into a no-op (export-off baseline runs).
  void enable_observability(const std::string& collector_host,
                            const ObservabilityOptions& options);
  void enable_observability(const std::string& collector_host) {
    enable_observability(collector_host, ObservabilityOptions{});
  }
  bool observability_enabled() const { return collector_ != nullptr; }
  obs::Collector* collector() { return collector_.get(); }
  const std::vector<std::unique_ptr<obs::MetricsAgent>>& metrics_agents()
      const {
    return agents_;
  }

  // ---- running jobs -------------------------------------------------------
  /// Submits from `submit_host` (a simulated process is spawned there),
  /// runs the engine until the grid goes quiet, and returns the result.
  Result<rmf::JobResult> run_job(const std::string& submit_host,
                                 rmf::JobSpec spec);

  /// Submits several jobs concurrently (each staggered by one virtual
  /// millisecond so the arrival order is deterministic) and waits for all
  /// of them. Exercises the Q system's LSF-like queueing.
  std::vector<Result<rmf::JobResult>> run_jobs(
      const std::string& submit_host, std::vector<rmf::JobSpec> specs);

  // ---- metrics ------------------------------------------------------------
  struct ProxyPair {
    std::string site;
    std::unique_ptr<proxy::OuterServer> outer;
    std::unique_ptr<proxy::InnerServer> inner;
  };

  /// First proxy pair (the common single-firewalled-site case).
  proxy::OuterServer* outer() {
    return proxies_.empty() ? nullptr : proxies_.front().outer.get();
  }
  proxy::InnerServer* inner() {
    return proxies_.empty() ? nullptr : proxies_.front().inner.get();
  }
  /// Proxy pair protecting `site`, or nullptr.
  ProxyPair* proxy_for(const std::string& site);
  const std::vector<ProxyPair>& proxies() const { return proxies_; }
  rmf::ResourceAllocator* allocator() {
    return allocator_ ? allocator_.get() : nullptr;
  }
  rmf::Gatekeeper* gatekeeper() {
    return gatekeeper_ ? gatekeeper_.get() : nullptr;
  }
  mds::DirectoryServer* mds_server() { return mds_ ? mds_.get() : nullptr; }
  sched::Scheduler* scheduler() { return scheduler_ ? scheduler_.get() : nullptr; }
  /// GASS server of `site`, or nullptr.
  gass::GassServer* gass_server_for(const std::string& site);
  const std::vector<std::unique_ptr<rmf::QServer>>& qservers() const {
    return qservers_;
  }
  std::string credential() const { return credential_; }

 private:
  Env env_for(const std::string& host) const;
  void add_gatekeeper_impl(const std::string& host,
                           rmf::Gatekeeper::Options options);

  sim::Engine engine_;
  sim::Network net_;
  rmf::JobRegistry registry_;
  Ports ports_;
  std::string credential_ = "wacs-grid";
  std::string gatekeeper_host_;
  std::vector<std::pair<std::string, Env>> host_envs_;
  std::vector<ProxyPair> proxies_;
  std::unique_ptr<rmf::ResourceAllocator> allocator_;
  std::unique_ptr<rmf::Gatekeeper> gatekeeper_;
  std::unique_ptr<mds::DirectoryServer> mds_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::vector<std::unique_ptr<rmf::QServer>> qservers_;
  std::vector<std::pair<std::string, std::unique_ptr<gass::GassServer>>>
      gass_servers_;  ///< site → server
  std::vector<std::string> pending_qserver_rules_;
  std::unique_ptr<sim::FaultInjector> fault_;
  bool recovery_enabled_ = false;
  std::unique_ptr<obs::Collector> collector_;
  std::vector<std::unique_ptr<obs::MetricsAgent>> agents_;
  /// Concurrently-running submissions; the agents' busy predicate. Plain
  /// bookkeeping with no simulated cost, so export-off runs are unchanged.
  int inflight_jobs_ = 0;
};

}  // namespace wacs::core
