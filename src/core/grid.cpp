#include "core/grid.hpp"

#include <cstdlib>
#include <string_view>

#include "common/log.hpp"
#include "rmf/staging.hpp"

namespace wacs::core {
namespace {

fw::Rule allow_inbound_from_host(const std::string& src_host,
                                 std::uint16_t port, std::string comment) {
  fw::Rule rule;
  rule.action = fw::Action::kAllow;
  rule.direction = fw::Direction::kInbound;
  rule.src_host = src_host;
  rule.ports = fw::PortRange::single(port);
  rule.comment = std::move(comment);
  return rule;
}

}  // namespace

Env GridSystem::env_for(const std::string& host) const {
  for (const auto& [name, env] : host_envs_) {
    if (name == host) return env;
  }
  return Env{};
}

void GridSystem::set_host_env(const std::string& host, Env env) {
  for (auto& [name, stored] : host_envs_) {
    if (name == host) {
      stored = std::move(env);
      return;
    }
  }
  host_envs_.emplace_back(host, std::move(env));
}

void GridSystem::set_site_proxy_env(const std::string& site,
                                    const Contact& outer,
                                    const Contact& inner) {
  for (const sim::Host* host : net_.site(site).hosts()) {
    Env env = env_for(host->name());
    env.set(env_keys::kProxyOuterServer, outer.to_string());
    env.set(env_keys::kProxyInnerServer, inner.to_string());
    set_host_env(host->name(), std::move(env));
  }
}

GridSystem::ProxyPair* GridSystem::proxy_for(const std::string& site) {
  for (ProxyPair& pair : proxies_) {
    if (pair.site == site) return &pair;
  }
  return nullptr;
}

void GridSystem::add_proxy_pair(const std::string& outer_host,
                                const std::string& inner_host,
                                proxy::RelayParams relay) {
  sim::Host& outer = net_.host(outer_host);
  sim::Host& inner = net_.host(inner_host);
  WACS_CHECK_MSG(outer.zone() == sim::Zone::kDmz,
                 "outer server must run outside the firewall (DMZ)");
  WACS_CHECK_MSG(outer.site() == inner.site(),
                 "proxy pair must protect one site");
  WACS_CHECK_MSG(proxy_for(outer.site()) == nullptr,
                 "site already has a proxy pair");

  // "Only the communication port from the outer server to the inner server
  // must be opened in advance."
  net_.site(inner.site())
      .firewall()
      .add_rule(allow_inbound_from_host(outer_host, ports_.nxport, "nxport"));

  ProxyPair pair;
  pair.site = outer.site();
  pair.outer = std::make_unique<proxy::OuterServer>(outer, ports_.outer, relay);
  pair.inner = std::make_unique<proxy::InnerServer>(inner, ports_.nxport, relay);
  pair.outer->start();
  pair.inner->start();
  if (fault_ != nullptr) {
    fault_->on_host_restart(outer_host, [srv = pair.outer.get()] {
      srv->restart();
    });
  }
  proxies_.push_back(std::move(pair));
}

gass::GassServer* GridSystem::gass_server_for(const std::string& site) {
  for (auto& [s, server] : gass_servers_) {
    if (s == site) return server.get();
  }
  return nullptr;
}

void GridSystem::add_gass_server(const std::string& host) {
  sim::Host& h = net_.host(host);
  WACS_CHECK_MSG(gass_server_for(h.site()) == nullptr,
                 "site already has a GASS server");
  gass::ServerOptions options;
  options.port = ports_.gass;
  auto server =
      std::make_unique<gass::GassServer>(h, options, env_for(host));
  server->start();
  const Contact contact = server->contact();
  for (const sim::Host* site_host : net_.site(h.site()).hosts()) {
    Env env = env_for(site_host->name());
    env.set(env_keys::kGassServer, contact.to_string());
    set_host_env(site_host->name(), std::move(env));
  }
  gass_servers_.emplace_back(h.site(), std::move(server));
}

sim::FaultInjector& GridSystem::faults(std::uint64_t seed) {
  if (fault_ == nullptr) {
    if (const char* env_seed = std::getenv("WACS_FAULT_SEED");
        env_seed != nullptr && *env_seed != '\0') {
      seed = std::strtoull(env_seed, nullptr, 10);
    }
    fault_ = std::make_unique<sim::FaultInjector>(net_, seed);
    for (ProxyPair& pair : proxies_) {
      fault_->on_host_restart(pair.outer->contact().host,
                              [srv = pair.outer.get()] { srv->restart(); });
    }
  }
  return *fault_;
}

void GridSystem::enable_recovery(const RecoveryOptions& options) {
  if (const char* flag = std::getenv("WACS_RMF_RECOVERY");
      flag != nullptr && std::string_view(flag) == "0") {
    return;  // kill switch: keep the legacy control plane for A/B baselines
  }
  if (recovery_enabled_) return;
  WACS_CHECK_MSG(gatekeeper_ != nullptr && allocator_ != nullptr,
                 "enable_recovery needs the gatekeeper and allocator up");
  recovery_enabled_ = true;
  sim::FaultInjector& f = faults();

  // Gatekeeper: RankDone acks, parked JobQuery answers, the JM sweeper.
  gatekeeper_->mutable_options().recovery = true;
  gatekeeper_->mutable_options().lease_check_interval_s =
      options.lease_check_interval_s;
  f.register_host_process(gatekeeper_host_, gatekeeper_->serve_process());
  f.on_host_restart(
      gatekeeper_host_, [gk = gatekeeper_.get()] { gk->restart(); }, 30);

  // Allocator: lease-based failure detection over Q-server heartbeats.
  allocator_->enable_leases(options.lease_duration_s);
  const std::string alloc_host = allocator_->contact().host;
  sim::Site& alloc_site = net_.site(net_.host(alloc_host).site());
  f.register_host_process(alloc_host, allocator_->serve_process());
  f.on_host_restart(
      alloc_host, [a = allocator_.get()] { a->restart(); }, 20);

  // Q servers: heartbeats (with the inbound hole into the allocator's
  // site, the same precedent as the paper's Q client → allocator rule)
  // plus journal-replay restart hooks.
  for (const auto& q : qservers_) {
    rmf::QServer::RecoveryOptions ro;
    ro.enabled = true;
    ro.allocator = allocator_->contact();
    ro.heartbeat_interval_s = options.heartbeat_interval_s;
    q->set_recovery(std::move(ro));
    const std::string q_host = q->contact().host;
    alloc_site.firewall().add_rule(allow_inbound_from_host(
        q_host, ports_.allocator, "Q server heartbeat -> allocator"));
    f.register_host_process(q_host, q->serve_process());
    f.on_host_restart(q_host, [qs = q.get()] { qs->restart(); }, 40);
  }

  // Scheduler: journal replay between the allocator (whose state it
  // proxies against) and the gatekeeper (whose traffic it carries).
  if (scheduler_ != nullptr) {
    const std::string s_host = scheduler_->contact().host;
    f.register_host_process(s_host, scheduler_->serve_process());
    f.on_host_restart(
        s_host, [s = scheduler_.get()] { s->restart(); }, 25);
  }

  // GASS caches restart *before* the control daemons that dial them during
  // their own recovery (a restarted Q server re-dispatching journaled parts
  // resolves gass:// inputs through its site cache).
  for (const auto& [site, server] : gass_servers_) {
    const std::string g_host = server->contact().host;
    f.register_host_process(g_host, server->serve_process());
    f.on_host_restart(g_host, [gs = server.get()] { gs->restart(); }, 10);
  }
}

void GridSystem::enable_observability(const std::string& collector_host,
                                      const ObservabilityOptions& options) {
  if (const char* flag = std::getenv("WACS_OBS");
      flag != nullptr && std::string_view(flag) == "0") {
    return;  // kill switch: export-off baseline runs
  }
  WACS_CHECK_MSG(collector_ == nullptr, "observability already enabled");
  sim::Host& ch = net_.host(collector_host);

  // Observability must ride the existing firewall configuration: record
  // every site's rule count now and assert nothing below changed it.
  std::vector<std::size_t> rule_counts;
  for (const auto& site : net_.sites()) {
    rule_counts.push_back(site->firewall().policy().rules().size());
  }

  obs::CollectorOptions copts;
  copts.port = ports_.obs;
  copts.timeline = options.timeline;
  copts.journal_max_bytes = options.journal_max_bytes;
  collector_ =
      std::make_unique<obs::Collector>(ch, copts, env_for(collector_host));
  collector_->start();

  for (const auto& site : net_.sites()) {
    WACS_CHECK_MSG(!site->hosts().empty(), "site without hosts");
    sim::Host& agent_host = *site->hosts().front();
    const std::string site_name = site->name();

    obs::AgentOptions aopts;
    aopts.interval_s = options.interval_s;
    // One registry exporter per simulation (the registry is process-global);
    // the collector-site agent is the natural owner.
    aopts.export_registry = site_name == ch.site();

    // Same-site agents dial the collector directly (LAN, no gateway);
    // remote agents wait for the proxy bind and use the public contact.
    std::function<std::optional<Contact>()> resolve;
    if (site_name == ch.site()) {
      resolve = [this] { return std::optional<Contact>(collector_->contact()); };
    } else {
      resolve = [this]() -> std::optional<Contact> {
        if (!collector_->bind_settled()) return std::nullopt;
        return collector_->advertised_contact();
      };
    }
    auto agent = std::make_unique<obs::MetricsAgent>(
        agent_host, aopts, std::move(resolve),
        [this] { return inflight_jobs_ > 0; });

    for (const auto& q : qservers_) {
      const std::string q_host = q->contact().host;
      if (net_.host(q_host).site() != site_name) continue;
      rmf::QServer* qs = q.get();
      agent->add_probe("q." + q_host + ".queue_depth", [qs] {
        return static_cast<std::int64_t>(qs->queue_depth());
      });
      agent->add_probe("q." + q_host + ".busy_cpus",
                       [qs] { return static_cast<std::int64_t>(qs->busy_cpus()); });
      agent->add_probe("q." + q_host + ".ranks_spawned", [qs] {
        return static_cast<std::int64_t>(qs->ranks_spawned());
      });
      agent->add_probe("q." + q_host + ".jobs_queued", [qs] {
        return static_cast<std::int64_t>(qs->jobs_queued_total());
      });
      agent->add_health("qserver@" + q_host, [qs] {
        sim::Process* p = qs->serve_process();
        return p != nullptr && !p->finished() && !p->killed()
                   ? obs::Health::kUp
                   : obs::Health::kDown;
      });
    }
    if (gatekeeper_ != nullptr &&
        net_.host(gatekeeper_host_).site() == site_name) {
      rmf::Gatekeeper* gk = gatekeeper_.get();
      agent->add_probe("gk.parts_requeued", [gk] {
        return static_cast<std::int64_t>(gk->parts_requeued());
      });
      agent->add_probe("gk.jobs_accepted", [gk] {
        return static_cast<std::int64_t>(gk->jobs_accepted());
      });
      agent->add_health("gatekeeper@" + gatekeeper_host_, [gk] {
        sim::Process* p = gk->serve_process();
        return p != nullptr && !p->finished() && !p->killed()
                   ? obs::Health::kUp
                   : obs::Health::kDown;
      });
    }
    if (scheduler_ != nullptr &&
        net_.host(scheduler_->contact().host).site() == site_name) {
      sched::Scheduler* s = scheduler_.get();
      agent->add_probe("sched.pending", [s] {
        return static_cast<std::int64_t>(s->pending_jobs());
      });
      agent->add_probe("sched.inflight", [s] {
        return static_cast<std::int64_t>(s->inflight_jobs());
      });
      agent->add_probe("sched.dispatched", [s] {
        return static_cast<std::int64_t>(s->jobs_accepted() -
                                         s->pending_jobs() -
                                         s->inflight_jobs());
      });
      agent->add_probe("sched.completed", [s] {
        return static_cast<std::int64_t>(s->jobs_completed());
      });
      agent->add_probe("sched.top_share_bp", [s] { return s->top_share_bp(); });
      agent->add_health("scheduler@" + scheduler_->contact().host, [s] {
        sim::Process* p = s->serve_process();
        return p != nullptr && !p->finished() && !p->killed()
                   ? obs::Health::kUp
                   : obs::Health::kDown;
      });
    }
    if (allocator_ != nullptr &&
        net_.host(allocator_->contact().host).site() == site_name) {
      rmf::ResourceAllocator* alloc = allocator_.get();
      agent->add_health("allocator@" + allocator_->contact().host, [alloc] {
        sim::Process* p = alloc->serve_process();
        return p != nullptr && !p->finished() && !p->killed()
                   ? obs::Health::kUp
                   : obs::Health::kDown;
      });
    }
    if (gass::GassServer* gs = gass_server_for(site_name); gs != nullptr) {
      const std::string g_host = gs->contact().host;
      agent->add_probe("gass." + g_host + ".gets_served", [gs] {
        return static_cast<std::int64_t>(gs->gets_served());
      });
      agent->add_probe("gass." + g_host + ".pull_throughs", [gs] {
        return static_cast<std::int64_t>(gs->pull_throughs());
      });
      agent->add_health("gass@" + g_host, [gs] {
        sim::Process* p = gs->serve_process();
        return p != nullptr && !p->finished() && !p->killed()
                   ? obs::Health::kUp
                   : obs::Health::kDown;
      });
    }
    if (ProxyPair* pair = proxy_for(site_name); pair != nullptr) {
      proxy::OuterServer* o = pair->outer.get();
      proxy::InnerServer* in = pair->inner.get();
      agent->add_probe("proxy.outer.connections", [o] {
        return static_cast<std::int64_t>(o->stats().connections);
      });
      agent->add_probe("proxy.outer.bytes", [o] {
        return static_cast<std::int64_t>(o->stats().bytes);
      });
      agent->add_probe("proxy.inner.bytes", [in] {
        return static_cast<std::int64_t>(in->stats().bytes);
      });
    }
    fw::Firewall* firewall = &site->firewall();
    agent->add_probe("fw.allowed", [firewall] {
      return static_cast<std::int64_t>(firewall->allowed());
    });
    agent->add_probe("fw.denied", [firewall] {
      return static_cast<std::int64_t>(firewall->denied());
    });
    sim::Link* lan = &site->lan();
    agent->add_probe("lan.bytes", [lan] {
      return static_cast<std::int64_t>(lan->bytes_carried());
    });
    // WAN byte counters belong to the link's first site so each link is
    // exported exactly once.
    for (const auto& wl : net_.wan_links()) {
      if (wl.site_a != site_name) continue;
      const sim::Link* link = wl.link;
      agent->add_probe("wan." + wl.site_a + "-" + wl.site_b + ".bytes",
                       [link] {
                         return static_cast<std::int64_t>(link->bytes_carried());
                       });
    }
    agent->ensure_running();
    agents_.push_back(std::move(agent));
  }

  // The acceptance property: observability opened no firewall holes.
  std::size_t i = 0;
  for (const auto& site : net_.sites()) {
    WACS_CHECK_MSG(
        site->firewall().policy().rules().size() == rule_counts[i++],
        "observability must not change firewall rules");
  }
}

void GridSystem::add_gatekeeper(const std::string& host,
                                std::string credential) {
  rmf::Gatekeeper::Options options;
  options.port = ports_.gatekeeper;
  options.qserver_port = ports_.qserver;
  options.credential = credential;
  credential_ = std::move(credential);
  add_gatekeeper_impl(host, std::move(options));
}

void GridSystem::add_gatekeeper_gsi(const std::string& host,
                                    std::string ca_secret) {
  rmf::Gatekeeper::Options options;
  options.port = ports_.gatekeeper;
  options.qserver_port = ports_.qserver;
  options.ca_secret = std::move(ca_secret);
  credential_.clear();  // callers must supply a chain per submission
  add_gatekeeper_impl(host, std::move(options));
}

void GridSystem::add_gatekeeper_impl(const std::string& host,
                                     rmf::Gatekeeper::Options options) {
  WACS_CHECK_MSG(gatekeeper_ == nullptr, "gatekeeper already added");
  WACS_CHECK_MSG(allocator_ != nullptr,
                 "add_allocator must run before add_gatekeeper");
  sim::Host& gk_host = net_.host(host);
  WACS_CHECK_MSG(gk_host.zone() == sim::Zone::kDmz,
                 "the gatekeeper runs outside the firewall");
  gatekeeper_host_ = host;

  gatekeeper_ = std::make_unique<rmf::Gatekeeper>(
      gk_host, std::move(options), allocator_->contact(), &registry_);
  gatekeeper_->start();

  // "The firewall must be configured to allow communications between the
  // Q client and the resource allocator, and the Q client and the Q server."
  sim::Host& alloc_host = net_.host(allocator_->contact().host);
  net_.site(alloc_host.site())
      .firewall()
      .add_rule(allow_inbound_from_host(host, ports_.allocator,
                                        "Q client -> allocator"));
  for (const std::string& q_host : pending_qserver_rules_) {
    net_.site(net_.host(q_host).site())
        .firewall()
        .add_rule(allow_inbound_from_host(host, ports_.qserver,
                                          "Q client -> Q server"));
  }
  pending_qserver_rules_.clear();
}

void GridSystem::add_allocator(const std::string& host,
                               rmf::AllocPolicy policy) {
  WACS_CHECK_MSG(allocator_ == nullptr, "allocator already added");
  allocator_ = std::make_unique<rmf::ResourceAllocator>(
      net_.host(host), ports_.allocator, policy);
  allocator_->start();
}

void GridSystem::add_qserver(const std::string& host) {
  WACS_CHECK_MSG(allocator_ != nullptr,
                 "add_allocator must run before add_qserver");
  sim::Host& h = net_.host(host);
  auto qserver = std::make_unique<rmf::QServer>(
      h, ports_.qserver, env_for(host), &registry_);
  qserver->start();
  qservers_.push_back(std::move(qserver));
  allocator_->register_resource(
      rmf::ResourceInfo{host, h.cpus(), h.cpu_speed(), 0});

  if (gatekeeper_ != nullptr) {
    net_.site(h.site()).firewall().add_rule(allow_inbound_from_host(
        gatekeeper_host_, ports_.qserver, "Q client -> Q server"));
  } else {
    pending_qserver_rules_.push_back(host);
  }
}

void GridSystem::add_mds(const std::string& host) {
  WACS_CHECK_MSG(mds_ == nullptr, "MDS already added");
  sim::Host& mds_host = net_.host(host);
  WACS_CHECK_MSG(mds_host.zone() == sim::Zone::kDmz,
                 "the MDS runs outside the firewall (public information)");
  mds_ = std::make_unique<mds::DirectoryServer>(mds_host, ports_.mds);
  mds_->start();

  // Each resource publishes itself from its own host (sites advertise
  // their own information, dialing out through their firewall).
  const Contact mds_contact = mds_->contact();
  for (const auto& q : qservers_) {
    const std::string resource = q->contact().host;
    sim::Host& res_host = net_.host(resource);
    engine_.spawn("mds.publish@" + resource, [this, &res_host, mds_contact,
                                              resource](sim::Process& self) {
      mds::Entry entry;
      entry.dn = "o=grid/ou=" + res_host.site() + "/host=" + resource;
      entry.attributes["cpus"] = std::to_string(res_host.cpus());
      entry.attributes["speed"] = std::to_string(res_host.cpu_speed());
      entry.attributes["site"] = res_host.site();
      entry.attributes["qserver"] =
          Contact{resource, ports_.qserver}.to_string();
      mds::MdsClient client(res_host, mds_contact);
      // Long TTL: a static testbed; live deployments re-publish.
      (void)client.publish(self, std::move(entry), 24 * 3600.0);
    });
  }
  if (gatekeeper_ != nullptr) {
    engine_.spawn("mds.publish.gatekeeper", [this,
                                             mds_contact](sim::Process& self) {
      mds::Entry entry;
      entry.dn = "o=grid/service=gatekeeper";
      entry.attributes["contact"] = gatekeeper_->contact().to_string();
      mds::MdsClient client(net_.host(gatekeeper_host_), mds_contact);
      (void)client.publish(self, std::move(entry), 24 * 3600.0);
    });
  }
}

void GridSystem::add_scheduler(const std::string& host) {
  WACS_CHECK_MSG(scheduler_ == nullptr, "scheduler already added");
  WACS_CHECK_MSG(allocator_ != nullptr && gatekeeper_ != nullptr,
                 "add_scheduler needs the allocator and gatekeeper up");
  WACS_CHECK_MSG(mds_ != nullptr, "add_scheduler needs the MDS directory");
  sim::Host& s_host = net_.host(host);
  WACS_CHECK_MSG(s_host.zone() == sim::Zone::kDmz,
                 "the scheduler runs outside the firewall (runners dial out)");

  sched::Scheduler::Options options;
  options.port = ports_.sched;
  options.mds = mds_->contact();
  options.allocator = allocator_->contact();
  scheduler_ = std::make_unique<sched::Scheduler>(s_host, options);
  scheduler_->start();

  // The scheduler dials the allocator on the gatekeeper's behalf; the hole
  // mirrors the paper's Q client → allocator rule.
  sim::Host& alloc_host = net_.host(allocator_->contact().host);
  net_.site(alloc_host.site())
      .firewall()
      .add_rule(allow_inbound_from_host(host, ports_.allocator,
                                        "scheduler -> allocator"));
  gatekeeper_->set_allocator(scheduler_->contact());

  if (recovery_enabled_) {
    sim::FaultInjector& f = faults();
    f.register_host_process(host, scheduler_->serve_process());
    f.on_host_restart(
        host, [s = scheduler_.get()] { s->restart(); }, 25);
  }
}

Result<rmf::JobResult> GridSystem::run_job(const std::string& submit_host,
                                           rmf::JobSpec spec) {
  auto results = run_jobs(submit_host, {std::move(spec)});
  return std::move(results.front());
}

std::vector<Result<rmf::JobResult>> GridSystem::run_jobs(
    const std::string& submit_host, std::vector<rmf::JobSpec> specs) {
  WACS_CHECK_MSG(gatekeeper_ != nullptr, "grid has no gatekeeper");
  sim::Host& from = net_.host(submit_host);
  const Contact gk = gatekeeper_->contact();

  std::vector<std::optional<Result<rmf::JobResult>>> slots(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    rmf::JobSpec& spec = specs[i];
    if (spec.credential.empty()) spec.credential = credential_;
    engine_.spawn(
        "submit." + spec.name + "#" + std::to_string(i),
        [this, slot = &slots[i], &from, gk, spec,
         env = env_for(submit_host),
         delay = 0.001 * static_cast<double>(i)](sim::Process& self) {
          // Busy accounting for the metrics agents' export loops. The
          // decrement must run on every exit path, including KillError
          // unwind, or an agent would spin the event queue forever.
          ++inflight_jobs_;
          struct Dec {
            int* n;
            ~Dec() { --*n; }
          } dec{&inflight_jobs_};
          if (delay > 0) self.sleep(delay);
          rmf::JobSpec job = spec;
          if (job.stage_via_gass && !job.input_files.empty()) {
            gass::GassServer* origin = gass_server_for(from.site());
            if (origin == nullptr) {
              slot->emplace(Error(ErrorCode::kNotFound,
                                  "no GASS server at site " + from.site()));
              return;
            }
            auto staged = rmf::stage_job_inputs(self, from, env,
                                                origin->contact(), job);
            if (!staged.ok()) {
              slot->emplace(staged.error());
              return;
            }
          }
          rmf::SubmitOptions wait_options;
          if (recovery_enabled_) wait_options.query_attempts = 8;
          slot->emplace(
              rmf::submit_and_wait(self, from, gk, job, wait_options));
        });
  }
  // Agents park when the grid goes idle (their timers would otherwise keep
  // the event queue alive forever); each run re-arms them.
  for (auto& agent : agents_) agent->ensure_running();
  engine_.run();
  std::vector<Result<rmf::JobResult>> results;
  results.reserve(specs.size());
  for (auto& slot : slots) {
    WACS_CHECK_MSG(slot.has_value(), "submission process never completed");
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace wacs::core
