#include "core/testbeds.hpp"

#include "common/units.hpp"
#include "knapsack/parallel.hpp"

namespace wacs::core {
namespace {

sim::LinkParams lan_params(const std::string& site) {
  return sim::LinkParams{.name = site + "-lan",
                         .latency_s = calib::kLanLatencyS,
                         .bandwidth_bps = calib::kLanBandwidthBps,
                         .duplex = false};  // shared 100Base-T segment
}

}  // namespace

Testbed make_rwcp_etl_testbed(const TestbedOptions& options) {
  Testbed tb;
  tb.grid = std::make_unique<GridSystem>();
  GridSystem& g = *tb.grid;

  // --- sites -------------------------------------------------------------
  g.add_site("rwcp",
             options.open_rwcp_firewall ? fw::Policy::open()
                                        : fw::Policy::typical(),
             lan_params("rwcp"));
  // "Although ETL also has a firewall, ETL-Sun and ETL-O2K can be accessed
  // directly from RWCP": deny-based filter plus standing allows for the two
  // public compute hosts.
  fw::Policy etl_policy = fw::Policy::typical();
  {
    fw::Rule allow;
    allow.action = fw::Action::kAllow;
    allow.direction = fw::Direction::kInbound;
    allow.dst_host = "etl-sun";
    allow.comment = "directly accessible from the Internet";
    etl_policy.add_rule(allow);
    allow.dst_host = "etl-o2k";
    etl_policy.add_rule(allow);
  }
  g.add_site("etl", std::move(etl_policy), lan_params("etl"));

  g.connect_sites("rwcp", "etl",
                  sim::LinkParams{.name = "imnet",
                                  .latency_s = calib::kWanLatencyS,
                                  .bandwidth_bps = calib::kWanBandwidthBps,
                                  .duplex = true});

  // --- hosts (Figure 5's table) -------------------------------------------
  // RWCP-Sun: Sun Enterprise 450 (4 CPU).
  g.add_host({.name = "rwcp-sun", .site = "rwcp", .cpu_speed = calib::kSpeedSun,
              .cpus = 4});
  // COMPaS: 8 quad-processor Pentium Pro SMPs; the experiments use 1
  // processor per node, so each node contributes up to 4 but Table 3 places
  // one rank per node.
  for (int i = 1; i <= 8; ++i) {
    std::string name = "compas0" + std::to_string(i);
    g.add_host({.name = name, .site = "rwcp",
                .cpu_speed = calib::kSpeedCompas, .cpus = 4});
    tb.compas.push_back(std::move(name));
  }
  // Inner server: Sun Ultra Enterprise 450 (2 CPU), inside the firewall.
  g.add_host({.name = "rwcp-inner", .site = "rwcp", .cpus = 2});
  // Outer server: Sun Ultra 80 (2 CPU), outside the firewall.
  g.add_host({.name = "rwcp-outer", .site = "rwcp", .zone = sim::Zone::kDmz,
              .cpus = 2});
  // Gatekeeper host ("run a Globus gatekeeper ... outside the firewall").
  g.add_host({.name = "rwcp-gate", .site = "rwcp", .zone = sim::Zone::kDmz,
              .cpus = 1});

  // ETL-Sun: Sun Enterprise 450 (6 CPU); ETL-O2K: SGI Origin 2000 (16 CPU).
  g.add_host({.name = "etl-sun", .site = "etl", .cpu_speed = calib::kSpeedSun,
              .cpus = 6});
  g.add_host({.name = "etl-o2k", .site = "etl", .cpu_speed = calib::kSpeedO2k,
              .cpus = 16});

  // --- services ------------------------------------------------------------
  g.add_proxy_pair("rwcp-outer", "rwcp-inner", options.relay);

  if (options.rwcp_uses_proxy) {
    g.set_site_proxy_env("rwcp", g.outer()->contact(), g.inner()->contact());
  }

  // Per-site GASS servers (before the Q servers, which snapshot the site
  // env): RWCP's sits inside the firewall and advertises through the proxy
  // pair; ETL's lives on the directly reachable ETL-Sun.
  g.add_gass_server("rwcp-inner");
  g.add_gass_server("etl-sun");

  g.add_allocator("rwcp-inner");
  g.add_gatekeeper("rwcp-gate", "wacs-grid");
  g.add_qserver("rwcp-sun");
  for (const std::string& node : tb.compas) g.add_qserver(node);
  g.add_qserver("etl-sun");
  g.add_qserver("etl-o2k");
  // The grid information service (MDS) on the public side of the firewall.
  g.add_mds("rwcp-gate");

  knapsack::register_tasks(g.registry());
  return tb;
}

Testbed make_three_site_testbed(const TestbedOptions& options) {
  Testbed tb = make_rwcp_etl_testbed(options);
  GridSystem& g = *tb.grid;

  // Tokyo Institute of Technology: a 16-node SMP cluster (Figure 1) behind
  // its own deny-based firewall.
  g.add_site("titech", fw::Policy::typical(), lan_params("titech"));
  g.connect_sites("rwcp", "titech",
                  sim::LinkParams{.name = "imnet-titech",
                                  .latency_s = calib::kWanLatencyS * 0.8,
                                  .bandwidth_bps = calib::kWanBandwidthBps,
                                  .duplex = true});
  g.connect_sites("etl", "titech",
                  sim::LinkParams{.name = "imnet-etl-titech",
                                  .latency_s = calib::kWanLatencyS * 0.9,
                                  .bandwidth_bps = calib::kWanBandwidthBps,
                                  .duplex = true});
  g.add_host({.name = "titech-smp", .site = "titech", .cpu_speed = 0.7,
              .cpus = 16});
  g.add_host({.name = "titech-inner", .site = "titech", .cpus = 1});
  g.add_host({.name = "titech-outer", .site = "titech",
              .zone = sim::Zone::kDmz, .cpus = 2});

  g.add_proxy_pair("titech-outer", "titech-inner", options.relay);
  if (options.rwcp_uses_proxy) {
    // The paper's deployment rule: proxy env wherever a firewall blocks
    // inbound links; TITech needs it just like RWCP.
    auto* pair = g.proxy_for("titech");
    g.set_site_proxy_env("titech", pair->outer->contact(),
                         pair->inner->contact());
  }
  g.add_gass_server("titech-inner");
  g.add_qserver("titech-smp");
  return tb;
}

std::vector<rmf::Placement> placement_three_site(const Testbed& tb) {
  std::vector<rmf::Placement> out = placement_wide_area(tb);
  out.push_back({"titech-smp", 8});
  return out;
}

std::vector<rmf::Placement> placement_compas(const Testbed& tb) {
  std::vector<rmf::Placement> out;
  for (const std::string& node : tb.compas) out.push_back({node, 1});
  return out;
}

std::vector<rmf::Placement> placement_etl_o2k() {
  return {{"etl-o2k", 8}};
}

std::vector<rmf::Placement> placement_local_area(const Testbed& tb) {
  std::vector<rmf::Placement> out = {{"rwcp-sun", 4}};
  for (const std::string& node : tb.compas) out.push_back({node, 1});
  return out;
}

std::vector<rmf::Placement> placement_wide_area(const Testbed& tb) {
  std::vector<rmf::Placement> out = placement_local_area(tb);
  out.push_back({"etl-o2k", 8});
  return out;
}

SchedTestbed make_sched_scale_testbed(const SchedTestbedOptions& options) {
  SchedTestbed tb;
  tb.engine = std::make_unique<sim::Engine>();
  tb.net = std::make_unique<sim::Network>(*tb.engine);
  sim::Network& net = *tb.net;

  // Hub: deny-based firewall like every other site; the scheduler, the
  // MDS, and the bench driver live in its DMZ (the paper's outer-server
  // placement), so no inbound holes are punched anywhere.
  net.add_site("hub", fw::Policy::typical(), lan_params("hub"));
  net.add_host({.name = "hub-sched", .site = "hub", .zone = sim::Zone::kDmz,
                .cpus = 2});
  net.add_host({.name = "hub-mds", .site = "hub", .zone = sim::Zone::kDmz,
                .cpus = 2});
  net.add_host({.name = "hub-driver", .site = "hub", .zone = sim::Zone::kDmz,
                .cpus = 2});
  tb.driver_host = "hub-driver";

  for (int s = 0; s < options.sites; ++s) {
    const std::string site = "site" + std::to_string(s);
    net.add_site(site, fw::Policy::typical(), lan_params(site));
    for (int h = 0; h < options.hosts_per_site; ++h) {
      net.add_host({.name = site + "-h" + std::to_string(h), .site = site,
                    .cpus = options.cpus_per_host});
    }
    net.connect_sites("hub", site,
                      sim::LinkParams{.name = "wan-" + site,
                                      .latency_s = calib::kWanLatencyS,
                                      .bandwidth_bps = calib::kWanBandwidthBps,
                                      .duplex = true});
  }

  // Faults attach before any daemon starts so every daemon process is
  // registered for crash kills.
  if (options.fault_seed != 0) {
    tb.fault = std::make_unique<sim::FaultInjector>(net, options.fault_seed);
  }

  tb.mds = std::make_unique<mds::DirectoryServer>(net.host("hub-mds"), 2135);
  tb.mds->start();

  sched::Scheduler::Options sopts = options.sched;
  sopts.mds = tb.mds->contact();
  tb.scheduler =
      std::make_unique<sched::Scheduler>(net.host("hub-sched"), sopts);
  tb.scheduler->start();

  for (int s = 0; s < options.sites; ++s) {
    const std::string site = "site" + std::to_string(s);
    sched::SiteRunner::Options ro;
    ro.site = site;
    ro.scheduler = tb.scheduler->contact();
    ro.mds = tb.mds->contact();
    for (int h = 0; h < options.hosts_per_site; ++h) {
      ro.hosts.push_back({site + "-h" + std::to_string(h),
                          options.cpus_per_host, 1.0});
    }
    tb.runners.push_back(std::make_unique<sched::SiteRunner>(
        net.host(SchedTestbed::runner_host(s)), std::move(ro)));
    tb.runners.back()->start();
  }

  if (tb.fault != nullptr) {
    // Same layering as GridSystem::enable_recovery: the scheduler (25)
    // restarts after the directory-ish layers would, runners at default 0.
    tb.fault->on_host_restart(
        "hub-sched", [sp = tb.scheduler.get()] { sp->restart(); }, 25);
    for (std::size_t s = 0; s < tb.runners.size(); ++s) {
      tb.fault->on_host_restart(
          SchedTestbed::runner_host(static_cast<int>(s)),
          [rp = tb.runners[s].get()] { rp->restart(); });
    }
  }
  return tb;
}

}  // namespace wacs::core
