// Canned topologies reproducing the paper's experimental environment
// (Figure 5) and the four cluster systems of Table 3.
//
// Calibration. The simulator's free parameters are set so the four anchors
// of Table 2 reproduce (see DESIGN.md §5 and EXPERIMENTS.md):
//   - LAN (RWCP 100Base-T):   latency 0.40 ms, effective 6.5 MB/s, shared
//   - WAN (IMnet, 1.5 Mbps):  latency 3.10 ms, 187.5 KB/s, duplex
//   - Nexus Proxy relay:      12 ms per message + 1.4 MB/s copy rate
//   - CPU speeds (relative):  RWCP-Sun/ETL-Sun (UltraSPARC-II) 1.00,
//                             COMPaS node (Pentium Pro 200 MHz) 0.55,
//                             ETL-O2K cpu (R10000) 0.95
//   - knapsack branch rate:   1e-6 s per node at speed 1.0
#pragma once

#include <string>
#include <vector>

#include "core/grid.hpp"
#include "sched/runner.hpp"
#include "simnet/fault.hpp"

namespace wacs::core {

/// Calibrated constants (exposed for benches and ablations).
namespace calib {
inline constexpr double kLanLatencyS = 0.0004;
inline constexpr double kLanBandwidthBps = 6.5e6;
inline constexpr double kWanLatencyS = 0.00275;
inline constexpr double kWanBandwidthBps = 1.5e6 / 8.0;
inline constexpr double kRelayPerMessageS = 0.012;
inline constexpr double kRelayCopyRateBps = 1.4e6;
inline constexpr double kSpeedSun = 1.0;
inline constexpr double kSpeedCompas = 0.55;
inline constexpr double kSpeedO2k = 0.95;
inline constexpr double kSecPerNode = 1e-6;
}  // namespace calib

struct TestbedOptions {
  /// Configure NEXUS_PROXY_* in the RWCP hosts' environment (the paper's
  /// "use Nexus Proxy" condition).
  bool rwcp_uses_proxy = true;
  /// "We have temporarily changed the configuration of the firewall":
  /// opens RWCP's filter completely so direct cross-site links work.
  bool open_rwcp_firewall = false;
  /// Relay cost overrides for ablation benches.
  proxy::RelayParams relay{.per_message_s = calib::kRelayPerMessageS,
                           .copy_rate_bps = calib::kRelayCopyRateBps};
};

/// Figure 5: RWCP (firewalled; RWCP-Sun, COMPaS 8-node SMP cluster, inner
/// server, DMZ outer server + gatekeeper host) and ETL (ETL-Sun, ETL-O2K),
/// joined by the 1.5 Mbps IMnet. Boots the proxy pair, allocator,
/// gatekeeper, and a Q server on every computing resource.
struct Testbed {
  std::unique_ptr<GridSystem> grid;
  std::vector<std::string> compas;  ///< compas01..compas08 host names

  GridSystem& operator*() { return *grid; }
  GridSystem* operator->() { return grid.get(); }
};

Testbed make_rwcp_etl_testbed(const TestbedOptions& options = {});

/// Figure 1: the full wide-area cluster system the paper's introduction
/// draws — ETL and RWCP plus the Tokyo Institute of Technology's 16-node
/// SMP cluster. TITech sits behind its own deny-based firewall with its own
/// Nexus Proxy pair, so RWCP↔TITech traffic chains through *two* outer
/// servers. Extends the Figure 5 testbed; all Figure 5 placements work.
Testbed make_three_site_testbed(const TestbedOptions& options = {});

/// 28 processors across all three sites (Figure 1 scope).
std::vector<rmf::Placement> placement_three_site(const Testbed& tb);

/// Placements for the four systems of Table 3.
std::vector<rmf::Placement> placement_compas(const Testbed& tb);      // 8
std::vector<rmf::Placement> placement_etl_o2k();                      // 8
std::vector<rmf::Placement> placement_local_area(const Testbed& tb);  // 12
std::vector<rmf::Placement> placement_wide_area(const Testbed& tb);   // 20

// ---------------------------------------------------------------- sched

struct SchedTestbedOptions {
  int sites = 50;
  int hosts_per_site = 4;
  int cpus_per_host = 8;
  /// Seeds a FaultInjector (attached before the daemons start, so their
  /// processes are crash-killable and restart hooks are wired). 0 = none.
  std::uint64_t fault_seed = 0;
  sched::Scheduler::Options sched;  ///< mds/allocator contacts are filled in
};

/// The multi-tenant scheduling testbed (DESIGN.md §17): a DMZ hub with the
/// scheduler and the MDS on separate hosts, and N leaf sites behind
/// deny-all-inbound firewalls, each running a SiteRunner over
/// `hosts_per_site` hosts of `cpus_per_host` CPUs. Leaf sites keep ZERO
/// inbound holes — runners dial out, the paper's constraint at 50-site
/// scale. Every WAN link uses the calibrated IMnet parameters.
///
/// Submit jobs by connecting to `scheduler->contact()` from `driver_host`
/// (a DMZ host on the hub reserved for bench clients).
struct SchedTestbed {
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<sim::FaultInjector> fault;  ///< null unless fault_seed set
  std::unique_ptr<mds::DirectoryServer> mds;
  std::unique_ptr<sched::Scheduler> scheduler;
  std::vector<std::unique_ptr<sched::SiteRunner>> runners;
  std::string driver_host;

  SchedTestbed() = default;
  SchedTestbed(SchedTestbed&&) = default;
  SchedTestbed& operator=(SchedTestbed&&) = default;
  /// Parked daemon processes unwind at engine shutdown and their unwind
  /// touches the daemon objects (the respawn flags): shut the engine down
  /// before the members above are destroyed, not after.
  ~SchedTestbed() {
    if (engine != nullptr) engine->shutdown();
  }

  /// "site<i>-h0" — the runner daemon's host at leaf `i` (crash target).
  static std::string runner_host(int site) {
    return "site" + std::to_string(site) + "-h0";
  }
};

SchedTestbed make_sched_scale_testbed(const SchedTestbedOptions& options = {});

}  // namespace wacs::core
