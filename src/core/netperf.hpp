// Network microbenchmark driver: the Table 2 methodology as a reusable API.
//
// Measures latency (1-byte ping-pong over unidirectional nexus links,
// RTT/2) and bandwidth (synchronous per-message transfers with a 1-byte
// ack) between two hosts of a booted GridSystem, honouring each host's site
// environment — so the same call measures direct or proxied paths depending
// on how the grid is configured.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/grid.hpp"

namespace wacs::core {

struct NetPerfOptions {
  int ping_count = 32;          ///< ping-pongs for the latency estimate
  int rounds_per_size = 16;     ///< messages per bandwidth point
  std::vector<std::size_t> message_sizes = {4096, 1000000};
  /// Virtual time to wait before measuring, so boot-time traffic (MDS
  /// publications, daemon startup) has drained off the shared LAN.
  double settle_seconds = 1.0;
};

struct NetPerfResult {
  double latency_ms = 0;
  /// bandwidth[i] (bytes/sec) corresponds to options.message_sizes[i].
  std::vector<double> bandwidth_bps;
};

/// Runs the exchange between `host_a` (client) and `host_b` (server) and
/// drives the engine to completion. Aborts on setup errors (the benches
/// treat an unmeasurable testbed as a bug).
NetPerfResult measure_path(GridSystem& grid, const std::string& host_a,
                           const std::string& host_b,
                           const NetPerfOptions& options = {});

}  // namespace wacs::core
