#include "core/netperf.hpp"

namespace wacs::core {
namespace {

/// Site env a rank would get on `host` (empty when no Q server is there).
Env env_of(GridSystem& grid, const std::string& host) {
  for (const auto& q : grid.qservers()) {
    if (q->contact().host == host) return q->site_env();
  }
  // Fall back to the configured host env (hosts without a Q server).
  return Env{};
}

}  // namespace

NetPerfResult measure_path(GridSystem& grid, const std::string& host_a,
                           const std::string& host_b,
                           const NetPerfOptions& options) {
  sim::Engine& engine = grid.engine();
  sim::Network& net = grid.net();

  NetPerfResult result;
  result.bandwidth_bps.resize(options.message_sizes.size(), 0.0);

  Contact b_contact;
  bool server_ready = false;

  // Server on B: echo a 1-byte ack on a dedicated reply connection (Nexus
  // links are unidirectional; the reply channel is dialed back to A).
  engine.spawn("netperf.server", [&](sim::Process& self) {
    nexus::CommContext ctx(net.host(host_b), env_of(grid, host_b));
    auto ep = ctx.listen(self);
    WACS_CHECK_MSG(ep.ok(), "netperf server cannot listen");
    b_contact = (*ep)->contact();
    server_ready = true;

    auto conn = (*ep)->accept(self);
    WACS_CHECK_MSG(conn.ok(), "netperf server accept failed");
    auto first = (*conn)->recv(self);
    WACS_CHECK(first.ok());
    auto reply_contact = Contact::parse(to_string(*first));
    WACS_CHECK(reply_contact.ok());
    auto reply = ctx.connect(self, *reply_contact);
    WACS_CHECK_MSG(reply.ok(), "netperf server cannot dial reply channel");

    while (true) {
      auto msg = (*conn)->recv(self);
      if (!msg.ok()) break;
      WACS_CHECK((*reply)->send(Bytes{1}).ok());
    }
    (*reply)->close();
  });

  engine.spawn("netperf.client", [&](sim::Process& self) {
    if (options.settle_seconds > 0) self.sleep(options.settle_seconds);
    while (!server_ready) self.sleep(0.001);
    nexus::CommContext ctx(net.host(host_a), env_of(grid, host_a));
    auto ep = ctx.listen(self);
    WACS_CHECK(ep.ok());
    auto conn = ctx.connect(self, b_contact);
    WACS_CHECK_MSG(conn.ok(), "netperf client cannot reach server");
    WACS_CHECK((*conn)->send(to_bytes((*ep)->contact().to_string())).ok());
    auto reply = (*ep)->accept(self);
    WACS_CHECK(reply.ok());

    auto sync_round = [&](std::size_t size) {
      WACS_CHECK((*conn)->send(pattern_bytes(size)).ok());
      auto ack = (*reply)->recv(self);
      WACS_CHECK(ack.ok());
    };

    sync_round(1);  // warmup: session setup on relays

    const sim::Time lat_start = engine.now();
    for (int i = 0; i < options.ping_count; ++i) sync_round(1);
    result.latency_ms =
        sim::to_ms(engine.now() - lat_start) / options.ping_count / 2.0;

    for (std::size_t s = 0; s < options.message_sizes.size(); ++s) {
      const std::size_t size = options.message_sizes[s];
      const sim::Time start = engine.now();
      for (int i = 0; i < options.rounds_per_size; ++i) sync_round(size);
      result.bandwidth_bps[s] =
          static_cast<double>(size) * options.rounds_per_size /
          sim::to_sec(engine.now() - start);
    }
    (*conn)->close();
  });

  engine.run();
  return result;
}

}  // namespace wacs::core
