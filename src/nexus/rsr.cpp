#include "nexus/rsr.hpp"

#include "common/log.hpp"

namespace wacs::nexus {
namespace {
const log::Logger kLog("nexus.rsr");
}

Result<RsrEndpointPtr> RsrEndpoint::create(std::shared_ptr<CommContext> ctx,
                                           sim::Process& self) {
  auto endpoint = ctx->listen(self);
  if (!endpoint.ok()) return endpoint.error();
  auto rsr = RsrEndpointPtr(new RsrEndpoint(std::move(ctx)));
  rsr->endpoint_ = *endpoint;
  rsr->start(rsr);
  return rsr;
}

void RsrEndpoint::register_handler(int handler_id, RsrHandler fn) {
  handlers_[handler_id] = std::move(fn);
}

void RsrEndpoint::start(const RsrEndpointPtr& self_ptr) {
  sim::Engine& engine = ctx_->host().network().engine();
  RsrEndpointPtr rsr = self_ptr;  // dispatchers keep the endpoint alive
  auto listener = endpoint_;
  engine.spawn("rsr.accept@" + ctx_->host().name(),
               [rsr, listener, &engine](sim::Process& self) {
    while (true) {
      auto conn = listener->accept(self);
      if (!conn.ok()) return;  // endpoint closed
      auto sock = *conn;
      engine.spawn("rsr.dispatch@" + rsr->ctx_->host().name(),
                   [rsr, sock](sim::Process& dispatcher) {
        while (true) {
          auto frame = sock->recv(dispatcher);
          if (!frame.ok()) return;  // startpoint closed
          BufReader r(*frame);
          auto id = r.i32();
          auto args = r.blob();
          if (!id.ok() || !args.ok()) {
            kLog.warn("malformed RSR frame; dropping link");
            sock->close();
            return;
          }
          auto it = rsr->handlers_.find(*id);
          if (it == rsr->handlers_.end()) {
            ++rsr->unknown_;
            kLog.warn("RSR for unregistered handler %d", *id);
            continue;
          }
          ++rsr->dispatched_;
          it->second(dispatcher, *args);
        }
      });
    }
  });
}

Result<RsrStartpoint> RsrStartpoint::attach(CommContext& ctx,
                                            sim::Process& self,
                                            const Contact& endpoint_contact) {
  auto conn = ctx.connect(self, endpoint_contact);
  if (!conn.ok()) return conn.error();
  return RsrStartpoint(std::move(*conn));
}

Status RsrStartpoint::send(int handler_id, const Bytes& args) {
  WACS_CHECK_MSG(conn_ != nullptr, "startpoint not attached");
  BufWriter w;
  w.i32(handler_id);
  w.blob(args);
  auto status = conn_->send(std::move(w).take());
  if (status.ok()) ++sent_;
  return status;
}

}  // namespace wacs::nexus
