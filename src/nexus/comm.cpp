#include "nexus/comm.hpp"

#include "common/bytes.hpp"
#include "simnet/sim_retry.hpp"

namespace wacs::nexus {

CommContext::CommContext(sim::Host& host, Env env)
    : host_(&host), env_(std::move(env)) {
  proxy::ProxyClient client(host, env_);
  if (client.configured()) proxy_.emplace(std::move(client));
}

Result<EndpointPtr> CommContext::listen(sim::Process& self) {
  if (proxy_) {
    auto bound = proxy_->nx_bind(self);
    if (!bound.ok()) return bound.error();
    Contact contact = (*bound)->public_contact();
    return EndpointPtr(new Endpoint(std::move(*bound), std::move(contact)));
  }
  auto listener = host_->stack().listen(0, &env_);
  if (!listener.ok()) return listener.error();
  Contact contact{host_->name(), (*listener)->port()};
  return EndpointPtr(new Endpoint(std::move(*listener), std::move(contact)));
}

void CommContext::set_retry_policy(RetryPolicy policy) {
  retry_ = policy;
  if (proxy_) proxy_->set_retry_policy(std::move(policy));
}

Result<sim::SocketPtr> CommContext::connect(sim::Process& self,
                                            const Contact& contact) {
  // The proxy client runs its own retry loop around the whole control
  // exchange; only the direct path needs one here.
  if (proxy_) return proxy_->nx_connect(self, contact);
  return sim::retry_in_sim(
      self, retry_,
      fnv1a(to_bytes(host_->name() + ">" + contact.to_string())),
      [&] { return host_->stack().connect(self, contact); });
}

Result<sim::SocketPtr> Endpoint::accept(sim::Process& self,
                                        Contact* true_peer) {
  if (proxied_) return proxied_->nx_accept(self, true_peer);
  auto conn = direct_->accept(self);
  if (conn.ok() && true_peer != nullptr) *true_peer = (*conn)->peer_contact();
  return conn;
}

void Endpoint::close() {
  if (proxied_) proxied_->close();
  if (direct_) direct_->close();
}

}  // namespace wacs::nexus
