// Remote Service Requests — the Nexus programming model (Foster et al.,
// "The Nexus approach to integrating multithreading and communication",
// the paper's reference [5]).
//
// A process creates an RsrEndpoint and registers handler functions by id;
// remote processes attach RsrStartpoints to the endpoint's contact string
// and issue one-way requests: (handler id, argument buffer). The transport
// is the CommContext seam, so startpoint→endpoint links transparently ride
// the Nexus Proxy when the process environment says so — exactly the layer
// the paper modified inside Globus.
//
// Handlers run on the endpoint's dispatcher processes and may block (sleep,
// issue their own RSRs); requests from one startpoint dispatch in FIFO
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "nexus/comm.hpp"

namespace wacs::nexus {

class RsrEndpoint;
using RsrEndpointPtr = std::shared_ptr<RsrEndpoint>;

/// Handler invoked per request. `self` is the dispatcher process (usable
/// for blocking operations); `args` is the request buffer.
using RsrHandler = std::function<void(sim::Process& self, const Bytes& args)>;

/// The receiving side of the RSR model.
class RsrEndpoint {
 public:
  /// Creates the endpoint on `ctx`'s host and starts the dispatcher.
  /// Handlers registered afterwards apply to subsequently-arriving
  /// requests.
  static Result<RsrEndpointPtr> create(std::shared_ptr<CommContext> ctx,
                                       sim::Process& self);

  /// Registers `fn` for `handler_id`. Re-registration replaces.
  void register_handler(int handler_id, RsrHandler fn);

  /// The contact string startpoints attach to.
  const Contact& contact() const { return endpoint_->contact(); }

  /// Stops accepting new startpoint attachments.
  void close() { endpoint_->close(); }

  std::uint64_t requests_dispatched() const { return dispatched_; }
  std::uint64_t unknown_handler_requests() const { return unknown_; }

 private:
  explicit RsrEndpoint(std::shared_ptr<CommContext> ctx)
      : ctx_(std::move(ctx)) {}

  void start(const RsrEndpointPtr& self_ptr);

  std::shared_ptr<CommContext> ctx_;
  EndpointPtr endpoint_;
  std::map<int, RsrHandler> handlers_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t unknown_ = 0;
};

/// The sending side: a one-way channel to a specific remote endpoint.
class RsrStartpoint {
 public:
  /// Attaches to a remote endpoint (direct or via proxy per `ctx`'s env).
  static Result<RsrStartpoint> attach(CommContext& ctx, sim::Process& self,
                                      const Contact& endpoint_contact);

  /// Issues a one-way request: invoke `handler_id` remotely with `args`.
  /// Buffered-send semantics; per-startpoint FIFO dispatch order.
  Status send(int handler_id, const Bytes& args);

  std::uint64_t requests_sent() const { return sent_; }

  void close() {
    if (conn_) conn_->close();
  }

 private:
  explicit RsrStartpoint(sim::SocketPtr conn) : conn_(std::move(conn)) {}

  sim::SocketPtr conn_;
  std::uint64_t sent_ = 0;
};

}  // namespace wacs::nexus
