// Nexus-like communication layer: contact strings + transparent proxy
// routing.
//
// This is the seam the paper modified inside Globus: code asks a CommContext
// for a listener (getting back the contact string to advertise) or to
// connect to a peer's contact string. When the process environment defines
// NEXUS_PROXY_OUTER_SERVER and NEXUS_PROXY_INNER_SERVER, both operations are
// routed through the Nexus Proxy — the advertised contact becomes the outer
// server's public address, exactly the address-rewrite described in §3.
// Otherwise the original (direct) communication is done, with ephemeral
// ports drawn from TCP_MIN_PORT/TCP_MAX_PORT when set (the Globus 1.1
// workaround).
#pragma once

#include <memory>
#include <optional>

#include "common/config.hpp"
#include "proxy/client.hpp"
#include "simnet/tcp.hpp"

namespace wacs::nexus {

/// A passive endpoint: accept() + the contact other processes dial.
class Endpoint {
 public:
  const Contact& contact() const { return contact_; }

  /// Accepts one connection (direct or relayed). For relayed connections
  /// `true_peer` receives the original remote address.
  Result<sim::SocketPtr> accept(sim::Process& self,
                                Contact* true_peer = nullptr);

  void close();

 private:
  friend class CommContext;
  Endpoint(sim::ListenerPtr direct, Contact contact)
      : direct_(std::move(direct)), contact_(std::move(contact)) {}
  Endpoint(proxy::NxProxyListenerPtr proxied, Contact contact)
      : proxied_(std::move(proxied)), contact_(std::move(contact)) {}

  sim::ListenerPtr direct_;
  proxy::NxProxyListenerPtr proxied_;
  Contact contact_;
};

using EndpointPtr = std::shared_ptr<Endpoint>;

/// Per-process communication context.
class CommContext {
 public:
  CommContext(sim::Host& host, Env env);

  /// True when this process routes through the Nexus Proxy.
  bool uses_proxy() const { return proxy_.has_value(); }

  /// Creates a listener and the contact string to advertise.
  Result<EndpointPtr> listen(sim::Process& self);

  /// Dials a peer's advertised contact. Transient failures (WAN flap, a
  /// proxy daemon restarting) are retried under the context's RetryPolicy
  /// with deterministic backoff before the typed Error is surfaced.
  Result<sim::SocketPtr> connect(sim::Process& self, const Contact& contact);

  /// Applies to both the direct path and (forwarded) the proxy client.
  void set_retry_policy(RetryPolicy policy);
  const RetryPolicy& retry_policy() const { return retry_; }

  sim::Host& host() { return *host_; }
  const Env& env() const { return env_; }

 private:
  sim::Host* host_;
  Env env_;
  RetryPolicy retry_;
  std::optional<proxy::ProxyClient> proxy_;
};

}  // namespace wacs::nexus
