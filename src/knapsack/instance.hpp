// 0-1 knapsack instances (paper §4.3).
//
// An instance is a list of (profit, weight) items plus a capacity. The
// paper's normalization — "we used such data as no branches were pruned,
// meaning entire search space is traced" — is reproduced by
// no_prune_instance(): capacity ≥ Σ weights, so both children of every
// branch node are feasible and (with bounding disabled) the tree is the full
// binary tree of 2^(n+1)-1 nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace wacs::knapsack {

struct Item {
  std::int64_t profit = 0;
  std::int64_t weight = 0;

  friend bool operator==(const Item&, const Item&) = default;
};

struct Instance {
  std::vector<Item> items;
  std::int64_t capacity = 0;

  int size() const { return static_cast<int>(items.size()); }
  std::int64_t total_weight() const;
  std::int64_t total_profit() const;

  /// Sorts items by profit/weight ratio descending (required by the
  /// Martello-Toth bound; harmless otherwise).
  void sort_by_ratio();

  /// GASS staging format.
  Bytes encode() const;
  static Result<Instance> decode(const Bytes& data);

  /// Text data-file format ("a master reads a data file"):
  ///   line 1: n capacity
  ///   lines 2..n+1: profit weight
  /// '#' starts a comment; blank lines are skipped.
  std::string to_text() const;
  static Result<Instance> from_text(const std::string& text);

  friend bool operator==(const Instance&, const Instance&) = default;
};

/// The paper's workload: nothing prunes, the full 2^(n+1)-1 tree is traced.
Instance no_prune_instance(int n, std::uint64_t seed = 1);

/// Uncorrelated random instance: profits/weights uniform in [1, max_value],
/// capacity = `tightness` × Σ weights. Realistic pruning behaviour.
Instance random_instance(int n, std::uint64_t seed, double tightness = 0.5,
                         std::int64_t max_value = 100);

/// Strongly correlated instance (profit = weight + bonus): the classic hard
/// family from Martello-Toth; exercises deep search with weak bounds.
Instance correlated_instance(int n, std::uint64_t seed,
                             double tightness = 0.5,
                             std::int64_t max_weight = 100);

}  // namespace wacs::knapsack
