#include "knapsack/search.hpp"

#include <algorithm>
#include <cmath>

namespace wacs::knapsack {

void encode_nodes(BufWriter& w, const std::vector<Node>& nodes) {
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const Node& n : nodes) {
    w.i32(n.index);
    w.i64(n.value);
    w.i64(n.capacity);
  }
}

Result<std::vector<Node>> decode_nodes(BufReader& r) {
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<Node> nodes;
  nodes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto index = r.i32();
    if (!index) return index.error();
    auto value = r.i64();
    if (!value) return value.error();
    auto capacity = r.i64();
    if (!capacity) return capacity.error();
    nodes.push_back(Node{*index, *value, *capacity});
  }
  return nodes;
}

std::int64_t upper_bound(const Instance& inst, const Node& node) {
  std::int64_t bound = node.value;
  std::int64_t cap = node.capacity;
  for (std::size_t i = static_cast<std::size_t>(node.index);
       i < inst.items.size(); ++i) {
    const Item& item = inst.items[i];
    if (item.weight <= cap) {
      bound += item.profit;
      cap -= item.weight;
    } else {
      // Fractional fill of the first item that does not fit (LP relaxation).
      bound += item.profit * cap / item.weight;
      break;
    }
  }
  return bound;
}

Searcher::Searcher(const Instance& inst, bool use_bound)
    : inst_(&inst), use_bound_(use_bound) {}

void Searcher::push_all(const std::vector<Node>& nodes) {
  stack_.insert(stack_.end(), nodes.begin(), nodes.end());
}

void Searcher::offer_best(std::int64_t value) {
  best_ = std::max(best_, value);
}

std::uint64_t Searcher::run(std::uint64_t max_ops) {
  std::uint64_t ops = 0;
  while (ops < max_ops && !stack_.empty()) {
    step();
    ++ops;
  }
  return ops;
}

void Searcher::step() {
  // The paper's branch operation: 1. pop a node from a stack, 2. check the
  // node, 3. push its sub nodes (one or two) onto the stack.
  const Node node = stack_.back();
  stack_.pop_back();
  ++nodes_;

  if (node.index >= inst_->size()) {
    best_ = std::max(best_, node.value);
    return;
  }
  if (use_bound_ && upper_bound(*inst_, node) <= best_) {
    return;  // this subtree cannot improve on the incumbent
  }

  const Item& item = inst_->items[static_cast<std::size_t>(node.index)];
  // "take" child first so the profitable path is explored depth-first.
  stack_.push_back(Node{node.index + 1, node.value, node.capacity});
  if (item.weight <= node.capacity) {
    stack_.push_back(Node{node.index + 1, node.value + item.profit,
                          node.capacity - item.weight});
  }
}

std::vector<Node> Searcher::take_from_top(std::size_t count) {
  const std::size_t take = std::min(count, stack_.size());
  std::vector<Node> out(stack_.end() - static_cast<std::ptrdiff_t>(take),
                        stack_.end());
  stack_.resize(stack_.size() - take);
  return out;
}

std::vector<Node> Searcher::take_from_bottom(std::size_t count) {
  const std::size_t take = std::min(count, stack_.size());
  std::vector<Node> out(stack_.begin(),
                        stack_.begin() + static_cast<std::ptrdiff_t>(take));
  stack_.erase(stack_.begin(),
               stack_.begin() + static_cast<std::ptrdiff_t>(take));
  return out;
}

double Searcher::node_work(const Node& node) const {
  const int depth_left = inst_->size() - node.index;
  if (depth_left <= 0) return 1.0;
  return std::exp2(depth_left + 1) - 1.0;
}

double Searcher::pending_work() const {
  double total = 0;
  for (const Node& n : stack_) total += node_work(n);
  return total;
}

std::vector<Node> Searcher::shed_excess_work(double keep_ops,
                                             std::size_t max_nodes) {
  std::vector<Node> out;
  double remaining = pending_work();
  while (stack_.size() > 1 && out.size() < max_nodes) {
    const double bottom = node_work(stack_.front());
    if (remaining - bottom < keep_ops) break;
    remaining -= bottom;
    out.push_back(stack_.front());
    stack_.erase(stack_.begin());
  }
  return out;
}

std::vector<Node> Searcher::take_work_from_bottom(double grant_ops,
                                                  std::size_t max_nodes) {
  std::vector<Node> out;
  double granted = 0;
  while (!stack_.empty() && out.size() < max_nodes) {
    if (!out.empty() && granted >= grant_ops) break;
    granted += node_work(stack_.front());
    out.push_back(stack_.front());
    stack_.erase(stack_.begin());
  }
  return out;
}

SearchResult solve_sequential(const Instance& inst, bool use_bound) {
  Searcher searcher(inst, use_bound);
  searcher.push(Node{0, 0, inst.capacity});
  while (!searcher.idle()) {
    searcher.run(1 << 20);
  }
  return SearchResult{searcher.best(), searcher.nodes_traversed()};
}

std::int64_t solve_brute_force(const Instance& inst) {
  const int n = inst.size();
  WACS_CHECK_MSG(n <= 24, "brute force is for small test instances only");
  std::int64_t best = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::int64_t value = 0;
    std::int64_t weight = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        value += inst.items[static_cast<std::size_t>(i)].profit;
        weight += inst.items[static_cast<std::size_t>(i)].weight;
      }
    }
    if (weight <= inst.capacity) best = std::max(best, value);
  }
  return best;
}

std::int64_t solve_dp(const Instance& inst) {
  WACS_CHECK_MSG(inst.capacity >= 0 && inst.capacity <= (1 << 22),
                 "DP reference needs a moderate capacity");
  std::vector<std::int64_t> best(static_cast<std::size_t>(inst.capacity) + 1,
                                 0);
  for (const Item& item : inst.items) {
    if (item.weight > inst.capacity) continue;
    for (std::int64_t c = inst.capacity; c >= item.weight; --c) {
      best[static_cast<std::size_t>(c)] =
          std::max(best[static_cast<std::size_t>(c)],
                   best[static_cast<std::size_t>(c - item.weight)] +
                       item.profit);
    }
  }
  return best[static_cast<std::size_t>(inst.capacity)];
}

std::uint64_t full_tree_nodes(int n) {
  WACS_CHECK(n >= 0 && n < 63);
  return (std::uint64_t{1} << (n + 1)) - 1;
}

}  // namespace wacs::knapsack
