// Master-slave parallel 0-1 knapsack with self-scheduling work stealing
// (paper §4.3) — the MPICH-G application of the evaluation.
//
// Protocol (all over MiniMPI, master = rank 0):
//   slave → master  kTagSteal : "my stack is empty" (+ slave's best so far)
//   slave → master  kTagBack  : backunit nodes (+ best) when overloaded
//   master → slave  kTagWork  : stealunit nodes from the top of the master's
//                               stack (+ master's best)
//   master → slave  kTagDone  : terminate
//
// Scheduling parameters (paper: "we varied a stealunit, interval, and
// backunit and took the best combination"):
//   interval   — branch ops the master runs between checks of steal requests
//   stealunit  — nodes shipped per steal
//   backunit   — nodes a slave returns when its stack exceeds back_threshold
//
// Termination: a slave steals only when its stack is empty, and per-pair
// FIFO means any kTagBack precedes that slave's kTagSteal; so when the
// master's stack is empty and every ALIVE slave has an unanswered steal
// request, no work exists anywhere.
//
// Fault tolerance: the master keeps a copy of the one outstanding grant per
// slave (a slave steals only when its stack is empty, so at most one grant
// is ever at risk). When a slave vanishes (mpi::Comm reports the rank lost),
// the master pushes that copy back onto its own stack and drops the slave
// from the termination and statistics accounting. Re-searching a partially
// explored grant is redundant but safe — best values only ever go up — so
// the final optimum matches the fault-free run. A slave's best-so-far rides
// on every kTagSteal/kTagBack it sends, and a slave past its final steal has
// an empty stack, so no improvement can die with a slave unreported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "knapsack/instance.hpp"
#include "rmf/job.hpp"

namespace wacs::knapsack {

/// Per-rank statistics (Tables 5 and 6 are built from these).
struct RankStats {
  int rank = 0;
  std::string host;
  std::uint64_t nodes_traversed = 0;
  std::uint64_t steal_requests = 0;  ///< steals issued (slaves; 0 for master)
};

/// The job output serialized into JobResult::output by rank 0.
struct RunStats {
  std::int64_t best_value = 0;
  std::uint64_t total_nodes = 0;
  std::uint64_t master_steals_handled = 0;
  std::uint64_t slaves_lost = 0;       ///< ranks that vanished mid-run
  std::uint64_t grants_reclaimed = 0;  ///< grants re-pushed after a loss
  double app_seconds = 0;  ///< virtual time of the search phase (post-startup)
  std::vector<RankStats> ranks;  ///< master + every slave that reported

  Bytes encode() const;
  static Result<RunStats> decode(const Bytes& data);
};

/// Argument keys understood by the tasks (JobSpec::args).
namespace args {
inline constexpr const char* kInterval = "interval";      // default 1000
inline constexpr const char* kStealUnit = "stealunit";    // default 16
inline constexpr const char* kBackUnit = "backunit";      // default 64
/// Stack size above which a slave sheds work back to the master. Default 0
/// = auto: max(instance size, 2×stealunit) — a DFS stack naturally hovers
/// around the instance depth, so anything above it is surplus subtrees.
inline constexpr const char* kBackThreshold = "backthreshold";
/// Which end of the stack transfers move: "bottom" (default; shallow nodes,
/// large subtrees, work-aware amounts — classic work stealing) or "top"
/// (the paper's literal wording; ships deep leaf crumbs and starves remote
/// slaves — kept for the ablation bench).
inline constexpr const char* kTransferEnd = "transfer_end";
/// Work floor (branch ops) a slave keeps before shedding surplus, and the
/// work target of a steal grant. Default 0 = auto (64 × interval): enough
/// local work to hide a proxied WAN steal round trip.
inline constexpr const char* kKeepOps = "keep_ops";
inline constexpr const char* kUseBound = "use_bound";     // "0"/"1", default 0
inline constexpr const char* kSecPerNode = "sec_per_node";  // default 1e-6
}  // namespace args

/// Name of the staged instance file (JobSpec::input_files).
inline constexpr const char* kInstanceFile = "instance";

/// Registered task names.
inline constexpr const char* kParallelTask = "knapsack";
inline constexpr const char* kSequentialTask = "knapsack_seq";

/// Registers both tasks with an RMF job registry.
void register_tasks(rmf::JobRegistry& registry);

}  // namespace wacs::knapsack
