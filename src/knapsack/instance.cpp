#include "knapsack/instance.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace wacs::knapsack {

std::int64_t Instance::total_weight() const {
  return std::accumulate(items.begin(), items.end(), std::int64_t{0},
                         [](std::int64_t acc, const Item& item) {
                           return acc + item.weight;
                         });
}

std::int64_t Instance::total_profit() const {
  return std::accumulate(items.begin(), items.end(), std::int64_t{0},
                         [](std::int64_t acc, const Item& item) {
                           return acc + item.profit;
                         });
}

void Instance::sort_by_ratio() {
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     // profit_a/weight_a > profit_b/weight_b, integer-safe.
                     return a.profit * b.weight > b.profit * a.weight;
                   });
}

Bytes Instance::encode() const {
  BufWriter w;
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const Item& item : items) {
    w.i64(item.profit);
    w.i64(item.weight);
  }
  w.i64(capacity);
  return std::move(w).take();
}

Result<Instance> Instance::decode(const Bytes& data) {
  BufReader r(data);
  auto n = r.u32();
  if (!n) return n.error();
  Instance inst;
  inst.items.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto profit = r.i64();
    if (!profit) return profit.error();
    auto weight = r.i64();
    if (!weight) return weight.error();
    inst.items.push_back(Item{*profit, *weight});
  }
  auto capacity = r.i64();
  if (!capacity) return capacity.error();
  inst.capacity = *capacity;
  if (!r.at_end()) {
    return Error(ErrorCode::kProtocolError, "trailing bytes after instance");
  }
  return inst;
}

std::string Instance::to_text() const {
  std::string out = "# 0-1 knapsack instance\n";
  out += std::to_string(items.size()) + " " + std::to_string(capacity) + "\n";
  for (const Item& item : items) {
    out += std::to_string(item.profit) + " " + std::to_string(item.weight) +
           "\n";
  }
  return out;
}

Result<Instance> Instance::from_text(const std::string& text) {
  auto bad = [](const std::string& why) {
    return Error(ErrorCode::kInvalidArgument, "bad instance file: " + why);
  };

  // Tokenize, dropping comments and blank space.
  std::vector<std::int64_t> numbers;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '#') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else {
      std::size_t end = pos;
      while (end < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[end])) &&
             text[end] != '#') {
        ++end;
      }
      errno = 0;
      char* parsed_end = nullptr;
      const std::string token = text.substr(pos, end - pos);
      const long long v = std::strtoll(token.c_str(), &parsed_end, 10);
      if (errno != 0 || parsed_end != token.c_str() + token.size()) {
        return bad("non-numeric token '" + token + "'");
      }
      numbers.push_back(v);
      pos = end;
    }
  }

  if (numbers.size() < 2) return bad("missing header (n capacity)");
  const std::int64_t n = numbers[0];
  if (n <= 0 || n > 62) return bad("item count out of range");
  if (numbers.size() != 2 + 2 * static_cast<std::size_t>(n)) {
    return bad("expected " + std::to_string(2 + 2 * n) + " numbers, got " +
               std::to_string(numbers.size()));
  }
  Instance inst;
  inst.capacity = numbers[1];
  if (inst.capacity < 0) return bad("negative capacity");
  inst.items.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t profit = numbers[2 + 2 * static_cast<std::size_t>(i)];
    const std::int64_t weight = numbers[3 + 2 * static_cast<std::size_t>(i)];
    if (profit < 0 || weight < 0) return bad("negative profit/weight");
    inst.items.push_back(Item{profit, weight});
  }
  return inst;
}

Instance no_prune_instance(int n, std::uint64_t seed) {
  WACS_CHECK(n > 0);
  Rng rng(seed);
  Instance inst;
  inst.items.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inst.items.push_back(Item{
        static_cast<std::int64_t>(rng.uniform(1, 100)),
        static_cast<std::int64_t>(rng.uniform(1, 100)),
    });
  }
  inst.capacity = inst.total_weight();  // everything fits: nothing prunes
  return inst;
}

Instance random_instance(int n, std::uint64_t seed, double tightness,
                         std::int64_t max_value) {
  WACS_CHECK(n > 0 && tightness > 0 && max_value > 0);
  Rng rng(seed);
  Instance inst;
  inst.items.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inst.items.push_back(Item{
        static_cast<std::int64_t>(
            rng.uniform(1, static_cast<std::uint64_t>(max_value))),
        static_cast<std::int64_t>(
            rng.uniform(1, static_cast<std::uint64_t>(max_value))),
    });
  }
  inst.capacity =
      static_cast<std::int64_t>(tightness * static_cast<double>(
                                                inst.total_weight()));
  inst.capacity = std::max<std::int64_t>(inst.capacity, 1);
  return inst;
}

Instance correlated_instance(int n, std::uint64_t seed, double tightness,
                             std::int64_t max_weight) {
  WACS_CHECK(n > 0 && tightness > 0 && max_weight > 0);
  Rng rng(seed);
  Instance inst;
  inst.items.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto weight = static_cast<std::int64_t>(
        rng.uniform(1, static_cast<std::uint64_t>(max_weight)));
    inst.items.push_back(Item{weight + max_weight / 10 + 1, weight});
  }
  inst.capacity =
      static_cast<std::int64_t>(tightness * static_cast<double>(
                                                inst.total_weight()));
  inst.capacity = std::max<std::int64_t>(inst.capacity, 1);
  return inst;
}

}  // namespace wacs::knapsack
