// Branch-and-bound search core (paper §4.3).
//
// "Each node of a search tree is represented by a set of index, value, and
// capacity. ... The search tree is represented by a stack onto which nodes
// are pushed in a search procedure." The branch operation pops a node,
// checks it, and pushes its (one or two) children. Both the sequential
// solver and the master/slave workers drive the same Searcher so their node
// accounting is identical.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "knapsack/instance.hpp"

namespace wacs::knapsack {

/// A search-tree node: first undecided item, accumulated profit, remaining
/// capacity.
struct Node {
  std::int32_t index = 0;
  std::int64_t value = 0;
  std::int64_t capacity = 0;

  friend bool operator==(const Node&, const Node&) = default;
};

/// Serialization for shipping stolen nodes between ranks.
void encode_nodes(BufWriter& w, const std::vector<Node>& nodes);
Result<std::vector<Node>> decode_nodes(BufReader& r);

/// Martello-Toth style fractional upper bound for `node`, assuming items are
/// sorted by profit/weight ratio descending. Always >= the best completion.
std::int64_t upper_bound(const Instance& inst, const Node& node);

/// The branch-operation engine. Work can be injected (push) and removed
/// (steal) externally — that is the master/slave protocol's interface.
class Searcher {
 public:
  /// `use_bound`: prune subtrees whose upper bound cannot beat the best.
  /// The paper's normalized runs use use_bound = false (nothing pruned).
  Searcher(const Instance& inst, bool use_bound);

  /// Pushes a node (root, or stolen work).
  void push(const Node& node) { stack_.push_back(node); }
  void push_all(const std::vector<Node>& nodes);

  /// Performs up to `max_ops` branch operations; returns how many ran
  /// (fewer only when the stack empties).
  std::uint64_t run(std::uint64_t max_ops);

  /// Removes up to `count` nodes from the top of the stack — the deepest,
  /// smallest subtrees. This is the paper's literal wording ("the master
  /// sends stealunit nodes on top of its stack"); see take_from_bottom for
  /// why the default transfer policy differs.
  std::vector<Node> take_from_top(std::size_t count);

  /// Removes up to `count` nodes from the bottom of the stack — the
  /// shallowest, largest subtrees. This is the classic work-stealing
  /// transfer end and the reproduction's default: shipping top-of-stack
  /// leaf crumbs starves remote workers (bench_ablation_scheduler
  /// demonstrates it).
  std::vector<Node> take_from_bottom(std::size_t count);

  /// Worst-case branch operations needed to exhaust the subtree under
  /// `node` (the unpruned size 2^(n-index+1)-1); the scheduler's work
  /// estimate. Returned as double: shallow nodes overflow 64-bit counts.
  double node_work(const Node& node) const;

  /// Worst-case branch operations to exhaust the current stack.
  double pending_work() const;

  /// Removes bottom (shallowest-first) nodes while the work remaining on
  /// the stack stays above `keep_ops`, up to `max_nodes`; always leaves at
  /// least one node. Used by slaves to shed surplus subtrees back to the
  /// master ("too many nodes on the stack", measured in work).
  std::vector<Node> shed_excess_work(double keep_ops, std::size_t max_nodes);

  /// Removes bottom nodes until roughly `grant_ops` of work is collected
  /// (at least one node, at most `max_nodes`). Used by the master to build
  /// steal grants.
  std::vector<Node> take_work_from_bottom(double grant_ops,
                                          std::size_t max_nodes);

  bool idle() const { return stack_.empty(); }
  std::size_t stack_size() const { return stack_.size(); }

  std::int64_t best() const { return best_; }
  /// Merges a best value learned from another rank.
  void offer_best(std::int64_t value);

  std::uint64_t nodes_traversed() const { return nodes_; }

 private:
  void step();

  const Instance* inst_;
  bool use_bound_;
  std::vector<Node> stack_;
  std::int64_t best_ = 0;
  std::uint64_t nodes_ = 0;
};

/// Result of a complete search.
struct SearchResult {
  std::int64_t best_value = 0;
  std::uint64_t nodes_traversed = 0;
};

/// Sequential solver: root-to-exhaustion on one Searcher.
SearchResult solve_sequential(const Instance& inst, bool use_bound = true);

/// Exhaustive reference solver (2^n subsets); for tests with small n.
std::int64_t solve_brute_force(const Instance& inst);

/// Exact dynamic-programming solver, O(n × capacity) time and O(capacity)
/// space. Handles far larger n than brute force (the reference for
/// property tests against the branch-and-bound solvers); requires a
/// moderate capacity.
std::int64_t solve_dp(const Instance& inst);

/// Nodes of the unpruned tree: 2^(n+1) - 1.
std::uint64_t full_tree_nodes(int n);

}  // namespace wacs::knapsack
