#include "knapsack/parallel.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <deque>

#include "common/log.hpp"
#include "knapsack/search.hpp"
#include "mpi/comm.hpp"

namespace wacs::knapsack {
namespace {

const log::Logger kLog("knapsack");

constexpr int kTagSteal = 1;
constexpr int kTagBack = 2;
constexpr int kTagWork = 3;
constexpr int kTagDone = 4;
constexpr int kTagStats = 5;

struct Params {
  std::uint64_t interval = 1000;
  std::size_t stealunit = 16;
  std::size_t backunit = 64;
  std::size_t back_threshold = 0;  // 0 = auto; used by the "top" policy only
  double keep_ops = 0;             // 0 = auto (64 x interval)
  bool steal_from_bottom = true;
  bool use_bound = false;
  double sec_per_node = 1e-6;
};

double parse_double(const std::string& s, double fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() ? v : fallback;
}

std::uint64_t parse_u64(const std::string& s, std::uint64_t fallback) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return (ec == std::errc() && p == s.data() + s.size()) ? v : fallback;
}

Params parse_params(const rmf::JobContext& ctx, const Instance& inst) {
  Params p;
  p.interval = parse_u64(ctx.arg_or(args::kInterval, ""), p.interval);
  p.stealunit = parse_u64(ctx.arg_or(args::kStealUnit, ""), p.stealunit);
  p.backunit = parse_u64(ctx.arg_or(args::kBackUnit, ""), p.backunit);
  p.back_threshold =
      parse_u64(ctx.arg_or(args::kBackThreshold, ""), p.back_threshold);
  if (p.back_threshold == 0) {
    // A DFS stack hovers around the instance depth; anything above that is
    // surplus subtrees that other workers could be running.
    p.back_threshold = std::max<std::size_t>(
        static_cast<std::size_t>(inst.size()), 2 * p.stealunit);
  }
  p.steal_from_bottom = ctx.arg_or(args::kTransferEnd, "bottom") != "top";
  p.keep_ops = parse_double(ctx.arg_or(args::kKeepOps, ""), p.keep_ops);
  if (p.keep_ops <= 0) {
    // Auto granularity: about four steal cycles per worker over the whole
    // (unpruned) tree, floored so a grant always outweighs an interval.
    const double tree = std::exp2(inst.size() + 1);
    p.keep_ops = std::max(64.0 * static_cast<double>(p.interval),
                          tree / (4.0 * std::max(1, ctx.nprocs)));
  }
  p.use_bound = ctx.arg_or(args::kUseBound, "0") == "1";
  p.sec_per_node =
      parse_double(ctx.arg_or(args::kSecPerNode, ""), p.sec_per_node);
  WACS_CHECK(p.interval > 0 && p.stealunit > 0 && p.backunit > 0);
  return p;
}

/// Builds a steal grant: work-aware from the bottom (default) or the
/// paper-literal fixed node count from the top.
std::vector<Node> make_grant(Searcher& searcher, const Params& params) {
  if (params.steal_from_bottom) {
    return searcher.take_work_from_bottom(params.keep_ops, params.stealunit);
  }
  return searcher.take_from_top(params.stealunit);
}

/// Builds a back transfer (surplus the slave sheds), or empty if none due.
std::vector<Node> make_back_transfer(Searcher& searcher,
                                     const Params& params) {
  if (params.steal_from_bottom) {
    if (searcher.pending_work() <= 2 * params.keep_ops) return {};
    return searcher.shed_excess_work(params.keep_ops, params.backunit);
  }
  if (searcher.stack_size() <= params.back_threshold) return {};
  const std::size_t surplus = searcher.stack_size() - params.back_threshold;
  return searcher.take_from_top(std::min(params.backunit, surplus));
}

Instance load_instance(const rmf::JobContext& ctx) {
  auto it = ctx.input_files.find(kInstanceFile);
  WACS_CHECK_MSG(it != ctx.input_files.end(), "instance file not staged");
  auto inst = Instance::decode(it->second);
  WACS_CHECK_MSG(inst.ok(), "staged instance is corrupt");
  return std::move(*inst);
}

/// Shared payload of kTagBack / kTagWork: nodes + sender's best value.
Bytes encode_work(const std::vector<Node>& nodes, std::int64_t best) {
  BufWriter w;
  w.i64(best);
  encode_nodes(w, nodes);
  return std::move(w).take();
}

struct WorkMsg {
  std::int64_t best = 0;
  std::vector<Node> nodes;
};

WorkMsg decode_work(const Bytes& data) {
  BufReader r(data);
  auto best = r.i64();
  WACS_CHECK(best.ok());
  auto nodes = decode_nodes(r);
  WACS_CHECK(nodes.ok());
  return WorkMsg{*best, std::move(*nodes)};
}

/// Gathered per-rank statistics payload.
Bytes encode_rank_stats(const RankStats& s) {
  BufWriter w;
  w.i32(s.rank);
  w.str(s.host);
  w.u64(s.nodes_traversed);
  w.u64(s.steal_requests);
  return std::move(w).take();
}

RankStats decode_rank_stats(const Bytes& data) {
  BufReader r(data);
  RankStats s;
  auto rank = r.i32();
  auto host = r.str();
  auto nodes = r.u64();
  auto steals = r.u64();
  WACS_CHECK(rank.ok() && host.ok() && nodes.ok() && steals.ok());
  s.rank = *rank;
  s.host = std::move(*host);
  s.nodes_traversed = *nodes;
  s.steal_requests = *steals;
  return s;
}

void run_master(rmf::JobContext& ctx, mpi::Comm& comm, const Params& params,
                const Instance& inst, RunStats& out) {
  const int nslaves = comm.size() - 1;
  Searcher searcher(inst, params.use_bound);
  searcher.push(Node{0, 0, inst.capacity});

  std::uint64_t steals_handled = 0;
  std::deque<int> pending;            // slaves waiting for work
  std::vector<bool> is_pending(static_cast<std::size_t>(comm.size()), false);

  auto drain_messages = [&](bool block) {
    mpi::Comm::RecvInfo info;
    bool first = true;
    while (true) {
      if (block && first) {
        comm.probe(mpi::Comm::kAnySource, mpi::Comm::kAnyTag, &info);
      } else if (!comm.iprobe(mpi::Comm::kAnySource, mpi::Comm::kAnyTag,
                              &info)) {
        break;
      }
      first = false;
      Bytes data = comm.recv(info.source, info.tag);
      if (info.tag == kTagSteal) {
        WorkMsg msg = decode_work(data);
        searcher.offer_best(msg.best);
        WACS_CHECK(!is_pending[static_cast<std::size_t>(info.source)]);
        is_pending[static_cast<std::size_t>(info.source)] = true;
        pending.push_back(info.source);
      } else if (info.tag == kTagBack) {
        WorkMsg msg = decode_work(data);
        searcher.offer_best(msg.best);
        searcher.push_all(msg.nodes);
      } else {
        WACS_CHECK_MSG(false, "master got unexpected tag");
      }
    }
  };

  auto serve_pending = [&] {
    while (!pending.empty() && !searcher.idle()) {
      const int slave = pending.front();
      pending.pop_front();
      is_pending[static_cast<std::size_t>(slave)] = false;
      ++steals_handled;
      auto nodes = make_grant(searcher, params);
      comm.send(slave, kTagWork, encode_work(nodes, searcher.best()));
    }
  };

  while (!(searcher.idle() &&
           static_cast<int>(pending.size()) == nslaves)) {
    if (!searcher.idle()) {
      // "The master repeats the branch operation interval times."
      const std::uint64_t ops = searcher.run(params.interval);
      ctx.charge_cpu(static_cast<double>(ops) * params.sec_per_node);
      drain_messages(/*block=*/false);
    } else {
      // Out of work but slaves are still busy: sleep on the next message.
      drain_messages(/*block=*/true);
    }
    serve_pending();
  }

  // Global exhaustion: release every slave.
  for (int s = 1; s <= nslaves; ++s) comm.send(s, kTagDone, {});

  // Collect results: best values and per-rank statistics.
  std::int64_t best = searcher.best();
  out.ranks.clear();
  out.ranks.push_back(RankStats{0, ctx.host->name(),
                                searcher.nodes_traversed(), 0});
  for (int i = 0; i < nslaves; ++i) {
    mpi::Comm::RecvInfo info;
    Bytes data = comm.recv(mpi::Comm::kAnySource, kTagStats, &info);
    BufReader r(data);
    auto slave_best = r.i64();
    WACS_CHECK(slave_best.ok());
    best = std::max(best, *slave_best);
    auto stats_blob = r.blob();
    WACS_CHECK(stats_blob.ok());
    out.ranks.push_back(decode_rank_stats(*stats_blob));
  }

  out.best_value = best;
  out.master_steals_handled = steals_handled;
  out.total_nodes = 0;
  for (const RankStats& s : out.ranks) out.total_nodes += s.nodes_traversed;
}

void run_slave(rmf::JobContext& ctx, mpi::Comm& comm, const Params& params,
               const Instance& inst) {
  Searcher searcher(inst, params.use_bound);
  std::uint64_t steal_requests = 0;

  while (true) {
    if (searcher.idle()) {
      // "If the stack is empty, the slave sends a steal request."
      ++steal_requests;
      comm.send(0, kTagSteal, encode_work({}, searcher.best()));
      mpi::Comm::RecvInfo info;
      Bytes data = comm.recv(0, mpi::Comm::kAnyTag, &info);
      if (info.tag == kTagDone) break;
      WACS_CHECK(info.tag == kTagWork);
      WorkMsg msg = decode_work(data);
      searcher.offer_best(msg.best);
      searcher.push_all(msg.nodes);
      continue;
    }
    const std::uint64_t ops = searcher.run(params.interval);
    ctx.charge_cpu(static_cast<double>(ops) * params.sec_per_node);
    // "A slave sends back backunit nodes when it has too many on the stack"
    // — "too many" measured in estimated work, not node count (see
    // DESIGN.md: node counts starve remote slaves).
    auto surplus = make_back_transfer(searcher, params);
    if (!surplus.empty()) {
      comm.send(0, kTagBack, encode_work(surplus, searcher.best()));
    }
  }

  // The final steal request that got kTagDone was not served with work.
  RankStats stats{comm.rank(), ctx.host->name(), searcher.nodes_traversed(),
                  steal_requests};
  BufWriter w;
  w.i64(searcher.best());
  w.blob(encode_rank_stats(stats));
  comm.send(0, kTagStats, std::move(w).take());
}

void knapsack_task(rmf::JobContext& ctx) {
  const Instance inst = load_instance(ctx);
  const Params params = parse_params(ctx, inst);
  auto comm = mpi::Comm::init(ctx);
  WACS_CHECK_MSG(comm->size() >= 2, "parallel knapsack needs >= 2 ranks");

  // Synchronize so app_seconds measures the search, not job startup skew.
  comm->barrier();
  const sim::Time started = ctx.host->network().engine().now();

  if (comm->rank() == 0) {
    RunStats stats;
    run_master(ctx, *comm, params, inst, stats);
    stats.app_seconds =
        sim::to_sec(ctx.host->network().engine().now() - started);
    ctx.result = stats.encode();
    kLog.info("job %llu: best=%lld nodes=%llu steals=%llu in %.3fs",
              static_cast<unsigned long long>(ctx.job_id),
              static_cast<long long>(stats.best_value),
              static_cast<unsigned long long>(stats.total_nodes),
              static_cast<unsigned long long>(stats.master_steals_handled),
              stats.app_seconds);
  } else {
    run_slave(ctx, *comm, params, inst);
  }
  comm->finalize();
}

void knapsack_seq_task(rmf::JobContext& ctx) {
  const Instance inst = load_instance(ctx);
  const Params params = parse_params(ctx, inst);
  const sim::Time started = ctx.host->network().engine().now();

  Searcher searcher(inst, params.use_bound);
  searcher.push(Node{0, 0, inst.capacity});
  while (!searcher.idle()) {
    const std::uint64_t ops = searcher.run(params.interval);
    ctx.charge_cpu(static_cast<double>(ops) * params.sec_per_node);
  }

  RunStats stats;
  stats.best_value = searcher.best();
  stats.total_nodes = searcher.nodes_traversed();
  stats.app_seconds =
      sim::to_sec(ctx.host->network().engine().now() - started);
  stats.ranks.push_back(RankStats{0, ctx.host->name(),
                                  searcher.nodes_traversed(), 0});
  ctx.result = stats.encode();
}

}  // namespace

Bytes RunStats::encode() const {
  BufWriter w;
  w.i64(best_value);
  w.u64(total_nodes);
  w.u64(master_steals_handled);
  w.f64(app_seconds);
  w.u32(static_cast<std::uint32_t>(ranks.size()));
  for (const RankStats& s : ranks) w.blob(encode_rank_stats(s));
  return std::move(w).take();
}

Result<RunStats> RunStats::decode(const Bytes& data) {
  BufReader r(data);
  RunStats out;
  auto best = r.i64();
  if (!best) return best.error();
  out.best_value = *best;
  auto total = r.u64();
  if (!total) return total.error();
  out.total_nodes = *total;
  auto steals = r.u64();
  if (!steals) return steals.error();
  out.master_steals_handled = *steals;
  auto secs = r.f64();
  if (!secs) return secs.error();
  out.app_seconds = *secs;
  auto n = r.u32();
  if (!n) return n.error();
  out.ranks.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto blob = r.blob();
    if (!blob) return blob.error();
    out.ranks.push_back(decode_rank_stats(*blob));
  }
  return out;
}

void register_tasks(rmf::JobRegistry& registry) {
  registry.register_task(kParallelTask, knapsack_task);
  registry.register_task(kSequentialTask, knapsack_seq_task);
}

}  // namespace wacs::knapsack
