#include "knapsack/parallel.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <deque>

#include "common/log.hpp"
#include "common/telemetry.hpp"
#include "knapsack/search.hpp"
#include "mpi/comm.hpp"

namespace wacs::knapsack {
namespace {

const log::Logger kLog("knapsack");

constexpr int kTagSteal = 1;
constexpr int kTagBack = 2;
constexpr int kTagWork = 3;
constexpr int kTagDone = 4;
constexpr int kTagStats = 5;

struct Params {
  std::uint64_t interval = 1000;
  std::size_t stealunit = 16;
  std::size_t backunit = 64;
  std::size_t back_threshold = 0;  // 0 = auto; used by the "top" policy only
  double keep_ops = 0;             // 0 = auto (64 x interval)
  bool steal_from_bottom = true;
  bool use_bound = false;
  double sec_per_node = 1e-6;
};

double parse_double(const std::string& s, double fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() ? v : fallback;
}

std::uint64_t parse_u64(const std::string& s, std::uint64_t fallback) {
  std::uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return (ec == std::errc() && p == s.data() + s.size()) ? v : fallback;
}

Params parse_params(const rmf::JobContext& ctx, const Instance& inst) {
  Params p;
  p.interval = parse_u64(ctx.arg_or(args::kInterval, ""), p.interval);
  p.stealunit = parse_u64(ctx.arg_or(args::kStealUnit, ""), p.stealunit);
  p.backunit = parse_u64(ctx.arg_or(args::kBackUnit, ""), p.backunit);
  p.back_threshold =
      parse_u64(ctx.arg_or(args::kBackThreshold, ""), p.back_threshold);
  if (p.back_threshold == 0) {
    // A DFS stack hovers around the instance depth; anything above that is
    // surplus subtrees that other workers could be running.
    p.back_threshold = std::max<std::size_t>(
        static_cast<std::size_t>(inst.size()), 2 * p.stealunit);
  }
  p.steal_from_bottom = ctx.arg_or(args::kTransferEnd, "bottom") != "top";
  p.keep_ops = parse_double(ctx.arg_or(args::kKeepOps, ""), p.keep_ops);
  if (p.keep_ops <= 0) {
    // Auto granularity: about four steal cycles per worker over the whole
    // (unpruned) tree, floored so a grant always outweighs an interval.
    const double tree = std::exp2(inst.size() + 1);
    p.keep_ops = std::max(64.0 * static_cast<double>(p.interval),
                          tree / (4.0 * std::max(1, ctx.nprocs)));
  }
  p.use_bound = ctx.arg_or(args::kUseBound, "0") == "1";
  p.sec_per_node =
      parse_double(ctx.arg_or(args::kSecPerNode, ""), p.sec_per_node);
  WACS_CHECK(p.interval > 0 && p.stealunit > 0 && p.backunit > 0);
  return p;
}

/// Builds a steal grant: work-aware from the bottom (default) or the
/// paper-literal fixed node count from the top.
std::vector<Node> make_grant(Searcher& searcher, const Params& params) {
  if (params.steal_from_bottom) {
    return searcher.take_work_from_bottom(params.keep_ops, params.stealunit);
  }
  return searcher.take_from_top(params.stealunit);
}

/// Builds a back transfer (surplus the slave sheds), or empty if none due.
std::vector<Node> make_back_transfer(Searcher& searcher,
                                     const Params& params) {
  if (params.steal_from_bottom) {
    if (searcher.pending_work() <= 2 * params.keep_ops) return {};
    return searcher.shed_excess_work(params.keep_ops, params.backunit);
  }
  if (searcher.stack_size() <= params.back_threshold) return {};
  const std::size_t surplus = searcher.stack_size() - params.back_threshold;
  return searcher.take_from_top(std::min(params.backunit, surplus));
}

Instance load_instance(const rmf::JobContext& ctx) {
  auto it = ctx.input_files.find(kInstanceFile);
  WACS_CHECK_MSG(it != ctx.input_files.end(), "instance file not staged");
  auto inst = Instance::decode(it->second);
  WACS_CHECK_MSG(inst.ok(), "staged instance is corrupt");
  return std::move(*inst);
}

/// Shared payload of kTagBack / kTagWork: nodes + sender's best value.
Bytes encode_work(const std::vector<Node>& nodes, std::int64_t best) {
  BufWriter w;
  w.i64(best);
  encode_nodes(w, nodes);
  return std::move(w).take();
}

struct WorkMsg {
  std::int64_t best = 0;
  std::vector<Node> nodes;
};

WorkMsg decode_work(const Bytes& data) {
  BufReader r(data);
  auto best = r.i64();
  WACS_CHECK(best.ok());
  auto nodes = decode_nodes(r);
  WACS_CHECK(nodes.ok());
  return WorkMsg{*best, std::move(*nodes)};
}

/// Gathered per-rank statistics payload.
Bytes encode_rank_stats(const RankStats& s) {
  BufWriter w;
  w.i32(s.rank);
  w.str(s.host);
  w.u64(s.nodes_traversed);
  w.u64(s.steal_requests);
  return std::move(w).take();
}

RankStats decode_rank_stats(const Bytes& data) {
  BufReader r(data);
  RankStats s;
  auto rank = r.i32();
  auto host = r.str();
  auto nodes = r.u64();
  auto steals = r.u64();
  WACS_CHECK(rank.ok() && host.ok() && nodes.ok() && steals.ok());
  s.rank = *rank;
  s.host = std::move(*host);
  s.nodes_traversed = *nodes;
  s.steal_requests = *steals;
  return s;
}

void run_master(rmf::JobContext& ctx, mpi::Comm& comm, const Params& params,
                const Instance& inst, RunStats& out) {
  const int nslaves = comm.size() - 1;
  const auto size = static_cast<std::size_t>(comm.size());
  Searcher searcher(inst, params.use_bound);
  searcher.push(Node{0, 0, inst.capacity});

  std::uint64_t steals_handled = 0;
  std::uint64_t grants_reclaimed = 0;
  std::deque<int> pending;  // alive slaves waiting for work
  // Trace context of each slave's outstanding steal request: the grant is
  // recorded as a child of the steal, so one work-stealing round trip reads
  // as a single causal chain across the WAN.
  std::vector<telemetry::TraceContext> steal_ctx(size);
  std::vector<bool> is_pending(size, false);
  std::vector<bool> lost(size, false);
  // The one grant at risk per slave: cleared at the slave's next kTagSteal
  // (its stack is empty again, so the grant is fully consumed or shed back).
  std::vector<std::vector<Node>> shipped(size);
  int nalive = nslaves;

  auto handle_losses = [&] {
    while (auto l = comm.take_lost_rank()) {
      const auto s = static_cast<std::size_t>(*l);
      lost[s] = true;
      --nalive;
      if (is_pending[s]) {
        is_pending[s] = false;
        std::erase(pending, *l);
      }
      if (!shipped[s].empty()) {
        searcher.push_all(shipped[s]);
        shipped[s].clear();
        ++grants_reclaimed;
      }
      kLog.warn("master: slave %d vanished, %d still alive", *l, nalive);
    }
  };

  auto drain_messages = [&](bool block) {
    mpi::Comm::RecvInfo info;
    bool first = true;
    while (true) {
      if (block && first) {
        // Sleep on the next message — or a rank loss, which the caller
        // handles at the top of the main loop.
        if (!comm.probe_or_lost(mpi::Comm::kAnySource, mpi::Comm::kAnyTag,
                                &info)) {
          break;
        }
      } else if (!comm.iprobe(mpi::Comm::kAnySource, mpi::Comm::kAnyTag,
                              &info)) {
        break;
      }
      first = false;
      Bytes data = comm.recv(info.source, info.tag);
      const auto src = static_cast<std::size_t>(info.source);
      if (info.tag == kTagSteal || info.tag == kTagBack) {
        WorkMsg msg = decode_work(data);
        searcher.offer_best(msg.best);
        if (lost[src]) continue;  // late message from a dead slave
        if (info.tag == kTagSteal) {
          WACS_CHECK(!is_pending[src]);
          is_pending[src] = true;
          pending.push_back(info.source);
          steal_ctx[src] = comm.last_rx_meta().ctx;
          shipped[src].clear();  // previous grant fully consumed or shed
        } else {
          searcher.push_all(msg.nodes);
        }
      } else {
        WACS_CHECK_MSG(false, "master got unexpected tag");
      }
    }
  };

  auto serve_pending = [&] {
    while (!pending.empty() && !searcher.idle()) {
      const int slave = pending.front();
      pending.pop_front();
      is_pending[static_cast<std::size_t>(slave)] = false;
      ++steals_handled;
      telemetry::Span span("knapsack", "knapsack.grant",
                           steal_ctx[static_cast<std::size_t>(slave)]);
      auto nodes = make_grant(searcher, params);
      if (span.active()) {
        span.arg("slave", slave);
        span.arg("nodes", nodes.size());
      }
      // Keep a copy before shipping: if the slave dies with it, the next
      // handle_losses() pushes it back.
      shipped[static_cast<std::size_t>(slave)] = nodes;
      (void)comm.try_send(slave, kTagWork, encode_work(nodes, searcher.best()));
    }
  };

  while (true) {
    handle_losses();
    if (searcher.idle() && static_cast<int>(pending.size()) == nalive) break;
    if (!searcher.idle()) {
      // "The master repeats the branch operation interval times."
      const std::uint64_t ops = searcher.run(params.interval);
      static telemetry::Counter& nodes_metric =
          telemetry::metrics().counter("knapsack.nodes");
      nodes_metric.add(ops);
      ctx.charge_cpu(static_cast<double>(ops) * params.sec_per_node);
      drain_messages(/*block=*/false);
    } else {
      // Out of work but alive slaves are still busy.
      drain_messages(/*block=*/true);
    }
    serve_pending();
  }

  // Global exhaustion: release every surviving slave.
  for (int s = 1; s <= nslaves; ++s) {
    if (!lost[static_cast<std::size_t>(s)]) {
      (void)comm.try_send(s, kTagDone, {});
    }
  }
  handle_losses();  // deaths discovered by the kTagDone sends

  // Collect results: best values and per-rank statistics. A slave that dies
  // here had an empty stack (it was pending), so only its counters are lost.
  std::int64_t best = searcher.best();
  out.ranks.clear();
  out.ranks.push_back(RankStats{0, ctx.host->name(),
                                searcher.nodes_traversed(), 0});
  std::vector<bool> got_stats(size, false);
  int expected = nalive;
  while (expected > 0) {
    mpi::Comm::RecvInfo info;
    if (comm.probe_or_lost(mpi::Comm::kAnySource, kTagStats, &info)) {
      Bytes data = comm.recv(info.source, kTagStats);
      BufReader r(data);
      auto slave_best = r.i64();
      WACS_CHECK(slave_best.ok());
      best = std::max(best, *slave_best);
      auto stats_blob = r.blob();
      WACS_CHECK(stats_blob.ok());
      out.ranks.push_back(decode_rank_stats(*stats_blob));
      got_stats[static_cast<std::size_t>(info.source)] = true;
      --expected;
    } else {
      while (auto l = comm.take_lost_rank()) {
        const auto s = static_cast<std::size_t>(*l);
        lost[s] = true;
        --nalive;
        if (!got_stats[s]) --expected;
        kLog.warn("master: slave %d vanished before reporting stats", *l);
      }
    }
  }

  out.best_value = best;
  out.master_steals_handled = steals_handled;
  out.slaves_lost = static_cast<std::uint64_t>(nslaves - nalive);
  out.grants_reclaimed = grants_reclaimed;
  out.total_nodes = 0;
  for (const RankStats& s : out.ranks) out.total_nodes += s.nodes_traversed;
}

void run_slave(rmf::JobContext& ctx, mpi::Comm& comm, const Params& params,
               const Instance& inst) {
  Searcher searcher(inst, params.use_bound);
  std::uint64_t steal_requests = 0;

  // A slave that loses the master (host crash, WAN flap, proxy death) can
  // contribute nothing further: its best value and reclaimed work only
  // reach the result through rank 0. It exits cleanly so the job manager
  // still collects its (empty) completion instead of timing out on it.
  while (true) {
    if (searcher.idle()) {
      // "If the stack is empty, the slave sends a steal request."
      ++steal_requests;
      // The steal span stays open across the request + grant round trip;
      // the master's grant span parents to it through the stamped context.
      telemetry::Span span("knapsack", "knapsack.steal");
      if (span.active()) span.arg("rank", comm.rank());
      const sim::Time steal_t0 = ctx.host->network().engine().now();
      if (!comm.try_send(0, kTagSteal, encode_work({}, searcher.best()))
               .ok()) {
        break;  // master unreachable
      }
      mpi::Comm::RecvInfo info;
      if (!comm.probe_or_lost(0, mpi::Comm::kAnyTag, &info)) {
        (void)comm.take_lost_rank();
        break;  // master vanished while we waited for work
      }
      Bytes data = comm.recv(0, mpi::Comm::kAnyTag, &info);
      if (info.tag == kTagDone) break;
      WACS_CHECK(info.tag == kTagWork);
      static telemetry::Histogram& steal_ms =
          telemetry::metrics().histogram("knapsack.steal_ms");
      steal_ms.observe(
          sim::to_ms(ctx.host->network().engine().now() - steal_t0));
      WorkMsg msg = decode_work(data);
      searcher.offer_best(msg.best);
      searcher.push_all(msg.nodes);
      continue;
    }
    const std::uint64_t ops = searcher.run(params.interval);
    static telemetry::Counter& nodes_metric =
        telemetry::metrics().counter("knapsack.nodes");
    nodes_metric.add(ops);
    ctx.charge_cpu(static_cast<double>(ops) * params.sec_per_node);
    // "A slave sends back backunit nodes when it has too many on the stack"
    // — "too many" measured in estimated work, not node count (see
    // DESIGN.md: node counts starve remote slaves).
    auto surplus = make_back_transfer(searcher, params);
    if (!surplus.empty()) {
      if (!comm.try_send(0, kTagBack, encode_work(surplus, searcher.best()))
               .ok()) {
        break;  // master unreachable; local work dies with the partition
      }
    }
  }

  // The final steal request that got kTagDone was not served with work.
  RankStats stats{comm.rank(), ctx.host->name(), searcher.nodes_traversed(),
                  steal_requests};
  BufWriter w;
  w.i64(searcher.best());
  w.blob(encode_rank_stats(stats));
  (void)comm.try_send(0, kTagStats, std::move(w).take());
}

void knapsack_task(rmf::JobContext& ctx) {
  const Instance inst = load_instance(ctx);
  const Params params = parse_params(ctx, inst);
  auto comm = mpi::Comm::init(ctx);
  WACS_CHECK_MSG(comm->size() >= 2, "parallel knapsack needs >= 2 ranks");

  // Synchronize so app_seconds measures the search, not job startup skew.
  // Loss-tolerant: a crash landing during startup (e.g. a shared relay
  // host, severing every proxied MPI link at once) must not strand the
  // survivors in the barrier. A slave that lost rank 0 here can contribute
  // nothing — it exits cleanly so the job manager still collects its
  // (empty) completion; rank 0 proceeds and treats the missing ranks like
  // any other vanished slave.
  if (!comm->barrier_or_lost() && comm->rank() != 0) {
    comm->finalize();
    return;
  }
  const sim::Time started = ctx.host->network().engine().now();

  if (comm->rank() == 0) {
    RunStats stats;
    run_master(ctx, *comm, params, inst, stats);
    stats.app_seconds =
        sim::to_sec(ctx.host->network().engine().now() - started);
    ctx.result = stats.encode();
    kLog.info("job %llu: best=%lld nodes=%llu steals=%llu in %.3fs",
              static_cast<unsigned long long>(ctx.job_id),
              static_cast<long long>(stats.best_value),
              static_cast<unsigned long long>(stats.total_nodes),
              static_cast<unsigned long long>(stats.master_steals_handled),
              stats.app_seconds);
  } else {
    run_slave(ctx, *comm, params, inst);
  }
  comm->finalize();
}

void knapsack_seq_task(rmf::JobContext& ctx) {
  const Instance inst = load_instance(ctx);
  const Params params = parse_params(ctx, inst);
  const sim::Time started = ctx.host->network().engine().now();

  Searcher searcher(inst, params.use_bound);
  searcher.push(Node{0, 0, inst.capacity});
  while (!searcher.idle()) {
    const std::uint64_t ops = searcher.run(params.interval);
    ctx.charge_cpu(static_cast<double>(ops) * params.sec_per_node);
  }

  RunStats stats;
  stats.best_value = searcher.best();
  stats.total_nodes = searcher.nodes_traversed();
  stats.app_seconds =
      sim::to_sec(ctx.host->network().engine().now() - started);
  stats.ranks.push_back(RankStats{0, ctx.host->name(),
                                  searcher.nodes_traversed(), 0});
  ctx.result = stats.encode();
}

}  // namespace

Bytes RunStats::encode() const {
  BufWriter w;
  w.i64(best_value);
  w.u64(total_nodes);
  w.u64(master_steals_handled);
  w.u64(slaves_lost);
  w.u64(grants_reclaimed);
  w.f64(app_seconds);
  w.u32(static_cast<std::uint32_t>(ranks.size()));
  for (const RankStats& s : ranks) w.blob(encode_rank_stats(s));
  return std::move(w).take();
}

Result<RunStats> RunStats::decode(const Bytes& data) {
  BufReader r(data);
  RunStats out;
  auto best = r.i64();
  if (!best) return best.error();
  out.best_value = *best;
  auto total = r.u64();
  if (!total) return total.error();
  out.total_nodes = *total;
  auto steals = r.u64();
  if (!steals) return steals.error();
  out.master_steals_handled = *steals;
  auto nlost = r.u64();
  if (!nlost) return nlost.error();
  out.slaves_lost = *nlost;
  auto reclaimed = r.u64();
  if (!reclaimed) return reclaimed.error();
  out.grants_reclaimed = *reclaimed;
  auto secs = r.f64();
  if (!secs) return secs.error();
  out.app_seconds = *secs;
  auto n = r.u32();
  if (!n) return n.error();
  out.ranks.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto blob = r.blob();
    if (!blob) return blob.error();
    out.ranks.push_back(decode_rank_stats(*blob));
  }
  return out;
}

void register_tasks(rmf::JobRegistry& registry) {
  registry.register_task(kParallelTask, knapsack_task);
  registry.register_task(kSequentialTask, knapsack_seq_task);
}

}  // namespace wacs::knapsack
