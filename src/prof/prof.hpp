// Host-time profiling layer with hotspot attribution (DESIGN.md §15).
//
// Everything in this subsystem measures *host* nanoseconds — wall-clock
// spent inside the process — never virtual time. Host-time data is
// advisory by construction (like the wall-clock/RSS fields in BENCH
// reports): recording never touches the simulation clock, the event
// queue, the tracer, or the metrics registry, so same-seed runs stay
// byte-identical whether profiling is on or off.
//
// Three cost tiers:
//
//  * compiled out — building with -DWACS_PROF=0 expands PROF_SCOPE to
//    nothing and removes every engine/network hook behind `#if WACS_PROF`.
//    Provably zero-cost: the instrumented code is not in the binary.
//  * compiled in, disabled (the default) — each hook is one relaxed
//    atomic load and a branch. The committed bench baselines are produced
//    in this mode, which is how CI proves "off is free".
//  * enabled — prof::enable() or WACS_PROF=1 in the environment. Scope
//    timers read steady_clock on entry/exit; the engine dispatch loop
//    charges each event with one cached clock read (the end of event N is
//    the start of event N+1).
//
// Attribution model: PROF_SCOPE("name") opens a frame on the calling
// thread's private scope tree (no locks on the hot path; trees register
// once globally and are merged at dump time). A frame accumulates self
// time = elapsed − time spent in child frames, which is exactly the
// flamegraph.pl "folded" semantics: `a;b;c <self>` lines, parents summed
// by the renderer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"

// Compile-time master switch. -DWACS_PROF=0 removes the scope macro and
// every hook guarded by `#if WACS_PROF`; the library API below stays
// available either way so tools link unconditionally.
#ifndef WACS_PROF
#define WACS_PROF 1
#endif

namespace wacs::prof {

// ------------------------------------------------------------- global gate

/// True when host-time profiling is recording. One relaxed load.
bool enabled();
void enable();
void disable();
/// Drops all recorded scope frames, engine profiles keep their own reset.
void reset();
/// Honors WACS_PROF=1 in the environment (benches call this once).
bool enable_from_env();

/// Host monotonic nanoseconds (steady_clock).
std::int64_t now_ns();

// ------------------------------------------------------------- scope trees

/// Aggregate for one node of a scope tree or one flat event label.
/// total >= child; self = total - child.
struct ScopeStat {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t child_ns = 0;
  std::int64_t self_ns() const { return total_ns - child_ns; }
};

/// RAII host-time frame. Inert when profiling is disabled at construction.
/// `name` must have static storage duration (PROF_SCOPE passes literals);
/// frames nest per thread and feed the folded-stack dump.
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name);
  ~ScopeTimer();
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  std::int64_t start_ = -1;  ///< -1 = inert (disabled at entry)
};

/// One merged folded line: "a;b;c" joined stack + its stats.
struct FoldedLine {
  std::string stack;
  ScopeStat stat;
};

/// Merges every thread's scope tree (running and retired threads alike)
/// into folded lines, deterministically ordered by stack string.
std::vector<FoldedLine> collect_folded();

/// flamegraph.pl-compatible text: one "stack self_ns" line per entry.
std::string folded_to_string(const std::vector<FoldedLine>& lines);

// --------------------------------------------------------- engine profiles

/// Power-of-two host-latency histogram: bucket i counts observations in
/// [2^i, 2^(i+1)) ns. Cheap enough for the dispatch loop (a shift and an
/// increment) and wide enough for ns..minutes.
struct Log2Hist {
  static constexpr int kBuckets = 48;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
  std::uint64_t buckets[kBuckets] = {};

  void observe(std::int64_t ns);
  /// Approximate quantile from the log2 buckets (geometric midpoint).
  double quantile(double q) const;
  json::Value json() const;
};

/// Host-time profile of one Engine: per-event-label cost histograms,
/// per-process slice costs, an events/sec + queue-depth timeline, and the
/// lookahead ledger (intra- vs cross-site delivered messages). Owned by
/// the Engine, populated only while prof::enabled().
class EngineProfile {
 public:
  /// Charges one dispatched event. `label` must be a static string.
  void record_event(const char* label, std::int64_t ns,
                    std::size_t queue_depth);
  /// Charges one engine→process slice (`name` is the Process name).
  void record_slice(const std::string& name, std::int64_t ns);
  /// The histogram behind record_slice(name), for hot callers that cache
  /// the reference instead of re-scanning by name per slice (Process does).
  /// References stay valid across clear() — slots are zeroed, not dropped.
  Log2Hist& slice_slot(const std::string& name);
  /// Records one delivered network message for the lookahead report.
  void record_delivery(const std::string& src_site,
                       const std::string& dst_site, std::int64_t latency_ns);

  /// Maps a host name (the part after '@' in process names) to its site,
  /// for per-site slice aggregation in json(). Unset: per-site is omitted.
  void set_site_resolver(std::function<std::string(const std::string&)> fn);

  struct Lookahead {
    std::uint64_t intra_site = 0;
    std::uint64_t cross_site = 0;
    double cross_fraction() const {
      const std::uint64_t total = intra_site + cross_site;
      return total == 0 ? 0.0 : static_cast<double>(cross_site) /
                                    static_cast<double>(total);
    }
  };
  const Lookahead& lookahead() const { return lookahead_; }
  /// Minimum observed cross-site delivery latency in virtual ns (the
  /// conservative-parallel-DES lookahead bound), 0 when none crossed.
  std::int64_t min_cross_site_latency_ns() const;

  std::uint64_t events_recorded() const { return events_recorded_; }

  /// Full profile as JSON: {"events": {...}, "processes": {...},
  /// "sites": {...}, "timeline": [...], "lookahead": {...}}.
  json::Value json() const;
  /// Folded lines rooted at "engine.run" (one per event label).
  std::vector<FoldedLine> folded() const;
  /// Human-readable per-event-label table plus the lookahead summary.
  std::string render(std::size_t top_n = 12) const;

  void clear();

 private:
  struct Named {
    std::string name;
    Log2Hist hist;
  };
  struct PairStat {
    Log2Hist hist;  ///< virtual-time latency, same log2 ladder
  };
  std::uint64_t events_recorded_ = 0;
  std::vector<std::pair<const char*, Log2Hist>> events_;  ///< by label ptr
  std::deque<Named> slices_;  ///< deque: slice_slot refs survive growth
  Lookahead lookahead_;
  std::vector<std::pair<std::pair<std::string, std::string>, PairStat>>
      cross_pairs_;
  Log2Hist cross_latency_;  ///< virtual ns across all cross-site pairs
  std::function<std::string(const std::string&)> site_resolver_;

  // Timeline: one sample every kTimelineStride events.
  static constexpr std::uint64_t kTimelineStride = 4096;
  struct TimelineSample {
    std::int64_t host_ns = 0;  ///< host time of the sample
    std::uint64_t events = 0;
    std::size_t queue_depth = 0;
  };
  std::int64_t timeline_t0_ = -1;
  std::vector<TimelineSample> timeline_;
};

// ------------------------------------------------------------- dump format

/// Serializes a complete profile dump: scope trees (folded), optionally an
/// engine profile, plus free-form `extra` sections (nxproxy stage
/// histograms land here). `source` names the producing program/role.
std::string dump_json(const std::string& source, const EngineProfile* engine,
                      json::Value extra = {});

/// Writes `body` to `path` (0600-ish regular file). Returns false on error.
bool write_file(const std::string& path, const std::string& body);

}  // namespace wacs::prof

// PROF_SCOPE("engine.dispatch.timer"): opens a host-time frame for the rest
// of the enclosing block. Compiles to nothing with -DWACS_PROF=0.
#if WACS_PROF
#define WACS_PROF_CONCAT_INNER(a, b) a##b
#define WACS_PROF_CONCAT(a, b) WACS_PROF_CONCAT_INNER(a, b)
#define PROF_SCOPE(name) \
  ::wacs::prof::ScopeTimer WACS_PROF_CONCAT(wacs_prof_scope_, __COUNTER__) { \
    name                                                                     \
  }
#else
#define PROF_SCOPE(name) ((void)0)
#endif
