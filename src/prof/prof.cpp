#include "prof/prof.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

namespace wacs::prof {
namespace {

std::atomic<bool> g_enabled{false};

// ----------------------------------------------------------- thread trees
//
// Each thread owns a private tree of scope nodes; node creation and hot
// updates take no lock. Trees register themselves once in a global list
// guarded by a mutex, and survive thread exit (a shared_ptr keeps the data
// alive for the dump) — the nxproxy daemons profile short-lived handler
// threads, whose frames must still appear in a SIGUSR1 dump.

struct ScopeNode {
  const char* name = nullptr;
  int parent = -1;  ///< index into the tree's nodes, -1 = root child
  ScopeStat stat;
  std::vector<int> children;  ///< indices, looked up by name pointer
};

struct ThreadTree {
  std::vector<ScopeNode> nodes;
  // The open-frame stack: node index + entry time + child time accrued.
  struct Frame {
    int node;
    std::int64_t start_ns;
    std::int64_t child_ns;
  };
  std::vector<Frame> stack;
  std::mutex mu;  ///< taken only by dump-time readers and the owner's push
};

std::mutex g_trees_mu;
std::vector<std::shared_ptr<ThreadTree>>& trees() {
  static std::vector<std::shared_ptr<ThreadTree>>* v =
      new std::vector<std::shared_ptr<ThreadTree>>();
  return *v;
}

// Raw pointer with constant initialization: access is a direct TLS load +
// null check, no per-access init guard. The shared_ptr keeping the tree
// alive past thread exit lives in the global registry (and a thread_local
// anchor that merely drops one reference on exit).
struct TreeAnchor {
  std::shared_ptr<ThreadTree> tree;
};
thread_local ThreadTree* t_tree = nullptr;
thread_local TreeAnchor t_anchor;

ThreadTree& local_tree() {
  if (t_tree == nullptr) {
    auto t = std::make_shared<ThreadTree>();
    t_anchor.tree = t;
    t_tree = t.get();
    std::lock_guard<std::mutex> lock(g_trees_mu);
    trees().push_back(std::move(t));
  }
  return *t_tree;
}

int child_of(ThreadTree& tree, int parent, const char* name) {
  // Roots are nodes with parent == -1; scan linearly (few roots, few kids;
  // names are literals, so the pointer compare almost always short-circuits).
  if (parent < 0) {
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      if (tree.nodes[i].parent == -1 &&
          (tree.nodes[i].name == name ||
           std::strcmp(tree.nodes[i].name, name) == 0)) {
        return static_cast<int>(i);
      }
    }
  } else {
    for (int c : tree.nodes[parent].children) {
      if (tree.nodes[c].name == name ||
          std::strcmp(tree.nodes[c].name, name) == 0) {
        return c;
      }
    }
  }
  std::lock_guard<std::mutex> lock(tree.mu);  // vs a concurrent dump
  ScopeNode node;
  node.name = name;
  node.parent = parent;
  tree.nodes.push_back(std::move(node));
  const int idx = static_cast<int>(tree.nodes.size()) - 1;
  if (parent >= 0) tree.nodes[parent].children.push_back(idx);
  return idx;
}

}  // namespace

// -------------------------------------------------------------- gate/clock

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void enable() { g_enabled.store(true, std::memory_order_relaxed); }
void disable() { g_enabled.store(false, std::memory_order_relaxed); }

bool enable_from_env() {
  const char* v = std::getenv("WACS_PROF");
  if (v != nullptr && std::string_view(v) == "1") {
    enable();
    return true;
  }
  return false;
}

void reset() {
  std::lock_guard<std::mutex> lock(g_trees_mu);
  for (auto& tree : trees()) {
    std::lock_guard<std::mutex> tl(tree->mu);
    for (ScopeNode& n : tree->nodes) n.stat = ScopeStat{};
  }
}

namespace {
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

#if defined(__x86_64__)

// x86: rdtsc (~8ns) instead of the clock_gettime vDSO path (~25ns) — the
// dispatch loop and scope timers read the clock on every event, and the
// bench_sim_engine --prof overhead gate budgets ~300ns per simulated
// message for the whole profiler. Modern x86 has constant_tsc/nonstop_tsc,
// so a one-shot calibration against steady_clock (first read pays ~2ms)
// gives monotonic host nanoseconds good to ~0.1% — plenty for profiling.
namespace {
struct TscCalibration {
  double ns_per_tick = 0;
  std::uint64_t tsc0 = 0;
  std::int64_t ns0 = 0;
};
const TscCalibration& tsc_calibration() {
  static const TscCalibration cal = [] {
    TscCalibration c;
    c.ns0 = steady_now_ns();
    c.tsc0 = __builtin_ia32_rdtsc();
    std::int64_t ns_b = c.ns0;
    while (ns_b - c.ns0 < 2000000) ns_b = steady_now_ns();
    const std::uint64_t tsc_b = __builtin_ia32_rdtsc();
    c.ns_per_tick = static_cast<double>(ns_b - c.ns0) /
                    static_cast<double>(tsc_b - c.tsc0);
    return c;
  }();
  return cal;
}
}  // namespace

std::int64_t now_ns() {
  const TscCalibration& c = tsc_calibration();
  return c.ns0 +
         static_cast<std::int64_t>(
             static_cast<double>(__builtin_ia32_rdtsc() - c.tsc0) *
             c.ns_per_tick);
}

#else

std::int64_t now_ns() { return steady_now_ns(); }

#endif

// -------------------------------------------------------------- ScopeTimer

ScopeTimer::ScopeTimer(const char* name) {
  if (!enabled()) return;
  ThreadTree& tree = local_tree();
  const int parent = tree.stack.empty() ? -1 : tree.stack.back().node;
  const int node = child_of(tree, parent, name);
  start_ = now_ns();
  tree.stack.push_back({node, start_, 0});
}

ScopeTimer::~ScopeTimer() {
  if (start_ < 0) return;
  ThreadTree& tree = local_tree();
  // A scope that outlived an enable/disable toggle mid-frame: the stack can
  // only be non-empty with our frame on top (frames strictly nest).
  if (tree.stack.empty()) return;
  ThreadTree::Frame frame = tree.stack.back();
  tree.stack.pop_back();
  const std::int64_t elapsed = now_ns() - frame.start_ns;
  ScopeStat& stat = tree.nodes[frame.node].stat;
  stat.count += 1;
  stat.total_ns += elapsed;
  stat.child_ns += frame.child_ns;
  if (!tree.stack.empty()) tree.stack.back().child_ns += elapsed;
}

// ---------------------------------------------------------- folded output

std::vector<FoldedLine> collect_folded() {
  std::map<std::string, ScopeStat> merged;
  std::vector<std::shared_ptr<ThreadTree>> snapshot;
  {
    std::lock_guard<std::mutex> lock(g_trees_mu);
    snapshot = trees();
  }
  for (const auto& tree : snapshot) {
    std::lock_guard<std::mutex> lock(tree->mu);
    // Build each node's full stack string by walking parents.
    std::vector<std::string> paths(tree->nodes.size());
    for (std::size_t i = 0; i < tree->nodes.size(); ++i) {
      const ScopeNode& n = tree->nodes[i];
      paths[i] = n.parent < 0 ? std::string(n.name)
                              : paths[n.parent] + ";" + n.name;
      if (n.stat.count == 0) continue;
      ScopeStat& m = merged[paths[i]];
      m.count += n.stat.count;
      m.total_ns += n.stat.total_ns;
      m.child_ns += n.stat.child_ns;
    }
  }
  std::vector<FoldedLine> out;
  out.reserve(merged.size());
  for (auto& [stack, stat] : merged) out.push_back({stack, stat});
  return out;
}

std::string folded_to_string(const std::vector<FoldedLine>& lines) {
  std::string out;
  for (const FoldedLine& l : lines) {
    const std::int64_t self = std::max<std::int64_t>(l.stat.self_ns(), 0);
    if (self == 0 && l.stat.count == 0) continue;
    out += l.stack;
    out += ' ';
    out += std::to_string(self);
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------------- Log2Hist

void Log2Hist::observe(std::int64_t ns) {
  if (ns < 0) ns = 0;
  const int bucket = ns == 0
                         ? 0
                         : std::min(kBuckets - 1,
                                    64 - std::countl_zero(
                                             static_cast<std::uint64_t>(ns)));
  if (count == 0) {
    min_ns = max_ns = ns;
  } else {
    min_ns = std::min(min_ns, ns);
    max_ns = std::max(max_ns, ns);
  }
  ++count;
  total_ns += ns;
  ++buckets[bucket];
}

double Log2Hist::quantile(double q) const {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= target) {
      // Geometric midpoint of [2^(i-1), 2^i); bucket 0 is [0, 2).
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
      const double hi = std::ldexp(1.0, i);
      const double mid = (lo + hi) / 2;
      return std::min(mid, static_cast<double>(max_ns));
    }
  }
  return static_cast<double>(max_ns);
}

json::Value Log2Hist::json() const {
  json::Value v = json::Value::object();
  v.set("count", count);
  v.set("total_ns", total_ns);
  v.set("min_ns", min_ns);
  v.set("max_ns", max_ns);
  v.set("p50_ns", quantile(0.50));
  v.set("p99_ns", quantile(0.99));
  return v;
}

// ---------------------------------------------------------- EngineProfile

void EngineProfile::record_event(const char* label, std::int64_t ns,
                                 std::size_t queue_depth) {
  ++events_recorded_;
  // Labels are static strings registered by a handful of call sites:
  // pointer-compare scan beats any hash on this cardinality.
  Log2Hist* hist = nullptr;
  for (auto& [l, h] : events_) {
    if (l == label) {
      hist = &h;
      break;
    }
  }
  if (hist == nullptr) {
    events_.emplace_back(label, Log2Hist{});
    hist = &events_.back().second;
  }
  hist->observe(ns);
  if (events_recorded_ % kTimelineStride == 0) {
    const std::int64_t now = now_ns();
    if (timeline_t0_ < 0) timeline_t0_ = now;
    timeline_.push_back({now - timeline_t0_, events_recorded_, queue_depth});
  }
}

Log2Hist& EngineProfile::slice_slot(const std::string& name) {
  for (Named& n : slices_) {
    if (n.name == name) return n.hist;
  }
  slices_.push_back(Named{name, Log2Hist{}});
  return slices_.back().hist;
}

void EngineProfile::record_slice(const std::string& name, std::int64_t ns) {
  slice_slot(name).observe(ns);
}

void EngineProfile::record_delivery(const std::string& src_site,
                                    const std::string& dst_site,
                                    std::int64_t latency_ns) {
  if (src_site == dst_site) {
    ++lookahead_.intra_site;
    return;
  }
  ++lookahead_.cross_site;
  cross_latency_.observe(latency_ns);
  for (auto& [pair, stat] : cross_pairs_) {
    if (pair.first == src_site && pair.second == dst_site) {
      stat.hist.observe(latency_ns);
      return;
    }
  }
  cross_pairs_.push_back({{src_site, dst_site}, PairStat{}});
  cross_pairs_.back().second.hist.observe(latency_ns);
}

void EngineProfile::set_site_resolver(
    std::function<std::string(const std::string&)> fn) {
  site_resolver_ = std::move(fn);
}

std::int64_t EngineProfile::min_cross_site_latency_ns() const {
  return cross_latency_.count == 0 ? 0 : cross_latency_.min_ns;
}

json::Value EngineProfile::json() const {
  json::Value out = json::Value::object();

  // Per-event-label host-cost histograms, sorted by total cost descending.
  std::vector<const std::pair<const char*, Log2Hist>*> by_cost;
  for (const auto& e : events_) {
    if (e.second.count > 0) by_cost.push_back(&e);
  }
  std::sort(by_cost.begin(), by_cost.end(), [](const auto* a, const auto* b) {
    return a->second.total_ns != b->second.total_ns
               ? a->second.total_ns > b->second.total_ns
               : std::strcmp(a->first, b->first) < 0;
  });
  json::Value events = json::Value::object();
  for (const auto* e : by_cost) events.set(e->first, e->second.json());
  out.set("events", std::move(events));

  // Per-process slice costs (host ns spent inside each Process's slices).
  std::vector<const Named*> slices;
  for (const Named& n : slices_) {
    if (n.hist.count > 0) slices.push_back(&n);
  }
  std::sort(slices.begin(), slices.end(), [](const Named* a, const Named* b) {
    return a->hist.total_ns != b->hist.total_ns
               ? a->hist.total_ns > b->hist.total_ns
               : a->name < b->name;
  });
  json::Value procs = json::Value::object();
  for (const Named* n : slices) procs.set(n->name, n->hist.json());
  out.set("processes", std::move(procs));

  // Per-site aggregation of slice costs via the "name@host" convention.
  if (site_resolver_) {
    std::map<std::string, std::pair<std::uint64_t, std::int64_t>> sites;
    for (const Named& n : slices_) {
      const auto at = n.name.rfind('@');
      if (at == std::string::npos) continue;
      // Process names may be "x@host" or "x@host.suffix"; the resolver
      // decides what it recognizes and returns "" for unknown hosts.
      std::string host = n.name.substr(at + 1);
      const auto dot = host.find('.');
      if (dot != std::string::npos) host.resize(dot);
      const std::string site = site_resolver_(host);
      if (site.empty()) continue;
      sites[site].first += n.hist.count;
      sites[site].second += n.hist.total_ns;
    }
    json::Value sv = json::Value::object();
    for (const auto& [site, agg] : sites) {
      json::Value s = json::Value::object();
      s.set("slices", agg.first);
      s.set("total_ns", agg.second);
      sv.set(site, std::move(s));
    }
    out.set("sites", std::move(sv));
  }

  // Timeline: events/sec derivable from consecutive samples.
  json::Value tl = json::Value::array();
  for (const TimelineSample& s : timeline_) {
    json::Value row = json::Value::object();
    row.set("host_ns", s.host_ns);
    row.set("events", s.events);
    row.set("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
    tl.push_back(std::move(row));
  }
  out.set("timeline", std::move(tl));

  // Lookahead report: the number that decides per-site queue sharding.
  json::Value la = json::Value::object();
  la.set("intra_site", lookahead_.intra_site);
  la.set("cross_site", lookahead_.cross_site);
  la.set("cross_fraction", lookahead_.cross_fraction());
  la.set("min_cross_latency_ns", min_cross_site_latency_ns());
  if (cross_latency_.count > 0) {
    la.set("cross_latency", cross_latency_.json());
  }
  json::Value pairs = json::Value::object();
  std::vector<const std::pair<std::pair<std::string, std::string>, PairStat>*>
      sorted_pairs;
  for (const auto& p : cross_pairs_) sorted_pairs.push_back(&p);
  std::sort(sorted_pairs.begin(), sorted_pairs.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* p : sorted_pairs) {
    pairs.set(p->first.first + "->" + p->first.second, p->second.hist.json());
  }
  la.set("pairs", std::move(pairs));
  out.set("lookahead", std::move(la));
  return out;
}

std::vector<FoldedLine> EngineProfile::folded() const {
  std::vector<FoldedLine> out;
  for (const auto& [label, hist] : events_) {
    if (hist.count == 0) continue;
    ScopeStat stat;
    stat.count = hist.count;
    stat.total_ns = hist.total_ns;
    out.push_back({std::string("engine.run;") + label, stat});
  }
  std::sort(out.begin(), out.end(), [](const FoldedLine& a,
                                       const FoldedLine& b) {
    return a.stack < b.stack;
  });
  return out;
}

std::string EngineProfile::render(std::size_t top_n) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-24s %12s %14s %10s %10s\n", "event label", "count",
                "total_ms", "p50_us", "p99_us");
  out += line;
  std::vector<const std::pair<const char*, Log2Hist>*> by_cost;
  for (const auto& e : events_) {
    if (e.second.count > 0) by_cost.push_back(&e);
  }
  std::sort(by_cost.begin(), by_cost.end(), [](const auto* a, const auto* b) {
    return a->second.total_ns > b->second.total_ns;
  });
  std::size_t shown = 0;
  for (const auto* e : by_cost) {
    if (shown++ >= top_n) break;
    std::snprintf(line, sizeof(line), "%-24s %12llu %14.3f %10.2f %10.2f\n",
                  e->first, static_cast<unsigned long long>(e->second.count),
                  static_cast<double>(e->second.total_ns) / 1e6,
                  e->second.quantile(0.5) / 1e3, e->second.quantile(0.99) / 1e3);
    out += line;
  }
  const std::uint64_t total =
      lookahead_.intra_site + lookahead_.cross_site;
  if (total > 0) {
    std::snprintf(line, sizeof(line),
                  "lookahead: %llu deliveries, cross-site %.1f%%, "
                  "min cross latency %.3f ms\n",
                  static_cast<unsigned long long>(total),
                  100.0 * lookahead_.cross_fraction(),
                  static_cast<double>(min_cross_site_latency_ns()) / 1e6);
    out += line;
  }
  return out;
}

void EngineProfile::clear() {
  events_recorded_ = 0;
  // Event and slice slots are zeroed, not dropped: Processes cache
  // slice_slot() references across clear().
  for (auto& [label, hist] : events_) hist = Log2Hist{};
  for (Named& n : slices_) n.hist = Log2Hist{};
  lookahead_ = Lookahead{};
  cross_pairs_.clear();
  cross_latency_ = Log2Hist{};
  timeline_.clear();
  timeline_t0_ = -1;
}

// ------------------------------------------------------------- dump format

std::string dump_json(const std::string& source, const EngineProfile* engine,
                      json::Value extra) {
  json::Value out = json::Value::object();
  out.set("kind", "wacs-prof");
  out.set("schema_version", 1);
  out.set("source", source);
  json::Value scopes = json::Value::array();
  for (const FoldedLine& l : collect_folded()) {
    json::Value s = json::Value::object();
    s.set("stack", l.stack);
    s.set("count", l.stat.count);
    s.set("total_ns", l.stat.total_ns);
    s.set("self_ns", l.stat.self_ns());
    scopes.push_back(std::move(s));
  }
  out.set("scopes", std::move(scopes));
  if (engine != nullptr) out.set("engine", engine->json());
  if (!extra.is_null()) out.set("extra", std::move(extra));
  return out.dump() + "\n";
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return n == body.size();
}

}  // namespace wacs::prof
