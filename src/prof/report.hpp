// Offline side of the profiling layer: load wacs-prof dumps (the JSON
// written by dump_json(), or raw flamegraph folded text), merge several of
// them, and render hotspot tables / per-event-type summaries / folded
// output. Library so tests can drive it; tools/wacs_prof_main.cpp is the
// thin CLI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "prof/prof.hpp"

namespace wacs::prof {

/// One loaded dump (or one folded file: scopes only).
struct Dump {
  std::string source;
  std::vector<FoldedLine> scopes;
  json::Value engine;  ///< null when the dump had no engine section
  json::Value extra;   ///< null when absent
};

/// Parses a dump_json() document.
Result<Dump> parse_dump(const std::string& text);
/// Parses flamegraph folded text ("stack value" lines) into scopes-only.
Result<Dump> parse_folded(const std::string& text, const std::string& source);
/// Dispatches on content: '{' → JSON dump, otherwise folded text.
Result<Dump> parse_any(const std::string& text, const std::string& name);

/// Merged view over several dumps.
struct MergedProfile {
  std::vector<std::string> sources;
  std::map<std::string, ScopeStat> scopes;          ///< by stack string
  std::map<std::string, json::Value> event_labels;  ///< engine event hists
  std::vector<json::Value> lookaheads;  ///< one per engine dump, in order

  void add(const Dump& dump);

  /// Top-N frames by self time: "self_ms  count  stack" table.
  std::string render_hotspots(std::size_t top_n) const;
  /// Per-event-type summary table (engine dumps only).
  std::string render_events() const;
  /// Lookahead report(s), one block per engine dump.
  std::string render_lookahead() const;
  /// flamegraph.pl-compatible folded text of the merged scopes.
  std::string folded() const;
  /// Whole merged profile as one JSON document (CI artifact).
  json::Value json() const;
};

}  // namespace wacs::prof
