#include "prof/report.hpp"

#include <algorithm>
#include <cstdio>

namespace wacs::prof {

Result<Dump> parse_dump(const std::string& text) {
  auto doc = json::Value::parse(text);
  if (!doc.ok()) return doc.error();
  const json::Value* kind = doc->find("kind");
  if (kind == nullptr || kind->as_string() != "wacs-prof") {
    return Error(ErrorCode::kProtocolError, "not a wacs-prof dump");
  }
  Dump dump;
  if (const json::Value* src = doc->find("source")) {
    dump.source = src->as_string();
  }
  if (const json::Value* scopes = doc->find("scopes")) {
    for (const json::Value& s : scopes->items()) {
      FoldedLine line;
      if (const json::Value* st = s.find("stack")) line.stack = st->as_string();
      if (line.stack.empty()) continue;
      if (const json::Value* c = s.find("count")) {
        line.stat.count = static_cast<std::uint64_t>(c->as_int());
      }
      if (const json::Value* t = s.find("total_ns")) {
        line.stat.total_ns = t->as_int();
      }
      if (const json::Value* self = s.find("self_ns")) {
        line.stat.child_ns = line.stat.total_ns - self->as_int();
      }
      dump.scopes.push_back(std::move(line));
    }
  }
  if (const json::Value* engine = doc->find("engine")) dump.engine = *engine;
  if (const json::Value* extra = doc->find("extra")) dump.extra = *extra;
  return dump;
}

Result<Dump> parse_folded(const std::string& text, const std::string& source) {
  Dump dump;
  dump.source = source;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return Error(ErrorCode::kProtocolError,
                   "folded line missing value: " + line);
    }
    FoldedLine fl;
    fl.stack = line.substr(0, space);
    const std::int64_t self = std::atoll(line.c_str() + space + 1);
    fl.stat.count = 1;
    fl.stat.total_ns = self;  // folded text carries self time only
    fl.stat.child_ns = 0;
    dump.scopes.push_back(std::move(fl));
  }
  return dump;
}

Result<Dump> parse_any(const std::string& text, const std::string& name) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    return parse_dump(text);
  }
  return parse_folded(text, name);
}

void MergedProfile::add(const Dump& dump) {
  if (!dump.source.empty()) sources.push_back(dump.source);
  for (const FoldedLine& l : dump.scopes) {
    ScopeStat& s = scopes[l.stack];
    s.count += l.stat.count;
    s.total_ns += l.stat.total_ns;
    s.child_ns += l.stat.child_ns;
  }
  if (!dump.engine.is_null()) {
    if (const json::Value* events = dump.engine.find("events")) {
      for (const auto& [label, hist] : events->members()) {
        // Engine dumps carry per-label folded lines too; the table keeps
        // the last-seen histogram per label and sums the scope view.
        event_labels[label] = hist;
      }
    }
    if (const json::Value* la = dump.engine.find("lookahead")) {
      json::Value tagged = json::Value::object();
      tagged.set("source", dump.source);
      tagged.set("lookahead", *la);
      lookaheads.push_back(std::move(tagged));
    }
  }
}

std::string MergedProfile::render_hotspots(std::size_t top_n) const {
  std::vector<std::pair<std::string, ScopeStat>> rows(scopes.begin(),
                                                      scopes.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_ns() != b.second.self_ns()
               ? a.second.self_ns() > b.second.self_ns()
               : a.first < b.first;
  });
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%12s %12s  %s\n", "self_ms", "count",
                "stack");
  out += line;
  std::size_t shown = 0;
  for (const auto& [stack, stat] : rows) {
    if (shown++ >= top_n) break;
    std::snprintf(line, sizeof(line), "%12.3f %12llu  %s\n",
                  static_cast<double>(stat.self_ns()) / 1e6,
                  static_cast<unsigned long long>(stat.count), stack.c_str());
    out += line;
  }
  if (rows.size() > shown) {
    std::snprintf(line, sizeof(line), "... %zu more frames\n",
                  rows.size() - shown);
    out += line;
  }
  return out;
}

std::string MergedProfile::render_events() const {
  if (event_labels.empty()) return "";
  std::vector<std::pair<std::string, const json::Value*>> rows;
  for (const auto& [label, hist] : event_labels) rows.push_back({label, &hist});
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    const json::Value* ta = a.second->find("total_ns");
    const json::Value* tb = b.second->find("total_ns");
    const std::int64_t va = ta ? ta->as_int() : 0;
    const std::int64_t vb = tb ? tb->as_int() : 0;
    return va != vb ? va > vb : a.first < b.first;
  });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %12s %14s %10s %10s\n",
                "event label", "count", "total_ms", "p50_us", "p99_us");
  out += line;
  for (const auto& [label, hist] : rows) {
    const auto get = [&](const char* key) {
      const json::Value* v = hist->find(key);
      return v ? v->as_double() : 0.0;
    };
    std::snprintf(line, sizeof(line), "%-24s %12lld %14.3f %10.2f %10.2f\n",
                  label.c_str(),
                  static_cast<long long>(
                      hist->find("count") ? hist->find("count")->as_int() : 0),
                  get("total_ns") / 1e6, get("p50_ns") / 1e3,
                  get("p99_ns") / 1e3);
    out += line;
  }
  return out;
}

std::string MergedProfile::render_lookahead() const {
  std::string out;
  char line[384];
  for (const json::Value& entry : lookaheads) {
    const json::Value* la = entry.find("lookahead");
    if (la == nullptr) continue;
    const auto geti = [&](const char* key) {
      const json::Value* v = la->find(key);
      return v ? v->as_int() : 0;
    };
    const json::Value* frac = la->find("cross_fraction");
    std::snprintf(
        line, sizeof(line),
        "%s: %lld intra-site + %lld cross-site deliveries "
        "(%.1f%% cross), min cross latency %.3f ms\n",
        entry.find("source") ? entry.find("source")->as_string().c_str()
                             : "engine",
        static_cast<long long>(geti("intra_site")),
        static_cast<long long>(geti("cross_site")),
        100.0 * (frac ? frac->as_double() : 0.0),
        static_cast<double>(geti("min_cross_latency_ns")) / 1e6);
    out += line;
    if (const json::Value* pairs = la->find("pairs")) {
      for (const auto& [pair, hist] : pairs->members()) {
        const json::Value* min = hist.find("min_ns");
        const json::Value* count = hist.find("count");
        std::snprintf(line, sizeof(line), "  %-24s %10lld msgs, min %.3f ms\n",
                      pair.c_str(),
                      static_cast<long long>(count ? count->as_int() : 0),
                      static_cast<double>(min ? min->as_int() : 0) / 1e6);
        out += line;
      }
    }
  }
  return out;
}

std::string MergedProfile::folded() const {
  std::vector<FoldedLine> lines;
  for (const auto& [stack, stat] : scopes) lines.push_back({stack, stat});
  return folded_to_string(lines);
}

json::Value MergedProfile::json() const {
  json::Value out = json::Value::object();
  out.set("kind", "wacs-prof-merged");
  json::Value srcs = json::Value::array();
  for (const std::string& s : sources) srcs.push_back(s);
  out.set("sources", std::move(srcs));
  json::Value sc = json::Value::array();
  for (const auto& [stack, stat] : scopes) {
    json::Value row = json::Value::object();
    row.set("stack", stack);
    row.set("count", stat.count);
    row.set("total_ns", stat.total_ns);
    row.set("self_ns", stat.self_ns());
    sc.push_back(std::move(row));
  }
  out.set("scopes", std::move(sc));
  json::Value ev = json::Value::object();
  for (const auto& [label, hist] : event_labels) ev.set(label, hist);
  out.set("events", std::move(ev));
  json::Value la = json::Value::array();
  for (const json::Value& entry : lookaheads) la.push_back(entry);
  out.set("lookaheads", std::move(la));
  return out;
}

}  // namespace wacs::prof
