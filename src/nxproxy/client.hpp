// Real-socket client library: the paper's Table 1 functions.
//
//   NXProxyConnect(outer, target) — active open through the outer server.
//   NXProxyBind(outer, inner)     — passive open: registers a local listener
//                                   at the outer server, returns the public
//                                   contact peers must dial.
//   NXProxyAccept(bound)          — accepts one relayed connection and
//                                   reports the true remote peer.
#pragma once

#include <utility>

#include "proxy/protocol.hpp"
#include "sockets/socket.hpp"

namespace wacs::nxproxy {

/// Result of NXProxyBind: the private listener plus the advertised address.
struct BoundPort {
  net::TcpListener listener;
  Contact public_contact;
  std::uint64_t bind_id = 0;
};

/// Table 1: "sends a connect request to the outer server and returns a file
/// descriptor on which the client can communicate with the destination".
Result<net::TcpSocket> NXProxyConnect(const Contact& outer,
                                      const Contact& target);

/// Table 1: "sends a bind request to the outer server and returns a file
/// descriptor on which the client can listen for requests".
/// `local_ip` is the interface the inner server dials back on.
Result<BoundPort> NXProxyBind(const Contact& outer, const Contact& inner,
                              const std::string& local_ip = "127.0.0.1");

/// Table 1: "tries to accept a connection request". Returns the accepted
/// socket and the true remote peer (from the inner server's notice).
Result<std::pair<net::TcpSocket, Contact>> NXProxyAccept(BoundPort& bound);

}  // namespace wacs::nxproxy
