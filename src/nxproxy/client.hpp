// Real-socket client library: the paper's Table 1 functions.
//
//   NXProxyConnect(outer, target) — active open through the outer server.
//   NXProxyBind(outer, inner)     — passive open: registers a local listener
//                                   at the outer server, returns the public
//                                   contact peers must dial.
//   NXProxyAccept(bound)          — accepts one relayed connection and
//                                   reports the true remote peer.
//
// All outer-server exchanges run under poll-based timeouts and a
// wall-clock-bound RetryPolicy, so a restarting daemon or a dropped SYN
// surfaces a typed error (or a successful retry) instead of a hung client.
#pragma once

#include <utility>

#include "common/retry.hpp"
#include "proxy/protocol.hpp"
#include "sockets/socket.hpp"

namespace wacs::nxproxy {

/// Timeouts and retry policy for the client calls. The defaults retry
/// transient failures a few times with sub-second backoff, which rides out
/// a daemon restart without materially delaying the permanent-failure path.
struct ClientOptions {
  RetryPolicy retry{.max_attempts = 3,
                    .initial_backoff_ns = 50'000'000,  // 50 ms
                    .multiplier = 2.0,
                    .max_backoff_ns = 500'000'000,
                    .jitter = 0.1,
                    .deadline_ns = -1};
  int connect_timeout_ms = 5000;  ///< per-address non-blocking connect bound
  int reply_timeout_ms = 10000;   ///< bound on each control-reply frame
};

/// Result of NXProxyBind: the private listener plus the advertised address.
struct BoundPort {
  net::TcpListener listener;
  Contact public_contact;
  std::uint64_t bind_id = 0;
  int reply_timeout_ms = 10000;  ///< inherited bound for AcceptNotice reads
  /// Lease granted by the outer server; 0 = the binding never expires.
  /// A leased binding must be renewed (NXProxyRenewBind) before lease_ms
  /// elapses or the outer server reaps it.
  std::uint32_t lease_ms = 0;
};

/// Table 1: "sends a connect request to the outer server and returns a file
/// descriptor on which the client can communicate with the destination".
Result<net::TcpSocket> NXProxyConnect(const Contact& outer,
                                      const Contact& target,
                                      const ClientOptions& options = {});

/// Table 1: "sends a bind request to the outer server and returns a file
/// descriptor on which the client can listen for requests".
/// `local_ip` is the interface the inner server dials back on.
Result<BoundPort> NXProxyBind(const Contact& outer, const Contact& inner,
                              const std::string& local_ip = "127.0.0.1",
                              const ClientOptions& options = {});

/// Table 1: "tries to accept a connection request". Returns the accepted
/// socket and the true remote peer (from the inner server's notice). The
/// accept itself blocks (daemon semantics); the notice read is bounded.
Result<std::pair<net::TcpSocket, Contact>> NXProxyAccept(BoundPort& bound);

/// Renews the lease on a bound port. Returns the refreshed lease duration
/// in milliseconds. Call well before `BoundPort::lease_ms` elapses; a lapsed
/// lease fails with kNotFound-class "unknown or expired bind id".
Result<std::uint32_t> NXProxyRenewBind(const Contact& outer,
                                       std::uint64_t bind_id,
                                       const ClientOptions& options = {});

}  // namespace wacs::nxproxy
