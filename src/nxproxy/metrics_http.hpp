// /metrics admin endpoint for the real nxproxy daemons.
//
// Text exposition (Prometheus format) of a DaemonStats: counters as
// `<name>_total`, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum`/`_count`. Served by a tiny single-purpose HTTP/1.0 responder on
// the loopback side of the daemon: monitoring must not widen the
// firewall-audited relay surface, so the endpoint binds 127.0.0.1 and
// never the public interface.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "sockets/socket.hpp"

namespace wacs::nxproxy {

struct DaemonStats;

/// Renders `stats` in Prometheus text exposition format. `role` becomes a
/// label on every series ({role="outer"} / {role="inner"}).
std::string render_metrics(const DaemonStats& stats, const std::string& role);

/// Renders a wacs-prof JSON profile dump for a live daemon: the process's
/// folded scope stacks (accept/preamble/dial/pump attribution) plus the
/// DaemonStats counters and stage-histogram summaries as the `extra`
/// section. This is what the SIGUSR1 handler in the daemon mains writes;
/// `wacs-prof` consumes it alongside engine dumps.
std::string profile_dump(const DaemonStats& stats, const std::string& role);

/// Minimal GET-only HTTP server: 200 for the registered paths, 404
/// otherwise. One request per connection (Connection: close).
class MetricsHttpServer {
 public:
  using Provider = std::function<std::string()>;

  /// Serves `provider()` at /metrics and "ok" at /healthz.
  MetricsHttpServer(Provider provider) : provider_(std::move(provider)) {}
  ~MetricsHttpServer() { stop(); }

  Status start(const std::string& bind_ip, std::uint16_t port);
  void stop();

  std::uint16_t port() const { return listener_.port(); }

 private:
  void serve_loop();
  void handle(net::TcpSocket conn);

  Provider provider_;
  net::TcpListener listener_;
  std::thread thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace wacs::nxproxy
