#include "nxproxy/metrics_http.hpp"

#include <dirent.h>
#include <sys/resource.h>

#include <cstdio>

#include "common/log.hpp"
#include "nxproxy/daemon.hpp"
#include "prof/prof.hpp"

namespace wacs::nxproxy {
namespace {

const log::Logger kLog("nxproxy.metrics");

void append_counter(std::string& out, const std::string& name,
                    const std::string& role, std::uint64_t v) {
  char line[192];
  std::snprintf(line, sizeof(line), "nxproxy_%s_total{role=\"%s\"} %llu\n",
                name.c_str(), role.c_str(),
                static_cast<unsigned long long>(v));
  out += line;
}

void append_histogram(std::string& out, const std::string& name,
                      const std::string& role,
                      const telemetry::Histogram& h) {
  const auto snap = h.snapshot();
  char line[192];
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    cumulative += snap.counts[i];
    if (i < snap.bounds.size()) {
      std::snprintf(line, sizeof(line),
                    "nxproxy_%s_bucket{role=\"%s\",le=\"%g\"} %llu\n",
                    name.c_str(), role.c_str(), snap.bounds[i],
                    static_cast<unsigned long long>(cumulative));
    } else {
      std::snprintf(line, sizeof(line),
                    "nxproxy_%s_bucket{role=\"%s\",le=\"+Inf\"} %llu\n",
                    name.c_str(), role.c_str(),
                    static_cast<unsigned long long>(cumulative));
    }
    out += line;
  }
  std::snprintf(line, sizeof(line), "nxproxy_%s_sum{role=\"%s\"} %g\n",
                name.c_str(), role.c_str(), snap.sum);
  out += line;
  std::snprintf(line, sizeof(line), "nxproxy_%s_count{role=\"%s\"} %llu\n",
                name.c_str(), role.c_str(),
                static_cast<unsigned long long>(snap.count));
  out += line;
}

void append_kind_counter(std::string& out, const std::string& name,
                         const std::string& role, const std::string& kind,
                         std::uint64_t v) {
  char line[192];
  std::snprintf(line, sizeof(line),
                "nxproxy_%s_total{role=\"%s\",kind=\"%s\"} %llu\n",
                name.c_str(), role.c_str(), kind.c_str(),
                static_cast<unsigned long long>(v));
  out += line;
}

void append_gauge(std::string& out, const std::string& name,
                  const std::string& role, double v) {
  char line[192];
  std::snprintf(line, sizeof(line), "nxproxy_%s{role=\"%s\"} %g\n",
                name.c_str(), role.c_str(), v);
  out += line;
}

/// Peak resident set size in bytes (Linux reports ru_maxrss in KiB).
double peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

/// Open file descriptors of this process, counted via /proc/self/fd.
/// Returns -1 where procfs is unavailable.
long open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  long n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  // Discount ".", "..", and the fd opendir itself holds.
  return n >= 3 ? n - 3 : 0;
}

}  // namespace

std::string render_metrics(const DaemonStats& stats, const std::string& role) {
  std::string out;
  out.reserve(4096);
  append_counter(out, "connections", role, stats.connections.load());
  append_counter(out, "bytes_relayed", role, stats.bytes_relayed.load());
  append_counter(out, "handshake_failures", role,
                 stats.handshake_failures.load());
  // The handshake-failure breakdown: an attack (malformed, timeout) alerts
  // differently than an outage (dial_failed) or a misconfigured peer
  // (policy_denied). The kinds always sum to handshake_failures.
  append_kind_counter(out, "handshake_failure_kind", role, "policy_denied",
                      stats.hs_policy_denied.load());
  append_kind_counter(out, "handshake_failure_kind", role, "malformed",
                      stats.hs_malformed.load());
  append_kind_counter(out, "handshake_failure_kind", role, "dial_failed",
                      stats.hs_dial_failed.load());
  append_kind_counter(out, "handshake_failure_kind", role, "timeout",
                      stats.hs_timeout.load());
  append_counter(out, "sessions_opened", role, stats.sessions_opened.load());
  append_counter(out, "sessions_closed", role, stats.sessions_closed.load());
  append_counter(out, "shed_connections", role, stats.shed_connections.load());
  append_counter(out, "accept_retries", role, stats.accept_retries.load());
  append_counter(out, "idle_evictions", role, stats.idle_evictions.load());
  append_counter(out, "leases_granted", role, stats.leases_granted.load());
  append_counter(out, "leases_renewed", role, stats.leases_renewed.load());
  append_counter(out, "leases_expired", role, stats.leases_expired.load());
  append_histogram(out, "connect_ms", role, stats.connect_ms);
  append_histogram(out, "relay_session_ms", role, stats.relay_session_ms);
  append_histogram(out, "stage_preamble_ms", role, stats.stage_preamble_ms);
  append_histogram(out, "stage_handshake_ms", role, stats.stage_handshake_ms);
  // Process-level gauges: a relay leaks fds (one socket pair + two threads
  // per session) long before it leaks memory, so both are first-class here.
  append_gauge(out, "process_peak_rss_bytes", role, peak_rss_bytes());
  const long fds = open_fd_count();
  if (fds >= 0) {
    append_gauge(out, "process_open_fds", role, static_cast<double>(fds));
  }
  return out;
}

namespace {

json::Value histogram_json(const telemetry::Histogram& h) {
  const auto s = h.summary();
  json::Value v = json::Value::object();
  v.set("count", s.count);
  v.set("sum_ms", s.sum);
  v.set("mean_ms", s.mean);
  v.set("p50_ms", s.p50);
  v.set("p95_ms", s.p95);
  v.set("p99_ms", s.p99);
  v.set("max_ms", s.max);
  return v;
}

}  // namespace

std::string profile_dump(const DaemonStats& stats, const std::string& role) {
  json::Value extra = json::Value::object();
  json::Value counters = json::Value::object();
  counters.set("connections", stats.connections.load());
  counters.set("bytes_relayed", stats.bytes_relayed.load());
  counters.set("handshake_failures", stats.handshake_failures.load());
  counters.set("hs_policy_denied", stats.hs_policy_denied.load());
  counters.set("hs_malformed", stats.hs_malformed.load());
  counters.set("hs_dial_failed", stats.hs_dial_failed.load());
  counters.set("hs_timeout", stats.hs_timeout.load());
  counters.set("sessions_opened", stats.sessions_opened.load());
  counters.set("sessions_closed", stats.sessions_closed.load());
  counters.set("shed_connections", stats.shed_connections.load());
  counters.set("accept_retries", stats.accept_retries.load());
  counters.set("idle_evictions", stats.idle_evictions.load());
  counters.set("leases_granted", stats.leases_granted.load());
  counters.set("leases_renewed", stats.leases_renewed.load());
  counters.set("leases_expired", stats.leases_expired.load());
  extra.set("counters", std::move(counters));
  json::Value stages = json::Value::object();
  stages.set("connect_ms", histogram_json(stats.connect_ms));
  stages.set("relay_session_ms", histogram_json(stats.relay_session_ms));
  stages.set("stage_preamble_ms", histogram_json(stats.stage_preamble_ms));
  stages.set("stage_handshake_ms", histogram_json(stats.stage_handshake_ms));
  extra.set("stages", std::move(stages));
  return prof::dump_json("nxproxy-" + role, nullptr, std::move(extra));
}

Status MetricsHttpServer::start(const std::string& bind_ip,
                                std::uint16_t port) {
  WACS_CHECK_MSG(!started_, "metrics server already started");
  auto listener = net::TcpListener::bind(bind_ip, port);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(*listener);
  started_ = true;
  thread_ = std::thread([this] { serve_loop(); });
  kLog.info("metrics endpoint on %s:%u", bind_ip.c_str(),
            static_cast<unsigned>(listener_.port()));
  return Status();
}

void MetricsHttpServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  listener_.shutdown();
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::serve_loop() {
  while (true) {
    auto conn = listener_.accept();
    if (!conn.ok()) return;  // listener shut down
    // Admin endpoint, loopback, low rate: serving inline keeps the thread
    // count flat. A wedged scraper can only stall the next scrape.
    handle(std::move(*conn));
  }
}

void MetricsHttpServer::handle(net::TcpSocket conn) {
  auto request = conn.read_some(4096);
  if (!request.ok()) return;
  const std::string text = to_string(*request);
  // "GET <path> ..." — anything fancier than that is a 404 anyway.
  std::string path;
  if (text.rfind("GET ", 0) == 0) {
    const std::size_t end = text.find(' ', 4);
    path = text.substr(4, end == std::string::npos ? std::string::npos
                                                   : end - 4);
  }
  std::string status = "404 Not Found";
  std::string body = "not found\n";
  if (path == "/metrics") {
    status = "200 OK";
    body = provider_();
  } else if (path == "/healthz") {
    status = "200 OK";
    body = "ok\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: text/plain; version=0.0.4"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  (void)conn.write_all(to_bytes(response));
}

}  // namespace wacs::nxproxy
